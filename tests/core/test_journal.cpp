// Tests for the crash-safe campaign journal (core/journal.hpp): the record
// format round-trips (including escaped error strings), every torn prefix of
// a line is rejected, recover() repairs a torn tail in place, and
// truncate_file cuts an output back to a journaled offset.

#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dfly {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

JournalRecord sample_record() {
  JournalRecord record;
  record.cell = 17;
  record.ok = true;
  record.completed = true;
  record.hash = 0x091ab00ffee12d34ull;
  record.attempts = 3;
  record.timeout = false;
  record.offset = 83451;
  record.error = "";
  return record;
}

TEST(Journal, FormatUsesTheDocumentedStableKeyOrder) {
  EXPECT_EQ(PlanJournal::format(sample_record()),
            "{\"cell\":17,\"ok\":true,\"completed\":true,"
            "\"hash\":\"091ab00ffee12d34\",\"attempts\":3,"
            "\"timeout\":false,\"offset\":83451,\"error\":\"\"}");
}

TEST(Journal, FormatParseRoundTripsIncludingEscapedErrors) {
  JournalRecord record = sample_record();
  record.ok = false;
  record.completed = false;
  record.timeout = true;
  record.error = "bad \"quote\"\nand\ttab and\x01 control and back\\slash";
  const std::optional<JournalRecord> parsed =
      PlanJournal::parse_line(PlanJournal::format(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, record);
}

TEST(Journal, EveryTornPrefixOfALineIsRejected) {
  // A crash can cut a journal write at any byte; no strict prefix may parse
  // as a (wrong) complete record.
  JournalRecord record = sample_record();
  record.ok = false;
  record.error = "engine: allocation failed";
  const std::string line = PlanJournal::format(record);
  for (std::size_t n = 0; n < line.size(); ++n) {
    EXPECT_FALSE(PlanJournal::parse_line(line.substr(0, n)).has_value()) << "prefix " << n;
  }
  ASSERT_TRUE(PlanJournal::parse_line(line).has_value());
  EXPECT_FALSE(PlanJournal::parse_line("not json").has_value());
  EXPECT_FALSE(PlanJournal::parse_line("{\"cell\":}").has_value());
}

TEST(Journal, AppendedRecordsRecoverInOrderAcrossReopens) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_journal_append.journal";
  std::remove(path.c_str());

  JournalRecord first = sample_record();
  JournalRecord second = sample_record();
  second.cell = 18;
  second.ok = false;
  second.error = "cell exploded";
  {
    PlanJournal journal(path);
    journal.append(first);
    journal.append(second);
  }
  std::vector<JournalRecord> records = PlanJournal::recover(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], first);
  EXPECT_EQ(records[1], second);

  // Reopening appends after the existing records — the resume path.
  JournalRecord third = sample_record();
  third.cell = 19;
  {
    PlanJournal journal(path);
    journal.append(third);
  }
  records = PlanJournal::recover(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], third);
  std::remove(path.c_str());
}

TEST(Journal, RecoverTruncatesATornTailInPlace) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_journal_torn.journal";
  const std::string intact =
      PlanJournal::format(sample_record()) + "\n" + PlanJournal::format(sample_record()) + "\n";
  write_file(path, intact + "{\"cell\":9,\"ok\":fa");

  const std::vector<JournalRecord> records = PlanJournal::recover(path);
  EXPECT_EQ(records.size(), 2u);
  // The torn line is gone from disk, so a new PlanJournal appends cleanly...
  EXPECT_EQ(read_file(path), intact);
  // ...and recovery is idempotent.
  EXPECT_EQ(PlanJournal::recover(path).size(), 2u);
  EXPECT_EQ(read_file(path), intact);
  std::remove(path.c_str());
}

TEST(Journal, RecoverDiscardsEverythingAfterACorruptLine) {
  // Corruption mid-file (not just at the tail) must not let later records
  // sneak past it: resume would otherwise skip cells the output never got.
  const std::string path = std::string(::testing::TempDir()) + "/dfly_journal_corrupt.journal";
  JournalRecord record = sample_record();
  const std::string good = PlanJournal::format(record) + "\n";
  write_file(path, good + "garbage line\n" + good);
  EXPECT_EQ(PlanJournal::recover(path).size(), 1u);
  EXPECT_EQ(read_file(path), good);
  std::remove(path.c_str());
}

TEST(Journal, RecoverOfAMissingFileIsAFreshStart) {
  EXPECT_TRUE(
      PlanJournal::recover(std::string(::testing::TempDir()) + "/dfly_no_such.journal").empty());
}

TEST(Journal, TruncateFileCutsAndCreates) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_truncate.bin";
  write_file(path, "hello world");
  truncate_file(path, 5);
  EXPECT_EQ(read_file(path), "hello");

  const std::string missing = std::string(::testing::TempDir()) + "/dfly_truncate_missing.bin";
  std::remove(missing.c_str());
  truncate_file(missing, 0);  // resume with an empty journal: empty output
  EXPECT_EQ(read_file(missing), "");
  std::remove(path.c_str());
  std::remove(missing.c_str());
}

}  // namespace
}  // namespace dfly

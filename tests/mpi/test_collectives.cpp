#include <gtest/gtest.h>

#include "mpi/job.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

struct CollFixture {
  CollFixture() : bp(testsupport::make_blueprint()), topo(bp->topo()) {
    routing::RoutingContext context{&engine, &topo, &bp->net(), 31};
    routing = routing::make_routing("MIN", context);
    net = std::make_unique<Network>(engine, *bp, *routing, 1, 31);
    system = std::make_unique<mpi::MpiSystem>(*net);
  }

  mpi::Job& launch(const mpi::Motif& motif, int ranks) {
    std::vector<int> nodes;
    for (int r = 0; r < ranks; ++r) nodes.push_back(r * 2);  // spread over routers
    job = std::make_unique<mpi::Job>(engine, *net, *system, 0, motif.name(), motif,
                                     std::move(nodes), 31);
    job->start();
    return *job;
  }

  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly& topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
  std::unique_ptr<mpi::MpiSystem> system;
  std::unique_ptr<mpi::Job> job;
};

class BarrierMotif final : public mpi::Motif {
 public:
  explicit BarrierMotif(int rounds) : rounds_(rounds) {}
  std::string name() const override { return "Barrier"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    for (int i = 0; i < rounds_; ++i) {
      co_await ctx.barrier();
      ctx.mark_iteration();
    }
  }
  int rounds_;
};

class AllreduceMotif final : public mpi::Motif {
 public:
  AllreduceMotif(std::int64_t bytes, int rounds) : bytes_(bytes), rounds_(rounds) {}
  std::string name() const override { return "Allreduce"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    for (int i = 0; i < rounds_; ++i) co_await ctx.allreduce(bytes_);
  }
  std::int64_t bytes_;
  int rounds_;
};

class AlltoallMotif final : public mpi::Motif {
 public:
  explicit AlltoallMotif(std::int64_t bytes) : bytes_(bytes) {}
  std::string name() const override { return "Alltoall"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    std::vector<int> members;
    for (int r = 0; r < ctx.size(); ++r) members.push_back(r);
    co_await ctx.alltoall(bytes_, members);
  }
  std::int64_t bytes_;
};

class StaggeredBarrierMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Staggered"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    // Every rank computes a different amount before the barrier; all must
    // leave the barrier no earlier than the slowest rank's arrival.
    co_await ctx.compute(ctx.rank() * 10 * kUs);
    co_await ctx.barrier();
    ctx.mark_iteration();
  }
};

class ParameterisedAllreduce : public ::testing::TestWithParam<int> {};

TEST_P(ParameterisedAllreduce, CompletesForAnyRankCount) {
  CollFixture f;
  AllreduceMotif motif(10000, 2);
  auto& job = f.launch(motif, GetParam());
  f.engine.run();
  EXPECT_TRUE(job.done()) << "ranks=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParameterisedAllreduce,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 31, 32, 33));

TEST(Collectives, BarrierCompletes) {
  CollFixture f;
  BarrierMotif motif(3);
  auto& job = f.launch(motif, 16);
  f.engine.run();
  EXPECT_TRUE(job.done());
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).iteration_marks().size(), 3u);
  }
}

TEST(Collectives, BarrierSynchronisesStaggeredRanks) {
  CollFixture f;
  StaggeredBarrierMotif motif;
  auto& job = f.launch(motif, 8);
  f.engine.run();
  ASSERT_TRUE(job.done());
  const SimTime slowest_arrival = 7 * 10 * kUs;
  for (int r = 0; r < job.size(); ++r) {
    ASSERT_EQ(job.rank(r).iteration_marks().size(), 1u);
    EXPECT_GE(job.rank(r).iteration_marks()[0], slowest_arrival);
  }
}

TEST(Collectives, AllreduceMessageCountMatchesBinaryTree) {
  CollFixture f;
  AllreduceMotif motif(5000, 1);
  auto& job = f.launch(motif, 8);
  f.engine.run();
  ASSERT_TRUE(job.done());
  // Binary tree with n=8: 7 edges, traffic up + down = 2 x 7 messages.
  EXPECT_EQ(job.total_messages_sent(), 14);
  EXPECT_EQ(job.total_bytes_sent(), 14 * 5000);
}

TEST(Collectives, AllreduceDownPhaseBurstIsTwoMessages) {
  CollFixture f;
  AllreduceMotif motif(5000, 1);
  auto& job = f.launch(motif, 15);  // full binary tree: root has 2 children
  f.engine.run();
  ASSERT_TRUE(job.done());
  // Peak ingress: the root (and inner nodes) send to both children
  // back-to-back (paper §IV: Allreduce peak ingress counts two messages).
  EXPECT_EQ(job.peak_ingress_bytes(), 2 * 5000);
}

TEST(Collectives, AlltoallVolumeIsAllPairs) {
  CollFixture f;
  AlltoallMotif motif(750);
  auto& job = f.launch(motif, 9);
  f.engine.run();
  ASSERT_TRUE(job.done());
  // Ring exchange: every rank sends to all n-1 others.
  EXPECT_EQ(job.total_messages_sent(), 9 * 8);
  EXPECT_EQ(job.total_bytes_sent(), 9 * 8 * 750);
}

TEST(Collectives, AlltoallPeakIngressIsOneMessage) {
  CollFixture f;
  AlltoallMotif motif(750);
  auto& job = f.launch(motif, 9);
  f.engine.run();
  ASSERT_TRUE(job.done());
  // One send per ring round (paper §IV: Alltoall peak counts one message).
  EXPECT_EQ(job.peak_ingress_bytes(), 750);
}

TEST(Collectives, SubCommunicatorAlltoall) {
  class RowAlltoall final : public mpi::Motif {
   public:
    std::string name() const override { return "RowA2A"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      // Two disjoint groups of 4 run concurrent alltoalls.
      std::vector<int> members;
      const int base = ctx.rank() < 4 ? 0 : 4;
      for (int i = 0; i < 4; ++i) members.push_back(base + i);
      co_await ctx.alltoall(600, members);
    }
  };
  CollFixture f;
  RowAlltoall motif;
  auto& job = f.launch(motif, 8);
  f.engine.run();
  ASSERT_TRUE(job.done());
  EXPECT_EQ(job.total_messages_sent(), 8 * 3);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  CollFixture f;
  AllreduceMotif motif(3000, 5);  // five consecutive allreduces
  auto& job = f.launch(motif, 13);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.total_messages_sent(), 5 * 2 * 12);
}

TEST(Collectives, SingleRankCollectivesAreNoops) {
  CollFixture f;
  AllreduceMotif motif(1000, 3);
  auto& job = f.launch(motif, 1);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.total_messages_sent(), 0);
}

}  // namespace
}  // namespace dfly

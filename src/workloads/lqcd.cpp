// LQCD is an NdStencilMotif configuration (4D torus, 8 neighbours); the
// preset lives in halo3d.cpp alongside the shared stencil engine. This TU
// exists so the build mirrors the paper's one-module-per-application layout
// and hosts LQCD-specific helpers.

#include "workloads/motifs.hpp"

namespace dfly::workloads {

/// Convenience: a fully-constructed LQCD motif.
std::unique_ptr<NdStencilMotif> make_lqcd(int scale) {
  NdStencilParams p = NdStencilMotif::lqcd();
  p.iterations = scaled(p.iterations, scale);
  return std::make_unique<NdStencilMotif>(std::move(p));
}

}  // namespace dfly::workloads

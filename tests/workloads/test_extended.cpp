#include "workloads/extended.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/study.hpp"
#include "workloads/factory.hpp"

namespace dfly {
namespace {

using workloads::IoBurstMotif;
using workloads::IoBurstParams;
using workloads::MilcMotif;
using workloads::MilcParams;

// --- construction / factory ----------------------------------------------------

TEST(ExtendedWorkloads, FactoryBuildsMilc) {
  const auto app = workloads::make_app("MILC", 528, /*scale=*/8);
  EXPECT_EQ(app.motif->name(), "MILC");
  EXPECT_EQ(app.nodes, 512);  // largest 4D grid under 528: 4x4x4x8
}

TEST(ExtendedWorkloads, FactoryBuildsIoBurst) {
  const auto app = workloads::make_app("IOBurst", 100, /*scale=*/8);
  EXPECT_EQ(app.motif->name(), "IOBurst");
  EXPECT_EQ(app.nodes, 100);
}

TEST(ExtendedWorkloads, ExtendedNamesListed) {
  const auto& names = workloads::extended_app_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "MILC"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "IOBurst"), names.end());
  // Table I keeps the paper's nine only.
  const auto& paper = workloads::app_names();
  EXPECT_EQ(paper.size(), 9u);
  EXPECT_EQ(std::find(paper.begin(), paper.end(), "MILC"), paper.end());
}

TEST(ExtendedWorkloads, IoBurstBufferRankCount) {
  IoBurstParams params;
  params.bb_ratio = 16;
  const IoBurstMotif motif(params);
  EXPECT_EQ(motif.num_buffer_ranks(64), 4);
  EXPECT_EQ(motif.num_buffer_ranks(16), 1);
  EXPECT_EQ(motif.num_buffer_ranks(8), 1);  // at least one buffer rank
}

// --- behaviour -----------------------------------------------------------------

struct TinyRun {
  explicit TinyRun(std::unique_ptr<mpi::Motif> motif, int nodes, std::uint64_t seed = 7) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = "UGALg";
    config.seed = seed;
    study = std::make_unique<Study>(config);
    app = study->add_motif(std::move(motif), nodes, "app");
    study->record_trace(app);
    report = study->run();
  }
  std::unique_ptr<Study> study;
  int app{0};
  Report report;
};

TEST(ExtendedWorkloads, MilcCompletesAndMarksIterations) {
  MilcParams params;
  params.dims = {2, 2, 2, 2};
  params.iterations = 3;
  params.compute = 10 * kUs;
  params.cg_compute = kUs;
  TinyRun run(std::make_unique<MilcMotif>(params), 16);
  EXPECT_TRUE(run.report.completed);
  EXPECT_GT(run.report.apps[0].total_msg_mb, 0.0);
}

/// MILC per-iteration traffic: one halo message per direction per dimension
/// (8 on a 4D torus — extent-2 dims send twice to the same peer, exactly as
/// the +1/-1 face exchanges of the real code), plus the CG allreduce edges.
TEST(ExtendedWorkloads, MilcHaloMessageCountMatchesPattern) {
  MilcParams params;
  params.dims = {4, 2, 2, 2};
  params.iterations = 2;
  params.cg_per_iteration = 0;  // isolate the halo traffic
  params.compute = kUs;
  TinyRun run(std::make_unique<MilcMotif>(params), 32);
  ASSERT_TRUE(run.report.completed);
  const auto& trace = run.study->trace(run.app);
  const int ranks = 32;
  EXPECT_EQ(trace.size(), static_cast<std::size_t>(ranks * 8 * params.iterations));
  // Every halo message carries the configured payload.
  for (const auto& record : trace.records()) {
    EXPECT_EQ(record.bytes, params.msg_bytes);
  }
}

TEST(ExtendedWorkloads, MilcCgChainAddsAllreduceTraffic) {
  MilcParams base;
  base.dims = {2, 2, 2, 2};
  base.iterations = 2;
  base.compute = kUs;
  base.cg_per_iteration = 0;

  MilcParams with_cg = base;
  with_cg.cg_per_iteration = 3;

  TinyRun halo_only(std::make_unique<MilcMotif>(base), 16);
  TinyRun with_chain(std::make_unique<MilcMotif>(with_cg), 16);
  ASSERT_TRUE(halo_only.report.completed);
  ASSERT_TRUE(with_chain.report.completed);
  EXPECT_GT(with_chain.study->trace(with_chain.app).size(),
            halo_only.study->trace(halo_only.app).size());
}

TEST(ExtendedWorkloads, IoBurstCompletesWithSinkBuffers) {
  IoBurstParams params;
  params.bb_ratio = 8;
  params.checkpoint_bytes = 64 * 1024;
  params.chunk_bytes = 8 * 1024;
  params.period = 50 * kUs;
  params.iterations = 2;
  TinyRun run(std::make_unique<IoBurstMotif>(params), 32);
  EXPECT_TRUE(run.report.completed);
}

/// Every write goes to a buffer rank; compute ranks never receive traffic.
TEST(ExtendedWorkloads, IoBurstWritesTargetOnlyBufferRanks) {
  IoBurstParams params;
  params.bb_ratio = 8;
  params.checkpoint_bytes = 32 * 1024;
  params.chunk_bytes = 8 * 1024;
  params.period = 50 * kUs;
  params.iterations = 2;
  TinyRun run(std::make_unique<IoBurstMotif>(params), 32);
  ASSERT_TRUE(run.report.completed);
  const auto& trace = run.study->trace(run.app);
  const int buffers = 32 / 8;
  ASSERT_GT(trace.size(), 0u);
  for (const auto& record : trace.records()) {
    EXPECT_LT(record.dst_rank, buffers);
    EXPECT_GE(record.src_rank, buffers);
  }
  // Chunking: 32KB checkpoint in 8KB chunks = 4 writes per rank per period.
  EXPECT_EQ(trace.size(), static_cast<std::size_t>((32 - buffers) * 4 * params.iterations));
}

/// The §IV intensity axes: MILC's peak ingress (burst of halo sends) must
/// sit far below LQCD's (12x larger messages, same neighbour count), and
/// IOBurst's peak ingress (a whole checkpoint posted back-to-back) must
/// dwarf both.
TEST(ExtendedWorkloads, IntensityMetricsOrderAsDesigned) {
  MilcParams milc_params;
  milc_params.dims = {2, 2, 2, 2};
  milc_params.iterations = 2;
  TinyRun milc(std::make_unique<MilcMotif>(milc_params), 16);

  IoBurstParams io_params;
  io_params.bb_ratio = 8;
  io_params.checkpoint_bytes = 2 * 1024 * 1024;
  io_params.chunk_bytes = 64 * 1024;
  io_params.window = 64;  // whole checkpoint posted as one ingress burst
  io_params.period = 100 * kUs;
  io_params.iterations = 2;
  TinyRun io(std::make_unique<IoBurstMotif>(io_params), 32);

  ASSERT_TRUE(milc.report.completed);
  ASSERT_TRUE(io.report.completed);
  const double milc_peak = milc.report.apps[0].peak_ingress_bytes;
  const double io_peak = io.report.apps[0].peak_ingress_bytes;
  // MILC halo burst: 4 neighbours x 48KB = 192KB on the tiny grid.
  EXPECT_GT(milc_peak, 100.0 * 1024);
  EXPECT_LT(milc_peak, 400.0 * 1024);
  // IOBurst: the full 2MB checkpoint is one consecutive-send burst.
  EXPECT_GT(io_peak, 1.5 * 1024 * 1024);
  EXPECT_GT(io_peak, milc_peak * 4);
}

/// Co-run sanity: MILC + IOBurst on the tiny system complete under every
/// paper routing; MILC (latency-bound CG chain) is the interfered party.
TEST(ExtendedWorkloads, MilcIoBurstCoRunCompletes) {
  for (const std::string routing : {"PAR", "Q-adp"}) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = routing;
    config.seed = 13;
    Study study(config);
    MilcParams milc_params;
    milc_params.dims = {2, 2, 2, 2};
    milc_params.iterations = 2;
    study.add_motif(std::make_unique<MilcMotif>(milc_params), 16, "MILC");
    IoBurstParams io_params;
    io_params.bb_ratio = 8;
    io_params.checkpoint_bytes = 512 * 1024;
    io_params.chunk_bytes = 64 * 1024;
    io_params.period = 100 * kUs;
    io_params.iterations = 2;
    study.add_motif(std::make_unique<IoBurstMotif>(io_params), 32, "IOBurst");
    const Report report = study.run();
    EXPECT_TRUE(report.completed) << routing;
  }
}

}  // namespace
}  // namespace dfly

#!/usr/bin/env bash
# Crash-safety smoke: SIGKILL a journaled campaign mid-run, `--resume` it,
# and require the reassembled JSON Lines output to be byte-identical to an
# uninterrupted reference run — the full journal/truncate/resume path under a
# real hard kill, not an in-process emulation. Invoked by the
# kill_resume_smoke CTest as
#   kill_resume_smoke.sh <dflysim> <examples/fig4_campaign.cfg> <work dir>
#
# The campaign is trimmed via --set to a 6-cell slice (one target, six
# backgrounds at scale 64): enough cells that the kill lands mid-campaign,
# small enough for CI.
set -u

DFLYSIM=$1
CAMPAIGN=$2
WORK=$3

ARGS=(--plan="$CAMPAIGN"
      --set=plan.routings=MIN
      --set=plan.targets=FFT3D
      --set=plan.backgrounds=None,UR,LU,FFT3D,CosmoFlow,DL
      --set=scale=64
      --jobs=2)

REF=$WORK/kill_resume_ref.jsonl
OUT=$WORK/kill_resume.jsonl
JOURNAL=$WORK/kill_resume.journal
rm -f "$REF" "$OUT" "$JOURNAL"

echo "== reference run (uninterrupted, no journal) =="
"$DFLYSIM" "${ARGS[@]}" --jsonl="$REF" >/dev/null || {
  echo "FAIL: reference run exited $?"
  exit 1
}

echo "== journaled run, killed with SIGKILL mid-campaign =="
"$DFLYSIM" "${ARGS[@]}" --jsonl="$OUT" --journal="$JOURNAL" >/dev/null &
PID=$!

# Wait until at least one cell is durably journaled, then kill -9. If the
# campaign wins the race and finishes first, the resume below degenerates to
# a no-op replay — still a valid (if weaker) check, so just note it.
for _ in $(seq 1 3000); do
  [ -s "$JOURNAL" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -9 "$PID" 2>/dev/null; then
  echo "killed pid $PID after $(wc -l <"$JOURNAL" 2>/dev/null || echo 0) journaled cells"
else
  echo "note: campaign finished before the kill landed; resume is a pure replay"
fi
wait "$PID" 2>/dev/null

echo "== resume =="
"$DFLYSIM" "${ARGS[@]}" --jsonl="$OUT" --journal="$JOURNAL" --resume || {
  echo "FAIL: resume run exited $?"
  exit 1
}

if cmp "$OUT" "$REF"; then
  echo "PASS: resumed campaign JSONL is byte-identical to the uninterrupted run"
else
  echo "FAIL: resumed campaign JSONL differs from the uninterrupted reference"
  exit 1
fi

#include "viz/ascii.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace dfly::viz {

namespace {

const char* const kBlocks[8] = {
    "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};

const char* const kShades[10] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};

struct Range {
  double lo{std::numeric_limits<double>::max()};
  double hi{std::numeric_limits<double>::lowest()};

  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool flat() const { return hi <= lo; }
  double norm(double v) const { return flat() ? 0.0 : (v - lo) / (hi - lo); }
};

}  // namespace

std::string sparkline(const std::vector<double>& values) {
  if (values.empty()) return "";
  Range range;
  for (const double v : values) range.add(v);
  std::string out;
  out.reserve(values.size() * 3);
  for (const double v : values) {
    const int level =
        std::min(7, static_cast<int>(range.norm(v) * 8.0));
    out += kBlocks[level < 0 ? 0 : level];
  }
  return out;
}

std::string ascii_heatmap(const std::vector<std::vector<double>>& rows) {
  Range range;
  for (const auto& row : rows) {
    for (const double v : row) range.add(v);
  }
  std::string out;
  for (const auto& row : rows) {
    for (const double v : row) {
      const int level = std::min(9, static_cast<int>(range.norm(v) * 10.0));
      out += kShades[level < 0 ? 0 : level];
    }
    out += '\n';
  }
  return out;
}

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& items, int width) {
  if (width < 1) throw std::invalid_argument("ascii_bars: width must be positive");
  std::size_t label_w = 0;
  double vmax = 0;
  for (const auto& [label, value] : items) {
    label_w = std::max(label_w, label.size());
    vmax = std::max(vmax, value);
  }
  if (vmax <= 0) vmax = 1;
  std::string out;
  for (const auto& [label, value] : items) {
    out += label;
    out.append(label_w - label.size() + 1, ' ');
    const int len = static_cast<int>(value / vmax * width + 0.5);
    for (int i = 0; i < len; ++i) out += "#";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " %.3f", value);
    out += buffer;
    out += '\n';
  }
  return out;
}

AsciiTable::AsciiTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("AsciiTable: need at least one column");
}

void AsciiTable::row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("AsciiTable: cell count != column count");
  }
  rows_.push_back(std::move(cells));
}

void AsciiTable::row(const std::string& head, const std::vector<double>& values,
                     int precision) {
  std::vector<std::string> cells{head};
  char buffer[48];
  for (const double v : values) {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    cells.emplace_back(buffer);
  }
  row(std::move(cells));
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& cells : rows_) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {  // left-align the head column
        line += cells[c];
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += cells[c];
      }
      line += c + 1 < cells.size() ? "  " : "";
    }
    line += '\n';
    return line;
  };
  std::string out = emit_row(columns_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& cells : rows_) out += emit_row(cells);
  return out;
}

}  // namespace dfly::viz

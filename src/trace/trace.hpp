#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/job.hpp"
#include "sim/time.hpp"

/// Message-trace recording, serialization and summary statistics.
///
/// The paper's §III motivates simulation over tracing ("the data collected
/// in the trace is limited to the given application") but still builds on
/// trace-shaped data: the enhanced IO module records every packet, and the
/// motifs themselves are distilled from application communication traces
/// (LULESH via Durango/AutomaDeD analyses). This module closes the loop:
///
///  - `MessageTrace` records every application-level send of a job through
///    the mpi::SendObserver hook (protocol control traffic excluded);
///  - traces round-trip to CSV so external tools (or other simulators) can
///    consume them;
///  - `ReplayMotif` re-injects a recorded trace as a workload — with the
///    recorded pacing or as fast as the network admits — turning any live
///    run into a reusable, deterministic benchmark input;
///  - `TraceSummary` computes the paper's two intensity metrics (§IV:
///    message injection rate, peak ingress volume) straight from a trace.
namespace dfly::trace {

/// One application-level message post.
struct MessageRecord {
  SimTime when{0};  ///< post time (simulation clock of the recorded run)
  std::int32_t src_rank{0};
  std::int32_t dst_rank{0};
  std::int64_t bytes{0};
  std::int32_t tag{0};

  bool operator==(const MessageRecord&) const = default;
};

/// Aggregate statistics of a trace (per-application view, §IV metrics).
struct TraceSummary {
  std::uint64_t messages{0};
  std::int64_t total_bytes{0};
  int num_ranks{0};          ///< max rank id seen + 1
  SimTime first_post{0};
  SimTime last_post{0};
  double duration_ms{0};
  double injection_rate_gbs{0};  ///< total bytes / duration
  std::int64_t largest_message{0};
  /// Largest back-to-back byte run a single rank posted without a gap of
  /// more than `burst_gap` (peak ingress volume, §IV metric 2).
  std::int64_t peak_ingress_bytes{0};
};

/// An append-only record of every application-level send of one job.
class MessageTrace final : public mpi::SendObserver {
 public:
  MessageTrace() = default;

  // --- recording -------------------------------------------------------------
  void on_post_send(int app_id, SimTime when, int src_rank, int dst_rank, std::int64_t bytes,
                    int tag) override;

  void add(MessageRecord record) { records_.push_back(record); }
  void clear() { records_.clear(); }

  // --- access ----------------------------------------------------------------
  const std::vector<MessageRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Records posted by `src_rank`, in post order.
  std::vector<MessageRecord> rank_records(int src_rank) const;

  /// Ranks that appear as a source, max+1 (0 for an empty trace).
  int num_ranks() const;

  /// §IV intensity metrics and volume totals. `burst_gap` is the largest
  /// inter-post gap that still counts as the same ingress burst.
  TraceSummary summary(SimTime burst_gap = 1 * kUs) const;

  // --- serialization -----------------------------------------------------------
  /// CSV with header `when_ps,src_rank,dst_rank,bytes,tag`.
  void save_csv(const std::string& path) const;
  static MessageTrace load_csv(const std::string& path);

 private:
  std::vector<MessageRecord> records_;
};

/// Replays a recorded trace as a workload.
struct ReplayParams {
  /// Honour recorded inter-post gaps (scaled by `speed`); false = post each
  /// rank's messages back-to-back as fast as the window drains.
  bool preserve_timing{true};
  /// Time compression factor: 2.0 replays at twice the recorded pace.
  double speed{1.0};
  /// Outstanding-send window per rank.
  int window{64};
};

/// Each rank re-posts exactly the sends it recorded; receivers run in sink
/// mode (replay reproduces traffic, not receive-side consumption order).
class ReplayMotif final : public mpi::Motif {
 public:
  ReplayMotif(const MessageTrace& trace, ReplayParams params = {});

  std::string name() const override { return "Replay"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;

  const ReplayParams& params() const { return params_; }
  /// Ranks required to cover every recorded source.
  int required_ranks() const { return static_cast<int>(by_rank_.size()); }

 private:
  std::vector<std::vector<MessageRecord>> by_rank_;
  ReplayParams params_;
  SimTime base_time_{0};
};

}  // namespace dfly::trace

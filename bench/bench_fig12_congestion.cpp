// Figure 12: heat map of the congestion index under the mixed workload —
// global-link cells (src group, dst group) off-diagonal and local-link
// cells on the diagonal. PAR shows a dark diagonal plus hot rows/columns;
// Q-adaptive is flat. Printed as CSV rows for plotting plus summary stats,
// an ASCII shade map, and fig12_<routing>.svg heat maps (viz/charts.hpp).
// The two runs execute concurrently.

#include <string>

#include "bench_common.hpp"
#include "core/mixed.hpp"
#include "stats/congestion.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"

namespace {

using namespace dfly;

std::string run_case(const StudyConfig& config) {
  Study study(config);
  add_mixed_workload(study);
  const Report report = study.run();
  const CongestionMatrix matrix = congestion_matrix(
      study.topo(), study.network().link_stats(), report.makespan, config.net.link_gbps);

  std::string out = "\n[" + config.routing + "] matrix csv (row = src group, col = dst group):\n";
  char cell[32];
  for (int s = 0; s < matrix.num_groups(); ++s) {
    for (int d = 0; d < matrix.num_groups(); ++d) {
      std::snprintf(cell, sizeof cell, "%s%.4f", d == 0 ? "" : ",", matrix.cell(s, d));
      out += cell;
    }
    out += '\n';
  }
  // ASCII shade map + SVG heat map of the same matrix.
  std::vector<std::vector<double>> rows(static_cast<std::size_t>(matrix.num_groups()));
  for (int s_row = 0; s_row < matrix.num_groups(); ++s_row) {
    for (int d = 0; d < matrix.num_groups(); ++d) {
      rows[static_cast<std::size_t>(s_row)].push_back(matrix.cell(s_row, d));
    }
  }
  out += "shade map:\n" + viz::ascii_heatmap(rows);
  viz::Heatmap svg_map("Fig 12 congestion index — " + config.routing, "dst group",
                       "src group");
  svg_map.set_matrix(rows);
  svg_map.save("fig12_" + config.routing + ".svg");
  out += "wrote fig12_" + config.routing + ".svg\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "summary %s mean %.4f local_mean %.4f global_mean %.4f max %.4f imbalance %.3f\n",
                config.routing.c_str(), matrix.mean(), matrix.mean_local(),
                matrix.mean_global(), matrix.max(), matrix.imbalance_global());
  out += line;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  std::vector<std::function<std::string()>> tasks;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    const StudyConfig config = options.config(routing);
    tasks.push_back([config] { return run_case(config); });
  }
  const auto blocks = bench::parallel_map(tasks);
  bench::print_header("Figure 12 — congestion-index matrix under the mixed workload");
  for (const auto& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("\nExpected shape (paper): PAR darker overall with a clear diagonal and\n"
              "hot rows/columns (imbalance high); Q-adp flat and lighter.\n");
  return 0;
}

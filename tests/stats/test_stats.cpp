#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/link.hpp"
#include "stats/congestion.hpp"
#include "stats/histogram.hpp"
#include "stats/io_module.hpp"
#include "stats/link_stats.hpp"
#include "stats/packet_log.hpp"
#include "stats/timeseries.hpp"

namespace dfly {
namespace {

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0);
}

TEST(Histogram, ExactOrderStatistics) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.add(i);  // 1..100 reversed
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.median(), 50);
  EXPECT_EQ(h.p95(), 95);
  EXPECT_EQ(h.p99(), 99);
}

TEST(Histogram, PercentileBoundaries) {
  Histogram h;
  h.add(7);
  EXPECT_EQ(h.percentile(0.0), 7);
  EXPECT_EQ(h.percentile(1.0), 7);
  EXPECT_EQ(h.median(), 7);
}

TEST(Histogram, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.add(i);
  for (int i = 51; i <= 100; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.median(), 50);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(42);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Accumulator, TracksMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(TimeSeries, BucketsAccumulate) {
  TimeSeries ts(10);
  ts.add(0, 1.0);
  ts.add(9, 2.0);
  ts.add(10, 4.0);
  ts.add(25, 8.0);
  EXPECT_EQ(ts.num_buckets(), 3u);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 4.0);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 8.0);
  EXPECT_DOUBLE_EQ(ts.total(), 15.0);
}

TEST(TimeSeries, PeakFindsMaxBucket) {
  TimeSeries ts(10);
  ts.add(5, 1.0);
  ts.add(15, 9.0);
  ts.add(25, 3.0);
  const auto peak = ts.peak();
  EXPECT_DOUBLE_EQ(peak.value, 9.0);
  EXPECT_EQ(peak.when, 10);
}

TEST(TimeSeries, MeanRateBetween) {
  TimeSeries ts(10);
  ts.add(0, 10.0);
  ts.add(10, 20.0);
  ts.add(20, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_rate_between(0, 20), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_rate_between(10, 30), 25.0);
  EXPECT_DOUBLE_EQ(ts.mean_rate_between(5, 5), 0.0);
}

TEST(PacketLog, RecordsPerAppAndSystem) {
  PacketLog log(2, /*keep_records=*/true, 10);
  PacketRecord r;
  r.app_id = 0;
  r.wire_time = 0;
  r.eject_time = 100;
  r.bytes = 512;
  log.record(r);
  r.app_id = 1;
  r.eject_time = 300;
  log.record(r);
  EXPECT_EQ(log.delivered_packets(0), 1u);
  EXPECT_EQ(log.delivered_packets(1), 1u);
  EXPECT_EQ(log.latency(0).median(), 100);
  EXPECT_EQ(log.latency(1).median(), 300);
  EXPECT_EQ(log.system_latency().count(), 2u);
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_DOUBLE_EQ(log.system_delivered().total(), 1024.0);
}

TEST(PacketLog, LatencyBetweenFiltersWindow) {
  PacketLog log(1, true, 10);
  for (SimTime t : {100, 200, 300, 400}) {
    PacketRecord r;
    r.app_id = 0;
    r.wire_time = t - 50;
    r.eject_time = t;
    r.bytes = 1;
    log.record(r);
  }
  const Histogram window = log.latency_between(0, 150, 350);
  EXPECT_EQ(window.count(), 2u);
}

TEST(LinkStats, TrafficAndStallAccounting) {
  LinkStats stats(3, 2);
  stats.set_link_info(0, LinkClass::kLocal, 0, 1);
  stats.set_link_info(1, LinkClass::kGlobal, 0, 8);
  stats.set_link_info(2, LinkClass::kTerminal, 0, 0);
  stats.add_traffic(0, 0, 512);
  stats.add_traffic(0, 1, 256);
  stats.add_stall(1, 1000);
  stats.add_stall(1, 500);
  EXPECT_EQ(stats.bytes(0), 768);
  EXPECT_EQ(stats.bytes_by_app(0, 0), 512);
  EXPECT_EQ(stats.bytes_by_app(0, 1), 256);
  EXPECT_EQ(stats.packets(0), 2u);
  EXPECT_EQ(stats.stall(1), 1500);
  EXPECT_EQ(stats.total_stall(LinkClass::kGlobal), 1500);
  EXPECT_EQ(stats.total_stall(LinkClass::kLocal), 0);
  EXPECT_EQ(stats.total_bytes(LinkClass::kLocal), 768);
}

TEST(Congestion, UniformTrafficYieldsFlatMatrix) {
  const Dragonfly topo(DragonflyParams::tiny());
  const LinkMap links(topo);
  LinkStats stats(links.total_links(), 1);
  // Mark link info like Network does and put equal bytes on all non-terminal.
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int port = 0; port < topo.radix(); ++port) {
      const int link = links.router_out(r, port);
      if (topo.is_terminal_port(port)) {
        stats.set_link_info(link, LinkClass::kTerminal, r, r);
      } else {
        const auto wire = topo.wire(r, port);
        stats.set_link_info(link, LinkMap::port_class(topo, port), r, wire.peer_router);
        stats.add_traffic(link, 0, 1000);
      }
    }
  }
  const CongestionMatrix m = congestion_matrix(topo, stats, 1000 * kNs, 200.0);
  EXPECT_GT(m.mean(), 0.0);
  EXPECT_NEAR(m.imbalance_global(), 0.0, 1e-9);
  EXPECT_NEAR(m.max(), m.mean(), 1e-9);
}

TEST(Congestion, GroupStallSplitsLocalAndGlobal) {
  const Dragonfly topo(DragonflyParams::tiny());
  const LinkMap links(topo);
  LinkStats stats(links.total_links(), 1);
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int port = 0; port < topo.radix(); ++port) {
      const int link = links.router_out(r, port);
      if (topo.is_terminal_port(port)) {
        stats.set_link_info(link, LinkClass::kTerminal, r, r);
        continue;
      }
      const auto wire = topo.wire(r, port);
      stats.set_link_info(link, LinkMap::port_class(topo, port), r, wire.peer_router);
    }
  }
  stats.add_stall(links.router_out(0, topo.first_local_port()), kMs);
  stats.add_stall(links.router_out(0, topo.first_global_port()), 2 * kMs);
  const GroupStall gs = group_stall(topo, stats);
  EXPECT_DOUBLE_EQ(gs.local_ms[0], 1.0);
  double global_total = 0;
  for (const auto& row : gs.global_ms) {
    for (const double v : row) global_total += v;
  }
  EXPECT_DOUBLE_EQ(global_total, 2.0);
}

TEST(CsvWriter, CoalescesAndFlushes) {
  const std::string path = "/tmp/dfly_test_csv.csv";
  {
    CsvWriter csv(path, {"a", "b"}, /*coalesce_rows=*/100);
    csv.row(std::vector<double>{1.0, 2.0});
    csv.row(std::vector<double>{3.5, 4.25});
  }  // destructor flushes
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "3.5,4.25");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsArityMismatch) {
  CsvWriter csv("/tmp/dfly_test_csv2.csv", {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}), std::invalid_argument);
  std::remove("/tmp/dfly_test_csv2.csv");
}

}  // namespace
}  // namespace dfly

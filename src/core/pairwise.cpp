#include "core/pairwise.hpp"

#include <utility>

#include "core/plan.hpp"

namespace dfly {

PairwiseResult run_pairwise(const StudyConfig& config, const std::string& target,
                            const std::string& background) {
  Study study(config);
  const int half = study.topo().num_nodes() / 2;
  const int target_id = study.add_app(target, half);
  int background_id = -1;
  if (background != "None" && !background.empty()) {
    background_id = study.add_app(background, half);
  }
  PairwiseResult result;
  result.full = study.run();
  result.routing = config.routing;
  result.target = target;
  result.background = background.empty() ? "None" : background;
  result.target_report = result.full.apps[static_cast<std::size_t>(target_id)];
  if (background_id >= 0) {
    result.background_report = result.full.apps[static_cast<std::size_t>(background_id)];
  }
  return result;
}

std::vector<PairwiseResult> run_pairwise_cells(const StudyConfig& base,
                                               const std::vector<PairwiseCell>& cells,
                                               int jobs) {
  // Shim over the unified campaign core: the explicit cell list becomes a
  // pairwise plan (pairwise_list preserves the caller's ordering verbatim),
  // and the PairwiseResult views are reconstructed from the full Reports —
  // the target is always app 0 and the background, when present, app 1,
  // exactly as run_pairwise builds them.
  ExperimentPlan plan;
  plan.name = "pairwise_cells";
  plan.base = base;
  plan.mode = PlanMode::kPairwise;
  plan.pairwise_list = cells;
  CollectSink sink;
  // Legacy fail-fast contract: callers of this shim predate cell isolation
  // and expect the first cell exception to propagate.
  run_plan(plan, sink, jobs).rethrow_any();
  std::vector<Report> reports = sink.take_reports();

  std::vector<PairwiseResult> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    PairwiseResult& result = results[i];
    result.full = std::move(reports[i]);
    result.routing = cells[i].routing.empty() ? base.routing : cells[i].routing;
    result.target = cells[i].target;
    result.background = cells[i].background.empty() ? "None" : cells[i].background;
    result.target_report = result.full.apps.at(0);
    if (result.full.apps.size() > 1) result.background_report = result.full.apps[1];
  }
  return results;
}

const std::vector<std::string>& fig4_targets() {
  static const std::vector<std::string> targets{"FFT3D", "LU",        "LQCD",
                                                "CosmoFlow", "Stencil5D", "LULESH"};
  return targets;
}

const std::vector<std::string>& fig4_backgrounds() {
  static const std::vector<std::string> backgrounds{"None", "UR",        "LU", "FFT3D",
                                                    "CosmoFlow", "DL", "Halo3D"};
  return backgrounds;
}

}  // namespace dfly

#pragma once

#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

/// Job placement policies studied in the interference literature.
/// The paper uses random placement throughout (§V); contiguous and linear are
/// provided for the placement-ablation benches.
enum class PlacementPolicy {
  kRandom,      ///< uniformly random free nodes (paper default)
  kContiguous,  ///< pack jobs group by group (isolation, fragmentation-prone)
  kLinear,      ///< first free nodes in id order
};

const char* to_string(PlacementPolicy policy);
PlacementPolicy placement_from_string(const std::string& name);
/// Every policy name placement_from_string accepts, in enum order (the
/// single source for --list-placements and plan-axis validation).
const std::vector<std::string>& all_placements();

/// Allocates nodes to jobs one request at a time over a fixed machine.
/// Deterministic given the Rng state.
///
/// `candidate_pool` (optional, blueprint-shared) is the machine's full node
/// enumeration in id order — exactly what the free-list scan produces on a
/// pristine machine — so the first allocation copies the shared pool instead
/// of re-deriving it. Chosen nodes are identical with or without the pool.
class Placer {
 public:
  Placer(const Dragonfly& topo, PlacementPolicy policy, Rng rng,
         const std::vector<int>* candidate_pool = nullptr);

  /// Allocate `count` nodes; returns the node ids in rank order.
  /// Throws std::runtime_error when not enough nodes are free.
  std::vector<int> allocate(int count);

  /// Release previously allocated nodes.
  void release(const std::vector<int>& nodes);

  int free_nodes() const { return free_count_; }

 private:
  const Dragonfly* topo_;
  PlacementPolicy policy_;
  Rng rng_;
  const std::vector<int>* candidate_pool_;  ///< full node list, id order (may be null)
  std::vector<bool> used_;
  int free_count_;
};

}  // namespace dfly

#include "topo/path.hpp"

#include <cassert>

namespace dfly {

void PathOracle::append_minimal(RouterPath& path, int to, Rng* rng) const {
  const Dragonfly& t = *topo_;
  int cur = path.back();
  if (cur == to) return;
  const int src_grp = t.group_of_router(cur);
  const int dst_grp = t.group_of_router(to);
  if (src_grp == dst_grp) {
    path.push_back(to);  // one local hop
    return;
  }
  const auto& gw = t.gateways(src_grp, dst_grp);
  assert(!gw.empty() && "groups must be connected");
  // Prefer a gateway co-located with `cur` to keep the path at <= 3 hops.
  const GlobalEndpoint* chosen = nullptr;
  std::vector<const GlobalEndpoint*> here;
  for (const auto& e : gw) {
    if (e.router == cur) here.push_back(&e);
  }
  if (!here.empty()) {
    chosen = rng != nullptr ? here[rng->next_below(here.size())] : here.front();
  } else {
    chosen = rng != nullptr ? &gw[rng->next_below(gw.size())] : &gw.front();
    path.push_back(chosen->router);  // local hop to the gateway
  }
  const GlobalEndpoint far = t.global_peer(chosen->router, chosen->global_port);
  path.push_back(far.router);  // global hop
  if (far.router != to) path.push_back(to);  // local hop in destination group
}

RouterPath PathOracle::minimal(int src_router, int dst_router, Rng* rng) const {
  RouterPath path{src_router};
  append_minimal(path, dst_router, rng);
  return path;
}

RouterPath PathOracle::valiant(int src_router, int dst_router, int int_group,
                               int int_router, Rng* rng) const {
  const Dragonfly& t = *topo_;
  RouterPath path{src_router};
  const int src_grp = t.group_of_router(src_router);
  const int dst_grp = t.group_of_router(dst_router);
  if (int_group != src_grp && int_group != dst_grp) {
    if (int_router >= 0) {
      assert(t.group_of_router(int_router) == int_group);
      append_minimal(path, int_router, rng);
    } else {
      // Land anywhere in the intermediate group: route to the gateway's far
      // end (one local hop at most to reach a gateway, then the global hop).
      const auto& gw = t.gateways(src_grp, int_group);
      assert(!gw.empty());
      const GlobalEndpoint* e = nullptr;
      for (const auto& cand : gw) {
        if (cand.router == src_router) {
          e = &cand;
          break;
        }
      }
      if (e == nullptr) e = rng != nullptr ? &gw[rng->next_below(gw.size())] : &gw.front();
      if (e->router != path.back()) path.push_back(e->router);
      const GlobalEndpoint far = t.global_peer(e->router, e->global_port);
      path.push_back(far.router);
    }
  }
  append_minimal(path, dst_router, rng);
  return path;
}

int PathOracle::count_minimal(int src_router, int dst_router) const {
  const Dragonfly& t = *topo_;
  if (src_router == dst_router) return 1;
  const int sg = t.group_of_router(src_router);
  const int dg = t.group_of_router(dst_router);
  if (sg == dg) return 1;
  return static_cast<int>(t.gateways(sg, dg).size());
}

int PathOracle::minimal_hops(int src_router, int dst_router) const {
  const Dragonfly& t = *topo_;
  if (src_router == dst_router) return 0;
  const int sg = t.group_of_router(src_router);
  const int dg = t.group_of_router(dst_router);
  if (sg == dg) return 1;
  const auto& gw = t.gateways(sg, dg);
  int best = 3;
  for (const auto& e : gw) {
    const GlobalEndpoint far = t.global_peer(e.router, e.global_port);
    int hops = 1;                            // the global hop
    if (e.router != src_router) ++hops;      // local hop to gateway
    if (far.router != dst_router) ++hops;    // local hop at destination
    if (hops < best) best = hops;
  }
  return best;
}

}  // namespace dfly

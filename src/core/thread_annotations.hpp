#pragma once

/// Clang Thread Safety Analysis annotation macros.
///
/// These macros wrap Clang's `-Wthread-safety` attributes so that lock
/// discipline — which mutex guards which field, which functions must (or must
/// not) be called with a lock held — is part of a declaration and checked at
/// COMPILE TIME, not just exercised at runtime by the TSan CI leg. On any
/// compiler without the attributes (GCC builds the default CI matrix) every
/// macro expands to nothing, so annotated headers stay portable.
///
/// The vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///  - CAPABILITY("mutex")   on a class: instances are lockable capabilities.
///  - GUARDED_BY(mu)        on a field: reads and writes require holding mu.
///  - PT_GUARDED_BY(mu)     on a pointer field: the pointee requires mu.
///  - REQUIRES(mu)          on a function: callers must already hold mu.
///  - ACQUIRE(mu)/RELEASE(mu) on functions that take / drop the lock.
///  - EXCLUDES(mu)          on a function: callers must NOT hold mu (catches
///                          self-deadlock on non-recursive mutexes).
///  - SCOPED_CAPABILITY     on RAII lock holders (see core/mutex.hpp).
///  - NO_THREAD_SAFETY_ANALYSIS escape hatch — always pair with a comment
///                          saying why the analysis cannot see the invariant.
///
/// The `static-analysis` CI job compiles the tree with clang and
/// `-Wthread-safety -Wthread-safety-beta` promoted to errors, so deleting a
/// lock acquisition around any GUARDED_BY field breaks the build. See
/// docs/STATIC_ANALYSIS.md for how the layers (annotations, TSan, dfsim-lint,
/// clang-tidy) divide the work.

#if defined(__clang__) && !defined(SWIG)
#define DFSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DFSIM_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no TSA attributes
#endif

#define CAPABILITY(x) DFSIM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY DFSIM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) DFSIM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) DFSIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) DFSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DFSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) DFSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) DFSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) DFSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) DFSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DFSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) DFSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) DFSIM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) DFSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) DFSIM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DFSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DFSIM_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) DFSIM_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) DFSIM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS DFSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

#include "workloads/motifs.hpp"

namespace dfly::workloads {

mpi::Task AllreducePeriodicMotif::run(mpi::RankCtx& ctx) const {
  // Synchronous data-parallel training: a long compute phase (forward +
  // backward pass) followed by a model-update Allreduce. The compute phase
  // masks co-runner interference (paper §V-D).
  for (int iter = 0; iter < p_.iterations; ++iter) {
    co_await ctx.compute(p_.interval);
    co_await mpi::coll::allreduce(ctx, p_.msg_bytes, p_.algorithm);
    ctx.mark_iteration();
  }
}

AllreducePeriodicParams AllreducePeriodicMotif::cosmoflow() {
  // Paper §IV: 28.15MB Allreduce every 129ms, both scaled down 25x to keep
  // the intrinsic communication intensity at a comparable execution time:
  // 1.126MB every 5.16ms, two rounds ~= 13.65ms, 2.37GB total (Table I).
  AllreducePeriodicParams p;
  p.label = "CosmoFlow";
  p.msg_bytes = 1126000;
  p.iterations = 2;
  p.interval = 5160 * kUs;
  p.min_iterations = 2;
  return p;
}

AllreducePeriodicParams AllreducePeriodicMotif::dl() {
  // Heavier distributed-training proxy: same message size, ~4.7x higher
  // injection rate via a much shorter compute interval (Table I: 819 GB/s).
  AllreducePeriodicParams p;
  p.label = "DL";
  p.msg_bytes = 1126000;
  p.iterations = 8;
  p.interval = 430 * kUs;
  p.min_iterations = 2;
  return p;
}

}  // namespace dfly::workloads

#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"

namespace dfly {

/// One entry of the paper's Table II mixed workload.
struct MixedJobSpec {
  std::string app;
  int nodes;
};

/// The paper's Table II mix: six applications filling all 1,056 nodes.
const std::vector<MixedJobSpec>& table2_mix();

/// Build a Study pre-loaded with the Table II mix (caller runs it).
/// App ids follow table2_mix() order.
void add_mixed_workload(Study& study);

/// Run the full mixed-workload experiment for one routing.
Report run_mixed(const StudyConfig& config);

/// Baseline for Fig 10's "none" bars: the same Table II allocation sequence
/// (so `solo_app` keeps the exact node mapping it has in the mix) but every
/// other job is replaced by an immediately-terminating placeholder, leaving
/// `solo_app` alone on the network.
Report run_mixed_solo(const StudyConfig& config, const std::string& solo_app);

/// Everything one Fig 10 panel column needs for one routing: the full
/// Table II mix plus each application's solo baseline (table2_mix order).
struct MixedSuite {
  Report mix;
  std::vector<Report> solos;
};

/// Run the mix and all solo baselines for every config, sharding the
/// independent cells across worker threads (ParallelRunner semantics:
/// jobs > 0 = exact count, 0 = DFSIM_JOBS or sequential). Suites are
/// returned in config order; results are independent of worker count.
///
/// Deprecated-but-working shim: now a thin builder over the unified
/// campaign core (core/plan.hpp — a mixed ExperimentPlan whose config_list
/// is `configs`). New code should build an ExperimentPlan directly and use
/// run_plan.
std::vector<MixedSuite> run_mixed_suites(const std::vector<StudyConfig>& configs, int jobs = 0);

}  // namespace dfly

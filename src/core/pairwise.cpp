#include "core/pairwise.hpp"

#include "core/parallel.hpp"

namespace dfly {

PairwiseResult run_pairwise(const StudyConfig& config, const std::string& target,
                            const std::string& background) {
  Study study(config);
  const int half = study.topo().num_nodes() / 2;
  const int target_id = study.add_app(target, half);
  int background_id = -1;
  if (background != "None" && !background.empty()) {
    background_id = study.add_app(background, half);
  }
  PairwiseResult result;
  result.full = study.run();
  result.routing = config.routing;
  result.target = target;
  result.background = background.empty() ? "None" : background;
  result.target_report = result.full.apps[static_cast<std::size_t>(target_id)];
  if (background_id >= 0) {
    result.background_report = result.full.apps[static_cast<std::size_t>(background_id)];
  }
  return result;
}

std::vector<PairwiseResult> run_pairwise_cells(const StudyConfig& base,
                                               const std::vector<PairwiseCell>& cells,
                                               int jobs) {
  std::vector<PairwiseResult> results(cells.size());
  ParallelRunner(jobs).run_indexed(cells.size(), [&](std::size_t i) {
    const PairwiseCell& cell = cells[i];
    StudyConfig config = base;
    if (!cell.routing.empty()) config.routing = cell.routing;
    results[i] = run_pairwise(config, cell.target, cell.background);
  });
  return results;
}

const std::vector<std::string>& fig4_targets() {
  static const std::vector<std::string> targets{"FFT3D", "LU",        "LQCD",
                                                "CosmoFlow", "Stencil5D", "LULESH"};
  return targets;
}

const std::vector<std::string>& fig4_backgrounds() {
  static const std::vector<std::string> backgrounds{"None", "UR",        "LU", "FFT3D",
                                                    "CosmoFlow", "DL", "Halo3D"};
  return backgrounds;
}

}  // namespace dfly

// Ablation: application-aware routing bias (De Sensi SC'19) vs plain UGAL
// and Q-adaptive routing.
//
// §II-C lists application-aware routing — dynamically adjusting the adaptive
// routing bias per application — as a competing interference mitigation. Our
// AppAware policy classifies each application by its share of injected bytes
// per window: heavy apps are biased non-minimal (spread their load), light
// apps are biased minimal (protect their latency). This bench replays the
// paper's two tellings pairwise cases and reports how the per-app bias moves
// victim and aggressor relative to plain UGALn and to Q-adaptive routing.
//
// Expected shape: AppAware sits between UGALn and Q-adp for the victim's
// comm time — the static heuristic recovers part of the interference
// without learning, and the aggressor pays little because it is
// bandwidth-bound (extra hops do not reduce delivered throughput).

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double victim_ms{0};
  double victim_p99_us{0};
  double victim_nonmin{0};
  double aggressor_ms{0};
  double aggressor_nonmin{0};
};

Outcome run_pair(const StudyConfig& config, const std::string& victim_app,
                 const std::string& aggressor_app) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  const int victim = study.add_app(victim_app, half);
  const int aggressor = study.add_app(aggressor_app, half);
  const Report report = study.run();
  const AppReport& v = report.apps[static_cast<std::size_t>(victim)];
  const AppReport& a = report.apps[static_cast<std::size_t>(aggressor)];
  return Outcome{v.comm_mean_ms, v.lat_p99_us, v.nonminimal_fraction, a.comm_mean_ms,
                 a.nonminimal_fraction};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  bench::print_header("ABLATION: application-aware routing bias (victim vs aggressor)");

  const std::vector<std::string> routings =
      options.routing.empty() ? std::vector<std::string>{"UGALn", "AppAware", "Q-adp"}
                              : std::vector<std::string>{options.routing};
  const std::vector<std::pair<std::string, std::string>> pairs{
      {"FFT3D", "Halo3D"},
      {"LU", "DL"},
  };

  for (const auto& [victim_app, aggressor_app] : pairs) {
    std::vector<std::function<Outcome()>> tasks;
    for (const std::string& routing : routings) {
      tasks.push_back([config = options.config(routing), victim_app, aggressor_app] {
        return run_pair(config, victim_app, aggressor_app);
      });
    }
    const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

    std::printf("\n--- victim %s vs aggressor %s ---\n", victim_app.c_str(),
                aggressor_app.c_str());
    viz::AsciiTable table({"routing", "victim comm (ms)", "victim p99 (us)", "victim nonmin",
                           "aggr comm (ms)", "aggr nonmin"});
    for (std::size_t i = 0; i < routings.size(); ++i) {
      const Outcome& o = outcomes[i];
      table.row({routings[i], bench::fmt(o.victim_ms), bench::fmt(o.victim_p99_us),
                 bench::fmt(o.victim_nonmin), bench::fmt(o.aggressor_ms),
                 bench::fmt(o.aggressor_nonmin)});
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts(
      "\nExpected: AppAware lowers the victim's comm time and p99 relative\n"
      "to UGALn by keeping the victim minimal and spreading the aggressor\n"
      "(victim nonmin < aggressor nonmin); Q-adp remains the strongest\n"
      "overall, per the paper's conclusion.");
  return 0;
}

#include "routing/app_aware.hpp"

#include "routing/common.hpp"

namespace dfly::routing {

namespace {

/// Grow per-app vectors on demand (the policy does not know the job count).
template <typename T>
void ensure_app(std::vector<T>& v, int app_id) {
  if (app_id >= static_cast<int>(v.size())) {
    v.resize(static_cast<std::size_t>(app_id) + 1, T{});
  }
}

}  // namespace

int AppAwareUgalRouting::bias_of(int app_id) const {
  if (app_id < 0 || app_id >= static_cast<int>(bias_.size())) return 0;
  return bias_[static_cast<std::size_t>(app_id)];
}

double AppAwareUgalRouting::intensity_of(int app_id) const {
  if (app_id < 0 || app_id >= static_cast<int>(ewma_bytes_.size())) return 0.0;
  if (window_capacity_bytes_ <= 0) return 0.0;
  return ewma_bytes_[static_cast<std::size_t>(app_id)] / window_capacity_bytes_;
}

void AppAwareUgalRouting::note_injection(int app_id, int bytes, SimTime now) {
  if (now >= window_end_) {
    fold_window();
    window_end_ = now + p_.update_period;
  }
  ensure_app(window_bytes_, app_id);
  window_bytes_[static_cast<std::size_t>(app_id)] += bytes;
}

void AppAwareUgalRouting::fold_window() {
  ensure_app(ewma_bytes_, static_cast<int>(window_bytes_.size()) - 1);
  ensure_app(bias_, static_cast<int>(window_bytes_.size()) - 1);
  const double threshold = p_.aggressor_fraction * window_capacity_bytes_;
  for (std::size_t app = 0; app < window_bytes_.size(); ++app) {
    ewma_bytes_[app] = (1.0 - p_.smoothing) * ewma_bytes_[app] +
                       p_.smoothing * static_cast<double>(window_bytes_[app]);
    bias_[app] = ewma_bytes_[app] >= threshold ? p_.bandwidth_bias : p_.latency_bias;
  }
  for (std::int64_t& bytes : window_bytes_) bytes = 0;
}

RouteDecision AppAwareUgalRouting::route(Router& router, Packet& pkt) {
  const Dragonfly& topo = router.topo();
  if (window_capacity_bytes_ <= 0) {
    // Aggregate injection bandwidth x window = the byte budget one window
    // could carry if every NIC injected at line rate.
    const double bytes_per_ns = router.cfg().link_gbps / 8.0;
    window_capacity_bytes_ = static_cast<double>(topo.num_nodes()) * bytes_per_ns *
                             (static_cast<double>(p_.update_period) / kNs);
  }
  const int dst_group = topo.group_of_router(dst_router_of(router, pkt));
  if (pkt.hops == 0) {
    note_injection(pkt.app_id, pkt.bytes, router.engine().now());
  }
  if (pkt.hops == 0 && dst_group != router.group()) {
    Candidate best_min;
    for (int i = 0; i < p_.ugal.min_candidates; ++i) {
      const Candidate c = sample_minimal(router, pkt);
      if (best_min.port < 0 || c.occupancy < best_min.occupancy) best_min = c;
    }
    Candidate best_nonmin;
    for (int i = 0; i < p_.ugal.nonmin_candidates; ++i) {
      const Candidate c = sample_nonminimal(router, pkt, /*pick_router=*/true);
      if (c.int_group < 0) continue;
      if (best_nonmin.port < 0 || c.occupancy < best_nonmin.occupancy) best_nonmin = c;
    }
    const bool go_minimal =
        best_nonmin.port < 0 || best_min.occupancy <= p_.ugal.nonmin_weight *
                                                              best_nonmin.occupancy +
                                                          bias_of(pkt.app_id);
    if (!go_minimal) {
      commit_valiant(pkt, best_nonmin.int_group, best_nonmin.int_router);
      pkt.phase = RoutePhase::kAtSource;
      return RouteDecision{static_cast<std::int16_t>(best_nonmin.port), vc_for(pkt)};
    }
    return RouteDecision{static_cast<std::int16_t>(best_min.port), vc_for(pkt)};
  }
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

class NullSink final : public MessageEvents {
 public:
  void message_sent(std::uint64_t) override {}
  void message_delivered(std::uint64_t) override { ++delivered; }
  int delivered{0};
};

struct Fixture {
  explicit Fixture(NetConfig net_cfg = {})
      : bp(testsupport::make_blueprint(DragonflyParams::tiny(), net_cfg)), topo(bp->topo()) {
    routing::RoutingContext context{&engine, &topo, &bp->net(), 5};
    routing = routing::make_routing("MIN", context);
    net = std::make_unique<Network>(engine, *bp, *routing, 1, 5);
    net->set_sink(sink);
  }
  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly& topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
  NullSink sink;
};

TEST(Credits, TinyBuffersStillDeliverEverything) {
  // Shrink buffers to 2 packets: the credit protocol must throttle, not
  // drop or deadlock.
  NetConfig cfg;
  cfg.buffer_packets = 2;
  Fixture f(cfg);
  for (int n = 1; n < 30; ++n) f.net->send_message(n, 0, 20000, 0);
  f.engine.run();
  EXPECT_EQ(f.sink.delivered, 29);
  EXPECT_EQ(f.net->pool().in_use(), 0u);
}

TEST(Credits, SingleSlotBuffersAreTheDegenerateCase) {
  NetConfig cfg;
  cfg.buffer_packets = 1;
  Fixture f(cfg);
  for (int n = 1; n < 10; ++n) f.net->send_message(n, 0, 5000, 0);
  f.engine.run();
  EXPECT_EQ(f.sink.delivered, 9);
}

TEST(Credits, BackpressureSlowsTheIncast) {
  // With deep buffers vs shallow buffers the same incast must deliver the
  // same bytes; shallow buffers take at least as long.
  SimTime deep_time = 0, shallow_time = 0;
  {
    NetConfig cfg;
    cfg.buffer_packets = 30;
    Fixture f(cfg);
    for (int n = 1; n < 36; ++n) f.net->send_message(n, 0, 50000, 0);
    f.engine.run();
    deep_time = f.engine.now();
  }
  {
    NetConfig cfg;
    cfg.buffer_packets = 2;
    Fixture f(cfg);
    for (int n = 1; n < 36; ++n) f.net->send_message(n, 0, 50000, 0);
    f.engine.run();
    shallow_time = f.engine.now();
  }
  EXPECT_GE(shallow_time, deep_time);
}

TEST(Credits, StallTimeAppearsUnderSustainedIncast) {
  Fixture f;
  // Long-lived incast onto one node: upstream ports must starve for
  // credits at some point and record stall time.
  for (int n = 1; n < f.topo.num_nodes(); ++n) f.net->send_message(n, 0, 100000, 0);
  f.engine.run();
  SimTime total_stall = 0;
  const LinkStats& stats = f.net->link_stats();
  for (int link = 0; link < stats.num_links(); ++link) total_stall += stats.stall(link);
  EXPECT_GT(total_stall, 0);
}

TEST(Credits, NoStallOnUncontendedTraffic) {
  Fixture f;
  f.net->send_message(0, f.topo.num_nodes() - 1, 512, 0);
  f.engine.run();
  const LinkStats& stats = f.net->link_stats();
  for (int link = 0; link < stats.num_links(); ++link) {
    EXPECT_EQ(stats.stall(link), 0) << "link " << link;
  }
}

TEST(Credits, PoolReusesSlotsAcrossWaves) {
  Fixture f;
  for (int wave = 0; wave < 5; ++wave) {
    for (int n = 1; n < 10; ++n) f.net->send_message(n, 0, 2048, 0);
    f.engine.run();
  }
  // 5 waves of the same traffic reuse pooled packets rather than growing.
  EXPECT_LE(f.net->pool().capacity(), 9u * 4u * 2u);
  EXPECT_EQ(f.net->pool().in_use(), 0u);
}

TEST(Credits, RouterLatencyShiftsDeliveryTime) {
  SimTime base_time = 0;
  {
    NetConfig cfg;
    Fixture f(cfg);
    f.net->send_message(0, f.topo.num_nodes() - 1, 512, 0);
    f.engine.run();
    base_time = f.engine.now();
  }
  {
    NetConfig cfg;
    cfg.router_latency = 500 * kNs;  // 5x default
    Fixture f(cfg);
    f.net->send_message(0, f.topo.num_nodes() - 1, 512, 0);
    f.engine.run();
    EXPECT_GT(f.engine.now(), base_time);
  }
}

TEST(Credits, LinkBandwidthScalesDeliveryTime) {
  // Compare two bandwidths low enough that the 30-packet buffers cover the
  // credit bandwidth-delay product (at very high rates the credit loop
  // rightfully becomes the cap — see the next test).
  SimTime fast = 0, slow = 0;
  {
    NetConfig cfg;
    cfg.link_gbps = 100.0;
    Fixture f(cfg);
    f.net->send_message(0, 40, 1 << 20, 0);
    f.engine.run();
    fast = f.engine.now();
  }
  {
    NetConfig cfg;
    cfg.link_gbps = 25.0;
    Fixture f(cfg);
    f.net->send_message(0, 40, 1 << 20, 0);
    f.engine.run();
    slow = f.engine.now();
  }
  // 4x the bandwidth: ~4x faster for a bandwidth-bound stream.
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(fast), 3.0);
}

TEST(Credits, CreditLoopCapsSingleFlowAtExtremeBandwidth) {
  // At 1.6 Tb/s a single flow's credit round trip exceeds what 30 buffer
  // slots can cover, so doubling bandwidth again must NOT double speed.
  SimTime t1 = 0, t2 = 0;
  {
    NetConfig cfg;
    cfg.link_gbps = 1600.0;
    Fixture f(cfg);
    f.net->send_message(0, 40, 1 << 20, 0);
    f.engine.run();
    t1 = f.engine.now();
  }
  {
    NetConfig cfg;
    cfg.link_gbps = 3200.0;
    Fixture f(cfg);
    f.net->send_message(0, 40, 1 << 20, 0);
    f.engine.run();
    t2 = f.engine.now();
  }
  EXPECT_LT(static_cast<double>(t1) / static_cast<double>(t2), 1.5);
}

}  // namespace
}  // namespace dfly

#include "workloads/grid.hpp"
#include "workloads/motifs.hpp"

namespace dfly::workloads {

std::vector<int> Grid::moore_neighbors(int rank, bool periodic) const {
  std::vector<int> out;
  const std::vector<int> base = coords(rank);
  std::vector<int> offset(static_cast<std::size_t>(ndims()), -1);
  for (;;) {
    bool all_zero = true;
    for (const int o : offset) {
      if (o != 0) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero) {
      std::vector<int> c = base;
      bool valid = true;
      for (int d = 0; d < ndims(); ++d) {
        int& x = c[static_cast<std::size_t>(d)];
        x += offset[static_cast<std::size_t>(d)];
        if (x < 0 || x >= dim(d)) {
          if (!periodic) {
            valid = false;
            break;
          }
          x = (x + dim(d)) % dim(d);
        }
      }
      if (valid) {
        const int peer = rank_of(c);
        if (peer != rank) {
          bool seen = false;
          for (const int q : out) {
            if (q == peer) {
              seen = true;
              break;
            }
          }
          if (!seen) out.push_back(peer);
        }
      }
    }
    // Odometer increment over {-1,0,1}^ndims.
    int d = ndims() - 1;
    while (d >= 0) {
      if (++offset[static_cast<std::size_t>(d)] <= 1) break;
      offset[static_cast<std::size_t>(d)] = -1;
      --d;
    }
    if (d < 0) break;
  }
  return out;
}

std::vector<int> Grid::balanced_dims(int max_nodes, int ndims) {
  // Start from the floor of the ndims-th root and grow greedily while the
  // product stays within budget.
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  auto product = [&dims] {
    long long p = 1;
    for (const int d : dims) p *= d;
    return p;
  };
  bool grew = true;
  while (grew) {
    grew = false;
    // Grow the currently smallest dimension if it fits.
    int arg = 0;
    for (int d = 1; d < ndims; ++d) {
      if (dims[static_cast<std::size_t>(d)] < dims[static_cast<std::size_t>(arg)]) arg = d;
    }
    dims[static_cast<std::size_t>(arg)]++;
    if (product() <= max_nodes) {
      grew = true;
    } else {
      dims[static_cast<std::size_t>(arg)]--;
    }
  }
  return dims;
}

mpi::Task NdStencilMotif::run(mpi::RankCtx& ctx) const {
  // Classic halo exchange: all receives posted first, then all sends
  // back-to-back — the consecutive sends form the ingress burst that gives
  // the stencil family its large peak ingress volume (§IV, Table I).
  const std::vector<int> neighbors = grid_.face_neighbors(ctx.rank(), p_.periodic);
  // One request buffer for the whole run: the coroutine frame keeps it, so
  // steady-state iterations post their halo without heap traffic.
  std::vector<mpi::ReqId> reqs;
  reqs.reserve(neighbors.size() * 2);
  for (int iter = 0; iter < p_.iterations; ++iter) {
    reqs.clear();
    for (const int nb : neighbors) reqs.push_back(ctx.irecv(nb, iter));
    for (const int nb : neighbors) reqs.push_back(ctx.isend(nb, p_.msg_bytes, iter));
    co_await ctx.wait_all(reqs);
    co_await ctx.compute(p_.compute);
    ctx.mark_iteration();
  }
}

NdStencilParams NdStencilMotif::halo3d() {
  NdStencilParams p;
  p.label = "Halo3D";
  p.dims = {8, 8, 8};
  p.msg_bytes = 196608;  // 6 x 192KB = 1.15MB peak ingress (Table I)
  p.iterations = 79;     // 79 x 512 x 6 x 192KB ~= 47.7GB total (Table I)
  p.compute = 60 * kUs;
  p.periodic = true;
  return p;
}

NdStencilParams NdStencilMotif::lqcd() {
  NdStencilParams p;
  p.label = "LQCD";
  p.dims = {4, 4, 4, 8};
  p.msg_bytes = 589824;  // 8 x 576KB = 4.6MB peak ingress (Table I)
  p.iterations = 5;      // 5 x 512 x 8 x 576KB ~= 12.1GB total (Table I)
  p.compute = 2350 * kUs;
  p.periodic = true;
  return p;
}

NdStencilParams NdStencilMotif::stencil5d() {
  NdStencilParams p;
  p.label = "Stencil5D";
  p.dims = {3, 3, 3, 3, 6};
  p.msg_bytes = 1468006;  // up to 10 x 1.4MB = 14MB peak ingress (Table I)
  p.iterations = 2;       // 2 x 3402 edges x 1.4MB ~= 10.0GB total (Table I)
  p.compute = 5500 * kUs;
  p.periodic = false;  // edge/surface ranks have fewer neighbours (paper §V-C)
  return p;
}

}  // namespace dfly::workloads

#include "mpi/coll.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dfly::mpi::coll {

namespace {

/// Largest power of two <= n (n >= 1).
int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

int ceil_log2(int n) {
  int rounds = 0;
  int span = 1;
  while (span < n) {
    span *= 2;
    ++rounds;
  }
  return rounds;
}

std::int64_t chunk_size(std::int64_t bytes, int n) {
  const std::int64_t chunk = (bytes + n - 1) / n;
  return chunk < 1 ? 1 : chunk;
}

/// Index of `rank` inside `members`, asserting membership.
int member_index(std::span<const int> members, int rank) {
  for (int i = 0; i < static_cast<int>(members.size()); ++i) {
    if (members[static_cast<std::size_t>(i)] == rank) return i;
  }
  assert(false && "caller is not a member of the communicator");
  return -1;
}

}  // namespace

const char* to_string(AllreduceAlg alg) {
  switch (alg) {
    case AllreduceAlg::kBinaryTree: return "tree";
    case AllreduceAlg::kRing: return "ring";
    case AllreduceAlg::kRecursiveDoubling: return "rdouble";
    case AllreduceAlg::kHalvingDoubling: return "rabenseifner";
  }
  return "?";
}

const char* to_string(AlltoallAlg alg) {
  switch (alg) {
    case AlltoallAlg::kRing: return "ring";
    case AlltoallAlg::kPairwise: return "pairwise";
    case AlltoallAlg::kBruck: return "bruck";
  }
  return "?";
}

AllreduceAlg allreduce_from_string(const std::string& name) {
  if (name == "tree") return AllreduceAlg::kBinaryTree;
  if (name == "ring") return AllreduceAlg::kRing;
  if (name == "rdouble") return AllreduceAlg::kRecursiveDoubling;
  if (name == "rabenseifner") return AllreduceAlg::kHalvingDoubling;
  throw std::invalid_argument("unknown allreduce algorithm: " + name);
}

AlltoallAlg alltoall_from_string(const std::string& name) {
  if (name == "ring") return AlltoallAlg::kRing;
  if (name == "pairwise") return AlltoallAlg::kPairwise;
  if (name == "bruck") return AlltoallAlg::kBruck;
  throw std::invalid_argument("unknown alltoall algorithm: " + name);
}

const char* to_string(ReduceScatterAlg alg) {
  switch (alg) {
    case ReduceScatterAlg::kRing: return "ring";
    case ReduceScatterAlg::kHalving: return "halving";
  }
  return "?";
}

ReduceScatterAlg reduce_scatter_from_string(const std::string& name) {
  if (name == "ring") return ReduceScatterAlg::kRing;
  if (name == "halving") return ReduceScatterAlg::kHalving;
  throw std::invalid_argument("unknown reduce-scatter algorithm: " + name);
}

Task allreduce(RankCtx& ctx, std::int64_t bytes, AllreduceAlg alg) {
  switch (alg) {
    case AllreduceAlg::kBinaryTree: co_await ctx.allreduce(bytes); break;
    case AllreduceAlg::kRing: co_await ring_allreduce(ctx, bytes); break;
    case AllreduceAlg::kRecursiveDoubling: co_await recursive_doubling_allreduce(ctx, bytes); break;
    case AllreduceAlg::kHalvingDoubling: co_await halving_doubling_allreduce(ctx, bytes); break;
  }
}

Task alltoall(RankCtx& ctx, std::int64_t bytes, std::span<const int> members, AlltoallAlg alg) {
  const auto n = static_cast<int>(members.size());
  const bool pow2 = (n & (n - 1)) == 0;
  switch (alg) {
    case AlltoallAlg::kRing: co_await ctx.alltoall(bytes, members); break;
    case AlltoallAlg::kPairwise:
      if (pow2) {
        co_await alltoall_pairwise(ctx, bytes, members);
      } else {
        co_await ctx.alltoall(bytes, members);
      }
      break;
    case AlltoallAlg::kBruck: co_await alltoall_bruck(ctx, bytes, members); break;
  }
}

Task reduce_scatter(RankCtx& ctx, std::int64_t bytes, ReduceScatterAlg alg) {
  const int n = ctx.size();
  const bool pow2 = n >= 1 && (n & (n - 1)) == 0;
  switch (alg) {
    case ReduceScatterAlg::kRing: co_await reduce_scatter_ring(ctx, bytes); break;
    case ReduceScatterAlg::kHalving:
      if (pow2) {
        co_await reduce_scatter_halving(ctx, bytes);
      } else {
        co_await reduce_scatter_ring(ctx, bytes);
      }
      break;
  }
}

Task reduce_scatter_ring(RankCtx& ctx, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  const std::int64_t chunk = chunk_size(bytes, n);
  const int tag = ctx.alloc_coll_tag();
  // Round r: pass the partially reduced chunk one step round the ring; the
  // receive is posted before the send so rendezvous chunks cannot deadlock.
  for (int round = 0; round < n - 1; ++round) {
    const ReqId r = ctx.irecv(left, tag);
    const ReqId s = ctx.isend(right, chunk, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

Task reduce_scatter_halving(RankCtx& ctx, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("reduce_scatter_halving: job size must be a power of two");
  }
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  // Round k exchanges the half of the remaining payload that belongs to the
  // partner's side of the recursion tree.
  std::int64_t piece = bytes;
  for (int mask = 1; mask < n; mask *= 2) {
    piece = piece / 2 < 1 ? 1 : piece / 2;
    const int partner = me ^ mask;
    const ReqId r = ctx.irecv(partner, tag);
    const ReqId s = ctx.isend(partner, piece, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

Task alltoallv_ring(RankCtx& ctx, std::span<const std::int64_t> send_bytes,
                    std::span<const std::int64_t> recv_bytes, std::span<const int> members) {
  const int n = static_cast<int>(members.size());
  if (static_cast<int>(send_bytes.size()) != n || static_cast<int>(recv_bytes.size()) != n) {
    throw std::invalid_argument("alltoallv_ring: count vectors must match the membership");
  }
  if (n < 2) co_return;
  const int me = member_index(members, ctx.rank());
  const int tag = ctx.alloc_coll_tag();
  // Ring schedule as in SST's alltoall: round i talks to me+i / me-i, but a
  // zero-byte lane moves no message at all (both sides skip it in lockstep
  // because the vectors are mirror-consistent).
  for (int round = 1; round < n; ++round) {
    const int dst = (me + round) % n;
    const int src = (me - round + n) % n;
    const bool expect = recv_bytes[static_cast<std::size_t>(src)] > 0;
    const bool sending = send_bytes[static_cast<std::size_t>(dst)] > 0;
    ReqId r = 0;
    ReqId s = 0;
    if (expect) r = ctx.irecv(members[static_cast<std::size_t>(src)], tag);
    if (sending) {
      s = ctx.isend(members[static_cast<std::size_t>(dst)],
                    send_bytes[static_cast<std::size_t>(dst)], tag);
    }
    if (expect) co_await ctx.wait(r);
    if (sending) co_await ctx.wait(s);
  }
}

Task ring_allreduce(RankCtx& ctx, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  const std::int64_t chunk = chunk_size(bytes, n);
  const int tag_rs = ctx.alloc_coll_tag();
  const int tag_ag = ctx.alloc_coll_tag();

  // Reduce-scatter pass: after n-1 rounds every rank owns one fully reduced
  // chunk. Each round posts the receive before the send so rendezvous-sized
  // chunks cannot deadlock.
  for (int round = 0; round < n - 1; ++round) {
    const ReqId r = ctx.irecv(left, tag_rs);
    const ReqId s = ctx.isend(right, chunk, tag_rs);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
  // Allgather pass: circulate the reduced chunks the rest of the way round.
  for (int round = 0; round < n - 1; ++round) {
    const ReqId r = ctx.irecv(left, tag_ag);
    const ReqId s = ctx.isend(right, chunk, tag_ag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

namespace {

/// MPICH-style power-of-two fold. Returns this rank's id in the folded
/// communicator, or -1 when the rank sits out the core exchange.
///   ranks < 2*rem: even ranks fold onto rank+1 (and sit out), odd ranks
///   act for the pair; ranks >= 2*rem participate directly.
struct Fold {
  int new_rank;   ///< id within the pof2 core, or -1
  int pof2;
  int rem;
};

Fold fold_of(int me, int n) {
  const int pof2 = floor_pow2(n);
  const int rem = n - pof2;
  if (me < 2 * rem) {
    if (me % 2 == 0) return {-1, pof2, rem};
    return {me / 2, pof2, rem};
  }
  return {me - rem, pof2, rem};
}

int unfolded_rank(int new_rank, int rem) {
  return new_rank < rem ? new_rank * 2 + 1 : new_rank + rem;
}

}  // namespace

Task recursive_doubling_allreduce(RankCtx& ctx, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const Fold fold = fold_of(me, n);

  if (fold.new_rank < 0) {
    // Folded-out even rank: contribute the payload, then wait for the result.
    co_await ctx.send(me + 1, bytes, tag);
    co_await ctx.recv(me + 1, tag);
    co_return;
  }
  if (me < 2 * fold.rem) {
    co_await ctx.recv(me - 1, tag);  // absorb the folded partner's payload
  }
  for (int mask = 1; mask < fold.pof2; mask *= 2) {
    const int partner = unfolded_rank(fold.new_rank ^ mask, fold.rem);
    const ReqId r = ctx.irecv(partner, tag);
    const ReqId s = ctx.isend(partner, bytes, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
  if (me < 2 * fold.rem) {
    co_await ctx.send(me - 1, bytes, tag);  // return the result to the fold
  }
}

Task halving_doubling_allreduce(RankCtx& ctx, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const Fold fold = fold_of(me, n);

  if (fold.new_rank < 0) {
    co_await ctx.send(me + 1, bytes, tag);
    co_await ctx.recv(me + 1, tag);
    co_return;
  }
  if (me < 2 * fold.rem) {
    co_await ctx.recv(me - 1, tag);
  }
  // Recursive-halving reduce-scatter: round k exchanges half the remaining
  // payload with partner new_rank XOR 2^k.
  std::int64_t piece = bytes;
  for (int mask = 1; mask < fold.pof2; mask *= 2) {
    piece = piece / 2 < 1 ? 1 : piece / 2;
    const int partner = unfolded_rank(fold.new_rank ^ mask, fold.rem);
    const ReqId r = ctx.irecv(partner, tag);
    const ReqId s = ctx.isend(partner, piece, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
  // Recursive-doubling allgather: mirror image, pieces grow back.
  for (int mask = fold.pof2 / 2; mask >= 1; mask /= 2) {
    const int partner = unfolded_rank(fold.new_rank ^ mask, fold.rem);
    const ReqId r = ctx.irecv(partner, tag);
    const ReqId s = ctx.isend(partner, piece, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
    piece = piece * 2 > bytes ? bytes : piece * 2;
  }
  if (me < 2 * fold.rem) {
    co_await ctx.send(me - 1, bytes, tag);
  }
}

Task bcast_binomial(RankCtx& ctx, int root, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const int vrank = (me - root + n) % n;

  // Receive from the parent: clear the lowest set bit of vrank.
  if (vrank != 0) {
    const int parent_v = vrank & (vrank - 1);
    // parent owns subtree [parent_v, parent_v + lowbit); it sent to us.
    co_await ctx.recv((parent_v + root) % n, tag);
  }
  // Forward to children, largest subtree first: child = vrank | mask for
  // masks above our lowest set bit (or all masks when we are the root).
  // At most log2(n) children: a fixed-size frame-local array replaces the
  // old per-call heap vector.
  const int lowbit = vrank == 0 ? n : vrank & (-vrank);
  ReqId sends[32];
  int n_sends = 0;
  for (int mask = floor_pow2(n); mask >= 1; mask /= 2) {
    if (mask >= lowbit) continue;
    const int child_v = vrank | mask;
    if (child_v == vrank || child_v >= n) continue;
    sends[n_sends++] = ctx.isend((child_v + root) % n, bytes, tag);
  }
  if (n_sends > 0) co_await ctx.wait_all(std::span<const ReqId>(sends, static_cast<std::size_t>(n_sends)));
}

Task reduce_binomial(RankCtx& ctx, int root, std::int64_t bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const int vrank = (me - root + n) % n;

  // Mirror of bcast: gather from children (smallest subtree first, the
  // order they become ready in the balanced case), then send to the parent.
  const int lowbit = vrank == 0 ? n : vrank & (-vrank);
  for (int mask = 1; mask < lowbit && mask < n; mask *= 2) {
    const int child_v = vrank | mask;
    if (child_v == vrank || child_v >= n) continue;
    co_await ctx.recv((child_v + root) % n, tag);
  }
  if (vrank != 0) {
    const int parent_v = vrank & (vrank - 1);
    co_await ctx.send((parent_v + root) % n, bytes, tag);
  }
}

Task gather_binomial(RankCtx& ctx, int root, std::int64_t per_rank_bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const int vrank = (me - root + n) % n;

  // Subtree of vrank covers [vrank, min(vrank + lowbit, n)). The message to
  // the parent carries the whole subtree's blocks.
  const int lowbit = vrank == 0 ? n : vrank & (-vrank);
  for (int mask = 1; mask < lowbit && mask < n; mask *= 2) {
    const int child_v = vrank | mask;
    if (child_v == vrank || child_v >= n) continue;
    co_await ctx.recv((child_v + root) % n, tag);
  }
  if (vrank != 0) {
    const int parent_v = vrank & (vrank - 1);
    const int subtree = std::min(lowbit, n - vrank);
    co_await ctx.send((parent_v + root) % n, per_rank_bytes * subtree, tag);
  }
}

Task scatter_binomial(RankCtx& ctx, int root, std::int64_t per_rank_bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  const int vrank = (me - root + n) % n;

  if (vrank != 0) {
    const int parent_v = vrank & (vrank - 1);
    co_await ctx.recv((parent_v + root) % n, tag);
  }
  const int lowbit = vrank == 0 ? n : vrank & (-vrank);
  for (int mask = floor_pow2(n); mask >= 1; mask /= 2) {
    if (mask >= lowbit) continue;
    const int child_v = vrank | mask;
    if (child_v == vrank || child_v >= n) continue;
    const int subtree = std::min(mask, n - child_v);
    co_await ctx.send((child_v + root) % n, per_rank_bytes * subtree, tag);
  }
}

Task allgather_ring(RankCtx& ctx, std::int64_t per_rank_bytes) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  const int tag = ctx.alloc_coll_tag();
  for (int round = 0; round < n - 1; ++round) {
    const ReqId r = ctx.irecv(left, tag);
    const ReqId s = ctx.isend(right, per_rank_bytes, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

Task alltoall_pairwise(RankCtx& ctx, std::int64_t bytes, std::span<const int> members) {
  const int n = static_cast<int>(members.size());
  assert((n & (n - 1)) == 0 && "pairwise alltoall requires power-of-two membership");
  const int me_idx = member_index(members, ctx.rank());
  const int tag = ctx.alloc_coll_tag();
  for (int round = 1; round < n; ++round) {
    const int partner = members[static_cast<std::size_t>(me_idx ^ round)];
    const ReqId r = ctx.irecv(partner, tag);
    const ReqId s = ctx.isend(partner, bytes, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

Task alltoall_bruck(RankCtx& ctx, std::int64_t bytes, std::span<const int> members) {
  const int n = static_cast<int>(members.size());
  if (n < 2) co_return;
  const int me_idx = member_index(members, ctx.rank());
  const int tag = ctx.alloc_coll_tag();
  // Round r ships every block whose index has bit r set, aggregated into a
  // single message to member me + 2^r (with the matching receive from
  // me - 2^r). Block count per round is n/2 rounded by the bit pattern.
  for (int mask = 1; mask < n; mask *= 2) {
    int blocks = 0;
    for (int j = 1; j < n; ++j) {
      if ((j & mask) != 0) ++blocks;
    }
    const int to = members[static_cast<std::size_t>((me_idx + mask) % n)];
    const int from = members[static_cast<std::size_t>((me_idx - mask % n + n) % n)];
    const ReqId r = ctx.irecv(from, tag);
    const ReqId s = ctx.isend(to, bytes * blocks, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

Task barrier_dissemination(RankCtx& ctx) {
  const int n = ctx.size();
  if (n < 2) co_return;
  const int me = ctx.rank();
  const int tag = ctx.alloc_coll_tag();
  for (int mask = 1; mask < n; mask *= 2) {
    const int to = (me + mask) % n;
    const int from = (me - mask % n + n) % n;
    const ReqId r = ctx.irecv(from, tag);
    const ReqId s = ctx.isend(to, 8, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
  }
}

int allreduce_rounds(AllreduceAlg alg, int n) {
  if (n < 2) return 0;
  const Fold fold = fold_of(0, n);
  const int fold_rounds = fold.rem > 0 ? 2 : 0;
  switch (alg) {
    case AllreduceAlg::kBinaryTree: {
      // Tree depth up + down.
      int depth = 0;
      for (int span = 1; span < n; span = span * 2 + 1) ++depth;
      return 2 * depth;
    }
    case AllreduceAlg::kRing: return 2 * (n - 1);
    case AllreduceAlg::kRecursiveDoubling: return ceil_log2(fold.pof2) + fold_rounds;
    case AllreduceAlg::kHalvingDoubling: return 2 * ceil_log2(fold.pof2) + fold_rounds;
  }
  return 0;
}

int alltoall_rounds(AlltoallAlg alg, int n) {
  if (n < 2) return 0;
  switch (alg) {
    case AlltoallAlg::kRing: return n - 1;
    case AlltoallAlg::kPairwise: return n - 1;
    case AlltoallAlg::kBruck: return ceil_log2(n);
  }
  return 0;
}

std::int64_t allreduce_bytes_per_rank(AllreduceAlg alg, int n, std::int64_t bytes) {
  if (n < 2) return 0;
  switch (alg) {
    case AllreduceAlg::kBinaryTree: {
      // Non-root, non-leaf ranks send the payload up once and to both
      // children on the way down; exact value depends on tree position, so
      // report the per-rank average: every rank sends up once except the
      // root (n-1 sends) and every rank receives the broadcast once (n-1
      // downward sends), spread over n ranks.
      return 2 * bytes * (n - 1) / n;
    }
    case AllreduceAlg::kRing: return 2 * (n - 1) * chunk_size(bytes, n);
    case AllreduceAlg::kRecursiveDoubling: {
      const Fold fold = fold_of(0, n);
      std::int64_t total = static_cast<std::int64_t>(ceil_log2(fold.pof2)) * bytes;
      // Folding adds one full-payload send each way for 2*rem ranks;
      // average over n.
      total += fold.rem > 0 ? 2 * bytes * fold.rem / n : 0;
      return total;
    }
    case AllreduceAlg::kHalvingDoubling: {
      const Fold fold = fold_of(0, n);
      std::int64_t total = 0;
      std::int64_t piece = bytes;
      for (int mask = 1; mask < fold.pof2; mask *= 2) {
        piece = piece / 2 < 1 ? 1 : piece / 2;
        total += piece;
      }
      for (int mask = fold.pof2 / 2; mask >= 1; mask /= 2) {
        total += piece;
        piece = piece * 2 > bytes ? bytes : piece * 2;
      }
      total += fold.rem > 0 ? 2 * bytes * fold.rem / n : 0;
      return total;
    }
  }
  return 0;
}

int reduce_scatter_rounds(ReduceScatterAlg alg, int n) {
  if (n < 2) return 0;
  switch (alg) {
    case ReduceScatterAlg::kRing: return n - 1;
    case ReduceScatterAlg::kHalving: return ceil_log2(n);
  }
  return 0;
}

std::int64_t reduce_scatter_bytes_per_rank(ReduceScatterAlg alg, int n, std::int64_t bytes) {
  if (n < 2) return 0;
  switch (alg) {
    case ReduceScatterAlg::kRing: return (n - 1) * chunk_size(bytes, n);
    case ReduceScatterAlg::kHalving: {
      std::int64_t total = 0;
      std::int64_t piece = bytes;
      for (int mask = 1; mask < n; mask *= 2) {
        piece = piece / 2 < 1 ? 1 : piece / 2;
        total += piece;
      }
      return total;
    }
  }
  return 0;
}

}  // namespace dfly::mpi::coll

// Tests for reduce-scatter, vector alltoall (alltoallv) and the sparse-
// exchange motif built on it: completion on arbitrary rank counts, exact
// analytic byte/round accounting, mirror-consistency enforcement.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "core/study.hpp"
#include "mpi/coll.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

using mpi::coll::ReduceScatterAlg;

/// Motif that runs one reduce-scatter (or one alltoallv) and nothing else.
class OneOpMotif final : public mpi::Motif {
 public:
  enum class Op { kReduceScatter, kAlltoallv };

  OneOpMotif(ReduceScatterAlg alg, std::int64_t bytes)
      : op_(Op::kReduceScatter), rs_alg_(alg), bytes_(bytes) {}

  /// Alltoallv: rank r sends `base_bytes * (j + 1)` to every lower-indexed
  /// rank j < r and nothing upward (a strictly triangular pattern with
  /// per-pair asymmetry, exercising zero lanes and unequal volumes).
  explicit OneOpMotif(std::int64_t base_bytes) : op_(Op::kAlltoallv), bytes_(base_bytes) {}

  std::string name() const override { return "OneOp"; }

  static std::int64_t triangular_lane(std::int64_t base, int src, int dst) {
    return dst < src ? base * (dst + 1) : 0;
  }

  mpi::Task run(mpi::RankCtx& ctx) const override {
    if (op_ == Op::kReduceScatter) {
      co_await mpi::coll::reduce_scatter(ctx, bytes_, rs_alg_);
    } else {
      const int n = ctx.size();
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      std::vector<std::int64_t> send(static_cast<std::size_t>(n));
      std::vector<std::int64_t> recv(static_cast<std::size_t>(n));
      for (int peer = 0; peer < n; ++peer) {
        send[static_cast<std::size_t>(peer)] = triangular_lane(bytes_, ctx.rank(), peer);
        recv[static_cast<std::size_t>(peer)] = triangular_lane(bytes_, peer, ctx.rank());
      }
      co_await mpi::coll::alltoallv_ring(ctx, send, recv, members);
    }
    ctx.mark_iteration();
  }

 private:
  Op op_;
  ReduceScatterAlg rs_alg_{ReduceScatterAlg::kRing};
  std::int64_t bytes_;
};

struct RunResult {
  Report report;
  std::vector<trace::MessageRecord> sends;
};

RunResult run_one(std::unique_ptr<mpi::Motif> motif, int ranks) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.seed = 7;
  Study study(config);
  const int app = study.add_motif(std::move(motif), ranks, "op");
  study.record_trace(app);
  RunResult result;
  result.report = study.run();
  result.sends = study.trace(app).records();
  return result;
}

// --- string round trips -----------------------------------------------------

TEST(ReduceScatter, StringRoundTrip) {
  using mpi::coll::reduce_scatter_from_string;
  using mpi::coll::to_string;
  EXPECT_STREQ(to_string(ReduceScatterAlg::kRing), "ring");
  EXPECT_STREQ(to_string(ReduceScatterAlg::kHalving), "halving");
  EXPECT_EQ(reduce_scatter_from_string("ring"), ReduceScatterAlg::kRing);
  EXPECT_EQ(reduce_scatter_from_string("halving"), ReduceScatterAlg::kHalving);
  EXPECT_THROW(reduce_scatter_from_string("nope"), std::invalid_argument);
}

// --- analytic helpers ---------------------------------------------------------

TEST(ReduceScatter, AnalyticRoundsAndBytes) {
  using mpi::coll::reduce_scatter_bytes_per_rank;
  using mpi::coll::reduce_scatter_rounds;
  EXPECT_EQ(reduce_scatter_rounds(ReduceScatterAlg::kRing, 8), 7);
  EXPECT_EQ(reduce_scatter_rounds(ReduceScatterAlg::kHalving, 8), 3);
  EXPECT_EQ(reduce_scatter_rounds(ReduceScatterAlg::kRing, 1), 0);
  // Ring: (n-1) chunks of ceil(bytes/n).
  EXPECT_EQ(reduce_scatter_bytes_per_rank(ReduceScatterAlg::kRing, 8, 8192), 7 * 1024);
  // Halving on 8 ranks: 4096 + 2048 + 1024.
  EXPECT_EQ(reduce_scatter_bytes_per_rank(ReduceScatterAlg::kHalving, 8, 8192), 7168);
}

// --- simulated byte accounting -------------------------------------------------

/// Parameterised over (algorithm, rank count): the simulation's per-rank sent
/// bytes must match the analytic value exactly on power-of-two sizes.
class ReduceScatterBytes
    : public ::testing::TestWithParam<std::tuple<ReduceScatterAlg, int>> {};

TEST_P(ReduceScatterBytes, MatchesAnalytic) {
  const auto [alg, ranks] = GetParam();
  const std::int64_t bytes = 65536;
  RunResult result = run_one(std::make_unique<OneOpMotif>(alg, bytes), ranks);
  ASSERT_TRUE(result.report.completed);
  std::map<int, std::int64_t> sent_by_rank;
  for (const auto& record : result.sends) sent_by_rank[record.src_rank] += record.bytes;
  const std::int64_t expected = mpi::coll::reduce_scatter_bytes_per_rank(alg, ranks, bytes);
  ASSERT_EQ(sent_by_rank.size(), static_cast<std::size_t>(ranks));
  for (const auto& [rank, sent] : sent_by_rank) {
    EXPECT_EQ(sent, expected) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PowerOfTwo, ReduceScatterBytes,
    ::testing::Combine(::testing::Values(ReduceScatterAlg::kRing, ReduceScatterAlg::kHalving),
                       ::testing::Values(2, 4, 8, 16)),
    [](const auto& info) {
      return std::string(mpi::coll::to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReduceScatter, RingHandlesNonPowerOfTwo) {
  RunResult result =
      run_one(std::make_unique<OneOpMotif>(ReduceScatterAlg::kRing, 9000), 7);
  ASSERT_TRUE(result.report.completed);
  // 6 rounds of ceil(9000/7) = 1286 bytes.
  std::map<int, std::int64_t> sent_by_rank;
  for (const auto& record : result.sends) sent_by_rank[record.src_rank] += record.bytes;
  for (const auto& [rank, sent] : sent_by_rank) EXPECT_EQ(sent, 6 * 1286) << rank;
}

TEST(ReduceScatter, HalvingDispatchFallsBackOffPowerOfTwo) {
  // Dispatcher silently falls back to ring for n = 6 — same bytes as ring.
  RunResult result =
      run_one(std::make_unique<OneOpMotif>(ReduceScatterAlg::kHalving, 6000), 6);
  ASSERT_TRUE(result.report.completed);
  std::map<int, std::int64_t> sent_by_rank;
  for (const auto& record : result.sends) sent_by_rank[record.src_rank] += record.bytes;
  const std::int64_t ring_bytes =
      mpi::coll::reduce_scatter_bytes_per_rank(ReduceScatterAlg::kRing, 6, 6000);
  for (const auto& [rank, sent] : sent_by_rank) EXPECT_EQ(sent, ring_bytes) << rank;
}

// --- alltoallv -----------------------------------------------------------------

TEST(Alltoallv, TriangularPatternDeliversExactLanes) {
  const std::int64_t base = 4096;
  const int ranks = 9;
  RunResult result = run_one(std::make_unique<OneOpMotif>(base), ranks);
  ASSERT_TRUE(result.report.completed);
  // Every (src,dst) lane with dst < src carries base*(dst+1); nothing else.
  std::map<std::pair<int, int>, std::int64_t> lanes;
  for (const auto& record : result.sends) {
    lanes[{record.src_rank, record.dst_rank}] += record.bytes;
  }
  for (int src = 0; src < ranks; ++src) {
    for (int dst = 0; dst < ranks; ++dst) {
      const std::int64_t expected = OneOpMotif::triangular_lane(base, src, dst);
      const auto it = lanes.find({src, dst});
      if (expected == 0) {
        EXPECT_EQ(it, lanes.end()) << src << "->" << dst;
      } else {
        ASSERT_NE(it, lanes.end()) << src << "->" << dst;
        EXPECT_EQ(it->second, expected) << src << "->" << dst;
      }
    }
  }
}

TEST(Alltoallv, MismatchedVectorSizesThrow) {
  class BadMotif final : public mpi::Motif {
   public:
    std::string name() const override { return "Bad"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      std::vector<int> members(static_cast<std::size_t>(ctx.size()));
      std::iota(members.begin(), members.end(), 0);
      std::vector<std::int64_t> short_vec(static_cast<std::size_t>(ctx.size()) - 1, 1);
      std::vector<std::int64_t> full_vec(static_cast<std::size_t>(ctx.size()), 1);
      co_await mpi::coll::alltoallv_ring(ctx, short_vec, full_vec, members);
    }
  };
  // Simulated ranks must not throw: the coroutine layer escalates the
  // std::invalid_argument to std::terminate (task.hpp), so misuse dies
  // loudly instead of corrupting the schedule.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  EXPECT_DEATH(
      {
        Study study(config);
        study.add_motif(std::make_unique<BadMotif>(), 4, "bad");
        study.run();
      },
      "");
}

TEST(ReduceScatter, HalvingDirectCallRejectsNonPowerOfTwo) {
  class DirectHalvingMotif final : public mpi::Motif {
   public:
    std::string name() const override { return "DirectHalving"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      co_await mpi::coll::reduce_scatter_halving(ctx, 4096);
    }
  };
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  EXPECT_DEATH(
      {
        Study study(config);
        study.add_motif(std::make_unique<DirectHalvingMotif>(), 6, "direct");
        study.run();
      },
      "");
}

TEST(Alltoallv, AllZeroVectorsComplete) {
  class ZeroMotif final : public mpi::Motif {
   public:
    std::string name() const override { return "Zero"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      const int n = ctx.size();
      std::vector<int> members(static_cast<std::size_t>(n));
      std::iota(members.begin(), members.end(), 0);
      std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
      co_await mpi::coll::alltoallv_ring(ctx, zeros, zeros, members);
      ctx.mark_iteration();
    }
  };
  RunResult result = run_one(std::make_unique<ZeroMotif>(), 8);
  EXPECT_TRUE(result.report.completed);
  EXPECT_TRUE(result.sends.empty());
}

// --- sparse exchange motif -------------------------------------------------------

TEST(SparseExchange, LanePatternIsDeterministicAndSparse) {
  workloads::SparseExchangeParams params;
  params.density_per_mille = 200;
  params.pattern_seed = 5;
  const workloads::SparseExchangeMotif motif(params);
  int populated = 0;
  const int n = 24;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      const std::int64_t a = motif.lane_bytes(s, d, 0);
      EXPECT_EQ(a, motif.lane_bytes(s, d, 0));  // deterministic
      if (s == d) {
        EXPECT_EQ(a, 0);
      }
      if (a > 0) {
        ++populated;
        EXPECT_GE(a, params.msg_bytes);
        EXPECT_LE(a, 4 * params.msg_bytes);
      }
    }
  }
  // ~20% of n*(n-1) = 552 lanes; allow generous sampling noise.
  EXPECT_GT(populated, 55);
  EXPECT_LT(populated, 200);
}

TEST(SparseExchange, TraceMatchesLanePattern) {
  workloads::SparseExchangeParams params;
  params.density_per_mille = 300;
  params.iterations = 2;
  params.msg_bytes = 2048;
  params.pattern_seed = 9;
  auto motif = std::make_unique<workloads::SparseExchangeMotif>(params);
  const workloads::SparseExchangeMotif ref(params);  // lane oracle
  const int ranks = 12;
  RunResult result = run_one(std::move(motif), ranks);
  ASSERT_TRUE(result.report.completed);
  std::int64_t expected_total = 0;
  int expected_msgs = 0;
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int s = 0; s < ranks; ++s) {
      for (int d = 0; d < ranks; ++d) {
        const std::int64_t lane = ref.lane_bytes(s, d, iter);
        expected_total += lane;
        expected_msgs += lane > 0 ? 1 : 0;
      }
    }
  }
  std::int64_t total = 0;
  for (const auto& record : result.sends) total += record.bytes;
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(static_cast<int>(result.sends.size()), expected_msgs);
}

TEST(SparseExchange, ExtremeDensities) {
  for (const int density : {0, 1000}) {
    workloads::SparseExchangeParams params;
    params.density_per_mille = density;
    params.iterations = 1;
    params.msg_bytes = 1024;
    RunResult result =
        run_one(std::make_unique<workloads::SparseExchangeMotif>(params), 8);
    ASSERT_TRUE(result.report.completed) << density;
    if (density == 0) {
      EXPECT_TRUE(result.sends.empty());
    } else {
      EXPECT_EQ(result.sends.size(), 8u * 7u);  // every lane populated
    }
  }
}

}  // namespace
}  // namespace dfly

#pragma once

#include "net/congestion_control.hpp"
#include "net/qos.hpp"
#include "sim/time.hpp"

namespace dfly {

/// Network hardware parameters. Defaults reproduce the paper's §III setup:
/// 128B flits, 512B packets, 30-packet port buffers, 200 Gb/s links (after
/// Slingshot), 30 ns local / 300 ns global flit latency (1:10 ratio).
struct NetConfig {
  int flit_bytes{128};
  int packet_bytes{512};
  /// Input-buffer capacity per (port, VC), in packets; credit unit = packet.
  int buffer_packets{30};
  /// Virtual channels per port. VC index = hops taken, so this bounds the
  /// longest admissible path (worst case local-local-global-local-global-
  /// local plus slack for progressive re-routing).
  int num_vcs{8};
  double link_gbps{200.0};
  SimTime local_latency{30 * kNs};
  SimTime global_latency{300 * kNs};
  SimTime terminal_latency{30 * kNs};
  /// Fixed per-hop pipeline latency (route computation + crossbar).
  SimTime router_latency{100 * kNs};
  /// QoS traffic classes; num_classes == 1 keeps base FIFO arbitration.
  QosConfig qos{};
  /// End-to-end congestion control (ECN + AIMD source throttling).
  CongestionControlConfig cc{};

  SimTime packet_serialization() const { return serialization_ps(packet_bytes, link_gbps); }
  SimTime serialization(int bytes) const { return serialization_ps(bytes, link_gbps); }
  int flits_per_packet() const { return (packet_bytes + flit_bytes - 1) / flit_bytes; }

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const NetConfig&) const = default;
};

}  // namespace dfly

#pragma once

#include "net/routing_iface.hpp"

namespace dfly::routing {

/// Valiant randomised routing: every inter-group packet detours through a
/// uniformly random intermediate group (and, in the `node` variant, a random
/// router inside it). Perfectly balances load at the price of doubled path
/// length; the classic stress-test baseline.
class ValiantRouting final : public RoutingAlgorithm {
 public:
  explicit ValiantRouting(bool node_variant) : node_variant_(node_variant) {}

  std::string name() const override { return node_variant_ ? "VALn" : "VALg"; }
  RouteDecision route(Router& router, Packet& pkt) override;

 private:
  const bool node_variant_;  ///< immutable parameterisation
};

}  // namespace dfly::routing

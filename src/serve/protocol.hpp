#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

/// Wire protocol of the campaign daemon (`dflysim --serve`).
///
/// Newline-delimited JSON in both directions over a unix-domain socket. A
/// client sends exactly ONE request object per connection:
///
///   {"op":"submit","plan":"<plan-config text>","set":{"key":"value",...}}
///   {"op":"status","campaign":"c000007"}
///   {"op":"cancel","campaign":"c000007"}
///   {"op":"stats"}
///   {"op":"shutdown"}            // or {"op":"shutdown","mode":"now"}
///
/// and reads response lines until the server closes the connection. Every
/// server-originated control line is a JSON object whose FIRST key is
/// "serve" ({"serve":"accepted",...}, {"serve":"error",...}, ...); the only
/// non-control lines are the raw campaign JSONL cell records streamed after
/// a submit, which always start {"cell": — so a client separates the two
/// streams by prefix alone, byte-for-byte (see docs/DAEMON.md for the full
/// protocol and plan_cell_jsonl in core/plan.hpp for the cell format).
///
/// This header carries the request parser and the low-level socket helpers
/// shared by the server (src/serve/server.cpp) and the thin `--submit`
/// client (serve::submit_plan below); campaign execution lives in
/// session.hpp.
namespace dfly::serve {

/// One parsed client request.
struct Request {
  std::string op;         ///< submit | status | cancel | stats | shutdown
  std::string plan_text;  ///< submit: the plan config file's text
  /// submit: per-request config overrides, applied in order onto the parsed
  /// plan text exactly like repeated `--set=KEY=VALUE` flags.
  std::vector<std::pair<std::string, std::string>> sets;
  std::string campaign;  ///< status / cancel: the target campaign id
  bool drain{true};      ///< shutdown: finish active campaigns (false = cancel)
};

/// Parse one request line. Throws std::invalid_argument on malformed JSON,
/// a missing/unknown "op", or a field of the wrong type — the server turns
/// that into an {"serve":"error",...} reply instead of dying.
Request parse_request(const std::string& line);

/// Serialise `request` as its wire line (no trailing newline). parse_request
/// inverts it exactly; the `--submit` client sends this.
std::string format_request(const Request& request);

/// True when `line` is a server control line rather than a streamed campaign
/// cell record (prefix test, see the protocol comment above).
bool is_control_line(const std::string& line);

/// Pull the string value of `key` out of a control line ("" when absent) —
/// enough JSON awareness for clients and tests to read {"serve":...}
/// responses without a full parser.
std::string control_field(const std::string& line, const std::string& key);

// --- socket helpers ----------------------------------------------------------

/// Connect to a unix-domain socket; returns the fd. Throws std::runtime_error
/// (with errno text) on failure.
int connect_unix(const std::string& socket_path);

/// Write all of `data` to a socket fd, retrying short writes and EINTR.
/// Sends with MSG_NOSIGNAL so a vanished peer yields EPIPE, never SIGPIPE.
/// Returns false on any write error (the caller treats the peer as gone).
bool write_all(int fd, const std::string& data);

/// Incremental newline framing: feed raw reads into `buffer`, pop one
/// complete line (without the '\n') when available.
bool pop_line(std::string& buffer, std::string& line);

// --- client modes ------------------------------------------------------------

/// The `dflysim --submit` client: submit a plan (config text + overrides) to
/// a serving daemon and stream results — raw cell JSONL lines to `out`
/// byte-identically to a local `--plan ... --jsonl=-` run, control/progress
/// lines to `err`. Returns the process exit status: 0 = campaign completed
/// clean, 2 = campaign finished with failures/cancellation, 1 = protocol or
/// connection error.
int submit_plan(const std::string& socket_path, const std::string& plan_text,
                const std::vector<std::pair<std::string, std::string>>& sets,
                std::FILE* out, std::FILE* err);

/// The `dflysim --shutdown` client: ask the daemon to stop (drain = finish
/// running campaigns first; false = cancel them). Returns 0 on acknowledged
/// shutdown, 1 on error.
int request_shutdown(const std::string& socket_path, bool drain, std::FILE* err);

}  // namespace dfly::serve

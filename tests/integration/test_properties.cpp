// Property-based sweeps across the full feature matrix: every routing
// policy x placement policy x workload shape on the tiny system, asserting
// the invariants that must hold for ANY valid configuration. These tests
// catch interaction bugs (e.g. QoS arbitration under PAR revision, CC
// throttling with rendezvous) that single-feature suites cannot.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/json_report.hpp"
#include "core/study.hpp"
#include "routing/factory.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

/// Build a small two-job study exercising point-to-point, collective and
/// background traffic at once.
Report run_matrix_case(const std::string& routing, PlacementPolicy placement,
                       bool qos, bool cc, std::uint64_t seed) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.placement = placement;
  config.seed = seed;
  if (qos) {
    config.net.qos.num_classes = 2;
    config.net.qos.weights = {3, 1};
  }
  config.net.cc.enabled = cc;
  Study study(std::move(config));

  workloads::Fft3dParams fft;
  fft.rows = 4;
  fft.cols = 6;
  fft.msg_bytes = 4000;
  fft.iterations = 2;
  fft.compute = 5 * kUs;
  const int a = study.add_motif(std::make_unique<workloads::Fft3dMotif>(fft), 24, "FFT3D");

  workloads::UniformRandomParams ur;
  ur.iterations = 60;
  ur.msg_bytes = 2048;
  ur.interval = 500 * kNs;
  const int b = study.add_motif(std::make_unique<workloads::UniformRandomMotif>(ur), 24, "UR");

  if (qos) {
    study.set_traffic_class(a, 0);
    study.set_traffic_class(b, 1);
  }
  return study.run();
}

class FeatureMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, PlacementPolicy, bool, bool>> {};

TEST_P(FeatureMatrix, InvariantsHold) {
  const auto [routing, placement, qos, cc] = GetParam();
  const Report report = run_matrix_case(routing, placement, qos, cc, 23);

  // 1. Everything completes (no deadlock, no livelock) under the guard time.
  ASSERT_TRUE(report.completed) << routing;
  EXPECT_GT(report.makespan, 0);

  for (const AppReport& app : report.apps) {
    // 2. Communication accounting is sane.
    EXPECT_GE(app.comm_mean_ms, 0.0) << app.app;
    EXPECT_LE(app.comm_mean_ms, app.exec_ms + 1e-9) << app.app;
    EXPECT_GE(app.comm_max_ms, app.comm_mean_ms - 1e-9) << app.app;
    // 3. Latencies are positive and ordered.
    EXPECT_GT(app.lat_p50_us, 0.0) << app.app;
    EXPECT_LE(app.lat_p50_us, app.lat_p95_us + 1e-9) << app.app;
    EXPECT_LE(app.lat_p95_us, app.lat_p99_us + 1e-9) << app.app;
    // 4. Path-shape invariants: <= 6 router hops on any admissible path,
    //    non-minimal fraction is a fraction.
    EXPECT_GE(app.mean_hops, 1.0) << app.app;
    EXPECT_LE(app.mean_hops, 6.0) << app.app;
    EXPECT_GE(app.nonminimal_fraction, 0.0) << app.app;
    EXPECT_LE(app.nonminimal_fraction, 1.0) << app.app;
    EXPECT_GT(app.packets, 0u) << app.app;
  }

  // 5. Minimal routing must never take a non-minimal path.
  if (routing == "MIN") {
    for (const AppReport& app : report.apps) {
      EXPECT_EQ(app.nonminimal_fraction, 0.0) << app.app;
    }
  }
  // 6. Valiant must route (almost) everything non-minimally; same-group
  //    pairs are exempt, so just require a majority.
  if (routing == "VALg" || routing == "VALn") {
    for (const AppReport& app : report.apps) {
      EXPECT_GT(app.nonminimal_fraction, 0.5) << app.app;
    }
  }
}

std::string matrix_name(
    const ::testing::TestParamInfo<std::tuple<std::string, PlacementPolicy, bool, bool>>&
        info) {
  const auto& [routing, placement, qos, cc] = info.param;
  std::string name = routing;
  name += placement == PlacementPolicy::kRandom       ? "_rand"
          : placement == PlacementPolicy::kContiguous ? "_cont"
                                                      : "_lin";
  if (qos) name += "_qos";
  if (cc) name += "_cc";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutingsPlainRandom, FeatureMatrix,
    ::testing::Combine(::testing::ValuesIn(routing::all_routings()),
                       ::testing::Values(PlacementPolicy::kRandom),
                       ::testing::Values(false), ::testing::Values(false)),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    PaperRoutingsAllPlacements, FeatureMatrix,
    ::testing::Combine(::testing::Values(std::string("PAR"), std::string("Q-adp")),
                       ::testing::Values(PlacementPolicy::kContiguous,
                                         PlacementPolicy::kLinear),
                       ::testing::Values(false), ::testing::Values(false)),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    FeatureCombinations, FeatureMatrix,
    ::testing::Combine(::testing::Values(std::string("UGALn"), std::string("PAR"),
                                         std::string("Q-adp")),
                       ::testing::Values(PlacementPolicy::kRandom),
                       ::testing::Values(false, true), ::testing::Values(false, true)),
    matrix_name);

// ---------------------------------------------------------------------------
// Determinism: identical (config, seed) => identical run, across features.
// ---------------------------------------------------------------------------

class Determinism : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(Determinism, SameSeedSameJson) {
  const auto [qos, cc] = GetParam();
  const Report a = run_matrix_case("Q-adp", PlacementPolicy::kRandom, qos, cc, 77);
  const Report b = run_matrix_case("Q-adp", PlacementPolicy::kRandom, qos, cc, 77);
  EXPECT_EQ(report_to_json(a), report_to_json(b));
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST_P(Determinism, DifferentSeedDifferentPlacementOutcome) {
  const auto [qos, cc] = GetParam();
  const Report a = run_matrix_case("PAR", PlacementPolicy::kRandom, qos, cc, 1);
  const Report b = run_matrix_case("PAR", PlacementPolicy::kRandom, qos, cc, 2);
  // Different random placements virtually never yield the same event count.
  EXPECT_NE(a.events_executed, b.events_executed);
}

INSTANTIATE_TEST_SUITE_P(FeatureGrid, Determinism,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()),
                         [](const auto& info) {
                           std::string name;
                           name += std::get<0>(info.param) ? "qos" : "noqos";
                           name += std::get<1>(info.param) ? "_cc" : "_nocc";
                           return name;
                         });

// ---------------------------------------------------------------------------
// Traffic conservation under the feature matrix: what the NICs inject is
// what the NICs eject (per application), and link byte counters agree.
// ---------------------------------------------------------------------------

TEST(Conservation, InjectedEqualsDeliveredWithQosAndCc) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  config.seed = 9;
  config.net.qos.num_classes = 2;
  config.net.cc.enabled = true;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.iterations = 50;
  p.msg_bytes = 3000;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "S");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  // Every payload byte the job posted was delivered (sink mode consumes but
  // the NIC ejection path still counts it into the packet log).
  const std::int64_t sent = study.job(0).total_bytes_sent();
  EXPECT_EQ(sent, 24 * 50 * 3000);
  EXPECT_EQ(static_cast<std::int64_t>(report.apps[0].total_msg_mb * 1e6 + 0.5), sent);
  EXPECT_EQ(study.network().in_flight_packets(), 0);
}

}  // namespace
}  // namespace dfly

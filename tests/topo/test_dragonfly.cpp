#include "topo/dragonfly.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dfly {
namespace {

TEST(DragonflyParams, PaperSystemCounts) {
  const DragonflyParams p = DragonflyParams::paper();
  EXPECT_EQ(p.num_nodes(), 1056);
  EXPECT_EQ(p.num_routers(), 264);
  EXPECT_EQ(p.num_groups(), 33);
  EXPECT_EQ(p.radix(), 4 + 7 + 4);  // 4 terminals, 7 locals, 4 globals
}

TEST(Dragonfly, RejectsInvalidParams) {
  EXPECT_THROW(Dragonfly(DragonflyParams{1, 1, 1, 2}), std::invalid_argument);
  // a*h not a multiple of g-1:
  EXPECT_THROW(Dragonfly(DragonflyParams{2, 3, 2, 8}), std::invalid_argument);
}

TEST(Dragonfly, IdArithmeticRoundTrips) {
  const Dragonfly topo(DragonflyParams::tiny());
  for (int node = 0; node < topo.num_nodes(); ++node) {
    const int router = topo.router_of_node(node);
    const int terminal = topo.terminal_port_of_node(node);
    EXPECT_EQ(topo.node_id(router, terminal), node);
  }
  for (int router = 0; router < topo.num_routers(); ++router) {
    EXPECT_EQ(topo.router_id(topo.group_of_router(router), topo.local_index(router)), router);
  }
}

TEST(Dragonfly, PortClassificationPartitionsRadix) {
  const Dragonfly topo(DragonflyParams::paper());
  int terminals = 0, locals = 0, globals = 0;
  for (int port = 0; port < topo.radix(); ++port) {
    const int kinds = int(topo.is_terminal_port(port)) + int(topo.is_local_port(port)) +
                      int(topo.is_global_port(port));
    EXPECT_EQ(kinds, 1) << "port " << port;
    terminals += topo.is_terminal_port(port);
    locals += topo.is_local_port(port);
    globals += topo.is_global_port(port);
  }
  EXPECT_EQ(terminals, 4);
  EXPECT_EQ(locals, 7);
  EXPECT_EQ(globals, 4);
}

TEST(Dragonfly, LocalPortsAreSymmetric) {
  const Dragonfly topo(DragonflyParams::tiny());
  for (int router = 0; router < topo.num_routers(); ++router) {
    const int self = topo.local_index(router);
    for (int peer = 0; peer < topo.params().a; ++peer) {
      if (peer == self) continue;
      const int port = topo.local_port_to(router, peer);
      EXPECT_TRUE(topo.is_local_port(port));
      EXPECT_EQ(topo.local_peer_of_port(router, port), peer);
    }
  }
}

class DragonflyTopologies : public ::testing::TestWithParam<DragonflyParams> {};

TEST_P(DragonflyTopologies, GlobalWiringIsAnInvolution) {
  const Dragonfly topo(GetParam());
  for (int router = 0; router < topo.num_routers(); ++router) {
    for (int k = 0; k < topo.params().h; ++k) {
      const GlobalEndpoint far = topo.global_peer(router, k);
      EXPECT_NE(topo.group_of_router(far.router), topo.group_of_router(router));
      const GlobalEndpoint back = topo.global_peer(far.router, far.global_port);
      EXPECT_EQ(back.router, router);
      EXPECT_EQ(back.global_port, k);
    }
  }
}

TEST_P(DragonflyTopologies, EveryGroupPairHasEqualGlobalLinks) {
  const Dragonfly topo(GetParam());
  for (int s = 0; s < topo.num_groups(); ++s) {
    for (int d = 0; d < topo.num_groups(); ++d) {
      if (s == d) {
        EXPECT_TRUE(topo.gateways(s, d).empty());
        continue;
      }
      EXPECT_EQ(static_cast<int>(topo.gateways(s, d).size()), topo.links_per_group_pair())
          << "groups " << s << "->" << d;
    }
  }
}

TEST_P(DragonflyTopologies, GatewaysActuallyReachTheirGroup) {
  const Dragonfly topo(GetParam());
  for (int s = 0; s < topo.num_groups(); ++s) {
    for (int d = 0; d < topo.num_groups(); ++d) {
      for (const auto& e : topo.gateways(s, d)) {
        EXPECT_EQ(topo.group_of_router(e.router), s);
        EXPECT_EQ(topo.group_reached_by(e.router, e.global_port), d);
      }
    }
  }
}

TEST_P(DragonflyTopologies, WireIsConsistentBothWays) {
  const Dragonfly topo(GetParam());
  for (int router = 0; router < topo.num_routers(); ++router) {
    for (int port = topo.first_local_port(); port < topo.radix(); ++port) {
      const Dragonfly::Wire wire = topo.wire(router, port);
      ASSERT_GE(wire.peer_router, 0);
      const Dragonfly::Wire back = topo.wire(wire.peer_router, wire.peer_port);
      EXPECT_EQ(back.peer_router, router);
      EXPECT_EQ(back.peer_port, port);
      EXPECT_EQ(wire.global, topo.is_global_port(port));
    }
  }
}

TEST_P(DragonflyTopologies, EachRouterGlobalSlotsCoverDistinctTargets) {
  const Dragonfly topo(GetParam());
  // Over a whole group, the a*h global slots must cover every other group
  // links_per_pair times.
  for (int g = 0; g < topo.num_groups(); ++g) {
    std::multiset<int> targets;
    for (int l = 0; l < topo.params().a; ++l) {
      const int router = topo.router_id(g, l);
      for (int k = 0; k < topo.params().h; ++k) {
        targets.insert(topo.group_reached_by(router, k));
      }
    }
    for (int d = 0; d < topo.num_groups(); ++d) {
      if (d == g) {
        EXPECT_EQ(targets.count(d), 0u);
      } else {
        EXPECT_EQ(static_cast<int>(targets.count(d)), topo.links_per_group_pair());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DragonflyTopologies,
                         ::testing::Values(DragonflyParams{1, 2, 2, 5},   // 10 nodes
                                           DragonflyParams{2, 4, 2, 9},   // 72 nodes (tiny)
                                           DragonflyParams{2, 4, 2, 5},   // multi-link pairs
                                           DragonflyParams{4, 8, 4, 33},  // paper system
                                           DragonflyParams{1, 3, 2, 7}),
                         [](const auto& info) {
                           const DragonflyParams& p = info.param;
                           return "p" + std::to_string(p.p) + "a" + std::to_string(p.a) + "h" +
                                  std::to_string(p.h) + "g" + std::to_string(p.g);
                         });

}  // namespace
}  // namespace dfly

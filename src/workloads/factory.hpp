#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpi/job.hpp"

namespace dfly::workloads {

/// A configured application: the motif and the number of nodes it wants.
struct AppInstance {
  std::unique_ptr<mpi::Motif> motif;
  int nodes{0};
};

/// Build one of the paper's nine applications, sized for at most `max_nodes`
/// nodes. Process-grid applications take the largest well-shaped grid that
/// fits (e.g. Halo3D on 528 free nodes uses 8x8x8 = 512). `scale` divides
/// iteration counts for fast runs; per-message behaviour is unchanged.
///
/// Names: UR, LU, FFT3D, Halo3D, LQCD, Stencil5D, CosmoFlow, DL, LULESH.
AppInstance make_app(const std::string& name, int max_nodes, int scale = 1);

/// All nine application names in Table I order.
const std::vector<std::string>& app_names();

/// Near-square 2D factorisation: the largest nx*ny <= max_nodes with
/// ny <= 1.5*nx (LU / FFT3D process arrays; 528 -> 22x24, 140 -> 10x14).
std::pair<int, int> near_square(int max_nodes);

}  // namespace dfly::workloads

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfly {

/// How a group's a*h global-link slots map onto destination groups
/// (Hastings et al., "Comparing global link arrangements for Dragonfly
/// networks", CLUSTER'15). Both arrangements give every group pair the same
/// number of links; they differ in *which router* inside each group holds
/// the link to a given peer group, which shifts local-link load under
/// adversarial traffic.
enum class GlobalArrangement {
  kRelative,  ///< slot s of group G reaches group (G + 1 + s mod (g-1)) mod g
  kAbsolute,  ///< slot s of group G reaches group s' (= s mod (g-1), skipping G)
};

const char* to_string(GlobalArrangement arrangement);
GlobalArrangement arrangement_from_string(const std::string& name);

/// Canonical Dragonfly parameters (Kim et al., ISCA'08 notation):
///   p = compute nodes per router
///   a = routers per group (fully connected by local links)
///   h = global links per router
///   g = number of groups (fully connected by global links)
///
/// The paper's system is p=4, a=8, h=4, g=33: 1,056 nodes, 264 routers,
/// 32 global links per group (exactly one per group pair since g = a*h + 1).
struct DragonflyParams {
  int p{4};
  int a{8};
  int h{4};
  int g{33};
  GlobalArrangement arrangement{GlobalArrangement::kRelative};

  int routers_per_group() const { return a; }
  int num_groups() const { return g; }
  int num_routers() const { return a * g; }
  int num_nodes() const { return p * a * g; }
  int radix() const { return p + (a - 1) + h; }  ///< ports per router

  /// The paper's 1,056-node system.
  static DragonflyParams paper() { return DragonflyParams{4, 8, 4, 33}; }
  /// A small 72-node system (g=9,a=4,h=2,p=2) for tests.
  static DragonflyParams tiny() { return DragonflyParams{2, 4, 2, 9}; }

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const DragonflyParams&) const = default;
};

/// One endpoint of a global link: a router and its global-port index.
struct GlobalEndpoint {
  int router{-1};
  int global_port{-1};  ///< in [0, h)
};

/// Dragonfly wiring: id arithmetic for nodes/routers/groups and the global
/// link arrangement ("relative" arrangement: group G's global slot s connects
/// to group (G + 1 + s mod (g-1)) % g). Requires a*h to be a multiple of
/// (g-1) so that every group pair gets the same number of links.
///
/// Port layout per router (radix = p + a-1 + h):
///   [0, p)              terminal ports (one per attached node)
///   [p, p + a-1)        local ports (to every other router in the group)
///   [p + a-1, radix)    global ports
class Dragonfly {
 public:
  explicit Dragonfly(DragonflyParams params);

  const DragonflyParams& params() const { return params_; }
  int num_nodes() const { return params_.num_nodes(); }
  int num_routers() const { return params_.num_routers(); }
  int num_groups() const { return params_.g; }
  int radix() const { return params_.radix(); }
  int links_per_group_pair() const { return links_per_pair_; }

  // --- id arithmetic -------------------------------------------------------
  int group_of_router(int router) const { return router / params_.a; }
  int local_index(int router) const { return router % params_.a; }
  int router_id(int group, int local_idx) const { return group * params_.a + local_idx; }
  int router_of_node(int node) const { return node / params_.p; }
  int group_of_node(int node) const { return group_of_router(router_of_node(node)); }
  int node_id(int router, int terminal) const { return router * params_.p + terminal; }
  int terminal_port_of_node(int node) const { return node % params_.p; }

  // --- port classification -------------------------------------------------
  bool is_terminal_port(int port) const { return port < params_.p; }
  bool is_local_port(int port) const { return port >= params_.p && port < params_.p + params_.a - 1; }
  bool is_global_port(int port) const { return port >= params_.p + params_.a - 1; }
  int first_local_port() const { return params_.p; }
  int first_global_port() const { return params_.p + params_.a - 1; }

  /// Local port on `router` that reaches the router with local index
  /// `peer_local` in the same group. Precondition: peer_local != local_index.
  int local_port_to(int router, int peer_local) const;
  /// Local index reached through local port `port` of `router`.
  int local_peer_of_port(int router, int port) const;

  /// Global port k of `router` as a port number.
  int global_port(int k) const { return first_global_port() + k; }

  // --- global wiring -------------------------------------------------------
  /// The far end of global link (router, global-port k).
  GlobalEndpoint global_peer(int router, int k) const;
  /// Destination group of global port k of `router`.
  int group_reached_by(int router, int k) const;
  /// All global-link endpoints in `src_group` that lead to `dst_group`.
  const std::vector<GlobalEndpoint>& gateways(int src_group, int dst_group) const;

  /// Generic neighbor resolution: for a non-terminal `port` of `router`,
  /// the (router, port) on the other side of the wire.
  struct Wire {
    int peer_router{-1};
    int peer_port{-1};
    bool global{false};
  };
  Wire wire(int router, int port) const;

 private:
  DragonflyParams params_;
  int links_per_pair_{0};
  // gateways_[src_group * g + dst_group] = endpoints in src_group toward dst.
  std::vector<std::vector<GlobalEndpoint>> gateways_;
  std::vector<GlobalEndpoint> empty_;
};

}  // namespace dfly

// Tests for the group-partitioned parallel engine (sim/pdes.hpp and
// sim/partition.hpp): partition shape and lookahead, the --cell-threads
// resolution and oversubscription caps, exact sequential-replay ordering on
// synthetic same-time floods (the canonical-tie-break property), and the
// Study-level byte-identity fuzz — dirty arena + shared blueprint cache,
// thread counts 1/2/4, reports compared byte for byte against fresh
// sequential runs. Every suite name starts with Pdes so the CI TSan leg can
// select the multi-threaded fixtures with -R "Pdes".

#include "sim/pdes.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/json_report.hpp"
#include "core/parallel.hpp"
#include "core/study.hpp"
#include "net/fault.hpp"
#include "routing/factory.hpp"
#include "sim/partition.hpp"
#include "sim/rng.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing, std::uint64_t seed) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();  // 72 nodes, 9 groups
  config.routing = routing;
  config.seed = seed;
  config.scale = 64;
  return config;
}

// --- partition ---------------------------------------------------------------

TEST(PdesPartition, AssignsContiguousGroupBlocks) {
  const auto bp = SystemBlueprint::build(tiny_config("MIN", 1));
  const CellPartition part = CellPartition::build(*bp, 3);
  ASSERT_EQ(part.num_domains, 3);
  const Dragonfly& topo = bp->topo();
  // Routers of one group share a domain; domains are non-decreasing in
  // group order (contiguous blocks), and every domain is non-empty.
  std::vector<int> routers_in(3, 0);
  std::vector<std::int32_t> group_domain(static_cast<std::size_t>(topo.num_groups()), -1);
  std::int32_t prev = 0;
  for (int r = 0; r < topo.num_routers(); ++r) {
    const std::int32_t d = part.domain_of_router(r);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 3);
    std::int32_t& of_group = group_domain[static_cast<std::size_t>(topo.group_of_router(r))];
    if (of_group < 0) of_group = d;
    EXPECT_EQ(d, of_group) << "router " << r << " not in its group's domain";
    EXPECT_GE(d, prev) << "domains must be contiguous group blocks";
    prev = d;
    ++routers_in[static_cast<std::size_t>(d)];
  }
  for (int d = 0; d < 3; ++d) EXPECT_GT(routers_in[static_cast<std::size_t>(d)], 0);
  // Nodes follow their router.
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(part.domain_of_node(n), part.domain_of_router(topo.router_of_node(n)));
  }
}

TEST(PdesPartition, DomainCountClampsToGroups) {
  const auto bp = SystemBlueprint::build(tiny_config("MIN", 1));
  EXPECT_EQ(CellPartition::build(*bp, 100).num_domains, 9);  // tiny() has 9 groups
  const CellPartition single = CellPartition::build(*bp, 1);
  EXPECT_EQ(single.num_domains, 1);
  EXPECT_EQ(single.lookahead, 0) << "one domain has no cross-domain links";
}

TEST(PdesPartition, LookaheadIsMinCrossDomainPlanLatency) {
  const auto bp = SystemBlueprint::build(tiny_config("MIN", 1));
  const CellPartition part = CellPartition::build(*bp, 4);
  ASSERT_GT(part.num_domains, 1);
  ASSERT_GT(part.lookahead, 0) << "groups are only joined by latency-bearing links";
  // No cross-domain wire may be faster than the lookahead, and at least one
  // must meet it exactly (it IS the minimum).
  const Dragonfly& topo = bp->topo();
  bool met = false;
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int port = 0; port < topo.radix(); ++port) {
      const SystemBlueprint::PortPlan& plan = bp->port(r, port);
      if (plan.peer_router < 0) continue;
      if (part.domain_of_router(r) == part.domain_of_router(plan.peer_router)) continue;
      EXPECT_GE(plan.latency, part.lookahead);
      met = met || plan.latency == part.lookahead;
    }
  }
  EXPECT_TRUE(met);
}

// --- knob resolution and caps ------------------------------------------------

class CellThreadsEnvGuard {
 public:
  CellThreadsEnvGuard() {
    const char* saved = std::getenv("DFSIM_CELL_THREADS");
    if (saved != nullptr) saved_ = saved;
    had_ = saved != nullptr;
  }
  ~CellThreadsEnvGuard() {
    if (had_) {
      ::setenv("DFSIM_CELL_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("DFSIM_CELL_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_{false};
};

TEST(PdesResolve, ExplicitThenEnvThenSequential) {
  CellThreadsEnvGuard guard;
  ::setenv("DFSIM_CELL_THREADS", "3", 1);
  EXPECT_EQ(ParallelRunner::resolve_cell_threads(2), 2);  // explicit wins
  EXPECT_EQ(ParallelRunner::resolve_cell_threads(0), 3);  // env next
  ::unsetenv("DFSIM_CELL_THREADS");
  EXPECT_EQ(ParallelRunner::resolve_cell_threads(0), 1);  // default: sequential
}

TEST(PdesResolve, MalformedEnvThrows) {
  CellThreadsEnvGuard guard;
  for (const char* bad : {"", "abc", "4x", "0", "-2", "2 "}) {
    ::setenv("DFSIM_CELL_THREADS", bad, 1);
    EXPECT_THROW(ParallelRunner::resolve_cell_threads(0), std::invalid_argument) << bad;
    EXPECT_EQ(ParallelRunner::resolve_cell_threads(2), 2) << bad;  // explicit bypasses
  }
}

TEST(PdesResolve, OversubscriptionTightensJobCaps) {
  // More domains per cell -> bigger per-cell budget -> at most as many
  // concurrent cells; both caps stay usable (>= 1).
  EXPECT_LE(ParallelRunner::memory_jobs_cap(4), ParallelRunner::memory_jobs_cap(1));
  EXPECT_GE(ParallelRunner::memory_jobs_cap(4), 1);
  EXPECT_LE(ParallelRunner::hardware_jobs(4), ParallelRunner::hardware_jobs(1));
  EXPECT_GE(ParallelRunner::hardware_jobs(4), 1);
}

TEST(PdesResolve, RoutingEligibility) {
  // Per-packet policies reading only the deciding router's own state can be
  // partitioned; stateful/shared-table policies fall back to sequential.
  for (const char* name : {"MIN", "VALg", "VALn", "UGALg", "UGALn", "PAR"}) {
    EXPECT_TRUE(routing::is_cell_parallel(name)) << name;
  }
  for (const char* name : {"Q-adp", "FlowUGAL", "AppAware", "nonsense"}) {
    EXPECT_FALSE(routing::is_cell_parallel(name)) << name;
  }
}

// --- exact-replay ordering on synthetic floods -------------------------------

constexpr SimTime kLookahead = 10;

/// What a component observed: everything of the Event except seq (immediate
/// in-window events legitimately carry a provisional seq while executing —
/// the determinism contract is about order and payload, which this captures).
struct Rec {
  SimTime when;
  std::uint32_t kind;
  std::uint64_t a, b;
  bool operator==(const Rec&) const = default;
};

/// Record-only sink (the cross-domain tie-break observation point).
class RecordSink final : public Component {
 public:
  std::vector<Rec>* log{nullptr};
  void handle(Engine&, const Event& event) override {
    log->push_back({event.when, event.kind, event.a, event.b});
  }
};

/// Same-time flood generator: every event with a > 0 fans out to its
/// same-domain peers at the SAME timestamp (exercising the provisional-seq
/// batch path and its retroactive re-sequencing), to itself a little later
/// (in- or out-of-window depending on where the window boundary falls), and
/// across domains at exactly +lookahead (the tightest legal cross-domain
/// distance). Payloads tag creator and fan-out index so any reordering
/// changes some component's observed sequence.
class Flood final : public Component {
 public:
  int id{0};
  std::vector<Flood*> locals;
  std::vector<Flood*> remotes;
  Component* sink{nullptr};
  std::vector<Rec>* log{nullptr};

  void handle(Engine& engine, const Event& event) override {
    log->push_back({event.when, event.kind, event.a, event.b});
    if (event.a == 0) return;
    for (std::size_t i = 0; i < locals.size(); ++i) {
      engine.schedule_at(event.when, *locals[i], 1, event.a - 1, tag(i));
    }
    engine.schedule_in(3, *this, 2, event.a - 1, tag(99));
    for (std::size_t i = 0; i < remotes.size(); ++i) {
      engine.schedule_at(event.when + kLookahead, *remotes[i], 3, event.a - 1, tag(i));
    }
    if (sink != nullptr) {
      engine.schedule_at(event.when + kLookahead, *sink, 4, event.a - 1, tag(7));
    }
  }

 private:
  std::uint64_t tag(std::size_t i) const {
    return static_cast<std::uint64_t>(id) * 1000 + i;
  }
};

struct FloodResult {
  std::vector<std::vector<Rec>> logs;  // [flood 0..n-1, sink]
  std::uint64_t executed{0};
  SimTime now{0};
  EngineStats stats;
};

/// Run the flood net on `domains` domains with `per_domain` floods each —
/// through a PdesCell/PdesRunner when `parallel`, else on the plain engine —
/// and return everything observable.
FloodResult run_flood(std::int32_t domains, int per_domain, bool parallel,
                      SimTime time_limit, std::uint64_t generations = 3) {
  const std::size_t n = static_cast<std::size_t>(domains) * static_cast<std::size_t>(per_domain);
  FloodResult result;
  result.logs.resize(n + 1);
  std::vector<std::unique_ptr<Flood>> floods;
  RecordSink sink;
  sink.set_pdes_domain(0);
  sink.log = &result.logs[n];
  for (std::size_t i = 0; i < n; ++i) {
    floods.push_back(std::make_unique<Flood>());
    floods.back()->id = static_cast<int>(i);
    floods.back()->set_pdes_domain(static_cast<std::int32_t>(i) / per_domain);
    floods.back()->log = &result.logs[i];
    floods.back()->sink = &sink;
  }
  for (const auto& f : floods) {
    for (const auto& peer : floods) {
      if (peer.get() == f.get()) continue;
      if (peer->pdes_domain() == f->pdes_domain()) {
        f->locals.push_back(peer.get());
      } else {
        f->remotes.push_back(peer.get());
      }
    }
  }

  Engine engine;
  const auto seed_events = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(5, *floods[i], 0, generations, 5000 + i);
    }
  };
  if (parallel) {
    CellPartition part;
    part.num_domains = domains;
    part.lookahead = kLookahead;
    PdesCell cell(engine, std::move(part), /*arena=*/nullptr);
    cell.begin_setup();
    seed_events();
    PdesRunner(cell, time_limit).run();
    cell.finish();
    EXPECT_EQ(cell.stats().num_domains, domains);
    if (domains > 1) {
      EXPECT_GT(cell.stats().windows, 0u);
    }
  } else {
    seed_events();
    engine.run(time_limit);
  }
  result.executed = engine.executed();
  result.now = engine.now();
  result.stats = engine.stats();
  return result;
}

void expect_same(const FloodResult& parallel, const FloodResult& sequential) {
  EXPECT_EQ(parallel.executed, sequential.executed);
  EXPECT_EQ(parallel.now, sequential.now);
  EXPECT_EQ(parallel.stats.scheduled_by_kind, sequential.stats.scheduled_by_kind);
  EXPECT_EQ(parallel.stats.executed_by_kind, sequential.stats.executed_by_kind);
  ASSERT_EQ(parallel.logs.size(), sequential.logs.size());
  for (std::size_t c = 0; c < parallel.logs.size(); ++c) {
    EXPECT_EQ(parallel.logs[c], sequential.logs[c]) << "component " << c
                                                    << " observed a different sequence";
  }
}

TEST(PdesOrder, TwoDomainSameTimeFloodReplaysSequentialOrder) {
  const SimTime limit = kSec;
  expect_same(run_flood(2, 2, /*parallel=*/true, limit),
              run_flood(2, 2, /*parallel=*/false, limit));
}

TEST(PdesOrder, ThreeDomainSameTimeFloodReplaysSequentialOrder) {
  const SimTime limit = kSec;
  expect_same(run_flood(3, 2, /*parallel=*/true, limit),
              run_flood(3, 2, /*parallel=*/false, limit));
}

TEST(PdesOrder, TimeLimitTruncatesExactlyLikeSequential) {
  // A limit landing mid-cascade (between the seed wave at t=5 and later
  // cross-domain waves): events at exactly the limit execute, later ones
  // don't, byte-for-byte like Engine::run(limit).
  for (const SimTime limit : {SimTime{5}, SimTime{15}, SimTime{18}, SimTime{21}}) {
    expect_same(run_flood(2, 2, true, limit, /*generations=*/4),
                run_flood(2, 2, false, limit, /*generations=*/4));
  }
}

TEST(PdesOrder, CrossDomainSameTimeTieBreakIsCreationOrder) {
  // Floods with zero generations left still record; with generations = 1
  // each seed fires exactly one cross-domain wave into the shared sink, all
  // at t = 5 + lookahead: the sink's order must be the sequential creation
  // order (covered by expect_same, asserted explicitly here).
  const FloodResult par = run_flood(2, 2, true, kSec, /*generations=*/1);
  const FloodResult seq = run_flood(2, 2, false, kSec, /*generations=*/1);
  expect_same(par, seq);
  const std::vector<Rec>& sink = par.logs.back();
  ASSERT_EQ(sink.size(), 4u);  // one kind-4 record per seed flood
  for (const Rec& rec : sink) EXPECT_EQ(rec.when, 5 + kLookahead);
  for (std::size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink[i].b, i * 1000 + 7) << "tie at t=" << 5 + kLookahead
                                       << " must break in creation order";
  }
}

TEST(PdesOrder, EmptyRunCompletesImmediately) {
  Engine engine;
  CellPartition part;
  part.num_domains = 2;
  part.lookahead = kLookahead;
  PdesCell cell(engine, std::move(part), nullptr);
  cell.begin_setup();
  PdesRunner(cell, kSec).run();
  cell.finish();
  EXPECT_EQ(engine.executed(), 0u);
  EXPECT_EQ(cell.stats().windows, 0u);
}

// --- Study-level byte identity ----------------------------------------------

Report run_study_cell(const StudyConfig& config, const std::string& app, int nodes,
                      SimArena* arena) {
  Study study(config, arena);
  study.add_app(app, nodes);
  return study.run();
}

TEST(PdesStudy, ParallelCellEngagesAndFallsBackAsDocumented) {
  StudyConfig eligible = tiny_config("MIN", 3);
  eligible.cell_threads = 2;
  {
    Study study(eligible);
    study.add_app("UR", 24);
    study.run();
    ASSERT_NE(study.pdes(), nullptr) << "MIN + cell_threads=2 must run partitioned";
    EXPECT_EQ(study.pdes()->stats().num_domains, 2);
    EXPECT_GT(study.pdes()->stats().windows, 0u);
    EXPECT_GT(study.pdes()->stats().cross_domain_events, 0u);
  }
  StudyConfig stateful = tiny_config("Q-adp", 3);
  stateful.cell_threads = 2;
  {
    Study study(stateful);
    study.add_app("UR", 24);
    study.run();
    EXPECT_EQ(study.pdes(), nullptr) << "Q-adp shares a Q-table: sequential fallback";
  }
  StudyConfig observed = tiny_config("MIN", 3);
  observed.cell_threads = 2;
  observed.observability.keep_packet_records = true;
  {
    Study study(observed);
    study.add_app("UR", 24);
    study.run();
    EXPECT_EQ(study.pdes(), nullptr) << "per-packet records need the global order";
  }
}

// Cells of deliberately different shapes — routings (parallel-eligible and
// fallback), apps, node counts, QoS classes, link faults — run back-to-back
// at cell_threads 2 and 4 through ONE dirty arena and ONE shared blueprint
// cache; every report must match a fresh sequential run byte for byte. This
// is the dirty-state motif of test_arena.cpp pointed at the parallel engine:
// leaked domain state, a stale shard, or a mis-sequenced merge shows up as a
// mismatch in some cell.
TEST(PdesStudy, ByteIdentityFuzzAcrossThreadCountsAndCellShapes) {
  const std::vector<std::string> apps{"UR", "FFT3D", "Halo3D", "LU"};
  const std::vector<std::string> routings{"MIN", "UGALg", "PAR", "Q-adp"};
  const std::vector<int> node_counts{16, 24, 32};
  const Dragonfly topo(DragonflyParams::tiny());

  struct Cell {
    StudyConfig config;
    std::string app;
    int nodes;
  };
  Rng rng(20260808);
  std::vector<Cell> cells;
  for (int i = 0; i < 6; ++i) {
    Cell cell;
    cell.config = tiny_config(routings[rng.next_below(routings.size())],
                              200 + rng.next_below(1000));
    cell.app = apps[rng.next_below(apps.size())];
    cell.nodes = node_counts[rng.next_below(node_counts.size())];
    if (rng.next_bernoulli(0.25)) cell.config.net.qos.num_classes = 2;
    if (rng.next_bernoulli(0.33)) {
      // Degrading a global link only ADDS latency, so the plan-derived
      // lookahead stays a safe lower bound — assert identity under it.
      cell.config.faults = FaultPlan::degrade_global(topo, 0, 5, /*slowdown=*/4,
                                                     /*extra_latency=*/500);
    }
    cells.push_back(std::move(cell));
  }

  // Sequential references first (fresh, no arena), then the parallel sweeps
  // through one arena + cache with the dirty-state carried cell to cell.
  std::vector<std::string> reference;
  for (const Cell& cell : cells) {
    reference.push_back(
        report_to_json(run_study_cell(cell.config, cell.app, cell.nodes, nullptr)));
  }
  for (const int threads : {2, 4}) {
    SimArena arena;
    BlueprintCache cache;
    ScopedBlueprintCacheBinding binding(&cache);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      StudyConfig config = cells[i].config;
      config.cell_threads = threads;
      const std::string report =
          report_to_json(run_study_cell(config, cells[i].app, cells[i].nodes, &arena));
      EXPECT_EQ(report, reference[i])
          << "cell " << i << " (" << cells[i].app << " on " << cells[i].config.routing
          << ", seed " << cells[i].config.seed << ") diverged at cell_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dfly

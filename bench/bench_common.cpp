#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

namespace dfly::bench {

Options Options::parse(int argc, char** argv, int default_scale) {
  Options options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = std::atoi(arg.c_str() + 8);
      if (options.scale < 1) options.scale = 1;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--routing=", 0) == 0) {
      options.routing = arg.substr(10);
    } else if (arg == "--full") {
      options.scale = 1;
    } else if (arg == "--quick") {
      options.scale = 32;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("options: --scale=N --seed=N --routing=NAME --full --quick\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

std::vector<std::string> Options::routings() const {
  if (!routing.empty()) return {routing};
  return routing::paper_routings();
}

StudyConfig Options::config(const std::string& routing_name) const {
  StudyConfig config;
  config.topo = DragonflyParams::paper();
  config.routing = routing_name;
  config.seed = seed;
  config.scale = scale;
  return config;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace dfly::bench

#include <cassert>
#include <span>

#include "mpi/job.hpp"
#include "mpi/rank.hpp"

namespace dfly::mpi {

Task RankCtx::send(int dst_rank, std::int64_t bytes, int tag) {
  const ReqId id = isend(dst_rank, bytes, tag);
  co_await wait(id);
}

Task RankCtx::recv(int src_rank, int tag) {
  const ReqId id = irecv(src_rank, tag);
  co_await wait(id);
}

Task RankCtx::wait_all(std::span<const ReqId> ids) {
  // Waiting sequentially is equivalent: the rank unblocks when the slowest
  // request completes, and each wait accounts only the residual block time.
  for (const ReqId id : ids) co_await wait(id);
}

Task RankCtx::barrier() {
  // Zero-payload allreduce; 8B control messages model the header exchange.
  co_await allreduce(8);
}

Task RankCtx::allreduce(std::int64_t bytes) {
  // SST/Firefly arranges ranks in a binary tree: the payload is reduced from
  // the leaves to the root and broadcast back down. The down-phase fan-out
  // posts both child messages back-to-back (peak ingress = 2 messages).
  const int tag_up = next_coll_tag();
  const int tag_down = next_coll_tag();
  const int n = size();
  const int me = rank_;
  const int left = 2 * me + 1;
  const int right = 2 * me + 2;
  const int parent = (me - 1) / 2;

  if (left < n && right < n) {
    const ReqId kids[2] = {irecv(left, tag_up), irecv(right, tag_up)};
    co_await wait(kids[0]);
    co_await wait(kids[1]);
  } else if (left < n) {
    co_await recv(left, tag_up);
  }

  if (me != 0) {
    co_await send(parent, bytes, tag_up);
    co_await recv(parent, tag_down);
  }

  // Fan-out is at most two children; both sends are posted back-to-back
  // before the first wait so the ingress burst is preserved.
  ReqId down[2];
  int n_down = 0;
  if (left < n) down[n_down++] = isend(left, bytes, tag_down);
  if (right < n) down[n_down++] = isend(right, bytes, tag_down);
  for (int i = 0; i < n_down; ++i) co_await wait(down[i]);
}

Task RankCtx::alltoall(std::int64_t bytes, std::span<const int> members) {
  // SST's multi-step ring exchange: in round i, member m sends to member
  // m+i and receives from member m-i. One send per round, so the operation
  // peak ingress is a single message (§IV).
  const int n = static_cast<int>(members.size());
  int me_idx = -1;
  for (int i = 0; i < n; ++i) {
    if (members[static_cast<std::size_t>(i)] == rank_) {
      me_idx = i;
      break;
    }
  }
  assert(me_idx >= 0 && "caller is not a member of the communicator");
  const int tag = next_coll_tag();
  for (int i = 1; i < n; ++i) {
    const int to = members[static_cast<std::size_t>((me_idx + i) % n)];
    const int from = members[static_cast<std::size_t>((me_idx - i + n) % n)];
    const ReqId r = irecv(from, tag);
    const ReqId s = isend(to, bytes, tag);
    co_await wait(r);
    co_await wait(s);
  }
}

}  // namespace dfly::mpi

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event.hpp"
#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace dfly {

class PdesCell;

/// Cheap per-event-kind schedule/execute counters (Engine::stats()). Kinds
/// 0..15 get their own slot; anything larger lands in the overflow slot so a
/// stray kind cannot index out of bounds. The counters cost one array
/// increment per schedule/dispatch and exist so perf work can see where event
/// volume lives (bench_micro_engine / bench_memory surface them) — they never
/// appear in simulation reports.
struct EngineStats {
  static constexpr std::size_t kKinds = 16;
  std::array<std::uint64_t, kKinds + 1> scheduled_by_kind{};
  std::array<std::uint64_t, kKinds + 1> executed_by_kind{};

  static std::size_t slot(std::uint32_t kind) {
    return kind < kKinds ? kind : kKinds;
  }
  std::uint64_t scheduled_total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : scheduled_by_kind) sum += v;
    return sum;
  }
  std::uint64_t executed_total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : executed_by_kind) sum += v;
    return sum;
  }
};

/// Thrown by Engine::run() when the cooperative wall-clock deadline set with
/// set_wall_deadline() expires. Campaign drivers (core/plan.hpp) catch this
/// to abandon a hung cell and record it as a timeout instead of waiting on it
/// forever; the engine is left in a consistent (tear-down-able) state.
class WallDeadlineExceeded : public std::runtime_error {
 public:
  WallDeadlineExceeded() : std::runtime_error("simulation wall-clock deadline exceeded") {}
};

/// Deterministic sequential discrete-event engine.
///
/// Replaces the SST core for this study: the paper's metrics are statistics
/// over simulated time, so a sequential deterministic engine reproduces them
/// exactly and makes every run replayable from a seed.
///
/// Ordering: events fire in (when, seq) order where seq is the global
/// scheduling order, i.e. same-time events fire in the order scheduled.
///
/// The pending-event queue is an index-based 4-ary min-heap (not the
/// std::push_heap binary heap), split into a key array ((when, seq), 16
/// bytes) and a payload array (target/kind/a/b): half the depth of a binary
/// heap, and the four children compared at each sift level share one cache
/// line, so both schedule and pop touch fewer lines on the multi-million-
/// event runs that dominate a study. run() additionally drains all events
/// carrying the same timestamp in one batch (see run()).
///
/// Thread-safety: none — an Engine, like every component scheduled on it,
/// belongs to exactly one simulation cell. Parallel sweeps (ParallelRunner)
/// run one Engine per worker-owned cell and never share one across threads.
class Engine {
 public:
  // Special members are out-of-line: closures_ holds unique_ptrs to the
  // nested Closure type, which is only complete inside engine.cpp.
  Engine();
  ~Engine();

  // Movable (so a per-worker arena can lend its storage to the current cell
  // and take it back afterwards) but not copyable. Pending events hold raw
  // Component pointers, so only idle engines should be moved in practice;
  // the arena moves them empty.
  Engine(Engine&& other) noexcept;
  Engine& operator=(Engine&& other) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `target->handle` at absolute time `when` (>= now).
  ///
  /// When this engine is one domain of a group-partitioned parallel cell
  /// (src/sim/pdes.hpp), the call is routed through the cell so cross-domain
  /// events land in the creating domain's emission log instead of a foreign
  /// heap; the sequential path pays one predicted-not-taken branch.
  void schedule_at(SimTime when, Component& target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0);

  /// Schedule after a relative delay (>= 0).
  void schedule_in(SimTime delay, Component& target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + delay, target, kind, a, b);
  }

  /// Schedule an owned closure. The closure is one-shot: its slot is
  /// recycled as soon as it fires, so periodic call_in chains do not
  /// accumulate memory over a long run. Slot adapters themselves are pooled
  /// and the callback lives in an InlineFn, so once the engine has grown to a
  /// cell's peak concurrent-closure count, re-arming a slot performs no heap
  /// allocation for any capture up to InlineFn::kInlineBytes (larger ones
  /// fall back to one heap block per arm).
  void call_at(SimTime when, InlineFn fn);
  void call_in(SimTime delay, InlineFn fn) { call_at(now_ + delay, std::move(fn)); }

  /// Run until the queue is empty or `until` is passed. Returns the number
  /// of events executed. Events at exactly `until` are executed.
  ///
  /// Time semantics: the clock only advances when an event executes. After
  /// run(until) returns, now() is the timestamp of the last executed event —
  /// it is NOT bumped to `until` when the queue drains early. Components can
  /// therefore schedule "at now()" after a drained run without time
  /// travelling, and makespan == now() is exact.
  ///
  /// All events sharing the front timestamp are popped in one batch before
  /// any of them executes, so the heap is not re-sifted between same-time
  /// events; events their handlers schedule at the same timestamp join the
  /// next batch (their seq is larger than every already-popped event, so
  /// FIFO order is preserved).
  std::uint64_t run(SimTime until = kSec * 3600);

  /// Execute at most one event; returns false when the queue is empty.
  bool step();

  bool empty() const { return queued() == 0; }
  std::size_t queued() const { return keys_.size() + (batch_.size() - batch_pos_); }
  std::uint64_t executed() const { return executed_; }

  /// Drop every pending event (used by tests and by teardown). Safe to call
  /// from inside a handler: the rest of the current same-time batch is
  /// dropped too. Armed closures are disarmed (their captures destroyed) but
  /// their pooled slot adapters are kept for reuse.
  void clear();

  /// Return the engine to its just-constructed state — clock at 0, sequence
  /// and executed counters zeroed, queue empty — while KEEPING every piece of
  /// backing storage: the heap key/payload arrays, the same-time batch
  /// scratch, and the pooled closure slots with their free list. A reused
  /// engine therefore replays a same-shape cell without re-growing from
  /// empty (see core/arena.hpp). Per-cell peak counters are zeroed too.
  void reset();

  /// Pre-size the queue for `events` concurrently-pending events and pool
  /// `closures` slot adapters, so a run that stays within these bounds never
  /// allocates from schedule_at/call_at.
  void reserve(std::size_t events, std::size_t closures = 0);

  /// Arm a cooperative wall-clock watchdog: run() checks the real clock every
  /// kDeadlineStride events and throws WallDeadlineExceeded once `deadline`
  /// has passed, so a simulation stuck in a pathological state (livelocked
  /// protocol, runaway event chain) is abandoned in bounded real time instead
  /// of hung on. The check costs one predictable branch per event when armed
  /// and nothing measurable when not. clear_wall_deadline() (and reset())
  /// disarm it.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
    has_wall_deadline_ = true;
    deadline_stride_ = 0;
  }
  void clear_wall_deadline() { has_wall_deadline_ = false; }
  bool has_wall_deadline() const { return has_wall_deadline_; }

  /// Events executed between wall-clock reads while a deadline is armed —
  /// frequent enough that a hung cell is caught within a fraction of a
  /// second, rare enough that steady_clock::now() never shows up in a
  /// profile. The *first* check happens on the first event, so even a
  /// zero-event-budget deadline fires promptly.
  static constexpr std::uint32_t kDeadlineStride = 4096;

  /// Closures allocated by call_at/call_in that have not fired yet
  /// (test hook for the reclamation guarantee).
  std::size_t live_closures() const { return live_closures_; }

  /// Per-event-kind schedule/execute counters since construction or the last
  /// reset(). Observability only — never part of a simulation report.
  const EngineStats& stats() const { return stats_; }

  /// Domain index of this engine inside a parallel cell (0 when sequential
  /// or when this engine is the cell's first domain).
  std::int32_t pdes_domain_id() const { return pdes_domain_id_; }

  /// High-water mark of concurrently-queued events since construction or the
  /// last reset() (sizes the next cell's reserve carry-forward).
  std::size_t peak_queued() const { return peak_queued_; }
  /// Current key/payload array capacity (events the queue holds alloc-free).
  std::size_t event_capacity() const { return keys_.capacity(); }
  /// Pooled closure slot adapters (live + free).
  std::size_t closure_capacity() const { return closures_.size(); }

 private:
  /// Heap ordering key: (when, seq) packed into one 128-bit integer, `when`
  /// in the high 64 bits (event times are never negative, so the unsigned
  /// reinterpretation preserves order). A sift comparison is one branchless
  /// integer compare, and the four children examined at each level span a
  /// single cache line. Same __uint128_t extension Rng already relies on.
  using HeapKey = __uint128_t;

  static HeapKey make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<std::uint64_t>(when)) << 64) | seq;
  }
  static SimTime key_when(HeapKey key) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(key >> 64));
  }
  static std::uint64_t key_seq(HeapKey key) { return static_cast<std::uint64_t>(key); }

  struct Payload {
    Component* target;
    std::uint32_t kind;
    std::uint64_t a, b;
  };
  /// A popped event (key + payload reunited).
  struct Entry {
    HeapKey key;
    Payload load;
  };

  class Closure;

  void push(HeapKey key, Payload load);
  Entry pop_min();
  void sift_up(std::size_t i);
  void dispatch(const Entry& entry);
  void release_closure(std::uint32_t slot);

  /// Parallel-cell hooks (PdesCell only). push_raw inserts an event with a
  /// caller-chosen sequence number, bypassing both next_seq_ and the pdes
  /// routing in schedule_at — the cell uses it to deliver barrier-merged
  /// events with their canonical global seq. attach_pdes/detach_pdes bind
  /// this engine to a cell as domain `domain_id`.
  void push_raw(SimTime when, std::uint64_t seq, Component& target,
                std::uint32_t kind, std::uint64_t a, std::uint64_t b) {
    push(make_key(when, seq), Payload{&target, kind, a, b});
  }
  void attach_pdes(PdesCell* cell, std::int32_t domain_id) {
    pdes_ = cell;
    pdes_domain_id_ = domain_id;
  }
  void detach_pdes() {
    pdes_ = nullptr;
    pdes_domain_id_ = 0;
  }
  /// Seq of the event currently being dispatched (the would-be creator seq
  /// for anything its handler schedules).
  std::uint64_t cur_seq() const { return cur_seq_; }

  friend class PdesCell;
  friend class PdesRunner;

  /// One-per-event watchdog probe: counts down kDeadlineStride events, then
  /// reads the real clock and throws WallDeadlineExceeded when it has passed
  /// the armed deadline. The countdown starts at 0 so the very first event
  /// after arming performs a check.
  void check_wall_deadline() {
    if (!has_wall_deadline_) return;
    if (deadline_stride_-- != 0) return;
    deadline_stride_ = kDeadlineStride;
    if (std::chrono::steady_clock::now() >= wall_deadline_) throw WallDeadlineExceeded();
  }

  // Index-based 4-ary min-heap on (when, seq); keys_ and payloads_ are
  // parallel arrays moved in lockstep by the sift routines, with capacity
  // growth kept synchronised by push().
  std::vector<HeapKey> keys_;
  std::vector<Payload> payloads_;
  std::vector<Entry> batch_;  ///< same-timestamp scratch drained by run()
  std::size_t batch_pos_{0};  ///< next batch entry to dispatch
  // Pooled one-shot closure adapters: slots are created on demand, disarmed
  // (capture destroyed) when they fire, and re-armed from the free list —
  // the adapter objects themselves persist across firings and reset().
  std::vector<std::unique_ptr<Closure>> closures_;
  std::vector<std::uint32_t> free_closure_slots_;
  std::size_t live_closures_{0};
  SimTime now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::size_t peak_queued_{0};
  EngineStats stats_;
  // Parallel-cell binding: when pdes_ is set, schedule_at routes through the
  // cell (src/sim/pdes.hpp) instead of pushing into the local heap directly.
  PdesCell* pdes_{nullptr};
  std::int32_t pdes_domain_id_{0};
  std::uint64_t cur_seq_{0};  ///< seq of the event currently dispatching
  // Cooperative wall-clock watchdog (see set_wall_deadline()).
  std::chrono::steady_clock::time_point wall_deadline_{};
  std::uint32_t deadline_stride_{0};
  bool has_wall_deadline_{false};
};

}  // namespace dfly

#include "core/parallel.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/mutex.hpp"

namespace dfly {

ParallelRunner::ParallelRunner(int jobs) : jobs_(resolve_jobs(jobs, 1)) {}

int ParallelRunner::resolve_jobs(int requested, int fallback) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DFSIM_JOBS")) {
    // Strict full-string parse. std::atoi silently turned "4x" into 4 jobs
    // and "abc" into the fallback — a typo'd environment either ran the
    // wrong worker count or ignored the user's intent without a word.
    char* end = nullptr;
    errno = 0;
    const long jobs = std::strtol(env, &end, 10);
    // strtol tolerates leading whitespace and a '+'; a *strict* value is
    // digits only, so require the first character to be one.
    const bool starts_with_digit = env[0] >= '0' && env[0] <= '9';
    if (!starts_with_digit || end == env || *end != '\0' || errno == ERANGE || jobs < 1 ||
        jobs > INT_MAX) {
      throw std::invalid_argument("DFSIM_JOBS must be a positive integer, got '" +
                                  std::string(env) + "'");
    }
    return static_cast<int>(jobs);
  }
  return fallback < 1 ? 1 : fallback;
}

int ParallelRunner::resolve_cell_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DFSIM_CELL_THREADS")) {
    // Same strict full-string parse as DFSIM_JOBS: a typo'd value must fail
    // loudly, not silently run the wrong (or no) intra-cell parallelism.
    char* end = nullptr;
    errno = 0;
    const long threads = std::strtol(env, &end, 10);
    const bool starts_with_digit = env[0] >= '0' && env[0] <= '9';
    if (!starts_with_digit || end == env || *end != '\0' || errno == ERANGE || threads < 1 ||
        threads > INT_MAX) {
      throw std::invalid_argument("DFSIM_CELL_THREADS must be a positive integer, got '" +
                                  std::string(env) + "'");
    }
    return static_cast<int>(threads);
  }
  return 1;
}

namespace {

/// The memory actually available to THIS process: the host's physical RAM,
/// further limited by a cgroup memory ceiling when one is set (containers
/// and CI runners routinely cap a process far below the host's RAM, and
/// sysconf reports the host). Returns 0 when nothing can be determined.
std::uint64_t available_memory_bytes() {
  std::uint64_t physical = 0;
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGE_SIZE)
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page = ::sysconf(_SC_PAGE_SIZE);
  if (pages > 0 && page > 0) {
    physical = static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
  }
#endif
  // cgroup v2, then v1. The files hold a byte count, "max" (no limit), or a
  // value so large it means "no limit" — anything unparsable is ignored.
  for (const char* path : {"/sys/fs/cgroup/memory.max",
                           "/sys/fs/cgroup/memory/memory.limit_in_bytes"}) {
    std::FILE* f = std::fopen(path, "re");
    if (f == nullptr) continue;
    unsigned long long limit = 0;
    const int matched = std::fscanf(f, "%llu", &limit);
    std::fclose(f);
    if (matched == 1 && limit > 0 &&
        (physical == 0 || static_cast<std::uint64_t>(limit) < physical)) {
      physical = static_cast<std::uint64_t>(limit);
    }
    break;  // only consult the hierarchy that exists
  }
  return physical;
}

}  // namespace

int ParallelRunner::memory_jobs_cap(int cell_threads) {
  if (cell_threads < 1) cell_threads = 1;
  const std::uint64_t budget =
      kCellBudgetBytes + static_cast<std::uint64_t>(cell_threads - 1) * kDomainBudgetBytes;
  const std::uint64_t memory = available_memory_bytes();
  if (memory > 0) {
    const std::uint64_t cells = memory / 2 / budget;
    if (cells < 1) return 1;
    if (cells > 256) return 256;
    return static_cast<int>(cells);
  }
  return 12;  // the pre-blueprint fixed cap, kept as the conservative fallback
}

int ParallelRunner::hardware_jobs(int cell_threads) {
  if (cell_threads < 1) cell_threads = 1;
  int jobs = static_cast<int>(std::thread::hardware_concurrency()) / cell_threads;
  if (jobs < 1) jobs = 1;
  const int cap = memory_jobs_cap(cell_threads);
  return jobs < cap ? jobs : cap;
}

std::string WorkerErrors::summary() const {
  std::string out;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (workers[w].failures == 0) continue;
    if (!out.empty()) out += "; ";
    out += "worker " + std::to_string(w) + ": " + std::to_string(workers[w].failures) +
           (workers[w].failures == 1 ? " failure" : " failures") + ", first: " +
           workers[w].first;
  }
  return out;
}

namespace {

/// what() of the in-flight exception, with a stable spelling for non-
/// std::exception throwables.
std::string current_exception_message() {
  try {
    throw;
  } catch (const std::exception& error) {
    return error.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void ParallelRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                                 WorkerErrors* errors) const {
  if (errors != nullptr) errors->workers.clear();
  if (n == 0) return;
  const int workers = jobs_ < static_cast<int>(n) ? jobs_ : static_cast<int>(n);
  // stop_early: legacy mode — the first failure stops new claims and is
  // rethrown after the pool drains. With an errors sink the caller wants
  // every cell attempted and the full per-worker picture instead.
  const bool stop_early = errors == nullptr;
  WorkerErrors collected;
  collected.workers.resize(static_cast<std::size_t>(workers < 1 ? 1 : workers));
  // Each worker (including the sequential fast path) binds a persistent
  // SimArena for its run: the first cell grows the storage, every later cell
  // on the same worker reuses it in place. Reuse is output-neutral, so cell
  // -> worker assignment never affects results (see core/arena.hpp);
  // --no-arena / DFSIM_NO_ARENA turns the binding off.
  //
  // All workers additionally share ONE BlueprintCache: the immutable
  // topology/wiring/routing plan of each distinct cell shape is built once
  // and read concurrently by every worker (--no-blueprint / DFSIM_NO_BLUEPRINT
  // turns the sharing off; cells then build private plans).
  const bool use_arena = arena_enabled();
  BlueprintCache blueprint_cache;
  BlueprintCache* shared_cache = blueprint_enabled() ? &blueprint_cache : nullptr;
  // The cross-worker error channel, shaped so the thread-safety analysis can
  // prove the discipline: `first` is only touched under `mutex`.
  struct FirstError {
    Mutex mutex;
    std::exception_ptr first GUARDED_BY(mutex);

    std::exception_ptr take() {
      const MutexLock lock(mutex);
      return first;
    }
  } error;
  if (workers <= 1) {
    SimArena arena;
    ScopedArenaBinding binding(use_arena ? &arena : nullptr);
    ScopedBlueprintCacheBinding cache_binding(shared_cache);
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        WorkerErrors::Worker& me = collected.workers[0];
        if (me.failures++ == 0) {
          me.first = current_exception_message();
          const MutexLock lock(error.mutex);
          error.first = std::current_exception();
        }
        if (stop_early) break;
      }
    }
  } else {
    // Work stealing via a shared counter: cells are claimed in index order,
    // so a cheap cell never waits behind an expensive one on the same worker.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    auto worker = [&](std::size_t id) {
      SimArena arena;
      ScopedArenaBinding binding(use_arena ? &arena : nullptr);
      ScopedBlueprintCacheBinding cache_binding(shared_cache);
      WorkerErrors::Worker& me = collected.workers[id];
      for (;;) {
        if (stop_early && failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          if (me.failures++ == 0) me.first = current_exception_message();
          const MutexLock lock(error.mutex);
          if (!error.first) error.first = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (std::thread& thread : pool) thread.join();
  }
  if (errors != nullptr) {
    *errors = std::move(collected);
    return;  // diagnostic mode: the caller owns failure policy, no rethrow
  }
  if (std::exception_ptr first = error.take()) std::rethrow_exception(first);
}

// --- SubmissionQueue ---------------------------------------------------------

SubmissionQueue::SubmissionQueue(int jobs, int fallback)
    : jobs_(ParallelRunner::resolve_jobs(jobs, fallback)),
      cache_(std::make_unique<BlueprintCache>()) {
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int id = 0; id < jobs_; ++id) {
    workers_.emplace_back(&SubmissionQueue::worker_main, this, static_cast<std::size_t>(id));
  }
}

SubmissionQueue::~SubmissionQueue() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SubmissionQueue::worker_main(std::size_t id) {
  // Mirrors ParallelRunner's per-worker setup, but for the pool's whole
  // lifetime: the arena carries hot storage and the shared cache carries
  // blueprints from campaign to campaign, not just cell to cell.
  SimArena arena;
  ScopedArenaBinding binding(arena_enabled() ? &arena : nullptr);
  ScopedBlueprintCacheBinding cache_binding(blueprint_enabled() ? cache_.get() : nullptr);
  MutexLock lock(mutex_);
  for (;;) {
    // Explicit wait loop (not a predicate lambda) so the thread-safety
    // analysis sees every read of the guarded fields under the lock.
    while (!stopping_ && pending_.empty()) lock.wait(work_cv_);
    if (pending_.empty()) {
      if (stopping_) return;
      continue;
    }
    Batch* batch = pending_.front();
    const std::size_t i = batch->next++;
    if (batch->next >= batch->n) pending_.pop_front();  // fully claimed
    lock.unlock();
    bool threw = false;
    std::string message;
    try {
      (*batch->fn)(i);
    } catch (...) {
      threw = true;
      message = current_exception_message();
    }
    lock.lock();
    if (threw) {
      WorkerErrors::Worker& me = batch->errors.workers[id];
      if (me.failures++ == 0) me.first = std::move(message);
    }
    if (--batch->remaining == 0) batch->done_cv.notify_all();
  }
}

void SubmissionQueue::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                                  WorkerErrors* errors) {
  if (errors != nullptr) {
    errors->workers.clear();
    errors->workers.resize(static_cast<std::size_t>(jobs_));
  }
  if (n == 0) return;
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  batch.remaining = n;
  batch.errors.workers.resize(static_cast<std::size_t>(jobs_));
  MutexLock lock(mutex_);
  if (stopping_) throw std::runtime_error("SubmissionQueue: pool is shutting down");
  pending_.push_back(&batch);
  work_cv_.notify_all();
  while (batch.remaining != 0) lock.wait(batch.done_cv);
  if (errors != nullptr) *errors = std::move(batch.errors);
}

}  // namespace dfly

#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace dfly {

class Router;

/// Output decision for one packet at one router.
struct RouteDecision {
  std::int16_t out_port{-1};
  std::int16_t out_vc{0};
};

/// Routing policy interface. One instance serves the whole network; policies
/// with per-router state (Q-adaptive) keep it internally, indexed by router
/// id. `route` is invoked exactly once per packet per router, at arrival.
class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Decide the output port/VC for `pkt` sitting at `router`. Must also
  /// advance pkt.phase / flags to reflect the decision.
  virtual RouteDecision route(Router& router, Packet& pkt) = 0;

  /// Called after `pkt` arrived at `router` (before route). Learning
  /// algorithms use this to emit feedback toward pkt.prev_router.
  virtual void on_arrival(Router& /*router*/, Packet& /*pkt*/) {}

  /// Called when `router` actually transmits `pkt` on `out_port`.
  virtual void on_forward(Router& /*router*/, const Packet& /*pkt*/, int /*out_port*/) {}
};

}  // namespace dfly

#include "stats/packet_log.hpp"

namespace dfly {

PacketLog::PacketLog(int num_apps, bool keep_records, SimTime bucket_width) {
  reset(num_apps, keep_records, bucket_width);
}

void PacketLog::reset(int num_apps, bool keep_records, SimTime bucket_width) {
  const auto apps = static_cast<std::size_t>(num_apps);
  keep_records_ = keep_records;
  per_app_lat_.resize(apps);
  for (Histogram& h : per_app_lat_) h.clear();
  system_lat_.clear();
  per_app_bytes_.resize(apps);
  for (TimeSeries& t : per_app_bytes_) t.reset(bucket_width);
  system_bytes_.reset(bucket_width);
  per_app_count_.assign(apps, 0);
  per_app_nonmin_.assign(apps, 0);
  per_app_hops_.assign(apps, 0);
  records_.clear();
}

void PacketLog::record(const PacketRecord& record) {
  const auto app = static_cast<std::size_t>(record.app_id);
  const SimTime latency = record.eject_time - record.wire_time;
  per_app_lat_[app].add(latency);
  system_lat_.add(latency);
  per_app_bytes_[app].add(record.eject_time, static_cast<double>(record.bytes));
  system_bytes_.add(record.eject_time, static_cast<double>(record.bytes));
  per_app_count_[app]++;
  per_app_hops_[app] += static_cast<std::uint64_t>(record.hops);
  if (record.nonminimal) per_app_nonmin_[app]++;
  if (keep_records_) records_.push_back(record);
}

void PacketLog::merge_from(const PacketLog& other) {
  for (std::size_t app = 0; app < per_app_lat_.size(); ++app) {
    per_app_lat_[app].merge(other.per_app_lat_[app]);
    per_app_bytes_[app].merge_from(other.per_app_bytes_[app]);
    per_app_count_[app] += other.per_app_count_[app];
    per_app_nonmin_[app] += other.per_app_nonmin_[app];
    per_app_hops_[app] += other.per_app_hops_[app];
  }
  system_lat_.merge(other.system_lat_);
  system_bytes_.merge_from(other.system_bytes_);
}

Histogram PacketLog::latency_between(int app_id, SimTime t0, SimTime t1) const {
  Histogram out;
  for (const auto& r : records_) {
    if (r.app_id == app_id && r.eject_time >= t0 && r.eject_time < t1) {
      out.add(r.eject_time - r.wire_time);
    }
  }
  return out;
}

double PacketLog::mean_hops(int app_id) const {
  const auto app = static_cast<std::size_t>(app_id);
  if (per_app_count_[app] == 0) return 0.0;
  return static_cast<double>(per_app_hops_[app]) / static_cast<double>(per_app_count_[app]);
}

}  // namespace dfly

#pragma once

#include <cstdint>
#include <limits>

namespace dfly {

/// xoshiro256++ pseudo-random generator with SplitMix64 seeding.
///
/// Deterministic, fast, and cheap to fork: every component derives its own
/// independent stream from (master seed, component id) so that adding or
/// reordering components does not perturb other components' draws.
///
/// Thread-safety: none — state advances on every draw. Each simulation cell
/// seeds its own Rng instances; parallel sweeps must never share one across
/// ParallelRunner workers (determinism, not just data races, would break).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Derive an independent stream for component `stream_id`.
  Rng(std::uint64_t seed, std::uint64_t stream_id) {
    reseed(seed ^ (0xBF58476D1CE4E5B9ull * (stream_id + 1)));
  }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method, with rejection for exactness.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool next_bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dfly

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

/// Fixed-slab FIFO queue that never gives storage back.
///
/// std::deque is the natural shape for the simulator's many small FIFOs
/// (NIC send queues, router arbitration queues), but libstdc++'s deque
/// allocates and frees 512-byte slabs as the live window crosses slab
/// boundaries — a queue oscillating around a boundary churns the allocator
/// on every push/pop cycle, and clear() drops all spare slabs so every
/// arena-recycled cell re-grows them. RingQueue replaces it on those hot
/// paths: one power-of-two vector, head/size indices, capacity kept by
/// clear(). Steady-state push/pop after the first cell's growth touches the
/// allocator zero times.
namespace dfly {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Drop all elements; the slab is kept for the next cell.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Grow the slab to hold at least `n` elements (never shrinks).
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(n);
  }

  void push_back(const T& value) {
    if (size_ == slots_.size()) grow(size_ + 1);
    slots_[(head_ + size_) & (slots_.size() - 1)] = value;
    ++size_;
  }

  /// Deque-style: re-queue a value at the head (router stall replay).
  void push_front(const T& value) {
    if (size_ == slots_.size()) grow(size_ + 1);
    head_ = (head_ + slots_.size() - 1) & (slots_.size() - 1);
    slots_[head_] = value;
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }
  T& back() {
    assert(size_ > 0);
    return slots_[(head_ + size_ - 1) & (slots_.size() - 1)];
  }
  const T& back() const {
    assert(size_ > 0);
    return slots_[(head_ + size_ - 1) & (slots_.size() - 1)];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

 private:
  void grow(std::size_t need) {
    std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    while (capacity < need) capacity *= 2;
    std::vector<T> next(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = slots_[(head_ + i) & (slots_.size() - 1)];
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;  // power-of-two length; index masking, no modulo
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace dfly

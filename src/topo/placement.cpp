#include "topo/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dfly {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRandom: return "random";
    case PlacementPolicy::kContiguous: return "contiguous";
    case PlacementPolicy::kLinear: return "linear";
  }
  return "?";
}

PlacementPolicy placement_from_string(const std::string& name) {
  if (name == "random") return PlacementPolicy::kRandom;
  if (name == "contiguous") return PlacementPolicy::kContiguous;
  if (name == "linear") return PlacementPolicy::kLinear;
  throw std::invalid_argument("unknown placement policy: " + name);
}

const std::vector<std::string>& all_placements() {
  static const std::vector<std::string> names{"random", "contiguous", "linear"};
  return names;
}

Placer::Placer(const Dragonfly& topo, PlacementPolicy policy, Rng rng,
               const std::vector<int>* candidate_pool)
    : topo_(&topo),
      policy_(policy),
      rng_(rng),
      candidate_pool_(candidate_pool),
      used_(static_cast<std::size_t>(topo.num_nodes()), false),
      free_count_(topo.num_nodes()) {
  if (candidate_pool_ != nullptr &&
      static_cast<int>(candidate_pool_->size()) != topo.num_nodes()) {
    throw std::invalid_argument("Placer: candidate pool does not match the machine");
  }
}

std::vector<int> Placer::allocate(int count) {
  if (count > free_count_) {
    throw std::runtime_error("Placer: not enough free nodes");
  }
  std::vector<int> free_ids;
  if (candidate_pool_ != nullptr && free_count_ == topo_->num_nodes()) {
    // Pristine machine: the candidate set is the shared pool verbatim.
    free_ids = *candidate_pool_;
  } else {
    free_ids.reserve(static_cast<std::size_t>(free_count_));
    for (int n = 0; n < topo_->num_nodes(); ++n) {
      if (!used_[static_cast<std::size_t>(n)]) free_ids.push_back(n);
    }
  }

  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(count));
  switch (policy_) {
    case PlacementPolicy::kLinear:
    case PlacementPolicy::kContiguous:
      // Node ids already enumerate group-by-group, router-by-router, so the
      // first free ids are the most contiguous choice available.
      chosen.assign(free_ids.begin(), free_ids.begin() + count);
      break;
    case PlacementPolicy::kRandom: {
      // Partial Fisher-Yates over the free list.
      for (int i = 0; i < count; ++i) {
        const auto j = i + static_cast<int>(rng_.next_below(free_ids.size() - static_cast<std::size_t>(i)));
        std::swap(free_ids[static_cast<std::size_t>(i)], free_ids[static_cast<std::size_t>(j)]);
        chosen.push_back(free_ids[static_cast<std::size_t>(i)]);
      }
      break;
    }
  }
  for (int n : chosen) {
    used_[static_cast<std::size_t>(n)] = true;
  }
  free_count_ -= count;
  return chosen;
}

void Placer::release(const std::vector<int>& nodes) {
  for (int n : nodes) {
    if (!used_[static_cast<std::size_t>(n)]) {
      throw std::runtime_error("Placer: releasing a node that is not allocated");
    }
    used_[static_cast<std::size_t>(n)] = false;
  }
  free_count_ += static_cast<int>(nodes.size());
}

}  // namespace dfly

#pragma once

#include <vector>

#include "net/routing_iface.hpp"
#include "routing/ugal.hpp"
#include "sim/time.hpp"

namespace dfly::routing {

/// Tunables for application-aware adaptive routing (after De Sensi et al.,
/// "Mitigating network noise on Dragonfly networks through application-aware
/// routing", SC'19).
struct AppAwareParams {
  UgalParams ugal{};  ///< base candidate counts / non-minimal weight

  /// Classification window: per-app injected bytes are folded into an EWMA
  /// every `update_period` of simulated time.
  SimTime update_period{100 * kUs};
  /// EWMA weight of the newest window (smooths bursty injectors such as
  /// FFT3D's Alltoall pulses so a short burst does not flip the class).
  double smoothing{0.3};
  /// An application is bandwidth-bound (an "aggressor") while its smoothed
  /// injection rate exceeds this fraction of the system's aggregate
  /// injection bandwidth (num_nodes x link rate) — the §IV message
  /// injection rate metric, measured online.
  double aggressor_fraction{0.10};
  /// Bias for latency-sensitive apps: positive values keep them on minimal
  /// paths (in the UGAL rule, minimal wins when q_min <= w*q_nonmin + bias).
  int latency_bias{8};
  /// Bias for bandwidth-bound apps: negative values push them non-minimal,
  /// spreading their load away from the hot minimal corridor.
  int bandwidth_bias{-4};
};

/// UGALn with a per-application routing bias set from observed behaviour.
///
/// Plain adaptive routing treats every packet identically, so a bandwidth-
/// bound application drags latency-sensitive ones into its congestion (the
/// paper's bully effect). This policy measures each application's injection
/// rate online (EWMA over fixed windows, the §IV intensity metric) and
/// biases the UGAL decision per application: apps whose smoothed rate
/// exceeds `aggressor_fraction` of aggregate injection bandwidth are pushed
/// toward non-minimal paths (they are throughput-bound; spreading relieves
/// the minimal corridor), everything else is held on minimal paths (they
/// are latency-bound; detours only expose them to more shared links).
/// Classification is continuous: an app whose phase changes is reclassified
/// a few windows later as its EWMA crosses the threshold.
class AppAwareUgalRouting final : public RoutingAlgorithm {
 public:
  explicit AppAwareUgalRouting(AppAwareParams params = {}) : p_(params) {}

  std::string name() const override { return "AppAware"; }
  RouteDecision route(Router& router, Packet& pkt) override;

  const AppAwareParams& params() const { return p_; }
  /// Current bias of `app_id` (0 until the first classification window).
  int bias_of(int app_id) const;
  /// Smoothed injection intensity of `app_id`, as a fraction of aggregate
  /// injection bandwidth (comparable against `aggressor_fraction`).
  double intensity_of(int app_id) const;

 private:
  void note_injection(int app_id, int bytes, SimTime now);
  void fold_window();

  // Immutable parameterisation; everything below it is per-cell classifier
  // state that adapts during the run.
  const AppAwareParams p_;
  SimTime window_end_{0};
  double window_capacity_bytes_{0};  ///< aggregate injection bytes per window
  std::vector<std::int64_t> window_bytes_;  ///< per app, current window
  std::vector<double> ewma_bytes_;          ///< per app, smoothed bytes/window
  std::vector<int> bias_;                   ///< per app, applied to decisions
};

}  // namespace dfly::routing

#pragma once

#include "net/packet.hpp"
#include "net/router.hpp"
#include "net/routing_iface.hpp"

namespace dfly::routing {

/// Destination router of a packet.
inline int dst_router_of(const Router& r, const Packet& pkt) {
  return r.topo().router_of_node(pkt.dst_node);
}

/// Ejection decision: the packet is at its destination router.
inline RouteDecision eject(const Router& r, const Packet& pkt) {
  return RouteDecision{static_cast<std::int16_t>(r.topo().terminal_port_of_node(pkt.dst_node)), 0};
}

/// VC discipline: the VC index equals the number of router-to-router hops
/// already taken, which strictly increases along every admissible path and
/// therefore yields an acyclic channel dependency graph (deadlock freedom).
inline std::int16_t vc_for(const Packet& pkt) { return static_cast<std::int16_t>(pkt.hops); }

/// Next output port on a minimal route toward `target_group`. Prefers this
/// router's own global links; otherwise takes a local hop to a gateway
/// router (chosen uniformly to spread load over the group's gateways).
int toward_group_port(Router& r, int target_group);

/// Next output port on a minimal route toward `target_router`.
int toward_router_port(Router& r, int target_router);

/// Mark the packet as non-minimal via (`int_group`, optional `int_router`).
void commit_valiant(Packet& pkt, int int_group, int int_router);

/// Hop decision shared by every policy once the path shape is committed:
/// head for the Valiant midpoint if one is pending, else head minimally for
/// the destination; eject on arrival. Updates phase/reached_int bookkeeping.
RouteDecision continue_route(Router& r, Packet& pkt);

/// One sampled first-hop option at the source router (UGAL-style selection).
struct Candidate {
  int port{-1};
  int occupancy{0};
  int int_group{-1};   ///< -1 for minimal candidates
  int int_router{-1};  ///< >= 0 when a Valiant midpoint router was drawn
};

/// Draw a minimal first-hop candidate toward the packet's destination.
Candidate sample_minimal(Router& r, const Packet& pkt);

/// Draw a non-minimal candidate via a random intermediate group (!= source
/// and destination groups). When `pick_router`, a random midpoint router in
/// that group is also drawn (UGALn/PAR semantics).
Candidate sample_nonminimal(Router& r, const Packet& pkt, bool pick_router);

}  // namespace dfly::routing

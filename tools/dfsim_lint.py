#!/usr/bin/env python3
"""dfsim-lint: repo-invariant linter for the dfsim codebase.

The repo's correctness contract has two machine-checkable halves that no
general-purpose tool enforces:

 * **Zero steady-state allocation** (PR 2-6, docs/MEMORY.md): the hot
   directories ``src/{sim,net,mpi,routing}`` must not reintroduce
   allocation-churn types — ``std::function`` (heap per capture),
   ``std::unordered_map``/``set`` (node per insert), ``std::deque`` (slab
   oscillation), ``std::shared_ptr`` (control block) — outside files that
   only touch them in the setup phase (per-rule allowlists below).

 * **Byte-identical determinism** (ROADMAP north star, docs/ARCHITECTURE.md):
   nothing under ``src/`` may consult ambient entropy (``std::rand``,
   ``random_device``), read wall clocks outside the watchdog, key ordered or
   hashed containers by pointer value (addresses differ run to run), or
   iterate an unordered container in a way that can reach simulation output.

 * **Routing const/mutable split** (core/blueprint.hpp): a routing policy's
   data members are either immutable parameterisation (``const``, captured by
   the SystemBlueprint key) or per-cell state that must be explicitly
   registered in ROUTING_STATE below, so a new member cannot silently become
   neither-shape-nor-reset state.

Usage:
    tools/dfsim_lint.py [--root DIR] [--list-rules]

Exit status 0 when clean, 1 with one ``file:line: rule-id: message`` line per
finding. Suppress a deliberate single-line exception with an inline marker on
the same line or the line above::

    // dfsim-lint: allow(det-clock) build-time metadata, never in output

Whole-file exceptions live in the per-rule allowlists below; every entry
carries its justification. See docs/STATIC_ANALYSIS.md for how this layer
relates to the Clang thread-safety annotations and the clang-tidy gate.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Per-rule allowlists. Keys are repo-relative paths; values are the reason the
# exception is sound. Adding an entry is a reviewed decision: the reason must
# say why the invariant still holds (setup-phase only, watchdog, metadata...).
# --------------------------------------------------------------------------

ALLOW_ALLOC_CHURN = {
    "src/sim/pdes.hpp": "std::deque gives domains 1..D-1 stable Engine/PacketLog "
    "addresses; grown once during cell setup, never during the event loop",
    "src/sim/pdes.cpp": "same setup-phase deques as pdes.hpp (merge only walks them)",
}

ALLOW_DET_CLOCK = {
    "src/sim/engine.hpp": "the cooperative wall-clock watchdog is the one sanctioned "
    "steady_clock consumer; it aborts runs, it never feeds output bytes",
    "src/core/study.cpp": "arms the engine watchdog from StudyConfig::wall_limit_s",
}

# Routing policies: per-cell mutable state deliberately NOT part of the
# SystemBlueprint key. Everything else must be const (immutable
# parameterisation, captured by the key) or mutable (scratch).
ROUTING_STATE = {
    "QAdaptiveRouting": {
        "engine_": "event-loop handle for feedback events (per cell)",
        "rng_": "per-cell exploration stream, seeded from StudyConfig::seed",
        "tables_": "the Q-tables train online during the run",
        "feedback_signals_": "per-run counter surfaced by benches",
    },
    "AppAwareUgalRouting": {
        "window_end_": "classifier window cursor (per-cell, clock-driven)",
        "window_capacity_bytes_": "derived at first route() from live NetConfig",
        "window_bytes_": "per-app bytes of the current window",
        "ewma_bytes_": "smoothed per-app intensity (trains during the run)",
        "bias_": "per-app routing bias recomputed every window",
    },
    "FlowAwareRouting": {
        "flows_": "per-flow pinned-path table, rebuilt every cell",
        "refreshes_": "per-run counter surfaced by benches",
    },
}

HOT_DIRS = ("src/sim", "src/net", "src/mpi", "src/routing")
ALLOC_CHURN_TYPES = ("function", "unordered_map", "unordered_set", "deque", "shared_ptr")

SUPPRESS_RE = re.compile(r"dfsim-lint:\s*allow\(([\w\-, ]+)\)")

# --------------------------------------------------------------------------
# Source model: per-line code text with comments and string literals blanked,
# plus the raw text so suppression markers (which live in comments) survive.
# --------------------------------------------------------------------------


class SourceFile:
    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.raw_lines = path.read_text(encoding="utf-8").splitlines()
        self.code_lines = _strip_comments_and_strings(self.raw_lines)

    def suppressed(self, line_no: int, rule: str) -> bool:
        """True when line `line_no` (1-based) carries or follows an inline
        ``dfsim-lint: allow(rule)`` marker."""
        for candidate in (line_no, line_no - 1):
            if 1 <= candidate <= len(self.raw_lines):
                m = SUPPRESS_RE.search(self.raw_lines[candidate - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    return True
        return False


def _strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out //, /* */ comments and "..."/'...' literals, preserving line
    structure so findings keep real line numbers."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            two = line[i : i + 2]
            if two == "//":
                break
            if two == "/*":
                in_block = True
                i += 2
                continue
            ch = line[i]
            if ch in "\"'":
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == ch:
                        break
                    j += 1
                result.append(ch)  # keep the quote so regexes see a token edge
                i = j + 1
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


class Finding:
    def __init__(self, rel: str, line: int, rule: str, message: str) -> None:
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: {self.rule}: {self.message}"


# --------------------------------------------------------------------------
# Rules. Each is a function (SourceFile) -> list[Finding]; registration at the
# bottom maps rule ids to implementations and the docs they enforce.
# --------------------------------------------------------------------------

ALLOC_RE = re.compile(r"\bstd::(" + "|".join(ALLOC_CHURN_TYPES) + r")\b")


def rule_alloc_churn(src: SourceFile) -> list[Finding]:
    """alloc-churn: allocation-churn std:: types in the hot directories."""
    if not src.rel.startswith(HOT_DIRS):
        return []
    if src.rel in ALLOW_ALLOC_CHURN:
        return []
    findings = []
    for no, code in enumerate(src.code_lines, 1):
        m = ALLOC_RE.search(code)
        if m and not src.suppressed(no, "alloc-churn"):
            findings.append(
                Finding(
                    src.rel,
                    no,
                    "alloc-churn",
                    f"std::{m.group(1)} in a hot directory breaks the "
                    "zero-steady-state-allocation invariant (docs/MEMORY.md); use the "
                    "arena-backed containers (FlatMap, InlineFn, RingQueue) or add a "
                    "justified allowlist entry in tools/dfsim_lint.py",
                )
            )
    return findings


RAND_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")


def rule_det_rand(src: SourceFile) -> list[Finding]:
    """det-rand: ambient entropy sources anywhere under src/."""
    findings = []
    for no, code in enumerate(src.code_lines, 1):
        if RAND_RE.search(code) and not src.suppressed(no, "det-rand"):
            findings.append(
                Finding(
                    src.rel,
                    no,
                    "det-rand",
                    "ambient entropy is banned: every random stream must come from "
                    "sim/rng.hpp seeded by StudyConfig::seed so reruns are "
                    "byte-identical",
                )
            )
    return findings


CLOCK_RE = re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b")


def rule_det_clock(src: SourceFile) -> list[Finding]:
    """det-clock: wall-clock reads outside the watchdog allowlist."""
    if src.rel in ALLOW_DET_CLOCK:
        return []
    findings = []
    for no, code in enumerate(src.code_lines, 1):
        if CLOCK_RE.search(code) and not src.suppressed(no, "det-clock"):
            findings.append(
                Finding(
                    src.rel,
                    no,
                    "det-clock",
                    "wall clocks are reserved for the Engine watchdog; simulation "
                    "logic must use SimTime (sim/time.hpp). Timing *metadata* that "
                    "never reaches simulated output may carry an inline allow "
                    "with justification",
                )
            )
    return findings


# A pointer type as the KEY of an ordered/hashed container, or std::hash over
# a pointer: iteration/compare order then depends on allocation addresses.
PTR_KEY_RE = re.compile(
    r"\bstd::(map|set|unordered_map|unordered_set|multimap|multiset)\s*<\s*([^<>,]*?\*[^<>,]*?)\s*[,>]"
)
PTR_HASH_RE = re.compile(r"\bstd::hash\s*<[^<>]*\*[^<>]*>")


def rule_det_pointer_key(src: SourceFile) -> list[Finding]:
    """det-pointer-key: pointer-keyed ordering or hashing."""
    findings = []
    for no, code in enumerate(src.code_lines, 1):
        if (PTR_KEY_RE.search(code) or PTR_HASH_RE.search(code)) and not src.suppressed(
            no, "det-pointer-key"
        ):
            findings.append(
                Finding(
                    src.rel,
                    no,
                    "det-pointer-key",
                    "container keyed (or hashed) by pointer value: addresses change "
                    "between runs, so any order derived from them is "
                    "non-deterministic. Key by a stable id instead",
                )
            )
    return findings


UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(.+?)\)\s*(?:\{|$)")


def rule_det_unordered_iter(src: SourceFile) -> list[Finding]:
    """det-unordered-iter: range-for over an unordered container declared in
    the same file. Bucket order is implementation- and history-dependent, so
    anything accumulated across such a loop must be order-independent — which
    the linter cannot prove, so the loop needs an inline allow stating why."""
    unordered_names = set()
    for code in src.code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return []
    findings = []
    for no, code in enumerate(src.code_lines, 1):
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        target = m.group(1).strip()
        leaf = target.split(".")[-1].split("->")[-1].strip("() ")
        if leaf in unordered_names and not src.suppressed(no, "det-unordered-iter"):
            findings.append(
                Finding(
                    src.rel,
                    no,
                    "det-unordered-iter",
                    f"iterating unordered container '{leaf}': bucket order is not "
                    "deterministic. Sort first, or add an inline allow stating why "
                    "the accumulation is order-independent",
                )
            )
    return findings


CLASS_RE = re.compile(r"\bclass\s+(\w+)[^;{]*?:\s*([^{]*?)\{")
MEMBER_RE = re.compile(
    r"^\s*(?!return\b|using\b|typedef\b|friend\b|explicit\b|if\b|for\b|while\b|throw\b)"
    r"(?P<quals>(?:(?:const|mutable|static|constexpr|inline)\s+)*)"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^;=]*>)?(?:\s*[&*])*)\s+"
    r"(?P<name>\w+_)\s*(?:\{[^;]*\})?\s*;"
)


def rule_routing_state(src: SourceFile) -> list[Finding]:
    """routing-state: the const/mutable split of routing policy classes.

    In src/routing/*.hpp, every data member of a class deriving from
    RoutingAlgorithm must be `const` (immutable parameterisation — the part
    the SystemBlueprint key captures), `mutable`/`static` (scratch), or
    registered as per-cell state in ROUTING_STATE with a justification."""
    if not src.rel.startswith("src/routing/") or not src.rel.endswith(".hpp"):
        return []
    text = "\n".join(src.code_lines)
    findings = []
    for cm in CLASS_RE.finditer(text):
        name, bases = cm.group(1), cm.group(2)
        if "RoutingAlgorithm" not in bases:
            continue
        allow = ROUTING_STATE.get(name, {})
        # Class body: brace-match from the opening '{'.
        depth = 0
        start = cm.end() - 1
        end = start
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        body = text[start:end]
        body_start_line = text.count("\n", 0, start) + 1
        for offset, line in enumerate(body.splitlines()):
            mm = MEMBER_RE.match(line)
            if not mm:
                continue
            quals = mm.group("quals")
            member = mm.group("name")
            if "const" in quals or "mutable" in quals or "static" in quals:
                continue
            line_no = body_start_line + offset
            if member in allow:
                continue
            if src.suppressed(line_no, "routing-state"):
                continue
            findings.append(
                Finding(
                    src.rel,
                    line_no,
                    "routing-state",
                    f"{name}::{member} is neither const (blueprint-key "
                    "parameterisation) nor mutable scratch nor registered per-cell "
                    "state — add it to the policy's params struct (and the "
                    "BlueprintKey) or to ROUTING_STATE in tools/dfsim_lint.py with "
                    "a justification",
                )
            )
    return findings


RULES = {
    "alloc-churn": rule_alloc_churn,
    "det-rand": rule_det_rand,
    "det-clock": rule_det_clock,
    "det-pointer-key": rule_det_pointer_key,
    "det-unordered-iter": rule_det_unordered_iter,
    "routing-state": rule_routing_state,
}

SCAN_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")


def scan(root: Path) -> list[Finding]:
    findings = []
    src = root / "src"
    if not src.is_dir():
        raise SystemExit(f"dfsim-lint: no src/ under '{root}'")
    for path in sorted(src.rglob("*")):
        if path.suffix not in SCAN_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        sf = SourceFile(path, rel)
        for rule in RULES.values():
            findings.extend(rule(sf))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="tree to scan (default: the repo root); rules key off paths "
        "relative to this root, so fixture trees mirror src/ layout",
    )
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    args = parser.parse_args()
    if args.list_rules:
        for fn in RULES.values():
            print(fn.__doc__.splitlines()[0])
        return 0
    findings = scan(args.root.resolve())
    for f in findings:
        print(f"error: {f}", file=sys.stderr)
    print(f"dfsim-lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

#include <cstdio>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> counters;

void dump() {
  // Bucket order is history-dependent: this print order differs run to run.
  for (const auto& [key, value] : counters) {  // det-unordered-iter
    std::printf("%d=%d\n", key, value);
  }
}

}  // namespace fixture

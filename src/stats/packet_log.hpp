#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"

namespace dfly {

/// Per-packet record, mirroring the paper's enhanced-Merlin IO module output
/// ("source, destination, sending, receiving time, and forwarding path").
/// The path is summarised as hop count + whether the route was non-minimal;
/// full hop traces are available at debug level via the logger.
struct PacketRecord {
  std::int32_t src_node{0};
  std::int32_t dst_node{0};
  std::int16_t app_id{0};
  std::int16_t hops{0};
  bool nonminimal{false};
  SimTime wire_time{0};   ///< first flit entered the source router
  SimTime eject_time{0};  ///< last flit delivered at the destination NIC
  std::int32_t bytes{0};
};

/// Collects packet lifecycle samples per application and system-wide.
/// Recording full records is optional (benches that only need distributions
/// keep it off to save memory); latency histograms are always maintained.
class PacketLog {
 public:
  /// An empty log; give it a shape with reset() before use.
  PacketLog() = default;
  explicit PacketLog(int num_apps, bool keep_records = false,
                     SimTime bucket_width = kMs / 10);

  /// Re-shape and empty every histogram/series/counter in place, keeping the
  /// sample-vector capacity (the arena reuse path, core/arena.hpp).
  void reset(int num_apps, bool keep_records = false, SimTime bucket_width = kMs / 10);

  void record(const PacketRecord& record);

  /// Accumulate another log with the same shape (app count / bucket width)
  /// into this one. Used to fold a parallel cell's per-domain shards back
  /// into the cell log (Network::finalize_pdes): every merged statistic is a
  /// sum or a sample multiset, so the result is independent of shard order
  /// and identical to sequential recording. Kept records are not merged —
  /// record-keeping cells run sequentially.
  void merge_from(const PacketLog& other);

  /// Latency = eject - wire (network time: source-router queueing onward).
  const Histogram& latency(int app_id) const { return per_app_lat_[static_cast<std::size_t>(app_id)]; }
  const Histogram& system_latency() const { return system_lat_; }

  /// Delivered payload bytes per time bucket (throughput series).
  const TimeSeries& delivered(int app_id) const { return per_app_bytes_[static_cast<std::size_t>(app_id)]; }
  const TimeSeries& system_delivered() const { return system_bytes_; }

  /// Per-app latency histogram restricted to eject times inside [t0,t1).
  Histogram latency_between(int app_id, SimTime t0, SimTime t1) const;

  std::uint64_t delivered_packets(int app_id) const { return per_app_count_[static_cast<std::size_t>(app_id)]; }
  std::uint64_t nonminimal_packets(int app_id) const { return per_app_nonmin_[static_cast<std::size_t>(app_id)]; }
  double mean_hops(int app_id) const;

  bool keeps_records() const { return keep_records_; }
  const std::vector<PacketRecord>& records() const { return records_; }

  int num_apps() const { return static_cast<int>(per_app_lat_.size()); }

 private:
  bool keep_records_{false};
  std::vector<Histogram> per_app_lat_;
  Histogram system_lat_;
  std::vector<TimeSeries> per_app_bytes_;
  TimeSeries system_bytes_;
  std::vector<std::uint64_t> per_app_count_;
  std::vector<std::uint64_t> per_app_nonmin_;
  std::vector<std::uint64_t> per_app_hops_;
  std::vector<PacketRecord> records_;
};

}  // namespace dfly

#include "routing/flow_aware.hpp"

#include "routing/common.hpp"

namespace dfly::routing {

FlowAwareRouting::FlowEntry FlowAwareRouting::decide(Router& router, Packet& pkt) const {
  // Same sampled decision rule as UgalRouting (UGALn variant: a midpoint
  // router is drawn for non-minimal paths), but the outcome is recorded for
  // the whole flow instead of applying to one packet.
  Candidate best_min;
  for (int i = 0; i < params_.ugal.min_candidates; ++i) {
    const Candidate c = sample_minimal(router, pkt);
    if (best_min.port < 0 || c.occupancy < best_min.occupancy) best_min = c;
  }
  Candidate best_nonmin;
  for (int i = 0; i < params_.ugal.nonmin_candidates; ++i) {
    const Candidate c = sample_nonminimal(router, pkt, /*pick_router=*/true);
    if (c.int_group < 0) continue;
    if (best_nonmin.port < 0 || c.occupancy < best_nonmin.occupancy) best_nonmin = c;
  }
  const bool go_minimal =
      best_nonmin.port < 0 ||
      best_min.occupancy <= params_.ugal.nonmin_weight * best_nonmin.occupancy +
                                params_.ugal.bias;
  FlowEntry entry;
  entry.decided_at = router.engine().now();
  if (go_minimal) {
    entry.port = static_cast<std::int16_t>(best_min.port);
  } else {
    entry.port = static_cast<std::int16_t>(best_nonmin.port);
    entry.int_group = static_cast<std::int16_t>(best_nonmin.int_group);
    entry.int_router = static_cast<std::int16_t>(best_nonmin.int_router);
  }
  return entry;
}

RouteDecision FlowAwareRouting::route(Router& router, Packet& pkt) {
  const Dragonfly& topo = router.topo();
  const int dst_group = topo.group_of_router(dst_router_of(router, pkt));
  if (pkt.hops == 0 && dst_group != router.group()) {
    const std::uint64_t key = flow_key(pkt);
    FlowEntry* slot = flows_.find(key);
    const SimTime now = router.engine().now();
    if (slot == nullptr) {
      flows_.emplace(key, decide(router, pkt));
      slot = flows_.find(key);
    } else if (now - slot->decided_at >= params_.refresh_period) {
      *slot = decide(router, pkt);
      ++refreshes_;
    }
    const FlowEntry& entry = *slot;
    if (entry.int_group >= 0) {
      commit_valiant(pkt, entry.int_group, entry.int_router);
      pkt.phase = RoutePhase::kAtSource;
    }
    return RouteDecision{entry.port, vc_for(pkt)};
  }
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

#include "stats/link_stats.hpp"

namespace dfly {

LinkStats::LinkStats(int num_links, int num_apps) { reset(num_links, num_apps); }

void LinkStats::reset(int num_links, int num_apps) {
  const auto links = static_cast<std::size_t>(num_links);
  num_apps_ = static_cast<std::size_t>(num_apps);
  bytes_.assign(links, 0);
  by_app_.assign(links * num_apps_, 0);
  packets_.assign(links, 0);
  stall_.assign(links, 0);
  class_.assign(links, LinkClass::kTerminal);
  src_.assign(links, -1);
  dst_.assign(links, -1);
}

void LinkStats::set_link_info(int link, LinkClass cls, int src_router, int dst_router) {
  class_[static_cast<std::size_t>(link)] = cls;
  src_[static_cast<std::size_t>(link)] = src_router;
  dst_[static_cast<std::size_t>(link)] = dst_router;
}

SimTime LinkStats::total_stall(LinkClass cls) const {
  SimTime acc = 0;
  for (std::size_t i = 0; i < stall_.size(); ++i) {
    if (class_[i] == cls) acc += stall_[i];
  }
  return acc;
}

std::int64_t LinkStats::total_bytes(LinkClass cls) const {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (class_[i] == cls) acc += bytes_[i];
  }
  return acc;
}

}  // namespace dfly

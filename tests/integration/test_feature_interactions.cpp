// Cross-feature integration: the mitigation mechanisms (QoS classes,
// congestion control, link faults, app-aware bias, extended workloads) are
// designed to compose. Each test switches several on at once and checks the
// run completes with coherent accounting — the regressions these catch are
// interaction bugs (e.g. a fault-slowed port starving a DWRR class, or CC
// pacing deadlocking against a degraded wire) that per-feature suites miss.

#include <gtest/gtest.h>

#include <memory>

#include "core/study.hpp"
#include "net/fault.hpp"
#include "workloads/extended.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = 31;
  return config;
}

void add_pair(Study& study) {
  workloads::UniformRandomParams heavy;
  heavy.msg_bytes = 32768;
  heavy.iterations = 40;
  heavy.interval = 0;
  heavy.window = 8;
  study.add_motif(std::make_unique<workloads::UniformRandomMotif>(heavy), 32, "heavy");
  workloads::PingPongParams light;
  light.msg_bytes = 1024;
  light.iterations = 60;
  study.add_motif(std::make_unique<workloads::PingPongMotif>(light), 16, "light");
}

/// Faults + QoS: a degraded local fabric must not break class arbitration.
TEST(FeatureInteractions, FaultsWithQosClasses) {
  StudyConfig config = tiny_config("PAR");
  config.net.qos.num_classes = 2;
  config.net.qos.weights = {4, 1};
  {
    const Dragonfly topo(config.topo);
    config.faults = FaultPlan::degrade_router_locals(topo, 0, 4);
  }
  Study study(config);
  add_pair(study);
  study.set_traffic_class(1, 0);  // privilege the light app
  study.set_traffic_class(0, 1);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.apps[0].packets, 0u);
  EXPECT_GT(report.apps[1].packets, 0u);
}

/// Faults + congestion control: AIMD pacing on top of slowed wires must
/// still drain every message (no pacing deadlock against backpressure).
TEST(FeatureInteractions, FaultsWithCongestionControl) {
  StudyConfig config = tiny_config("UGALg");
  config.net.cc.enabled = true;
  {
    const Dragonfly topo(config.topo);
    config.faults = FaultPlan::degrade_random_globals(topo, 0.25, 8, 100 * kNs, 2);
  }
  Study study(config);
  add_pair(study);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
}

/// App-aware bias + faults: classification must keep working when the
/// fabric itself is heterogeneous.
TEST(FeatureInteractions, AppAwareWithFaults) {
  StudyConfig config = tiny_config("AppAware");
  {
    const Dragonfly topo(config.topo);
    config.faults = FaultPlan::degrade_global(topo, 2, 3, 8);
  }
  Study study(config);
  add_pair(study);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  // Both apps measurable and fairness defined.
  EXPECT_GT(report.jain_fairness, 0.0);
}

/// MILC + QoS: collective-chain traffic through class arbitration.
TEST(FeatureInteractions, MilcUnderQos) {
  StudyConfig config = tiny_config("PAR");
  config.net.qos.num_classes = 2;
  config.net.qos.weights = {3, 1};
  Study study(config);
  workloads::MilcParams milc;
  milc.dims = {2, 2, 2, 2};
  milc.iterations = 2;
  const int milc_id = study.add_motif(std::make_unique<workloads::MilcMotif>(milc), 16, "MILC");
  workloads::UniformRandomParams ur;
  ur.msg_bytes = 16384;
  ur.iterations = 40;
  ur.interval = 0;
  ur.window = 8;
  const int ur_id =
      study.add_motif(std::make_unique<workloads::UniformRandomMotif>(ur), 32, "UR");
  study.set_traffic_class(milc_id, 0);
  study.set_traffic_class(ur_id, 1);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
}

/// IOBurst + congestion control: ECN+AIMD is the designed answer to the
/// checkpoint fan-in; the run must complete and throttle the writers.
TEST(FeatureInteractions, IoBurstUnderCongestionControl) {
  for (const bool cc : {false, true}) {
    StudyConfig config = tiny_config("UGALg");
    config.net.cc.enabled = cc;
    Study study(config);
    workloads::IoBurstParams io;
    io.bb_ratio = 8;
    io.checkpoint_bytes = 512 * 1024;
    io.chunk_bytes = 32 * 1024;
    io.period = 100 * kUs;
    io.iterations = 2;
    study.add_motif(std::make_unique<workloads::IoBurstMotif>(io), 32, "IOBurst");
    const Report report = study.run();
    EXPECT_TRUE(report.completed) << "cc=" << cc;
  }
}

/// Sparse exchange across routings: the alltoallv schedule must be
/// deadlock-free under adaptive and learning policies alike.
TEST(FeatureInteractions, SparseExchangeAcrossRoutings) {
  for (const std::string routing : {"MIN", "UGALn", "AppAware", "Q-adp"}) {
    StudyConfig config = tiny_config(routing);
    Study study(config);
    workloads::SparseExchangeParams params;
    params.density_per_mille = 350;
    params.iterations = 2;
    params.msg_bytes = 4096;
    study.add_motif(std::make_unique<workloads::SparseExchangeMotif>(params), 24, "sparse");
    const Report report = study.run();
    EXPECT_TRUE(report.completed) << routing;
  }
}

/// Everything at once: faults + QoS + CC + app-aware-equivalent traffic mix
/// + extension workload. The kitchen-sink run that exercises every code
/// path the features touch in one simulation.
TEST(FeatureInteractions, KitchenSink) {
  StudyConfig config = tiny_config("Q-adp");
  config.net.qos.num_classes = 2;
  config.net.qos.weights = {2, 1};
  config.net.cc.enabled = true;
  {
    const Dragonfly topo(config.topo);
    config.faults = FaultPlan::degrade_random_globals(topo, 0.15, 4, 50 * kNs, 9);
  }
  Study study(config);
  workloads::MilcParams milc;
  milc.dims = {2, 2, 2, 2};
  milc.iterations = 2;
  const int a = study.add_motif(std::make_unique<workloads::MilcMotif>(milc), 16, "MILC");
  workloads::IoBurstParams io;
  io.bb_ratio = 8;
  io.checkpoint_bytes = 256 * 1024;
  io.chunk_bytes = 32 * 1024;
  io.period = 100 * kUs;
  io.iterations = 2;
  const int b = study.add_motif(std::make_unique<workloads::IoBurstMotif>(io), 32, "IOBurst");
  study.set_traffic_class(a, 0);
  study.set_traffic_class(b, 1);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.jain_fairness, 0.0);
  EXPECT_GT(report.apps[0].packets, 0u);
  EXPECT_GT(report.apps[1].packets, 0u);
}

}  // namespace
}  // namespace dfly

#include "core/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace dfly {

namespace {

std::string trim(const std::string& raw) {
  const auto first = raw.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = raw.find_last_not_of(" \t\r\n");
  return raw.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Shortest decimal that parses back to the same double, so emit/parse
/// round-trips bit-exactly without printing 17 digits for "0.2".
std::string format_double(double v) {
  char buffer[40];
  for (const int precision : {9, 17}) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, v);
    if (std::stod(buffer) == v) break;
  }
  return buffer;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::string out;
  for (const LinkFault& fault : plan.faults()) {
    if (!out.empty()) out += ',';
    out += std::to_string(fault.router) + ':' + std::to_string(fault.port) + ':' +
           std::to_string(fault.slowdown) + ':' + std::to_string(fault.extra_latency / kNs);
  }
  return out;
}

std::string join_ints(const std::vector<int>& values) {
  std::string out;
  for (const int v : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ConfigFile: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile file;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#' || stripped.front() == ';') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("ConfigFile: line " + std::to_string(line_no) +
                               " has no '=': " + stripped);
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("ConfigFile: empty key on line " + std::to_string(line_no));
    }
    if (file.has(key)) {
      throw std::runtime_error("ConfigFile: duplicate key '" + key + "' on line " +
                               std::to_string(line_no) + " (first set on line " +
                               std::to_string(file.line_of(key)) + ")");
    }
    file.set(key, value, line_no);
  }
  return file;
}

int ConfigFile::line_of(const std::string& key) const {
  const auto it = lines_.find(key);
  return it == lines_.end() ? 0 : it->second;
}

std::string ConfigFile::where(const std::string& key) const {
  const int line = line_of(key);
  if (line > 0) return "line " + std::to_string(line);
  return "key '" + key + "'";
}

std::string ConfigFile::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int ConfigFile::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const int v = std::stoi(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key +
                                "' is not an int: " + it->second);
  }
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key +
                                "' is not a number: " + it->second);
  }
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key +
                              "' is not a bool: " + it->second);
}

std::vector<int> ConfigFile::get_int_list(const std::string& key) const {
  const auto it = values_.find(key);
  std::vector<int> out;
  if (it == values_.end()) return out;
  std::istringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string t = trim(item);
    if (t.empty()) continue;
    try {
      out.push_back(std::stoi(t));
    } catch (const std::exception&) {
      throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key +
                                  "' has a non-int item: " + t);
    }
  }
  return out;
}

std::vector<std::string> ConfigFile::get_string_list(const std::string& key) const {
  const auto it = values_.find(key);
  std::vector<std::string> out;
  if (it == values_.end()) return out;
  std::istringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string t = trim(item);
    if (t.empty()) {
      throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key +
                                  "' has an empty item: " + it->second);
    }
    out.push_back(t);
  }
  return out;
}

std::vector<std::uint64_t> ConfigFile::get_seed_list(const std::string& key) const {
  std::vector<std::uint64_t> out;
  if (!has(key)) return out;
  const auto fail = [&](const std::string& item, const std::string& why) -> void {
    throw std::invalid_argument("ConfigFile: " + where(key) + ": '" + key + "' item '" + item +
                                "' " + why + " (expected N or A..B)");
  };
  const auto parse_seed = [&](const std::string& item, const std::string& text) {
    // Digits only: std::stoull would silently wrap "-1" to 2^64-1.
    if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
      fail(item, "is not a seed");
    }
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(text, &used);
      if (used != text.size()) throw std::invalid_argument("trailing");
      return v;
    } catch (const std::exception&) {
      fail(item, "is not a seed");
      return std::uint64_t{0};  // unreachable
    }
  };
  for (const std::string& item : get_string_list(key)) {
    const auto dots = item.find("..");
    if (dots == std::string::npos) {
      out.push_back(parse_seed(item, item));
      continue;
    }
    const std::uint64_t first = parse_seed(item, trim(item.substr(0, dots)));
    const std::uint64_t last = parse_seed(item, trim(item.substr(dots + 2)));
    if (last < first) fail(item, "is a descending range");
    for (std::uint64_t seed = first; seed <= last; ++seed) {
      out.push_back(seed);
      if (seed == last) break;  // guard: last == UINT64_MAX must not wrap
    }
  }
  return out;
}

std::string ConfigFile::emit() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key + " = " + value + "\n";
  }
  return out;
}

namespace {

/// One accepted config key: how to apply its text onto a StudyConfig and how
/// to emit it back from one. Both apply_config and config_to_file walk this
/// single table, so the two directions cannot drift apart.
struct KeySpec {
  const char* key;
  std::function<void(StudyConfig&, const ConfigFile&, const std::string&)> apply;
  std::function<std::string(const StudyConfig&)> to_text;
};

const std::vector<KeySpec>& key_specs() {
  using C = StudyConfig;
  using F = ConfigFile;
  const auto int_key = [](const char* key, auto member) {
    return KeySpec{key,
                   [member](C& c, const F& f, const std::string& k) { c.*member = f.get_int(k); },
                   [member](const C& c) { return std::to_string(c.*member); }};
  };
  static const std::vector<KeySpec> specs{
      {"topo.p", [](C& c, const F& f, const std::string& k) { c.topo.p = f.get_int(k); },
       [](const C& c) { return std::to_string(c.topo.p); }},
      {"topo.a", [](C& c, const F& f, const std::string& k) { c.topo.a = f.get_int(k); },
       [](const C& c) { return std::to_string(c.topo.a); }},
      {"topo.h", [](C& c, const F& f, const std::string& k) { c.topo.h = f.get_int(k); },
       [](const C& c) { return std::to_string(c.topo.h); }},
      {"topo.g", [](C& c, const F& f, const std::string& k) { c.topo.g = f.get_int(k); },
       [](const C& c) { return std::to_string(c.topo.g); }},
      {"topo.arrangement",
       [](C& c, const F& f, const std::string& k) {
         c.topo.arrangement = arrangement_from_string(f.get_string(k));
       },
       [](const C& c) { return std::string(to_string(c.topo.arrangement)); }},
      {"routing", [](C& c, const F& f, const std::string& k) { c.routing = f.get_string(k); },
       [](const C& c) { return c.routing; }},
      {"placement",
       [](C& c, const F& f, const std::string& k) {
         c.placement = placement_from_string(f.get_string(k));
       },
       [](const C& c) { return std::string(to_string(c.placement)); }},
      {"seed",
       [](C& c, const F& f, const std::string& k) {
         const std::vector<std::uint64_t> seeds = f.get_seed_list(k);
         if (seeds.size() != 1) {
           throw std::invalid_argument("ConfigFile: " + f.where(k) +
                                       ": 'seed' wants exactly one seed (use plan.seeds for "
                                       "a multi-seed axis)");
         }
         c.seed = seeds.front();
       },
       [](const C& c) { return std::to_string(c.seed); }},
      int_key("scale", &C::scale),
      {"time_limit_ms",
       [](C& c, const F& f, const std::string& k) { c.time_limit = f.get_int(k) * kMs; },
       [](const C& c) { return std::to_string(c.time_limit / kMs); }},
      {"wall_limit_s",
       [](C& c, const F& f, const std::string& k) {
         c.wall_limit_s = f.get_double(k);
         if (c.wall_limit_s < 0) {
           throw std::invalid_argument("ConfigFile: " + f.where(k) +
                                       ": 'wall_limit_s' must be >= 0");
         }
       },
       [](const C& c) { return format_double(c.wall_limit_s); }},
      {"cell_threads",
       [](C& c, const F& f, const std::string& k) {
         c.cell_threads = f.get_int(k);
         if (c.cell_threads < 0) {
           throw std::invalid_argument("ConfigFile: " + f.where(k) +
                                       ": 'cell_threads' must be >= 0 (0 = resolve from "
                                       "DFSIM_CELL_THREADS)");
         }
       },
       [](const C& c) { return std::to_string(c.cell_threads); }},
      {"net.flit_bytes",
       [](C& c, const F& f, const std::string& k) { c.net.flit_bytes = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.flit_bytes); }},
      {"net.packet_bytes",
       [](C& c, const F& f, const std::string& k) { c.net.packet_bytes = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.packet_bytes); }},
      {"net.buffer_packets",
       [](C& c, const F& f, const std::string& k) { c.net.buffer_packets = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.buffer_packets); }},
      {"net.num_vcs",
       [](C& c, const F& f, const std::string& k) { c.net.num_vcs = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.num_vcs); }},
      {"net.link_gbps",
       [](C& c, const F& f, const std::string& k) { c.net.link_gbps = f.get_double(k); },
       [](const C& c) { return format_double(c.net.link_gbps); }},
      {"net.local_latency_ns",
       [](C& c, const F& f, const std::string& k) { c.net.local_latency = f.get_int(k) * kNs; },
       [](const C& c) { return std::to_string(c.net.local_latency / kNs); }},
      {"net.global_latency_ns",
       [](C& c, const F& f, const std::string& k) { c.net.global_latency = f.get_int(k) * kNs; },
       [](const C& c) { return std::to_string(c.net.global_latency / kNs); }},
      {"net.router_latency_ns",
       [](C& c, const F& f, const std::string& k) { c.net.router_latency = f.get_int(k) * kNs; },
       [](const C& c) { return std::to_string(c.net.router_latency / kNs); }},
      {"protocol.eager_threshold",
       [](C& c, const F& f, const std::string& k) { c.protocol.eager_threshold = f.get_int(k); },
       [](const C& c) { return std::to_string(c.protocol.eager_threshold); }},
      {"protocol.control_bytes",
       [](C& c, const F& f, const std::string& k) { c.protocol.control_bytes = f.get_int(k); },
       [](const C& c) { return std::to_string(c.protocol.control_bytes); }},
      {"qos.num_classes",
       [](C& c, const F& f, const std::string& k) { c.net.qos.num_classes = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.qos.num_classes); }},
      {"qos.weights",
       [](C& c, const F& f, const std::string& k) { c.net.qos.weights = f.get_int_list(k); },
       [](const C& c) { return join_ints(c.net.qos.weights); }},
      {"qos.quantum_packets",
       [](C& c, const F& f, const std::string& k) { c.net.qos.quantum_packets = f.get_int(k); },
       [](const C& c) { return std::to_string(c.net.qos.quantum_packets); }},
      {"cc.enabled",
       [](C& c, const F& f, const std::string& k) { c.net.cc.enabled = f.get_bool(k); },
       [](const C& c) { return std::string(c.net.cc.enabled ? "true" : "false"); }},
      {"cc.ecn_threshold_packets",
       [](C& c, const F& f, const std::string& k) {
         c.net.cc.ecn_threshold_packets = f.get_int(k);
       },
       [](const C& c) { return std::to_string(c.net.cc.ecn_threshold_packets); }},
      {"cc.md_factor",
       [](C& c, const F& f, const std::string& k) { c.net.cc.md_factor = f.get_double(k); },
       [](const C& c) { return format_double(c.net.cc.md_factor); }},
      {"cc.ai_step",
       [](C& c, const F& f, const std::string& k) { c.net.cc.ai_step = f.get_double(k); },
       [](const C& c) { return format_double(c.net.cc.ai_step); }},
      {"cc.min_rate",
       [](C& c, const F& f, const std::string& k) { c.net.cc.min_rate = f.get_double(k); },
       [](const C& c) { return format_double(c.net.cc.min_rate); }},
      {"qadp.alpha",
       [](C& c, const F& f, const std::string& k) { c.qadp.alpha = f.get_double(k); },
       [](const C& c) { return format_double(c.qadp.alpha); }},
      {"qadp.epsilon",
       [](C& c, const F& f, const std::string& k) { c.qadp.epsilon = f.get_double(k); },
       [](const C& c) { return format_double(c.qadp.epsilon); }},
      {"qadp.queue_weight",
       [](C& c, const F& f, const std::string& k) { c.qadp.queue_weight = f.get_double(k); },
       [](const C& c) { return format_double(c.qadp.queue_weight); }},
      {"ugal.bias", [](C& c, const F& f, const std::string& k) { c.ugal.bias = f.get_int(k); },
       [](const C& c) { return std::to_string(c.ugal.bias); }},
      {"ugal.nonmin_weight",
       [](C& c, const F& f, const std::string& k) { c.ugal.nonmin_weight = f.get_int(k); },
       [](const C& c) { return std::to_string(c.ugal.nonmin_weight); }},
      {"ugal.min_candidates",
       [](C& c, const F& f, const std::string& k) { c.ugal.min_candidates = f.get_int(k); },
       [](const C& c) { return std::to_string(c.ugal.min_candidates); }},
      {"ugal.nonmin_candidates",
       [](C& c, const F& f, const std::string& k) { c.ugal.nonmin_candidates = f.get_int(k); },
       [](const C& c) { return std::to_string(c.ugal.nonmin_candidates); }},
      {"faults",
       [](C& c, const F& f, const std::string& k) {
         c.faults = parse_fault_plan(f.get_string(k));
       },
       [](const C& c) { return format_fault_plan(c.faults); }},
  };
  return specs;
}

const KeySpec* find_spec(const std::string& key) {
  for (const KeySpec& spec : key_specs()) {
    if (key == spec.key) return &spec;
  }
  return nullptr;
}

}  // namespace

StudyConfig apply_config(StudyConfig base, const ConfigFile& file) {
  for (const auto& [key, value] : file.values()) {
    (void)value;
    const KeySpec* spec = find_spec(key);
    if (spec == nullptr) {
      throw std::invalid_argument("apply_config: " + file.where(key) + ": unknown key '" + key +
                                  "'");
    }
    spec->apply(base, file, key);
  }
  return base;
}

ConfigFile config_to_file(const StudyConfig& config) {
  ConfigFile file;
  for (const KeySpec& spec : key_specs()) {
    const std::string text = spec.to_text(config);
    if (std::string(spec.key) == "faults" && text.empty()) continue;
    file.set(spec.key, text);
  }
  return file;
}

}  // namespace dfly

// Intra-cell parallelism bench: full-cell wall time under --cell-threads
// 1 / 2 / 4 plus a cross-domain-heavy synthetic, with the byte-identity
// guarantee checked on every run.
//
// Two scenarios, both on MIN routing (eligible for group partitioning):
//   fft3d_ur  — FFT3D on half the machine + a UR background on the rest,
//               the paper's interference shape (§V)
//   ur_flood  — UR filling the machine: uniform-random destinations make
//               almost every message cross groups, the worst case for the
//               conservative window protocol (lots of small windows).
//
// Per scenario and thread count: wall time, the PdesCell's window /
// merged-event / cross-domain-event counters, and the engine's per-kind
// schedule/execute counters. cell_threads=1 falls back to the sequential
// engine, so it doubles as the baseline; every report must be byte-identical
// to it or the bench exits non-zero.
//
//   bench_pdes --smoke --json=BENCH_pdes.json   # the CI invocation
//   bench_pdes --scale=8 --routing=MIN
//
// Caveat (same as the PR-2 perf baselines): CI runners are often 1-2 cores,
// so the wall-time columns there measure protocol overhead, not speedup —
// read them as a trajectory, and benchmark speedup on a multi-core box.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/json_report.hpp"
#include "core/study.hpp"
#include "sim/pdes.hpp"

namespace dfly::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Scenario {
  std::string name;
  std::string target;      ///< app on the first half of the machine
  std::string background;  ///< app filling the rest ("" = target fills all)
};

struct CellRun {
  double wall_ms{0};
  std::string report_json;
  PdesStats pdes;          ///< zeros when the cell ran sequentially
  EngineStats engine;
};

CellRun run_cell(const StudyConfig& base, const Scenario& scenario, int cell_threads) {
  StudyConfig config = base;
  config.cell_threads = cell_threads;
  CellRun run;
  const auto t0 = Clock::now();
  {
    Study study(config);
    if (scenario.background.empty()) {
      study.add_app(scenario.target, 0);
    } else {
      study.add_app(scenario.target, study.free_nodes() / 2);
      study.add_app(scenario.background, 0);
    }
    run.report_json = report_to_json(study.run());
    if (study.pdes() != nullptr) run.pdes = study.pdes()->stats();
    run.engine = study.engine().stats();
  }
  run.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(Clock::now() - t0)
          .count();
  return run;
}

std::string kind_array(const std::array<std::uint64_t, EngineStats::kKinds + 1>& counts) {
  std::string out = "[";
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(counts[k]);
  }
  return out + "]";
}

int run(int argc, char** argv) {
  Caps caps;
  caps.json = true;
  caps.smoke = true;
  caps.jobs = false;  // one cell at a time so wall numbers are clean
  const Options options = Options::parse(argc, argv, /*default_scale=*/16, caps);

  const std::string routing = options.routing.empty() ? "MIN" : options.routing;
  StudyConfig base = options.config(routing);
  if (options.smoke) base.topo = DragonflyParams::tiny();  // 72 nodes, 9 groups

  const std::vector<int> thread_counts{1, 2, 4};
  const std::vector<Scenario> scenarios{
      {"fft3d_ur", "FFT3D", "UR"},
      {"ur_flood", "UR", ""},
  };

  print_header("Intra-cell parallel engine (--cell-threads): " + routing +
               ", threads 1/2/4, byte-identity checked (wall times on a 1-2 core "
               "CI box measure overhead, not speedup)");

  bool identical = true;
  std::vector<std::vector<CellRun>> results;  // [scenario][thread index]
  for (const Scenario& scenario : scenarios) {
    results.emplace_back();
    for (const int threads : thread_counts) {
      results.back().push_back(run_cell(base, scenario, threads));
      const CellRun& run = results.back().back();
      if (run.report_json != results.back().front().report_json) {
        identical = false;
        std::fprintf(stderr, "%s: cell_threads=%d report differs from sequential!\n",
                     scenario.name.c_str(), threads);
      }
      std::printf("%-10s threads=%d  %9.3f ms  domains=%d  windows=%llu  merged=%llu  "
                  "cross=%llu\n",
                  scenario.name.c_str(), threads, run.wall_ms, run.pdes.num_domains,
                  static_cast<unsigned long long>(run.pdes.windows),
                  static_cast<unsigned long long>(run.pdes.merged_events),
                  static_cast<unsigned long long>(run.pdes.cross_domain_events));
    }
    print_rule();
  }
  std::printf("outputs byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO (regression!)");

  if (!options.json_path.empty()) {
    std::string json = "{\n  \"bench\": \"pdes\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"routing\": \"%s\", \"scale\": %d, \"seed\": %llu, \"smoke\": %s,\n",
                  routing.c_str(), options.scale,
                  static_cast<unsigned long long>(options.seed),
                  options.smoke ? "true" : "false");
    json += buf;
    json += "  \"scenarios\": [\n";
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const std::vector<CellRun>& runs = results[s];
      json += "    {\"name\": \"" + scenarios[s].name + "\", \"cell_threads\": [";
      for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        json += (t > 0 ? ", " : "") + std::to_string(thread_counts[t]);
      }
      json += "],\n     \"wall_ms\": [";
      for (std::size_t t = 0; t < runs.size(); ++t) {
        std::snprintf(buf, sizeof buf, "%s%.3f", t > 0 ? ", " : "", runs[t].wall_ms);
        json += buf;
      }
      json += "],\n     \"num_domains\": [";
      for (std::size_t t = 0; t < runs.size(); ++t) {
        json += (t > 0 ? ", " : "") + std::to_string(runs[t].pdes.num_domains);
      }
      json += "], \"lookahead_ps\": " + std::to_string(runs.back().pdes.lookahead);
      json += ",\n     \"windows\": [";
      for (std::size_t t = 0; t < runs.size(); ++t) {
        json += (t > 0 ? ", " : "") + std::to_string(runs[t].pdes.windows);
      }
      json += "], \"merged_events\": [";
      for (std::size_t t = 0; t < runs.size(); ++t) {
        json += (t > 0 ? ", " : "") + std::to_string(runs[t].pdes.merged_events);
      }
      json += "], \"cross_domain_events\": [";
      for (std::size_t t = 0; t < runs.size(); ++t) {
        json += (t > 0 ? ", " : "") + std::to_string(runs[t].pdes.cross_domain_events);
      }
      // The engine's per-kind counters are identical across thread counts
      // (the parallel run replays the same events); emit the sequential ones.
      json += "],\n     \"engine\": {\"scheduled_total\": " +
              std::to_string(runs.front().engine.scheduled_total()) +
              ", \"executed_total\": " + std::to_string(runs.front().engine.executed_total()) +
              ",\n       \"scheduled_by_kind\": " +
              kind_array(runs.front().engine.scheduled_by_kind) +
              ",\n       \"executed_by_kind\": " +
              kind_array(runs.front().engine.executed_by_kind) + "}}";
      json += s + 1 < scenarios.size() ? ",\n" : "\n";
    }
    json += "  ],\n  \"derived\": {\"identical_output\": ";
    json += identical ? "true" : "false";
    json += "}\n}\n";
    save_json(options.json_path, json);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace dfly::bench

int main(int argc, char** argv) { return dfly::bench::run(argc, argv); }

#include "mpi/match.hpp"

namespace dfly::mpi {

std::uint32_t MatchList::on_arrival(int src_rank, int tag, std::int64_t bytes, SimTime now,
                                    std::uint64_t rdv_id) {
  std::uint32_t prev = kNil;
  for (std::uint32_t i = posted_.head; i != kNil; prev = i, i = posted_.slots[i].next) {
    const Posted& p = posted_.slots[i].item;
    if ((p.src_rank == kAnySource || p.src_rank == src_rank) && p.tag == tag) {
      const std::uint32_t request = p.request;
      posted_.erase_after(prev, i);
      return request;
    }
  }
  unexpected_.push_back(Unexpected{src_rank, tag, bytes, now, rdv_id});
  return kNoMatch;
}

std::optional<MatchList::Unexpected> MatchList::post_recv(int src_rank, int tag,
                                                          std::uint32_t request) {
  std::uint32_t prev = kNil;
  for (std::uint32_t i = unexpected_.head; i != kNil; prev = i, i = unexpected_.slots[i].next) {
    const Unexpected& u = unexpected_.slots[i].item;
    if ((src_rank == kAnySource || u.src_rank == src_rank) && u.tag == tag) {
      const Unexpected hit = u;
      unexpected_.erase_after(prev, i);
      return hit;
    }
  }
  posted_.push_back(Posted{src_rank, tag, request});
  return std::nullopt;
}

void MatchList::reset() {
  posted_.reset();
  unexpected_.reset();
}

void MatchList::reserve(std::size_t posted, std::size_t unexpected) {
  posted_.reserve(posted);
  unexpected_.reserve(unexpected);
}

}  // namespace dfly::mpi

#include "core/study.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "core/arena.hpp"
#include "core/parallel.hpp"
#include "workloads/factory.hpp"

namespace dfly {

namespace {

/// Resolve the cell's immutable plan: explicit blueprint (shape-checked),
/// thread-bound shared cache, else a private build. The resulting blueprint
/// content is identical in every case, so the choice never affects output.
std::shared_ptr<const SystemBlueprint> resolve_blueprint(
    const StudyConfig& config, std::shared_ptr<const SystemBlueprint> explicit_bp) {
  if (explicit_bp != nullptr) {
    if (!(explicit_bp->key() == BlueprintKey::of(config))) {
      throw std::invalid_argument(
          "Study: the supplied SystemBlueprint was built for a different system shape");
    }
    return explicit_bp;
  }
  if (blueprint_enabled()) {
    if (BlueprintCache* cache = BlueprintCache::current()) {
      return cache->get_or_build(config);
    }
  }
  return SystemBlueprint::build(config);
}

}  // namespace

Study::Study(StudyConfig config, SimArena* arena,
             std::shared_ptr<const SystemBlueprint> blueprint)
    : config_(std::move(config)),
      blueprint_(resolve_blueprint(config_, std::move(blueprint))),
      placer_(blueprint_->topo(), config_.placement, Rng(config_.seed, 0x9 /*placement stream*/),
              &blueprint_->placement_pool()) {
  SimArena* candidate = arena != nullptr ? arena : SimArena::current();
  if (candidate != nullptr && arena_enabled() && candidate->try_acquire(this)) {
    arena_ = candidate;
    engine_ = arena_->take_engine();
  }
}

Study::~Study() {
  {
    // Park coroutine frames freed during teardown in the arena's pool. The
    // binding is a strictly nested scope (not a member), so destroying
    // several arena-holding Studies on one thread in any order can never
    // leave the thread-local pool pointer dangling.
    mpi::ScopedFramePoolBinding frame_binding(arena_ != nullptr ? &arena_->frame_pool()
                                                                : nullptr);
    // Tear the cell down in dependency order before returning storage: jobs
    // and the MPI system reference the network; the network's destructor
    // hands the router/NIC/pool/stats storage back to the arena.
    jobs_.clear();
    traces_.clear();
    mpi_system_.reset();
    network_.reset();
    pdes_.reset();  // after network_: NICs record into the cell's shards
    routing_.reset();
    motifs_.clear();
  }
  if (arena_ != nullptr) {
    arena_->return_engine(std::move(engine_));
    arena_->release(this);
  }
}

int Study::add_app(const std::string& name, int max_nodes) {
  if (ran_) throw std::logic_error("Study: cannot add jobs after run()");
  const int budget = max_nodes > 0 ? max_nodes : placer_.free_nodes();
  workloads::AppInstance app = workloads::make_app(name, budget, config_.scale);
  return add_motif(std::move(app.motif), app.nodes, name);
}

int Study::add_motif(std::unique_ptr<mpi::Motif> motif, int nodes, const std::string& label) {
  if (ran_) throw std::logic_error("Study: cannot add jobs after run()");
  PendingJob pending;
  pending.motif = std::move(motif);
  pending.label = label;
  pending.nodes = placer_.allocate(nodes);
  pending_.push_back(std::move(pending));
  return static_cast<int>(pending_.size()) - 1;
}

void Study::set_traffic_class(int app_id, int traffic_class) {
  if (ran_) throw std::logic_error("Study: cannot assign classes after run()");
  if (app_id < 0 || app_id >= static_cast<int>(pending_.size())) {
    throw std::out_of_range("Study::set_traffic_class: unknown app id");
  }
  pending_[static_cast<std::size_t>(app_id)].traffic_class = traffic_class;
}

void Study::record_trace(int app_id) {
  if (ran_) throw std::logic_error("Study: cannot enable tracing after run()");
  if (app_id < 0 || app_id >= static_cast<int>(pending_.size())) {
    throw std::out_of_range("Study::record_trace: unknown app id");
  }
  pending_[static_cast<std::size_t>(app_id)].record_trace = true;
}

const trace::MessageTrace& Study::trace(int app_id) const {
  if (app_id < 0 || app_id >= static_cast<int>(traces_.size()) ||
      traces_[static_cast<std::size_t>(app_id)] == nullptr) {
    throw std::out_of_range("Study::trace: tracing was not enabled for this app");
  }
  return *traces_[static_cast<std::size_t>(app_id)];
}

void Study::build() {
  const int num_apps = static_cast<int>(pending_.size());
  // Routing and network both read their immutable inputs (topology, net
  // config, initial Q-tables) out of the shared blueprint — the addresses
  // are stable for the Study's lifetime because blueprint_ is held above.
  routing::RoutingContext context{&engine_,     &blueprint_->topo(), &blueprint_->net(),
                                  config_.seed, config_.ugal,        config_.qadp,
                                  blueprint_->initial_qtables()};
  routing_ = routing::make_routing(config_.routing, context);
  network_ = std::make_unique<Network>(engine_, *blueprint_, *routing_, num_apps,
                                       config_.seed, config_.observability, arena_,
                                       pdes_.get());
  if (!config_.faults.empty()) network_->apply_faults(blueprint_->faults());
  mpi_system_ = std::make_unique<mpi::MpiSystem>(*network_, arena_);
  if (pdes_ != nullptr) mpi_system_->set_locking(true);
  int app_id = 0;
  for (auto& pending : pending_) {
    motifs_.push_back(std::move(pending.motif));
    jobs_.push_back(std::make_unique<mpi::Job>(engine_, *network_, *mpi_system_, app_id,
                                               pending.label, *motifs_.back(),
                                               std::move(pending.nodes), config_.seed,
                                               config_.protocol, arena_));
    network_->set_app_class(app_id, pending.traffic_class);
    jobs_.back()->set_locking(pdes_ != nullptr);
    traces_.push_back(pending.record_trace ? std::make_unique<trace::MessageTrace>() : nullptr);
    if (traces_.back() != nullptr) jobs_.back()->set_send_observer(traces_.back().get());
    ++app_id;
  }
  pending_.clear();
}

Report Study::run() {
  if (ran_) throw std::logic_error("Study: run() called twice");
  if (pending_.empty()) throw std::logic_error("Study: no jobs added");
  ran_ = true;
  // Serve coroutine frames from the arena's pool for the whole run (start()
  // creates one frame per rank; waves recycle frames as the clock advances).
  // Nested scope, same reasoning as in the destructor.
  mpi::ScopedFramePoolBinding frame_binding(arena_ != nullptr ? &arena_->frame_pool() : nullptr);
  // Intra-cell parallelism (--cell-threads): eligible cells split their
  // groups across domain engines *before* build() wires components, so every
  // router/NIC/rank lands on its domain's engine. Ineligible cells — adaptive
  // routings that carry cross-group state, record-keeping runs, traced runs,
  // single-group topologies, zero lookahead — silently run sequentially;
  // either way the output is byte-identical (src/sim/pdes.hpp).
  const int cell_threads = ParallelRunner::resolve_cell_threads(config_.cell_threads);
  if (cell_threads > 1 && routing::is_cell_parallel(config_.routing) &&
      !config_.observability.keep_packet_records) {
    bool tracing = false;
    for (const auto& pending : pending_) tracing = tracing || pending.record_trace;
    if (!tracing) {
      CellPartition partition = CellPartition::build(*blueprint_, cell_threads);
      if (partition.num_domains > 1 && partition.lookahead > 0) {
        pdes_ = std::make_unique<PdesCell>(engine_, std::move(partition), arena_);
        pdes_->begin_setup();
      }
    }
  }
  build();
  for (auto& job : jobs_) job->start();
  // Arm the cooperative watchdog for this run only: a WallDeadlineExceeded
  // propagates to the caller (run_plan records it as a cell timeout) and the
  // Study tears down normally — same mid-flight teardown path as a
  // time_limit-capped run.
  if (config_.wall_limit_s > 0) {
    engine_.set_wall_deadline(std::chrono::steady_clock::now() +
                              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(config_.wall_limit_s)));
  }
  if (pdes_ != nullptr) {
    PdesRunner(*pdes_, config_.time_limit).run();
    pdes_->finish();
    network_->finalize_pdes();
  } else {
    engine_.run(config_.time_limit);
  }
  engine_.clear_wall_deadline();
  return report();
}

}  // namespace dfly

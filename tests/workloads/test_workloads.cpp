#include <gtest/gtest.h>

#include "core/study.hpp"
#include "workloads/factory.hpp"
#include "workloads/grid.hpp"
#include "workloads/intensity.hpp"
#include "workloads/motifs.hpp"

namespace dfly {
namespace {

using workloads::Grid;

TEST(Grid, CoordsRoundTrip) {
  const Grid grid({3, 4, 5});
  EXPECT_EQ(grid.size(), 60);
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.rank_of(grid.coords(r)), r);
  }
}

TEST(Grid, FaceNeighborsOpenBoundary) {
  const Grid grid({3, 3});
  // Corner has 2, edge 3, centre 4.
  EXPECT_EQ(grid.face_neighbors(0, false).size(), 2u);
  EXPECT_EQ(grid.face_neighbors(1, false).size(), 3u);
  EXPECT_EQ(grid.face_neighbors(4, false).size(), 4u);
}

TEST(Grid, FaceNeighborsPeriodic) {
  const Grid grid({4, 4});
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.face_neighbors(r, true).size(), 4u);
  }
}

TEST(Grid, MooreNeighborsCount) {
  const Grid grid({3, 3, 3});
  // Centre of a 3^3 grid has all 26 Moore neighbours; a corner has 7.
  EXPECT_EQ(grid.moore_neighbors(13, false).size(), 26u);
  EXPECT_EQ(grid.moore_neighbors(0, false).size(), 7u);
}

TEST(Grid, BalancedDimsProductWithinBudget) {
  for (const int n : {8, 64, 100, 243, 256, 486, 512, 528}) {
    for (const int d : {2, 3, 4, 5}) {
      const auto dims = Grid::balanced_dims(n, d);
      long long product = 1;
      for (const int x : dims) product *= x;
      EXPECT_LE(product, n);
      EXPECT_GT(product, n / 4) << "n=" << n << " d=" << d;  // not pathologically small
    }
  }
}

TEST(Factory, NearSquareMatchesPaperSizes) {
  EXPECT_EQ(workloads::near_square(528), (std::pair<int, int>{22, 24}));
  EXPECT_EQ(workloads::near_square(140), (std::pair<int, int>{10, 14}));
}

TEST(Factory, AllNineAppsBuild) {
  for (const auto& name : workloads::app_names()) {
    const auto app = workloads::make_app(name, 528, /*scale=*/8);
    EXPECT_NE(app.motif, nullptr) << name;
    EXPECT_GT(app.nodes, 0) << name;
    EXPECT_LE(app.nodes, 528) << name;
  }
  EXPECT_EQ(workloads::app_names().size(), 9u);
}

TEST(Factory, PaperJobSizes) {
  EXPECT_EQ(workloads::make_app("Halo3D", 528).nodes, 512);
  EXPECT_EQ(workloads::make_app("LQCD", 528).nodes, 512);
  EXPECT_EQ(workloads::make_app("LQCD", 256).nodes, 256);
  EXPECT_EQ(workloads::make_app("Stencil5D", 528).nodes, 486);
  EXPECT_EQ(workloads::make_app("Stencil5D", 243).nodes, 243);
  EXPECT_EQ(workloads::make_app("LULESH", 528).nodes, 512);
  EXPECT_EQ(workloads::make_app("UR", 139).nodes, 139);
  EXPECT_EQ(workloads::make_app("CosmoFlow", 138).nodes, 138);
}

TEST(Factory, UnknownAppThrows) {
  EXPECT_THROW(workloads::make_app("NotAnApp", 100), std::invalid_argument);
}

TEST(Scaled, DividesAndClamps) {
  EXPECT_EQ(workloads::scaled(80, 8), 10);
  EXPECT_EQ(workloads::scaled(80, 1000), 1);
  EXPECT_EQ(workloads::scaled(80, 0), 80);
  EXPECT_EQ(workloads::scaled(2, 8, 2), 2);
}

/// Each motif, run on a small system, must complete and exhibit its
/// documented peak-ingress shape.
class MotifRun : public ::testing::TestWithParam<std::string> {};

TEST_P(MotifRun, CompletesOnTinySystem) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();  // 72 nodes
  config.routing = "UGALg";
  config.scale = 64;  // keep test fast
  Study study(config);
  study.add_app(GetParam(), 64);
  const Report report = study.run();
  EXPECT_TRUE(report.completed) << GetParam();
  const AppReport& app = report.apps[0];
  EXPECT_GT(app.total_msg_mb, 0.0);
  EXPECT_GT(app.exec_ms, 0.0);
  EXPECT_GT(app.packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, MotifRun,
                         ::testing::Values("UR", "LU", "FFT3D", "Halo3D", "LQCD", "Stencil5D",
                                           "CosmoFlow", "DL", "LULESH"),
                         [](const auto& info) { return info.param; });

TEST(Intensity, PeakIngressShapes) {
  // On a small system the structural peak-ingress relationships of §IV
  // must hold: alltoall = 1 msg, allreduce = 2 msgs, stencil = degree msgs.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.scale = 64;
  {
    Study study(config);
    study.add_app("FFT3D", 64);
    study.run();
    const auto m = workloads::measure_intensity(study.job(0));
    // Alltoall ring: one message of the default 51.68KB size per round.
    EXPECT_DOUBLE_EQ(m.peak_ingress_bytes, 52920.0);
  }
}

TEST(Intensity, StencilPeakIsDegreeTimesMessage) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.scale = 64;
  Study study(config);
  study.add_app("Halo3D", 64);  // 4x4x4 = 64 nodes? cube_side(64)=4
  study.run();
  const auto m = workloads::measure_intensity(study.job(0));
  // Periodic 3D torus: every rank has 6 neighbours.
  const double msg = 196608.0;
  EXPECT_DOUBLE_EQ(m.peak_ingress_bytes, 6 * msg);
}

TEST(Intensity, FormatVolumeUnits) {
  EXPECT_EQ(workloads::format_volume(3072), "3.07KB");
  EXPECT_EQ(workloads::format_volume(1.15e6), "1.15MB");
}

TEST(Intensity, InjectionRateIsTotalOverExec) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.scale = 64;
  Study study(config);
  study.add_app("UR", 64);
  study.run();
  const auto m = workloads::measure_intensity(study.job(0));
  EXPECT_NEAR(m.injection_rate_gbs, m.total_msg_mb * 1e6 / (m.execution_ms * 1e6), 1e-6);
}

}  // namespace
}  // namespace dfly

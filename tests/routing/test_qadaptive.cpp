#include "routing/q_adaptive.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/factory.hpp"
#include "routing/q_table.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

TEST(QTable, InitialisesToZero) {
  QTable table(9, 4, 8);
  EXPECT_EQ(table.global_q(3, 5), 0.0);
  EXPECT_EQ(table.local_q(2, 1), 0.0);
}

TEST(QTable, UpdateMovesTowardSample) {
  QTable table(4, 4, 8);
  table.set_global(1, 2, 100.0);
  const double next = table.update_global(1, 2, 200.0, 0.5);
  EXPECT_DOUBLE_EQ(next, 150.0);
  EXPECT_DOUBLE_EQ(table.global_q(1, 2), 150.0);
  table.set_local(0, 3, 80.0);
  table.update_local(0, 3, 0.0, 0.25);
  EXPECT_DOUBLE_EQ(table.local_q(0, 3), 60.0);
}

TEST(QTable, FootprintIsLightweight) {
  // The paper stresses a "light-weight two-level Q-table": for the 1,056-
  // node system each router stores 33 groups x 15 ports + 8 locals x 15
  // ports doubles — about 5KB.
  QTable table(33, 8, 15);
  EXPECT_LT(table.footprint_bytes(), 8u * 1024u);
}

struct QFixture {
  explicit QFixture(const std::vector<QTable>* qinit = nullptr)
      : bp(testsupport::make_blueprint(DragonflyParams::tiny(), {}, "Q-adp")), topo(bp->topo()) {
    routing::RoutingContext context{&engine, &topo, &bp->net(), 7};
    algo = std::make_unique<routing::QAdaptiveRouting>(engine, topo, bp->net(), context.qadp,
                                                       context.seed, qinit);
    NetworkObservability obs;
    obs.keep_packet_records = true;
    net = std::make_unique<Network>(engine, *bp, *algo, 1, 7, obs);
    net->set_sink(sink);
  }
  class CountSink final : public MessageEvents {
   public:
    void message_sent(std::uint64_t) override {}
    void message_delivered(std::uint64_t) override { ++delivered; }
    int delivered{0};
  };
  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly& topo;
  std::unique_ptr<routing::QAdaptiveRouting> algo;
  std::unique_ptr<Network> net;
  CountSink sink;
};

TEST(QAdaptive, InitTablesPreferMinimalPaths) {
  QFixture f;
  // Router 0's global port toward its directly-connected group must have a
  // smaller initial estimate than any port that needs a detour.
  const int dst_group = f.topo.group_reached_by(0, 0);
  const QTable& table = f.algo->table(0);
  const double direct = table.global_q(dst_group, f.topo.global_port(0));
  for (int port = f.topo.first_local_port(); port < f.topo.radix(); ++port) {
    if (port == f.topo.global_port(0)) continue;
    EXPECT_LE(direct, table.global_q(dst_group, port)) << "port " << port;
  }
}

TEST(QAdaptive, IdleNetworkStaysMostlyMinimal) {
  QFixture f;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(f.topo.num_nodes())));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(f.topo.num_nodes())));
    }
    f.net->send_message(src, dst, 512, 0);
    f.engine.run();
  }
  const auto& log = f.net->packet_log();
  EXPECT_EQ(log.delivered_packets(0), 100u);
  // epsilon exploration allows a few detours, but the bulk must be minimal.
  EXPECT_LT(static_cast<double>(log.nonminimal_packets(0)), 10.0);
}

TEST(QAdaptive, FeedbackSignalsFlow) {
  QFixture f;
  f.net->send_message(0, f.topo.num_nodes() - 1, 8192, 0);
  f.engine.run();
  // Every router-to-router hop generates one feedback signal.
  EXPECT_GT(f.algo->feedback_signals(), 0u);
}

TEST(QAdaptive, LearnsToAvoidSaturatedMinimalPath) {
  QFixture f;
  // Saturate the single global link 0->1 with a persistent flow, then check
  // the learned Q-value for the minimal port grew above its initial value.
  const int dst_group = 1;
  const auto& gw = f.topo.gateways(0, dst_group);
  ASSERT_EQ(gw.size(), 1u);
  const int gw_router = gw[0].router;
  const int gw_port = f.topo.global_port(gw[0].global_port);
  const double initial_q = f.algo->table(gw_router).global_q(dst_group, gw_port);

  const int nodes_per_group = f.topo.params().p * f.topo.params().a;
  for (int rep = 0; rep < 50; ++rep) {
    for (int n = 0; n < nodes_per_group; ++n) {
      f.net->send_message(n, nodes_per_group + n, 4096, 0);
    }
  }
  f.engine.run();
  const double learned_q = f.algo->table(gw_router).global_q(dst_group, gw_port);
  EXPECT_GT(learned_q, initial_q) << "queueing on the hot link was not learned";
  // And traffic diverted non-minimally as a result.
  EXPECT_GT(f.net->packet_log().nonminimal_packets(0), 0u);
}

TEST(QAdaptive, TrainingIsIncludedNoPretrainedState) {
  // Two fresh instances from the same seed behave identically (no hidden
  // global state), and a fresh instance's tables equal the unloaded inits.
  Engine e1, e2;
  Dragonfly topo(DragonflyParams::tiny());
  NetConfig cfg;
  routing::QAdaptiveParams params;
  routing::QAdaptiveRouting a(e1, topo, cfg, params, 5);
  routing::QAdaptiveRouting b(e2, topo, cfg, params, 5);
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int g = 0; g < topo.num_groups(); ++g) {
      for (int p = 0; p < topo.radix(); ++p) {
        EXPECT_DOUBLE_EQ(a.table(r).global_q(g, p), b.table(r).global_q(g, p));
      }
    }
  }
}

TEST(QAdaptive, HopBudgetHoldsOnPaperTopologyUnderLoad) {
  // Regression: the kMidLocalDone candidate set once allowed any global
  // port, letting packets chain intermediate groups indefinitely until the
  // VC budget blew up. Admissible Q-adaptive paths are at most
  // local-global-local-global-local = 5 hops.
  Engine engine;
  const auto bp = testsupport::make_blueprint(DragonflyParams::paper());
  const Dragonfly& topo = bp->topo();
  routing::QAdaptiveParams params;
  routing::QAdaptiveRouting algo(engine, topo, bp->net(), params, 13);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, algo, 1, 13, obs);
  QFixture::CountSink sink;
  net.set_sink(sink);
  Rng rng(17);
  // Bursty many-to-few traffic to force detours.
  for (int rep = 0; rep < 5; ++rep) {
    for (int n = 0; n < topo.num_nodes(); n += 3) {
      const int dst = static_cast<int>(rng.next_below(64));
      if (dst == n) continue;
      net.send_message(n, dst, 4096, 0);
    }
  }
  engine.run();
  for (const auto& r : net.packet_log().records()) {
    EXPECT_LE(r.hops, 5) << "Q-adaptive exceeded the admissible path length";
  }
  EXPECT_EQ(net.pool().in_use(), 0u);
}

class QAdaptiveParamsSweep : public ::testing::TestWithParam<double> {};

TEST_P(QAdaptiveParamsSweep, DeliversUnderAnyLearningRate) {
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::QAdaptiveParams params;
  params.alpha = GetParam();
  routing::QAdaptiveRouting algo(engine, topo, bp->net(), params, 3);
  Network net(engine, *bp, algo, 1, 3);
  QFixture::CountSink sink;
  net.set_sink(sink);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    }
    net.send_message(src, dst, 2048, 0);
  }
  engine.run();
  EXPECT_EQ(sink.delivered, 100);
}

INSTANTIATE_TEST_SUITE_P(LearningRates, QAdaptiveParamsSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.9));

}  // namespace
}  // namespace dfly

#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/json_report.hpp"

namespace dfly {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("PlanJournal: " + what + " " + path + ": " + std::strerror(errno));
}

std::string hash_to_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

/// Scan `line` for `"name":` and return the character position just past the
/// colon, or npos. Keys are emitted by format() and never appear inside the
/// escaped error string with this exact quoted-colon spelling prefix-first,
/// so a forward find of the FIRST occurrence is unambiguous for every field
/// that precedes "error" (and "error" itself is located by its key).
std::size_t value_pos(const std::string& line, const char* name) {
  const std::string needle = '"' + std::string(name) + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool parse_u64_at(const std::string& line, std::size_t pos, std::uint64_t& out) {
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  std::uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  out = value;
  return true;
}

bool parse_bool_at(const std::string& line, std::size_t pos, bool& out) {
  if (line.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

/// Inverse of JsonWriter::escape for the subset it emits. Returns false on a
/// malformed sequence or a missing closing quote (torn line).
bool parse_string_at(const std::string& line, std::size_t pos, std::string& out) {
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      ++pos;
      continue;
    }
    if (pos + 1 >= line.size()) return false;
    const char esc = line[pos + 1];
    pos += 2;
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos + 4 > line.size()) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = line[pos + static_cast<std::size_t>(i)];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        // JsonWriter only \u-escapes control characters (< 0x20); anything
        // else would not round-trip through this byte-level decoder.
        if (value > 0xff) return false;
        out += static_cast<char>(value);
        pos += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // no closing quote: torn write
}

}  // namespace

PlanJournal::PlanJournal(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open", path);
}

PlanJournal::~PlanJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void PlanJournal::append(const JournalRecord& record) {
  const std::string line = format(record) + '\n';
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed on", path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync failed on", path_);
}

std::string PlanJournal::format(const JournalRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.key("cell").value(record.cell);
  w.key("ok").value(record.ok);
  w.key("completed").value(record.completed);
  w.key("hash").value(hash_to_hex(record.hash));
  w.key("attempts").value(record.attempts);
  w.key("timeout").value(record.timeout);
  w.key("offset").value(record.offset);
  w.key("error").value(record.error);
  w.end_object();
  return w.str();
}

std::optional<JournalRecord> PlanJournal::parse_line(const std::string& line) {
  JournalRecord record;
  if (line.empty() || line.front() != '{' || line.back() != '}') return std::nullopt;

  std::size_t pos = value_pos(line, "cell");
  if (pos == std::string::npos || !parse_u64_at(line, pos, record.cell)) return std::nullopt;
  pos = value_pos(line, "ok");
  if (pos == std::string::npos || !parse_bool_at(line, pos, record.ok)) return std::nullopt;
  pos = value_pos(line, "completed");
  if (pos == std::string::npos || !parse_bool_at(line, pos, record.completed)) {
    return std::nullopt;
  }
  pos = value_pos(line, "hash");
  std::string hex;
  if (pos == std::string::npos || !parse_string_at(line, pos, hex) || hex.size() != 16) {
    return std::nullopt;
  }
  record.hash = std::strtoull(hex.c_str(), nullptr, 16);
  pos = value_pos(line, "attempts");
  std::uint64_t attempts = 0;
  if (pos == std::string::npos || !parse_u64_at(line, pos, attempts)) return std::nullopt;
  record.attempts = static_cast<int>(attempts);
  pos = value_pos(line, "timeout");
  if (pos == std::string::npos || !parse_bool_at(line, pos, record.timeout)) {
    return std::nullopt;
  }
  pos = value_pos(line, "offset");
  if (pos == std::string::npos || !parse_u64_at(line, pos, record.offset)) return std::nullopt;
  pos = value_pos(line, "error");
  if (pos == std::string::npos || !parse_string_at(line, pos, record.error)) {
    return std::nullopt;
  }
  return record;
}

std::vector<JournalRecord> PlanJournal::recover(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (::access(path.c_str(), F_OK) != 0) return {};  // fresh start
    throw std::runtime_error("PlanJournal: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  in.close();

  std::vector<JournalRecord> records;
  std::size_t start = 0;
  std::uint64_t good_end = 0;  // byte offset just past the last intact record
  while (start < text.size()) {
    const std::size_t newline = text.find('\n', start);
    if (newline == std::string::npos) break;  // torn tail: no terminator
    const std::optional<JournalRecord> record =
        parse_line(text.substr(start, newline - start));
    if (!record) break;  // torn or corrupt line: discard it and the rest
    records.push_back(*record);
    start = newline + 1;
    good_end = start;
  }
  if (good_end != text.size()) truncate_file(path, good_end);
  return records;
}

void truncate_file(const std::string& path, std::uint64_t size) {
  // O_CREAT so that truncating a missing output to offset 0 (fresh resume
  // with an empty journal) leaves a well-defined empty file behind.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot open for truncation", path);
  const int rc = ::ftruncate(fd, static_cast<off_t>(size));
  ::close(fd);
  if (rc != 0) throw_errno("cannot truncate", path);
}

}  // namespace dfly

// Stencil5D is an NdStencilMotif configuration (5D open grid, <= 10
// neighbours); the preset lives in halo3d.cpp alongside the shared stencil
// engine. This TU hosts Stencil5D-specific helpers.

#include "workloads/motifs.hpp"

namespace dfly::workloads {

/// Convenience: a fully-constructed Stencil5D motif.
std::unique_ptr<NdStencilMotif> make_stencil5d(int scale) {
  NdStencilParams p = NdStencilMotif::stencil5d();
  p.iterations = scaled(p.iterations, scale);
  return std::make_unique<NdStencilMotif>(std::move(p));
}

}  // namespace dfly::workloads

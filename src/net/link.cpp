#include "net/link.hpp"

// LinkMap is header-only; this TU anchors the library target.

#include "routing/app_aware.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/study.hpp"
#include "routing/factory.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

using routing::AppAwareParams;
using routing::AppAwareUgalRouting;

TEST(AppAware, FactoryBuildsIt) {
  Engine engine;
  const Dragonfly topo(DragonflyParams::tiny());
  NetConfig cfg;
  routing::RoutingContext context{&engine, &topo, &cfg, 1};
  const auto routing = routing::make_routing("AppAware", context);
  EXPECT_EQ(routing->name(), "AppAware");
}

TEST(AppAware, ListedInAllRoutings) {
  const auto& names = routing::all_routings();
  EXPECT_NE(std::find(names.begin(), names.end(), "AppAware"), names.end());
}

TEST(AppAware, BiasDefaultsToZeroBeforeTraffic) {
  AppAwareUgalRouting routing;
  EXPECT_EQ(routing.bias_of(0), 0);
  EXPECT_EQ(routing.bias_of(7), 0);
  EXPECT_EQ(routing.bias_of(-1), 0);
  EXPECT_EQ(routing.intensity_of(3), 0.0);
}

/// Build a heavy/light pair and check the classifier: the aggressor (most of
/// the injected bytes) must end up with the spread bias, the light app with
/// the keep-minimal bias.
TEST(AppAware, ClassifiesAggressorAndVictim) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "AppAware";
  config.seed = 11;
  Study study(config);

  // Light victim: sparse ping-pong pairs. Heavy aggressor: saturating UR.
  workloads::PingPongParams victim_params;
  victim_params.msg_bytes = 512;
  victim_params.iterations = 120;
  const int victim =
      study.add_motif(std::make_unique<workloads::PingPongMotif>(victim_params), 8, "victim");

  workloads::UniformRandomParams aggressor_params;
  aggressor_params.msg_bytes = 65536;
  aggressor_params.iterations = 60;
  aggressor_params.interval = 0;
  aggressor_params.window = 16;
  const int aggressor = study.add_motif(
      std::make_unique<workloads::UniformRandomMotif>(aggressor_params), 48, "aggressor");

  const Report report = study.run();
  EXPECT_TRUE(report.completed);

  const auto& routing = dynamic_cast<const AppAwareUgalRouting&>(study.routing());
  EXPECT_GT(routing.intensity_of(aggressor), routing.intensity_of(victim));
  EXPECT_EQ(routing.bias_of(aggressor), routing.params().bandwidth_bias);
  EXPECT_EQ(routing.bias_of(victim), routing.params().latency_bias);
}

/// The bias must be visible in routing behaviour: with a latency bias the
/// light app stays more minimal than the spread-biased heavy app.
TEST(AppAware, BiasShiftsNonminimalFractions) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "AppAware";
  config.seed = 3;
  Study study(config);

  workloads::PingPongParams victim_params;
  victim_params.msg_bytes = 2048;
  victim_params.iterations = 200;
  const int victim =
      study.add_motif(std::make_unique<workloads::PingPongMotif>(victim_params), 8, "victim");

  workloads::UniformRandomParams aggressor_params;
  aggressor_params.msg_bytes = 65536;
  aggressor_params.iterations = 80;
  aggressor_params.interval = 0;
  aggressor_params.window = 16;
  const int aggressor = study.add_motif(
      std::make_unique<workloads::UniformRandomMotif>(aggressor_params), 48, "aggressor");

  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const AppReport& victim_report = report.apps[static_cast<std::size_t>(victim)];
  const AppReport& aggressor_report = report.apps[static_cast<std::size_t>(aggressor)];
  EXPECT_LT(victim_report.nonminimal_fraction, aggressor_report.nonminimal_fraction);
}

/// Single application: it owns 100% of the traffic, is classified bandwidth-
/// bound, and behaves like UGAL with a small negative bias — comm time must
/// stay within a sane factor of UGALn on the same workload.
TEST(AppAware, SingleAppStaysCloseToUgal) {
  auto comm_time = [](const std::string& routing) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = routing;
    config.seed = 17;
    Study study(config);
    workloads::UniformRandomParams params;
    params.iterations = 60;
    params.interval = 0;
    params.window = 16;
    study.add_motif(std::make_unique<workloads::UniformRandomMotif>(params),
                    config.topo.num_nodes(), "UR");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    return report.apps[0].comm_mean_ms;
  };
  const double ugal = comm_time("UGALn");
  const double aware = comm_time("AppAware");
  EXPECT_LT(aware, ugal * 1.5);
  EXPECT_GT(aware, ugal * 0.5);
}

/// Idle windows must not erase the classification (silent apps keep their
/// bias until they inject again).
TEST(AppAware, ParamsArePluggable) {
  AppAwareParams params;
  params.aggressor_fraction = 0.9;
  params.smoothing = 0.5;
  params.latency_bias = 2;
  params.bandwidth_bias = -1;
  AppAwareUgalRouting routing(params);
  EXPECT_EQ(routing.params().aggressor_fraction, 0.9);
  EXPECT_EQ(routing.params().smoothing, 0.5);
  EXPECT_EQ(routing.params().latency_bias, 2);
  EXPECT_EQ(routing.params().bandwidth_bias, -1);
}

}  // namespace
}  // namespace dfly

#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dfly {

enum class LinkClass : std::uint8_t { kTerminal = 0, kLocal = 1, kGlobal = 2 };

/// Per-link counters: traffic volume (total and by app) and stall time.
///
/// Stall time follows the paper's Fig 11 metric: time an output port spent
/// blocked — it had a packet ready to forward but could not transmit because
/// the downstream buffer had no credits.
///
/// Thread-safety: none. The counters are plain (unsynchronised) fields: one
/// LinkStats per Network, one Network per simulation cell, one cell per
/// ParallelRunner worker — never shared across threads.
class LinkStats {
 public:
  /// An empty stats block; give it a shape with reset() before use.
  LinkStats() = default;
  /// `num_links` output links, `num_apps` applications.
  LinkStats(int num_links, int num_apps);

  /// Re-shape and zero every counter in place. Vector capacity is kept, so a
  /// block recycled across same-shape cells (core/arena.hpp) re-initialises
  /// without heap traffic.
  void reset(int num_links, int num_apps);

  void set_link_info(int link, LinkClass cls, int src_router, int dst_router);

  void add_traffic(int link, int app_id, std::int64_t bytes) {
    bytes_[static_cast<std::size_t>(link)] += bytes;
    by_app_[static_cast<std::size_t>(link) * num_apps_ + static_cast<std::size_t>(app_id)] += bytes;
    packets_[static_cast<std::size_t>(link)]++;
  }

  void add_stall(int link, SimTime duration) {
    stall_[static_cast<std::size_t>(link)] += duration;
  }

  std::int64_t bytes(int link) const { return bytes_[static_cast<std::size_t>(link)]; }
  std::int64_t bytes_by_app(int link, int app_id) const {
    return by_app_[static_cast<std::size_t>(link) * num_apps_ + static_cast<std::size_t>(app_id)];
  }
  std::uint64_t packets(int link) const { return packets_[static_cast<std::size_t>(link)]; }
  SimTime stall(int link) const { return stall_[static_cast<std::size_t>(link)]; }

  LinkClass link_class(int link) const { return class_[static_cast<std::size_t>(link)]; }
  int src_router(int link) const { return src_[static_cast<std::size_t>(link)]; }
  int dst_router(int link) const { return dst_[static_cast<std::size_t>(link)]; }

  int num_links() const { return static_cast<int>(bytes_.size()); }
  int num_apps() const { return static_cast<int>(num_apps_); }

  /// Aggregate stall over all links of one class (Fig 11 summary numbers).
  SimTime total_stall(LinkClass cls) const;
  /// Aggregate bytes over all links of one class.
  std::int64_t total_bytes(LinkClass cls) const;

 private:
  std::size_t num_apps_{0};
  std::vector<std::int64_t> bytes_;
  std::vector<std::int64_t> by_app_;
  std::vector<std::uint64_t> packets_;
  std::vector<SimTime> stall_;
  std::vector<LinkClass> class_;
  std::vector<int> src_, dst_;
};

}  // namespace dfly

// Ablation: job placement policy. The paper uses random placement (§V) and
// cites contiguous placement as the classic interference mitigation with a
// fragmentation cost. This bench quantifies the trade-off on the
// FFT3D+Halo3D pair for PAR and Q-adaptive.
//
// Declarative form: one ExperimentPlan with a routings axis and a
// placements axis over a fixed two-job mix (core/plan.hpp); the campaign
// core runs the cells concurrently.

#include "bench_common.hpp"
#include "core/plan.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 32);

  ExperimentPlan plan;
  plan.name = "ablation_placement";
  plan.base = options.config("PAR");
  plan.mode = PlanMode::kSingle;
  plan.routings = {"PAR", "Q-adp"};
  plan.placements = {PlacementPolicy::kRandom, PlacementPolicy::kContiguous,
                     PlacementPolicy::kLinear};
  const int half = plan.base.topo.num_nodes() / 2;
  plan.jobs = {{"FFT3D", half}, {"Halo3D", half}};

  CollectSink sink;
  run_plan(plan, sink, bench::default_jobs());

  bench::print_header("Ablation — placement policy (FFT3D + Halo3D pairwise)");
  std::printf("%-8s %-12s %14s %14s %14s\n", "routing", "placement", "FFT3D ms", "Halo3D ms",
              "sys p99 us");
  bench::print_rule();
  for (const PlanCell& cell : sink.cells()) {
    const Report& report = sink.reports()[cell.index];
    std::printf("%-8s %-12s %14.3f %14.3f %14.2f\n", cell.config.routing.c_str(),
                to_string(cell.config.placement), report.app("FFT3D").comm_mean_ms,
                report.app("Halo3D").comm_mean_ms, report.sys_lat_p99_us);
  }
  std::printf("\nExpected: contiguous isolates the jobs (less interference) at the price of\n"
              "intra-group hot spots; random spreads load but shares every link.\n");
  return 0;
}

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/flat_map.hpp"
#include "mpi/rank.hpp"
#include "mpi/task.hpp"

/// Arena-parked backing storage for the MPI layer.
///
/// A Job's steady-state footprint — one RankCtx per rank (request slots,
/// match-list pools, iteration marks), the coroutine task handles, and the
/// protocol-engine tracking maps — used to be rebuilt from scratch every
/// cell. These bundles let a SimArena carry that storage across cells the
/// same way it carries the Engine and the router/NIC buffers: a Job built
/// with an arena takes a parked bundle, reinit()s the recycled RankCtx
/// objects in place, and hands everything back (cleared, capacity intact) on
/// destruction. See core/arena.hpp for the lifecycle rules and
/// docs/ARCHITECTURE.md for the pooled-type checklist.
namespace dfly::mpi {

class Job;

/// Wire-protocol message classes (Firefly-style eager/rendezvous split).
enum class MsgKind : std::uint8_t { kEager, kRts, kCts, kRdvData };

/// Per-message tracking entry: everything the protocol engine needs to route
/// a completion back to the right rank and request.
struct MsgMeta {
  std::int32_t src_rank;
  std::int32_t dst_rank;
  std::int32_t tag;
  std::int64_t bytes;
  ReqId send_req;        ///< sender request (eager / rdv data)
  MsgKind kind;
  std::uint64_t rdv_id;  ///< rendezvous handle (0 if eager)
};

/// State of one in-flight rendezvous handshake (RTS posted, payload pending).
struct RdvState {
  std::int32_t src_rank;
  std::int32_t dst_rank;
  std::int32_t tag;
  std::int64_t bytes;
  ReqId send_req;
  ReqId recv_req{0};
  bool recv_known{false};
};

/// Everything one Job allocates per cell, recycled as one unit. The RankCtx
/// objects keep their container storage between cells and are re-pointed
/// with reinit(); the maps come back cleared with their tables intact.
struct JobStorage {
  std::vector<std::unique_ptr<RankCtx>> ranks;
  std::vector<Task> tasks;
  FlatMap<MsgMeta> inflight;
  FlatMap<RdvState> rendezvous;
};

/// MpiSystem's per-cell storage: the message-id -> owning-job routing map.
struct SystemStorage {
  FlatMap<Job*> owners;
};

}  // namespace dfly::mpi

#pragma once

#include <cstdint>

#include "core/flat_map.hpp"
#include "net/routing_iface.hpp"
#include "routing/ugal.hpp"
#include "sim/time.hpp"

namespace dfly::routing {

/// Tunables for flow-aware adaptive routing.
struct FlowAwareParams {
  /// UGAL sampling parameters for the per-flow path decision.
  UgalParams ugal{};
  /// A flow keeps its path this long before the next packet re-evaluates.
  SimTime refresh_period{50 * kUs};
};

/// Flow-aware adaptive routing (after Smith et al., SC'18: "Mitigating
/// inter-job interference using adaptive flow-aware routing").
///
/// Per-packet adaptive routing lets two packets of the same (src, dst) flow
/// take different paths, so a congestion transient scatters a flow across
/// the network and causes rate jitter. Flow-aware routing makes the UGAL
/// min-vs-nonmin decision *once per flow* and pins it — first-hop port and
/// Valiant midpoint included — until `refresh_period` elapses, when the next
/// packet of the flow re-runs the decision against current queue state.
///
/// The result: stable paths within a reaction window (less self-interference
/// and reordering) at the cost of slower response to congestion onset —
/// exactly the trade-off the interference ablation bench quantifies against
/// per-packet UGAL and Q-adaptive routing.
class FlowAwareRouting final : public RoutingAlgorithm {
 public:
  explicit FlowAwareRouting(FlowAwareParams params = {}) : params_(params) {}

  std::string name() const override { return "FlowUGAL"; }
  RouteDecision route(Router& router, Packet& pkt) override;

  const FlowAwareParams& params() const { return params_; }
  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t refreshes() const { return refreshes_; }

 private:
  struct FlowEntry {
    std::int16_t port{-1};
    std::int16_t int_group{-1};   ///< -1 = minimal path
    std::int16_t int_router{-1};
    SimTime decided_at{0};
  };

  /// FlatMap keys must be non-zero: key 0 would mean node 0 sending to
  /// itself, and route() only consults the table for inter-group packets.
  static std::uint64_t flow_key(const Packet& pkt) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pkt.src_node)) << 32) |
           static_cast<std::uint32_t>(pkt.dst_node);
  }

  FlowEntry decide(Router& router, Packet& pkt) const;

  // Immutable parameterisation; the flow table below is per-cell state.
  // Open-addressing FlatMap: flows are never erased, so steady state is
  // zero-allocation once the table has seen every active (src, dst) pair.
  const FlowAwareParams params_;
  FlatMap<FlowEntry> flows_;
  std::uint64_t refreshes_{0};
};

}  // namespace dfly::routing

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace dfly {
namespace {

class Recorder final : public Component {
 public:
  void handle(Engine& engine, const Event& event) override {
    log.push_back({engine.now(), event.kind, event.a});
  }
  struct Entry {
    SimTime when;
    std::uint32_t kind;
    std::uint64_t a;
  };
  std::vector<Entry> log;
};

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(30, recorder, 3);
  engine.schedule_at(10, recorder, 1);
  engine.schedule_at(20, recorder, 2);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 3u);
  EXPECT_EQ(recorder.log[0].kind, 1u);
  EXPECT_EQ(recorder.log[1].kind, 2u);
  EXPECT_EQ(recorder.log[2].kind, 3u);
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine engine;
  Recorder recorder;
  for (std::uint64_t i = 0; i < 100; ++i) engine.schedule_at(5, recorder, 0, i);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(recorder.log[i].a, i);
}

TEST(Engine, ScheduleInIsRelativeToNow) {
  Engine engine;
  Recorder recorder;
  engine.call_at(100, [&] { engine.schedule_in(50, recorder, 7); });
  engine.run();
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].when, 150);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(10, recorder, 1);
  engine.schedule_at(20, recorder, 2);
  engine.schedule_at(21, recorder, 3);
  engine.run(20);
  EXPECT_EQ(recorder.log.size(), 2u);
  EXPECT_EQ(engine.queued(), 1u);
  engine.run(21);
  EXPECT_EQ(recorder.log.size(), 3u);
}

TEST(Engine, StepExecutesExactlyOneEvent) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(1, recorder, 1);
  engine.schedule_at(2, recorder, 2);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(recorder.log.size(), 1u);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsScheduledDuringExecutionAreProcessed) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.call_at(engine.now() + 1, recurse);
  };
  engine.call_at(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(engine.now(), 9);
}

TEST(Engine, ClearDropsPendingEvents) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(10, recorder, 1);
  engine.clear();
  engine.run();
  EXPECT_TRUE(recorder.log.empty());
}

TEST(Engine, ExecutedCounterAdvances) {
  Engine engine;
  Recorder recorder;
  for (int i = 0; i < 17; ++i) engine.schedule_at(i, recorder, 0);
  engine.run();
  EXPECT_EQ(engine.executed(), 17u);
}

TEST(Engine, PayloadWordsAreDeliveredVerbatim) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(1, recorder, 42, 0xDEADBEEFCAFEBABEull);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].kind, 42u);
  EXPECT_EQ(recorder.log[0].a, 0xDEADBEEFCAFEBABEull);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine engine;
  Recorder recorder;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    engine.schedule_at(static_cast<SimTime>(rng.next_below(1000)), recorder, 0);
  }
  engine.run();
  ASSERT_EQ(recorder.log.size(), 10000u);
  for (std::size_t i = 1; i < recorder.log.size(); ++i) {
    EXPECT_LE(recorder.log[i - 1].when, recorder.log[i].when);
  }
}

}  // namespace
}  // namespace dfly

#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "mpi/frame_pool.hpp"

namespace dfly::mpi {

/// Minimal coroutine task for simulated MPI programs.
///
/// Motifs are written as straight-line coroutines (`co_await ctx.recv(...)`)
/// instead of the explicit state machines SST/Ember uses — same semantics,
/// far clearer wavefront/collective code. Tasks are lazy (started by the
/// Job), support nesting via symmetric transfer, and return nothing.
///
/// Frame storage: the promise's operator new routes through the FramePool
/// bound to the current thread (fed from the worker's SimArena), so a
/// steady-state cell recycles the previous cell's coroutine frames instead
/// of hitting the heap once per rank wave. Pool-less threads fall back to
/// plain heap frames; behaviour is identical either way.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    static void* operator new(std::size_t size) { return FramePool::allocate(size); }
    static void operator delete(void* frame) noexcept { FramePool::deallocate(frame); }
    static void operator delete(void* frame, std::size_t) noexcept {
      FramePool::deallocate(frame);
    }

    std::coroutine_handle<> continuation{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto continuation = h.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // simulated ranks must not throw
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  /// Start a top-level task (Job use only; nested tasks start via co_await).
  void start() { handle_.resume(); }

  /// Awaiting a task starts it and resumes the parent when it finishes.
  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dfly::mpi

#pragma once

#include "net/routing_iface.hpp"
#include "routing/ugal.hpp"

namespace dfly::routing {

/// Progressive Adaptive Routing (Jiang, Kim, Dally ISCA'09).
///
/// Like UGALn, but a minimal decision is provisional while the packet is
/// still inside its source group: each source-group router re-evaluates the
/// congestion comparison and may divert the packet non-minimally (once).
/// After the packet leaves the source group, or after a diversion, the
/// decision is final. Our revision step considers the current router's own
/// global ports as diversion targets, which keeps the worst-case path at
/// local-global-local-global-local.
class ParRouting final : public RoutingAlgorithm {
 public:
  explicit ParRouting(UgalParams params = {}) : params_(params) {}

  std::string name() const override { return "PAR"; }
  RouteDecision route(Router& router, Packet& pkt) override;

 private:
  // Immutable parameterisation: PAR keeps no per-cell learning state — every
  // decision reads live router queue occupancy.
  const UgalParams params_;
};

}  // namespace dfly::routing

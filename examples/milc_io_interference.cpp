// Extension workloads: a latency-sensitive MILC run sharing the machine
// with checkpoint I/O traffic to burst-buffer nodes.
//
//   $ ./milc_io_interference [routing]       (default: Q-adp)
//
// MILC's conjugate-gradient solver issues chains of tiny allreduces whose
// completion is gated by the slowest rank — the tail-latency amplifier
// behind the 70% run-to-run variability reported on production Dragonfly
// systems. IOBurst periodically drains checkpoints into a few burst-buffer
// ranks, an endpoint hot spot. Co-running them shows how I/O bursts bleed
// into a tightly synchronised application, and how much of the damage the
// chosen routing policy can contain.

#include <cstdio>
#include <memory>
#include <string>

#include "core/study.hpp"
#include "workloads/extended.hpp"

namespace {

dfly::Report run_mix(const std::string& routing, bool with_io) {
  dfly::StudyConfig config;
  config.topo = dfly::DragonflyParams::paper();
  config.routing = routing;
  config.scale = 16;
  config.seed = 3;
  dfly::Study study(config);
  study.add_app("MILC", 528);
  if (with_io) {
    dfly::workloads::IoBurstParams io;
    io.checkpoint_bytes = 2 * 1024 * 1024;
    io.period = 250 * dfly::kUs;
    io.iterations = 4;
    study.add_motif(std::make_unique<dfly::workloads::IoBurstMotif>(io), 512, "IOBurst");
  }
  return study.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string routing = argc > 1 ? argv[1] : "Q-adp";

  const dfly::Report alone = run_mix(routing, false);
  const dfly::Report mixed = run_mix(routing, true);
  const dfly::AppReport& milc_alone = alone.apps[0];
  const dfly::AppReport& milc_mixed = mixed.apps[0];

  std::printf("routing              : %s\n", routing.c_str());
  std::printf("MILC comm, alone     : %.3f ms (p99 %.2f us)\n", milc_alone.comm_mean_ms,
              milc_alone.lat_p99_us);
  std::printf("MILC comm, with I/O  : %.3f ms (p99 %.2f us)\n", milc_mixed.comm_mean_ms,
              milc_mixed.lat_p99_us);
  std::printf("slowdown             : %.2fx\n",
              milc_alone.comm_mean_ms > 0 ? milc_mixed.comm_mean_ms / milc_alone.comm_mean_ms
                                          : 0.0);
  std::printf("fairness (Jain)      : %.3f\n", mixed.jain_fairness);
  std::puts("\ntry: ./milc_io_interference PAR   (compare the contained damage)");
  return 0;
}

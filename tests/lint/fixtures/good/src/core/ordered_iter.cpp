#include <cstdio>
#include <map>
#include <unordered_map>

namespace fixture {

std::map<int, int> ordered;
std::unordered_map<int, int> histogram;

void dump() {
  // Ordered containers iterate deterministically.
  for (const auto& [key, value] : ordered) {
    std::printf("%d=%d\n", key, value);
  }
  // Order-independent accumulation over an unordered container is legal with
  // a justified allow.
  int total = 0;
  // dfsim-lint: allow(det-unordered-iter) fixture: sum is order-independent
  for (const auto& [key, value] : histogram) {
    total += value;
  }
  std::printf("%d\n", total);
}

}  // namespace fixture

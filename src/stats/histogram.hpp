#pragma once

#include <cstdint>
#include <vector>

namespace dfly {

/// Reservoir-free exact distribution accumulator.
///
/// The paper reports mean, median, quartiles and the 95th/99th percentile of
/// packet latencies (Figs 6, 7, 13). Runs produce at most a few tens of
/// millions of samples, so we keep them all (8 bytes each) and sort lazily;
/// that gives exact order statistics instead of sketch approximations.
class Histogram {
 public:
  Histogram() = default;

  void add(std::int64_t value) {
    samples_.push_back(value);
    sum_ += value;
    sorted_ = samples_.size() <= 1;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const { return samples_.empty() ? 0.0 : static_cast<double>(sum_) / static_cast<double>(samples_.size()); }
  std::int64_t min() const;
  std::int64_t max() const;

  /// Exact q-quantile (q in [0,1]) by the nearest-rank method.
  std::int64_t percentile(double q) const;
  std::int64_t median() const { return percentile(0.50); }
  std::int64_t p95() const { return percentile(0.95); }
  std::int64_t p99() const { return percentile(0.99); }

  /// Population standard deviation.
  double stddev() const;

  void merge(const Histogram& other);
  void clear();

  /// Read-only access for custom reductions (sorted ascending).
  const std::vector<std::int64_t>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_{true};
  std::int64_t sum_{0};
};

/// Simple scalar accumulator (count/mean/σ/min/max) for per-rank metrics.
class Accumulator {
 public:
  void add(double x) {
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    ++count_;
    sum_ += x;
    sum_sq_ += x * x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double stddev() const;

 private:
  std::uint64_t count_{0};
  double sum_{0}, sum_sq_{0}, min_{0}, max_{0};
};

}  // namespace dfly

#include "workloads/motifs.hpp"

namespace dfly::workloads {

mpi::Task UniformRandomMotif::run(mpi::RankCtx& ctx) const {
  // UR is a pure traffic generator: every `interval` it fires one message at
  // a uniformly random peer. Receivers never consume, so sink mode drops
  // inbound payloads after they are counted by the network statistics.
  ctx.set_sink_mode(true);
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int i = 0; i < p_.iterations; ++i) {
    int dst = ctx.rank();
    while (dst == ctx.rank()) {
      dst = static_cast<int>(ctx.rng().next_below(static_cast<std::uint64_t>(ctx.size())));
    }
    window.push_back(ctx.isend(dst, p_.msg_bytes, /*tag=*/0));
    if (static_cast<int>(window.size()) >= p_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
    co_await ctx.compute(p_.interval);
    if (i % 100 == 0) ctx.mark_iteration();
  }
  if (!window.empty()) co_await ctx.wait_all(window);
}

}  // namespace dfly::workloads

#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/pairwise.hpp"
#include "core/study.hpp"

namespace dfly::bench {

/// Run independent simulation tasks concurrently (each task is a complete
/// Study; they share no state). Results are returned in submission order, so
/// callers print deterministic tables. Worker count defaults to
/// min(hardware_concurrency, 12) to bound peak memory.
template <typename T>
std::vector<T> parallel_map(const std::vector<std::function<T()>>& tasks, int threads = 0) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads > 12) threads = 12;
    if (threads < 1) threads = 1;
  }
  std::vector<T> results(tasks.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      results[i] = tasks[i]();
    }
  };
  std::vector<std::thread> pool;
  const int n = std::min<int>(threads, static_cast<int>(tasks.size()));
  pool.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return results;
}

/// Common command-line options for the experiment harnesses.
///
///   --scale=N        iteration divisor (default 8; 1 = paper-scale volumes)
///   --seed=N         placement/routing RNG seed
///   --routing=NAME   restrict to one routing (default: the paper's four)
///   --json=FILE      also write the bench's machine-readable report
///   --full           shorthand for --scale=1
///   --quick          shorthand for --scale=32
///   --smoke          CI mode: --scale=64 plus a bench-defined minimal sweep
///
/// --json and --smoke are opt-in per bench (`Caps`): a driver that has not
/// implemented them rejects the flag instead of silently ignoring it.
///
/// Which optional flags a bench actually honours (namespace scope so it can
/// be a default argument of Options::parse).
struct Caps {
  bool json{false};
  bool smoke{false};
};

struct Options {
  int scale{8};
  std::uint64_t seed{42};
  std::string routing;    ///< empty = sweep the paper's four routings
  std::string json_path;  ///< empty = console table only
  bool smoke{false};      ///< benches shrink their sweep to a representative cell or two

  /// `default_scale` lets heavy benches (the 168-cell Fig 4 sweep) default
  /// to a coarser scale so the whole suite completes in minutes; --scale
  /// and --full always override.
  static Options parse(int argc, char** argv, int default_scale = 8, Caps caps = Caps{});

  /// Routings to sweep (honours --routing).
  std::vector<std::string> routings() const;

  /// A StudyConfig for the paper's 1,056-node system with these options.
  StudyConfig config(const std::string& routing_name) const;
};

/// Printf-style row helpers for aligned console tables.
void print_header(const std::string& title);
void print_rule();

/// Format helpers.
std::string fmt(double value, int decimals = 2);

}  // namespace dfly::bench

#include "mpi/rank.hpp"

#include <cassert>

#include "mpi/job.hpp"

namespace dfly::mpi {

namespace {
constexpr std::uint32_t kResume = 1;
}

RankCtx::RankCtx(Job& job, int rank, int node, Rng rng)
    : job_(&job), rank_(rank), node_(node), rng_(rng) {
  bind_engine();
}

void RankCtx::bind_engine() {
  engine_ = &job_->network().engine_for_node(node_);
  set_pdes_domain(engine_->pdes_domain_id());
}

void RankCtx::reinit(Job& job, int rank, int node, Rng rng) {
  job_ = &job;
  rank_ = rank;
  node_ = node;
  rng_ = rng;
  bind_engine();
  match_.reset();
  slots_.clear();        // capacity kept: ids are handed out 0, 1, 2, ... again
  free_slots_.clear();
  pending_resume_ = {};
  comm_time_ = 0;
  bytes_sent_ = 0;
  messages_sent_ = 0;
  burst_ = 0;
  peak_burst_ = 0;
  coll_seq_ = 0;
  sink_mode_ = false;
  iteration_marks_.clear();
}

int RankCtx::size() const { return job_->size(); }
// The rank's own domain engine: in a parallel cell the job's primary engine
// may be mid-window on another domain's clock.
SimTime RankCtx::now() const { return engine_->now(); }

ReqId RankCtx::alloc_request() {
  if (free_slots_.empty()) {
    slots_.emplace_back();
    free_slots_.push_back(static_cast<ReqId>(slots_.size() - 1));
  }
  const ReqId id = free_slots_.back();
  free_slots_.pop_back();
  Request& r = slots_[id];
  r.in_use = true;
  r.complete = false;
  r.complete_time = 0;
  r.waiter = {};
  return id;
}

void RankCtx::release_request(ReqId id) {
  assert(slots_[id].in_use);
  slots_[id].in_use = false;
  free_slots_.push_back(id);
}

ReqId RankCtx::isend(int dst_rank, std::int64_t bytes, int tag) {
  assert(dst_rank >= 0 && dst_rank < size());
  const ReqId id = alloc_request();
  bytes_sent_ += bytes;
  ++messages_sent_;
  burst_ += bytes;
  if (burst_ > peak_burst_) peak_burst_ = burst_;
  job_->post_send(rank_, dst_rank, bytes, tag, id);
  return id;
}

ReqId RankCtx::irecv(int src_rank, int tag) {
  const ReqId id = alloc_request();
  if (const auto hit = match_.post_recv(src_rank, tag, id)) {
    if (hit->rdv_id == 0) {
      // Eager payload already buffered here: the receive is complete.
      Request& r = slots_[id];
      r.complete = true;
      r.complete_time = hit->arrived;
    } else {
      // Unexpected RTS: clear the sender to transmit; the request will
      // complete when the payload lands.
      job_->rdv_matched(hit->rdv_id, rank_, id);
    }
  }
  return id;
}

void RankCtx::deliver_eager(int src_rank, int tag, std::int64_t bytes) {
  if (sink_mode_ && match_.posted_count() == 0) return;  // drop background traffic
  const std::uint32_t req = match_.on_arrival(src_rank, tag, bytes, now(), 0);
  if (req != MatchList::kNoMatch) complete_request(req);
}

void RankCtx::deliver_rts(int src_rank, int tag, std::int64_t bytes, std::uint64_t rdv_id) {
  if (sink_mode_ && match_.posted_count() == 0) {
    // Pure traffic sinks still clear rendezvous senders to transmit: the
    // payload crosses the network (that is the traffic being modelled) and
    // is dropped on delivery instead of completing a receive.
    job_->rdv_sink(rdv_id, rank_);
    return;
  }
  const std::uint32_t req = match_.on_arrival(src_rank, tag, bytes, now(), rdv_id);
  if (req != MatchList::kNoMatch) job_->rdv_matched(rdv_id, rank_, req);
}

void RankCtx::complete_request(ReqId id) {
  Request& r = slots_[id];
  assert(r.in_use && !r.complete);
  r.complete = true;
  r.complete_time = now();
  if (r.waiter) {
    const auto waiter = r.waiter;
    r.waiter = {};
    waiter.resume();
  }
}

void RankCtx::finish_wait(ReqId id, SimTime suspended_at) {
  if (suspended_at >= 0) comm_time_ += now() - suspended_at;
  release_request(id);
}

void RankCtx::note_block() {
  // A block (or compute) ends any ingress burst (§IV peak ingress volume).
  burst_ = 0;
}

void RankCtx::schedule_resume(std::coroutine_handle<> h, SimTime delay) {
  assert(!pending_resume_ && "one compute at a time per rank");
  pending_resume_ = h;
  engine_->schedule_in(delay, *this, kResume);
}

void RankCtx::handle(Engine&, const Event& event) {
  assert(event.kind == kResume);
  assert(pending_resume_);
  const auto h = pending_resume_;
  pending_resume_ = {};
  h.resume();
}

}  // namespace dfly::mpi

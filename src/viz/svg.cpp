#include "viz/svg.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dfly::viz {

namespace {

std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", v);
  return buffer;
}

}  // namespace

std::string Color::css() const {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x", r, g, b);
  return buffer;
}

Color Color::lerp(Color a, Color b, double t) {
  if (t < 0) t = 0;
  if (t > 1) t = 1;
  auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(std::lround(x + (y - x) * t));
  };
  return Color{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

const std::vector<Color>& palette() {
  static const std::vector<Color> tab10{
      {31, 119, 180}, {255, 127, 14},  {44, 160, 44},  {214, 39, 40},  {148, 103, 189},
      {140, 86, 75},  {227, 119, 194}, {127, 127, 127}, {188, 189, 34}, {23, 190, 207}};
  return tab10;
}

Color palette_color(std::size_t i) { return palette()[i % palette().size()]; }

Color viridis(double t) {
  // Five anchor points of matplotlib's viridis, linearly interpolated.
  static const Color stops[5] = {
      {68, 1, 84}, {59, 82, 139}, {33, 145, 140}, {94, 201, 98}, {253, 231, 37}};
  if (t < 0) t = 0;
  if (t > 1) t = 1;
  const double scaled = t * 4.0;
  const int idx = scaled >= 4.0 ? 3 : static_cast<int>(scaled);
  return Color::lerp(stops[idx], stops[idx + 1], scaled - idx);
}

Svg::Svg(double width, double height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Svg: non-positive canvas");
}

void Svg::rect(double x, double y, double w, double h, Color fill, double opacity,
               Color stroke, double stroke_width) {
  std::string element = "<rect x=\"" + fmt(x) + "\" y=\"" + fmt(y) + "\" width=\"" + fmt(w) +
                        "\" height=\"" + fmt(h) + "\" fill=\"" + fill.css() + "\"";
  if (opacity < 1.0) element += " fill-opacity=\"" + fmt(opacity) + "\"";
  if (stroke_width > 0) {
    element += " stroke=\"" + stroke.css() + "\" stroke-width=\"" + fmt(stroke_width) + "\"";
  }
  element += "/>";
  body_.push_back(std::move(element));
}

void Svg::line(double x1, double y1, double x2, double y2, Color stroke, double width,
               bool dashed) {
  std::string element = "<line x1=\"" + fmt(x1) + "\" y1=\"" + fmt(y1) + "\" x2=\"" + fmt(x2) +
                        "\" y2=\"" + fmt(y2) + "\" stroke=\"" + stroke.css() +
                        "\" stroke-width=\"" + fmt(width) + "\"";
  if (dashed) element += " stroke-dasharray=\"4 3\"";
  element += "/>";
  body_.push_back(std::move(element));
}

void Svg::circle(double cx, double cy, double radius, Color fill, double opacity) {
  std::string element = "<circle cx=\"" + fmt(cx) + "\" cy=\"" + fmt(cy) + "\" r=\"" +
                        fmt(radius) + "\" fill=\"" + fill.css() + "\"";
  if (opacity < 1.0) element += " fill-opacity=\"" + fmt(opacity) + "\"";
  element += "/>";
  body_.push_back(std::move(element));
}

void Svg::polyline(const std::vector<std::pair<double, double>>& points, Color stroke,
                   double width) {
  if (points.size() < 2) return;
  std::string element = "<polyline fill=\"none\" stroke=\"" + stroke.css() +
                        "\" stroke-width=\"" + fmt(width) + "\" points=\"";
  for (const auto& [x, y] : points) {
    element += fmt(x) + "," + fmt(y) + " ";
  }
  element += "\"/>";
  body_.push_back(std::move(element));
}

void Svg::text(double x, double y, const std::string& content, double size,
               const std::string& anchor, Color fill, double rotate_deg) {
  std::string element = "<text x=\"" + fmt(x) + "\" y=\"" + fmt(y) + "\" font-size=\"" +
                        fmt(size) + "\" font-family=\"Helvetica, Arial, sans-serif\"" +
                        " text-anchor=\"" + anchor + "\" fill=\"" + fill.css() + "\"";
  if (rotate_deg != 0.0) {
    element += " transform=\"rotate(" + fmt(rotate_deg) + " " + fmt(x) + " " + fmt(y) + ")\"";
  }
  element += ">" + escape(content) + "</text>";
  body_.push_back(std::move(element));
}

std::string Svg::str() const {
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" + fmt(width_) +
                    "\" height=\"" + fmt(height_) + "\" viewBox=\"0 0 " + fmt(width_) + " " +
                    fmt(height_) + "\">\n";
  out += "<rect x=\"0\" y=\"0\" width=\"" + fmt(width_) + "\" height=\"" + fmt(height_) +
         "\" fill=\"#ffffff\"/>\n";
  for (const std::string& element : body_) {
    out += element;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

void Svg::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Svg::save: cannot open " + path);
  out << str();
}

std::string Svg::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace dfly::viz

#pragma once

#include <cstdint>
#include <mutex>

#include "core/flat_map.hpp"
#include "core/ring_queue.hpp"
#include "net/config.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "stats/link_stats.hpp"
#include "stats/packet_log.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

class Router;
class SystemBlueprint;

namespace nic_ev {
inline constexpr std::uint32_t kArrive = 1;      ///< a = packet id (ejection)
inline constexpr std::uint32_t kTryInject = 2;   ///< try to put the next packet on the wire
inline constexpr std::uint32_t kCredit = 3;      ///< injection credit returned by the router
inline constexpr std::uint32_t kSendDone = 4;    ///< a,b = msg id halves: tail flit left the NIC
inline constexpr std::uint32_t kEcnNotice = 5;   ///< congestion notification reached the source
inline constexpr std::uint32_t kRateRecover = 6; ///< AIMD additive-increase tick
}  // namespace nic_ev

/// Listener for message lifecycle events (implemented by the MPI layer).
class MessageEvents {
 public:
  virtual ~MessageEvents() = default;
  /// The last packet of the message left the source NIC's wire.
  virtual void message_sent(std::uint64_t msg_id) = 0;
  /// All payload bytes arrived at the destination NIC.
  virtual void message_delivered(std::uint64_t msg_id) = 0;
};

class Nic;

/// Node -> NIC lookup (implemented by Network) so a destination NIC can
/// reflect congestion notifications back to the traffic source.
class NicDirectory {
 public:
  virtual ~NicDirectory() = default;
  virtual Nic& nic_at(int node) = 0;
};

/// Network interface of one compute node.
///
/// Injection side: an unbounded message queue (the MPI layer's eager buffer)
/// drained at link rate, subject to the router's terminal-port credits.
/// Messages are packetised lazily — one packet materialises per wire slot —
/// so a multi-megabyte posted burst costs O(1) memory per message.
///
/// Ejection side: consumes packets at link rate, returns credits immediately,
/// reassembles messages and reports deliveries.
class Nic final : public Component {
 public:
  /// Topology, NetConfig and the link-id scheme all come from the immutable
  /// `blueprint`, which the owning Network keeps alive; the remaining
  /// arguments are the NIC's mutable per-cell dependencies.
  Nic(Engine& engine, const SystemBlueprint& blueprint, int node,
      PacketPool& pool, LinkStats& stats, PacketLog& packet_log);

  /// Re-point and re-zero every piece of per-cell state so a NIC recycled
  /// from a per-worker arena (core/arena.hpp) behaves exactly like a fresh
  /// one while keeping its queue storage (send queue blocks, inbound-map
  /// buckets). The constructor funnels through this. Callers must attach()
  /// and re-run the set_* wiring afterwards, as Network does.
  void reinit(Engine& engine, const SystemBlueprint& blueprint, int node,
              PacketPool& pool, LinkStats& stats, PacketLog& packet_log);

  /// Attach to the node's router (called by Network during wiring).
  void attach(Router& router);
  void set_sink(MessageEvents* sink) { sink_ = sink; }
  /// QoS class lookup used at injection (null = everything in class 0).
  void set_traffic_classes(const TrafficClassMap* classes) { classes_ = classes; }
  /// Peer lookup for congestion notifications (null disables reflection).
  void set_directory(NicDirectory* directory) { directory_ = directory; }

  /// Serialise the inbound-message map for a parallel cell (src/sim/pdes.hpp):
  /// expect_message is called from the sender's domain while on_eject runs on
  /// this NIC's own domain. Sequential cells leave it off (reinit resets it)
  /// and pay one branch per map touch.
  void set_locking(bool locking) { locking_ = locking; }

  /// Current AIMD injection rate (fraction of link rate; 1.0 = unthrottled).
  double injection_rate() const { return rate_; }
  /// Congestion notifications received by this source so far.
  std::uint64_t ecn_notices() const { return ecn_notices_; }

  /// Queue a message for transmission. `bytes` >= 1.
  void enqueue_message(std::uint64_t msg_id, int dst_node, std::int64_t bytes, int app_id);

  /// Register an expected inbound message (called on the destination NIC at
  /// send time so ejection can count it down).
  void expect_message(std::uint64_t msg_id, std::int64_t bytes);

  void handle(Engine& engine, const Event& event) override;

  int node() const { return node_; }
  std::size_t queued_messages() const { return sendq_.size(); }
  std::int64_t queued_bytes() const { return queued_bytes_; }

 private:
  struct Chunk {
    std::uint64_t msg_id;
    std::int32_t dst_node;
    std::int64_t remaining;
    std::int16_t app_id;
  };

  void try_inject(Engine& engine);
  void on_eject(Engine& engine, std::uint32_t packet_id);
  void on_ecn_notice(Engine& engine);
  void on_rate_recover(Engine& engine);

  Engine* engine_;
  const Dragonfly* topo_;
  const NetConfig* cfg_;
  int node_;
  PacketPool* pool_;
  LinkStats* stats_;
  PacketLog* packet_log_;
  const LinkMap* links_;
  Router* router_{nullptr};
  MessageEvents* sink_{nullptr};
  const TrafficClassMap* classes_{nullptr};
  NicDirectory* directory_{nullptr};

  // FIFO of partially-sent messages. A RingQueue: a deque here oscillates
  // slab allocations around every slab boundary the queue depth crosses.
  RingQueue<Chunk> sendq_;
  std::int64_t queued_bytes_{0};
  // Per-message remaining-byte countdown at the ejection side. A FlatMap:
  // one insert (expect_message) and one erase (last packet) per message,
  // allocation-free once the table has grown to the cell's peak in-flight
  // count — the table itself rides the arena recycle via reinit().
  FlatMap<std::int64_t> inbound_;
  std::mutex inbound_mutex_;  ///< guards inbound_ when locking_ (parallel cell)
  bool locking_{false};
  int credits_;
  SimTime busy_until_{0};
  bool try_pending_{false};

  // AIMD congestion-control state (cfg.cc).
  double rate_{1.0};
  std::uint64_t ecn_notices_{0};
  SimTime last_decrease_{-1};
  bool recover_pending_{false};
};

}  // namespace dfly

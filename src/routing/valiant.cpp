#include "routing/valiant.hpp"

#include "routing/common.hpp"

namespace dfly::routing {

RouteDecision ValiantRouting::route(Router& router, Packet& pkt) {
  if (pkt.hops == 0 && !pkt.nonminimal) {
    const Dragonfly& topo = router.topo();
    const int dst_group = topo.group_of_router(dst_router_of(router, pkt));
    if (dst_group != router.group()) {
      const Candidate c = sample_nonminimal(router, pkt, node_variant_);
      if (c.int_group >= 0) commit_valiant(pkt, c.int_group, c.int_router);
    }
  }
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

#include <gtest/gtest.h>

#include "mpi/job.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

/// Harness: tiny Dragonfly + one job running a custom motif.
struct MpiFixture {
  explicit MpiFixture(mpi::ProtocolConfig protocol = {})
      : bp(testsupport::make_blueprint()), topo(bp->topo()) {
    routing::RoutingContext context{&engine, &topo, &bp->net(), 21};
    routing = routing::make_routing("MIN", context);
    net = std::make_unique<Network>(engine, *bp, *routing, 1, 21);
    system = std::make_unique<mpi::MpiSystem>(*net);
    protocol_config = protocol;
  }

  mpi::Job& launch(const mpi::Motif& motif, int ranks) {
    std::vector<int> nodes;
    for (int r = 0; r < ranks; ++r) nodes.push_back(r);
    job = std::make_unique<mpi::Job>(engine, *net, *system, 0, motif.name(), motif,
                                     std::move(nodes), 21, protocol_config);
    job->start();
    return *job;
  }

  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly& topo;
  mpi::ProtocolConfig protocol_config;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
  std::unique_ptr<mpi::MpiSystem> system;
  std::unique_ptr<mpi::Job> job;
};

// --- motifs used by the tests ------------------------------------------------

class PingPongMotif final : public mpi::Motif {
 public:
  explicit PingPongMotif(std::int64_t bytes, int rounds) : bytes_(bytes), rounds_(rounds) {}
  std::string name() const override { return "PingPong"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    for (int i = 0; i < rounds_; ++i) {
      if (ctx.rank() == 0) {
        co_await ctx.send(1, bytes_, i);
        co_await ctx.recv(1, i);
      } else if (ctx.rank() == 1) {
        co_await ctx.recv(0, i);
        co_await ctx.send(0, bytes_, i);
      }
    }
  }
  std::int64_t bytes_;
  int rounds_;
};

class SendBeforeRecvMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Unexpected"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    if (ctx.rank() == 0) {
      // Fire immediately; rank 1 posts its receive only after computing.
      co_await ctx.send(1, 2048, 7);
    } else if (ctx.rank() == 1) {
      co_await ctx.compute(50 * kUs);
      co_await ctx.recv(0, 7);
    }
  }
};

class WildcardRecvMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Wildcard"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    if (ctx.rank() == 0) {
      co_await ctx.recv(mpi::kAnySource, 3);
      co_await ctx.recv(mpi::kAnySource, 3);
    } else if (ctx.rank() <= 2) {
      co_await ctx.send(0, 512, 3);
    }
  }
};

class ComputeOnlyMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Compute"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    co_await ctx.compute(123 * kUs);
    ctx.mark_iteration();
    co_await ctx.compute(77 * kUs);
  }
};

class BurstMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Burst"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    if (ctx.rank() == 0) {
      // Three consecutive sends (one burst), then a block, then two more.
      std::vector<mpi::ReqId> reqs;
      for (int i = 0; i < 3; ++i) reqs.push_back(ctx.isend(1, 1000, i));
      co_await ctx.wait_all(reqs);
      std::vector<mpi::ReqId> more;
      for (int i = 3; i < 5; ++i) more.push_back(ctx.isend(1, 1000, i));
      co_await ctx.wait_all(more);
    } else if (ctx.rank() == 1) {
      for (int i = 0; i < 5; ++i) co_await ctx.recv(0, i);
    }
  }
};

// --- tests ---------------------------------------------------------------

TEST(Mpi, PingPongCompletes) {
  MpiFixture f;
  PingPongMotif motif(4096, 10);
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_GT(job.finish_time(), 0);
  // 10 rounds x 2 directions x 4096B.
  EXPECT_EQ(job.total_bytes_sent(), 2 * 10 * 4096);
  EXPECT_EQ(job.total_messages_sent(), 20);
}

TEST(Mpi, UnexpectedMessageIsBuffered) {
  MpiFixture f;
  SendBeforeRecvMotif motif;
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
  // Receiver posted late; its recv completed immediately from the
  // unexpected queue, so its comm time is ~0 while the message did arrive.
  EXPECT_LT(job.rank(1).comm_time(), kUs);
}

TEST(Mpi, WildcardSourceMatchesAnySender) {
  MpiFixture f;
  WildcardRecvMotif motif;
  auto& job = f.launch(motif, 3);
  f.engine.run();
  EXPECT_TRUE(job.done());
}

TEST(Mpi, ComputeTimeIsNotCommTime) {
  MpiFixture f;
  ComputeOnlyMotif motif;
  auto& job = f.launch(motif, 1);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.rank(0).comm_time(), 0);
  EXPECT_EQ(job.finish_time(), 200 * kUs);
  ASSERT_EQ(job.rank(0).iteration_marks().size(), 1u);
  EXPECT_EQ(job.rank(0).iteration_marks()[0], 123 * kUs);
}

TEST(Mpi, CommTimeAccruesWhileBlocked) {
  MpiFixture f;
  SendBeforeRecvMotif motif;
  auto& job = f.launch(motif, 2);
  f.engine.run();
  // Rank 0's blocking send of a 2KB eager message completes at injection
  // speed; it must have a small positive comm time.
  EXPECT_GT(job.rank(0).comm_time(), 0);
  EXPECT_LT(job.rank(0).comm_time(), 50 * kUs);
}

TEST(Mpi, PeakIngressTracksBursts) {
  MpiFixture f;
  BurstMotif motif;
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.rank(0).peak_ingress_bytes(), 3000);
}

TEST(Mpi, EagerVsRendezvousThreshold) {
  // With a tiny eager threshold the same exchange must still complete, via
  // the RTS/CTS path.
  mpi::ProtocolConfig protocol;
  protocol.eager_threshold = 256;
  MpiFixture f(protocol);
  PingPongMotif motif(4096, 5);
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.total_bytes_sent(), 2 * 5 * 4096);
}

TEST(Mpi, RendezvousBlocksSenderUntilReceiverReady) {
  mpi::ProtocolConfig protocol;
  protocol.eager_threshold = 256;
  MpiFixture f(protocol);
  SendBeforeRecvMotif motif;  // 2048B > threshold: rendezvous
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
  // The sender blocked until the receiver's post (~50us of compute).
  EXPECT_GT(job.rank(0).comm_time(), 40 * kUs);
}

TEST(Mpi, SelfSendCompletes) {
  class SelfSend final : public mpi::Motif {
   public:
    std::string name() const override { return "Self"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      const auto r = ctx.irecv(ctx.rank(), 1);
      const auto s = ctx.isend(ctx.rank(), 1024, 1);
      co_await ctx.wait(r);
      co_await ctx.wait(s);
    }
  };
  MpiFixture f;
  SelfSend motif;
  auto& job = f.launch(motif, 1);
  f.engine.run();
  EXPECT_TRUE(job.done());
}

TEST(Mpi, ManyRanksFinishIndependently) {
  MpiFixture f;
  ComputeOnlyMotif motif;
  auto& job = f.launch(motif, 32);
  f.engine.run();
  EXPECT_TRUE(job.done());
  const Accumulator comm = job.comm_time_stats();
  EXPECT_EQ(comm.count(), 32u);
  EXPECT_DOUBLE_EQ(comm.mean(), 0.0);
}

TEST(Mpi, MessageOrderBetweenPairPreservedByTags) {
  // Two messages with different tags posted in reverse order still match.
  class Reorder final : public mpi::Motif {
   public:
    std::string name() const override { return "Reorder"; }
    mpi::Task run(mpi::RankCtx& ctx) const override {
      if (ctx.rank() == 0) {
        const auto a = ctx.isend(1, 512, /*tag=*/1);
        const auto b = ctx.isend(1, 1024, /*tag=*/2);
        co_await ctx.wait(a);
        co_await ctx.wait(b);
      } else if (ctx.rank() == 1) {
        co_await ctx.recv(0, 2);  // waits for the *second* message first
        co_await ctx.recv(0, 1);
      }
    }
  };
  MpiFixture f;
  Reorder motif;
  auto& job = f.launch(motif, 2);
  f.engine.run();
  EXPECT_TRUE(job.done());
}

}  // namespace
}  // namespace dfly

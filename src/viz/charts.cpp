#include "viz/charts.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

namespace dfly::viz {

namespace {

constexpr double kMarginLeft = 64;
constexpr double kMarginRight = 16;
constexpr double kMarginTop = 34;
constexpr double kMarginBottom = 52;

std::string tick_label(double v) {
  char buffer[32];
  if (v != 0 && (std::fabs(v) >= 10000 || std::fabs(v) < 0.01)) {
    std::snprintf(buffer, sizeof(buffer), "%.1e", v);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3g", v);
  }
  return buffer;
}

/// "Nice" tick step covering `span` with ~n ticks.
double nice_step(double span, int n) {
  if (span <= 0) return 1.0;
  const double raw = span / n;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10;
  if (norm <= 1) step = 1;
  else if (norm <= 2) step = 2;
  else if (norm <= 5) step = 5;
  return step * mag;
}

struct AxisMap {
  double lo, hi, plot_min, plot_span;
  bool flip;

  double operator()(double v) const {
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    return flip ? plot_min + plot_span * (1.0 - t) : plot_min + plot_span * t;
  }
};

void draw_frame(Svg& svg, const std::string& title, const std::string& x_label,
                const std::string& y_label) {
  const double w = svg.width(), h = svg.height();
  svg.text(w / 2, 18, title, 13, "middle");
  svg.text(w / 2, h - 8, x_label, 11, "middle");
  svg.text(14, h / 2, y_label, 11, "middle", {0, 0, 0}, -90);
  // Axes
  svg.line(kMarginLeft, kMarginTop, kMarginLeft, h - kMarginBottom, {0, 0, 0});
  svg.line(kMarginLeft, h - kMarginBottom, w - kMarginRight, h - kMarginBottom, {0, 0, 0});
}

void draw_y_ticks(Svg& svg, const AxisMap& ymap, double lo, double hi) {
  const double step = nice_step(hi - lo, 6);
  const double start = std::ceil(lo / step) * step;
  for (double v = start; v <= hi + step * 0.01; v += step) {
    const double y = ymap(v);
    svg.line(kMarginLeft - 4, y, kMarginLeft, y, {0, 0, 0});
    svg.line(kMarginLeft, y, svg.width() - kMarginRight, y, {220, 220, 220}, 0.5);
    svg.text(kMarginLeft - 7, y + 3.5, tick_label(v), 9, "end");
  }
}

void draw_x_ticks(Svg& svg, const AxisMap& xmap, double lo, double hi) {
  const double step = nice_step(hi - lo, 7);
  const double start = std::ceil(lo / step) * step;
  const double base = svg.height() - kMarginBottom;
  for (double v = start; v <= hi + step * 0.01; v += step) {
    const double x = xmap(v);
    svg.line(x, base, x, base + 4, {0, 0, 0});
    svg.text(x, base + 15, tick_label(v), 9, "middle");
  }
}

}  // namespace

// --- LineChart ---------------------------------------------------------------

LineChart::LineChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void LineChart::add_series(const std::string& name,
                           std::vector<std::pair<double, double>> points) {
  series_.push_back(Series{name, std::move(points)});
}

void LineChart::add_series(const std::string& name, const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("LineChart: xs/ys size mismatch");
  std::vector<std::pair<double, double>> points;
  points.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) points.emplace_back(xs[i], ys[i]);
  add_series(name, std::move(points));
}

std::string LineChart::render(double width, double height) const {
  Svg svg(width, height);
  double xlo = std::numeric_limits<double>::max(), xhi = std::numeric_limits<double>::lowest();
  double ylo = 0, yhi = std::numeric_limits<double>::lowest();
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      xlo = std::min(xlo, x);
      xhi = std::max(xhi, x);
      ylo = std::min(ylo, y);
      yhi = std::max(yhi, y);
    }
  }
  if (series_.empty() || xlo > xhi) {
    xlo = 0;
    xhi = 1;
    yhi = 1;
  }
  if (yhi <= ylo) yhi = ylo + 1;
  yhi *= 1.05;

  draw_frame(svg, title_, x_label_, y_label_);
  const AxisMap xmap{xlo, xhi, kMarginLeft, width - kMarginLeft - kMarginRight, false};
  const AxisMap ymap{ylo, yhi, kMarginTop, height - kMarginTop - kMarginBottom, true};
  draw_y_ticks(svg, ymap, ylo, yhi);
  draw_x_ticks(svg, xmap, xlo, xhi);

  for (std::size_t i = 0; i < series_.size(); ++i) {
    std::vector<std::pair<double, double>> path;
    path.reserve(series_[i].points.size());
    for (const auto& [x, y] : series_[i].points) path.emplace_back(xmap(x), ymap(y));
    svg.polyline(path, palette_color(i));
    // Legend entry.
    const double ly = kMarginTop + 6 + 14 * static_cast<double>(i);
    svg.line(width - 150, ly, width - 130, ly, palette_color(i), 2.0);
    svg.text(width - 126, ly + 3.5, series_[i].name, 10);
  }
  return svg.str();
}

namespace {

void save_doc(const std::string& path, const std::string& doc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("viz: cannot open " + path);
  out << doc;
}

}  // namespace

void LineChart::save(const std::string& path, double width, double height) const {
  save_doc(path, render(width, height));
}

// --- GroupedBarChart -----------------------------------------------------------

GroupedBarChart::GroupedBarChart(std::string title, std::string y_label)
    : title_(std::move(title)), y_label_(std::move(y_label)) {}

void GroupedBarChart::set_categories(std::vector<std::string> categories) {
  categories_ = std::move(categories);
}

void GroupedBarChart::add_group(const std::string& name, std::vector<double> values,
                                std::vector<double> errors) {
  if (values.size() != categories_.size()) {
    throw std::invalid_argument("GroupedBarChart: values count != categories count");
  }
  if (!errors.empty() && errors.size() != values.size()) {
    throw std::invalid_argument("GroupedBarChart: errors count != values count");
  }
  groups_.push_back(Group{name, std::move(values), std::move(errors)});
}

std::string GroupedBarChart::render(double width, double height) const {
  Svg svg(width, height);
  double yhi = 0;
  for (const Group& g : groups_) {
    for (std::size_t i = 0; i < g.values.size(); ++i) {
      const double e = g.errors.empty() ? 0.0 : g.errors[i];
      yhi = std::max(yhi, g.values[i] + e);
    }
  }
  if (yhi <= 0) yhi = 1;
  yhi *= 1.08;

  draw_frame(svg, title_, "", y_label_);
  const AxisMap ymap{0, yhi, kMarginTop, height - kMarginTop - kMarginBottom, true};
  draw_y_ticks(svg, ymap, 0, yhi);

  const double plot_w = width - kMarginLeft - kMarginRight;
  const double base_y = height - kMarginBottom;
  const std::size_t ncat = categories_.size();
  const std::size_t ngrp = std::max<std::size_t>(groups_.size(), 1);
  const double cat_w = ncat > 0 ? plot_w / static_cast<double>(ncat) : plot_w;
  const double bar_w = 0.8 * cat_w / static_cast<double>(ngrp);

  for (std::size_t c = 0; c < ncat; ++c) {
    const double cat_x = kMarginLeft + cat_w * (static_cast<double>(c) + 0.5);
    svg.text(cat_x, base_y + 15, categories_[c], 10, "middle");
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const double v = groups_[g].values[c];
      const double x =
          cat_x - 0.4 * cat_w + bar_w * static_cast<double>(g);
      const double y = ymap(v);
      svg.rect(x, y, bar_w * 0.92, base_y - y, palette_color(g));
      if (!groups_[g].errors.empty() && groups_[g].errors[c] > 0) {
        const double e = groups_[g].errors[c];
        const double cx = x + bar_w * 0.46;
        svg.line(cx, ymap(v + e), cx, ymap(std::max(0.0, v - e)), {60, 60, 60});
        svg.line(cx - 3, ymap(v + e), cx + 3, ymap(v + e), {60, 60, 60});
        svg.line(cx - 3, ymap(std::max(0.0, v - e)), cx + 3, ymap(std::max(0.0, v - e)),
                 {60, 60, 60});
      }
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double ly = kMarginTop + 6 + 14 * static_cast<double>(g);
    svg.rect(width - 150, ly - 6, 12, 10, palette_color(g));
    svg.text(width - 134, ly + 3, groups_[g].name, 10);
  }
  return svg.str();
}

void GroupedBarChart::save(const std::string& path, double width, double height) const {
  save_doc(path, render(width, height));
}

// --- Heatmap -------------------------------------------------------------------

Heatmap::Heatmap(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void Heatmap::set_matrix(std::vector<std::vector<double>> rows) {
  const std::size_t cols = rows.empty() ? 0 : rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != cols) throw std::invalid_argument("Heatmap: ragged matrix");
  }
  rows_ = std::move(rows);
}

void Heatmap::set_range(double lo, double hi) {
  if (hi <= lo) throw std::invalid_argument("Heatmap: empty range");
  lo_ = lo;
  hi_ = hi;
  has_range_ = true;
}

std::string Heatmap::render(double width, double height) const {
  Svg svg(width, height);
  double lo = lo_, hi = hi_;
  if (!has_range_) {
    lo = std::numeric_limits<double>::max();
    hi = std::numeric_limits<double>::lowest();
    for (const auto& row : rows_) {
      for (const double v : row) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (lo > hi) {
      lo = 0;
      hi = 1;
    }
    if (hi <= lo) hi = lo + 1;
  }

  draw_frame(svg, title_, x_label_, y_label_);
  const double plot_w = width - kMarginLeft - kMarginRight - 40;  // 40 for colorbar
  const double plot_h = height - kMarginTop - kMarginBottom;
  const std::size_t nrows = rows_.size();
  const std::size_t ncols = rows_.empty() ? 0 : rows_.front().size();
  if (nrows > 0 && ncols > 0) {
    const double cw = plot_w / static_cast<double>(ncols);
    const double ch = plot_h / static_cast<double>(nrows);
    for (std::size_t r = 0; r < nrows; ++r) {
      for (std::size_t c = 0; c < ncols; ++c) {
        const double t = (rows_[r][c] - lo) / (hi - lo);
        svg.rect(kMarginLeft + cw * static_cast<double>(c),
                 kMarginTop + ch * static_cast<double>(r), cw + 0.5, ch + 0.5, viridis(t));
      }
    }
  }
  // Colorbar.
  const double bar_x = width - kMarginRight - 26;
  constexpr int kBarSteps = 32;
  for (int i = 0; i < kBarSteps; ++i) {
    const double t = 1.0 - static_cast<double>(i) / (kBarSteps - 1);
    svg.rect(bar_x, kMarginTop + plot_h * i / kBarSteps, 12, plot_h / kBarSteps + 0.5,
             viridis(t));
  }
  svg.text(bar_x + 16, kMarginTop + 8, tick_label(hi), 9);
  svg.text(bar_x + 16, kMarginTop + plot_h, tick_label(lo), 9);
  return svg.str();
}

void Heatmap::save(const std::string& path, double width, double height) const {
  save_doc(path, render(width, height));
}

// --- RadialGroupPlot -------------------------------------------------------------

RadialGroupPlot::RadialGroupPlot(std::string title) : title_(std::move(title)) {}

void RadialGroupPlot::set_group_values(std::vector<double> values) {
  group_values_ = std::move(values);
}

void RadialGroupPlot::set_focal_edges(int focal_group, std::vector<double> values) {
  focal_group_ = focal_group;
  edge_values_ = std::move(values);
}

std::string RadialGroupPlot::render(double size) const {
  Svg svg(size, size);
  svg.text(size / 2, 18, title_, 13, "middle");
  const std::size_t n = group_values_.size();
  if (n == 0) return svg.str();
  const double cx = size / 2, cy = size / 2 + 10;
  const double ring = size * 0.38;

  double vmax = 0;
  for (const double v : group_values_) vmax = std::max(vmax, v);
  if (vmax <= 0) vmax = 1;
  double emax = 0;
  for (const double e : edge_values_) emax = std::max(emax, e);
  if (emax <= 0) emax = 1;

  auto position = [&](std::size_t i) {
    const double angle = 2 * 3.14159265358979 * static_cast<double>(i) /
                             static_cast<double>(n) -
                         3.14159265358979 / 2;
    return std::pair<double, double>{cx + ring * std::cos(angle), cy + ring * std::sin(angle)};
  };

  // Edges from the focal group, darkness proportional to the value.
  for (std::size_t i = 0; i < edge_values_.size() && i < n; ++i) {
    if (static_cast<int>(i) == focal_group_) continue;
    const auto [x1, y1] = position(static_cast<std::size_t>(focal_group_));
    const auto [x2, y2] = position(i);
    const double t = edge_values_[i] / emax;
    const Color c = Color::lerp({235, 235, 235}, {120, 30, 30}, t);
    svg.line(x1, y1, x2, y2, c, 1.0 + 2.0 * t);
  }
  // Group markers sized by local value.
  for (std::size_t i = 0; i < n; ++i) {
    const auto [x, y] = position(i);
    const double radius = 3.0 + 14.0 * std::sqrt(group_values_[i] / vmax);
    svg.circle(x, y, radius, palette_color(0), 0.75);
    const double lx = cx + (ring + 22) * std::cos(2 * 3.14159265358979 *
                                                      static_cast<double>(i) /
                                                      static_cast<double>(n) -
                                                  3.14159265358979 / 2);
    const double ly = cy + (ring + 22) * std::sin(2 * 3.14159265358979 *
                                                      static_cast<double>(i) /
                                                      static_cast<double>(n) -
                                                  3.14159265358979 / 2);
    svg.text(lx, ly + 3, "G" + std::to_string(i), 8.5, "middle");
  }
  return svg.str();
}

void RadialGroupPlot::save(const std::string& path, double size) const {
  save_doc(path, render(size));
}

// --- BoxPlot ---------------------------------------------------------------------

BoxPlot::BoxPlot(std::string title, std::string y_label)
    : title_(std::move(title)), y_label_(std::move(y_label)) {}

void BoxPlot::add_box(const std::string& label, Stats stats) {
  boxes_.emplace_back(label, stats);
}

std::string BoxPlot::render(double width, double height) const {
  Svg svg(width, height);
  double yhi = 0;
  for (const auto& [label, s] : boxes_) {
    yhi = std::max({yhi, s.whisker_hi, s.p99});
  }
  if (yhi <= 0) yhi = 1;
  yhi *= 1.08;

  draw_frame(svg, title_, "", y_label_);
  const AxisMap ymap{0, yhi, kMarginTop, height - kMarginTop - kMarginBottom, true};
  draw_y_ticks(svg, ymap, 0, yhi);

  const double plot_w = width - kMarginLeft - kMarginRight;
  const double base_y = height - kMarginBottom;
  const std::size_t n = std::max<std::size_t>(boxes_.size(), 1);
  const double slot = plot_w / static_cast<double>(n);
  const double box_w = slot * 0.42;

  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    const auto& [label, s] = boxes_[i];
    const double x = kMarginLeft + slot * (static_cast<double>(i) + 0.5);
    svg.text(x, base_y + 15, label, 9.5, "middle");
    // Whiskers.
    svg.line(x, ymap(s.whisker_lo), x, ymap(s.q1), {60, 60, 60});
    svg.line(x, ymap(s.q3), x, ymap(s.whisker_hi), {60, 60, 60});
    svg.line(x - box_w / 4, ymap(s.whisker_lo), x + box_w / 4, ymap(s.whisker_lo), {60, 60, 60});
    svg.line(x - box_w / 4, ymap(s.whisker_hi), x + box_w / 4, ymap(s.whisker_hi), {60, 60, 60});
    // Box + median.
    svg.rect(x - box_w / 2, ymap(s.q3), box_w, ymap(s.q1) - ymap(s.q3), {158, 202, 225}, 1.0,
             {60, 60, 60}, 1.0);
    svg.line(x - box_w / 2, ymap(s.median), x + box_w / 2, ymap(s.median), {220, 160, 30}, 2.0);
    // Percentile + mean markers (the paper annotates p95/p99/mean).
    svg.line(x - box_w / 2, ymap(s.p95), x + box_w / 2, ymap(s.p95), {200, 60, 60}, 1.0, true);
    svg.line(x - box_w / 2, ymap(s.p99), x + box_w / 2, ymap(s.p99), {120, 30, 30}, 1.0, true);
    svg.circle(x, ymap(s.mean), 2.5, {30, 100, 30});
  }
  return svg.str();
}

void BoxPlot::save(const std::string& path, double width, double height) const {
  save_doc(path, render(width, height));
}

}  // namespace dfly::viz

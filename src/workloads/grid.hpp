#pragma once

#include <array>
#include <cassert>
#include <vector>

namespace dfly::workloads {

/// N-dimensional Cartesian process grid used by the stencil/sweep motifs.
class Grid {
 public:
  explicit Grid(std::vector<int> dims) : dims_(std::move(dims)) {
    size_ = 1;
    for (const int d : dims_) {
      assert(d >= 1);
      size_ *= d;
    }
  }

  int ndims() const { return static_cast<int>(dims_.size()); }
  int size() const { return size_; }
  int dim(int d) const { return dims_[static_cast<std::size_t>(d)]; }
  const std::vector<int>& dims() const { return dims_; }

  /// Row-major coordinates of `rank`.
  std::vector<int> coords(int rank) const {
    std::vector<int> c(dims_.size());
    for (int d = ndims() - 1; d >= 0; --d) {
      c[static_cast<std::size_t>(d)] = rank % dim(d);
      rank /= dim(d);
    }
    return c;
  }

  int rank_of(const std::vector<int>& c) const {
    int rank = 0;
    for (int d = 0; d < ndims(); ++d) {
      rank = rank * dim(d) + c[static_cast<std::size_t>(d)];
    }
    return rank;
  }

  /// Neighbor of `rank` at distance 1 along `d` in direction `dir` (+1/-1).
  /// Returns -1 at a non-periodic boundary.
  int neighbor(int rank, int d, int dir, bool periodic) const {
    std::vector<int> c = coords(rank);
    int& x = c[static_cast<std::size_t>(d)];
    x += dir;
    if (x < 0 || x >= dim(d)) {
      if (!periodic) return -1;
      x = (x + dim(d)) % dim(d);
    }
    const int peer = rank_of(c);
    return peer == rank ? -1 : peer;  // dim of size 1 or 2 degeneracies
  }

  /// Face neighbors (2 per dimension where they exist).
  std::vector<int> face_neighbors(int rank, bool periodic) const {
    std::vector<int> out;
    for (int d = 0; d < ndims(); ++d) {
      for (const int dir : {-1, +1}) {
        const int nb = neighbor(rank, d, dir, periodic);
        if (nb >= 0) out.push_back(nb);
      }
    }
    return out;
  }

  /// Full Moore neighborhood (3^n - 1 offsets where they exist), used by
  /// LULESH's 26-point stencil.
  std::vector<int> moore_neighbors(int rank, bool periodic) const;

  /// Factor `max_nodes` (or fewer) into `ndims` near-equal dimensions,
  /// maximising the node count actually used. Greedy: repeatedly divide by
  /// the largest feasible near-balanced factor.
  static std::vector<int> balanced_dims(int max_nodes, int ndims);

 private:
  std::vector<int> dims_;
  int size_{1};
};

}  // namespace dfly::workloads

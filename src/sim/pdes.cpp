#include "sim/pdes.hpp"

#include <cassert>
#include <thread>
#include <utility>

#include "core/arena.hpp"

namespace dfly {

PdesCell::PdesCell(Engine& primary, CellPartition partition, SimArena* arena)
    : partition_(std::move(partition)), arena_(arena) {
  assert(partition_.num_domains >= 1);
  domains_.resize(static_cast<std::size_t>(partition_.num_domains));
  domains_[0].engine = &primary;
  for (std::int32_t d = 1; d < partition_.num_domains; ++d) {
    extras_.push_back(arena_ != nullptr ? arena_->take_extra_engine() : Engine{});
    domains_[static_cast<std::size_t>(d)].engine = &extras_.back();
  }
  shards_.resize(static_cast<std::size_t>(partition_.num_domains - 1));
  stats_.num_domains = partition_.num_domains;
  stats_.lookahead = partition_.lookahead;
}

PdesCell::~PdesCell() {
  for (Domain& dom : domains_) {
    if (dom.engine != nullptr) dom.engine->detach_pdes();
  }
  while (!extras_.empty()) {
    if (arena_ != nullptr) arena_->return_extra_engine(std::move(extras_.back()));
    extras_.pop_back();
  }
}

void PdesCell::begin_setup() {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    domains_[d].engine->attach_pdes(this, static_cast<std::int32_t>(d));
  }
  next_seq_ = domains_[0].engine->next_seq_;
  mode_ = Mode::kSetup;
}

void PdesCell::begin_run() {
  assert(mode_ == Mode::kSetup);
  mode_ = Mode::kRun;
}

void PdesCell::on_schedule(Engine& from, SimTime when, Component& target,
                           std::uint32_t kind, std::uint64_t a, std::uint64_t b) {
  if (mode_ == Mode::kSetup) {
    // Single-threaded build/start: deliver directly with a true seq — the
    // calls happen in the same order as sequentially, so the seqs match.
    engine(target.pdes_domain()).push_raw(when, next_seq_++, target, kind, a, b);
    return;
  }
  Domain& dom = domains_[static_cast<std::size_t>(from.pdes_domain_id_)];
  const bool same_domain = target.pdes_domain() == from.pdes_domain_id_;
  const bool immediate = same_domain && when <= dom.run_until;
  const std::uint64_t index = dom.log.size();
  dom.log.push_back(LogEntry{from.now_, from.cur_seq_, when, &target, kind, a, b, immediate});
  if (immediate) {
    // In-window same-domain event: execute it this window under a
    // provisional seq; the barrier merge assigns its true seq afterwards.
    from.push_raw(when, kProvisionalBase + index, target, kind, a, b);
  } else if (!same_domain) {
    ++dom.cross_events;
    assert(when > dom.run_until && "cross-domain event violates the lookahead window");
  }
}

void PdesCell::merge_window() {
  for (Domain& dom : domains_) {
    dom.true_of.assign(dom.log.size(), 0);
    dom.cursor = 0;
  }
  for (;;) {
    // Pick the front entry with the smallest (creator_when, resolved creator
    // seq) across domains. Fronts are resolvable by construction: a
    // provisional creator seq points at an earlier index in the same log,
    // already consumed (true_of set) before any of its children surface.
    int best = -1;
    SimTime best_when = 0;
    std::uint64_t best_seq = 0;
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      Domain& dom = domains_[d];
      if (dom.cursor >= dom.log.size()) continue;
      const LogEntry& entry = dom.log[dom.cursor];
      const std::uint64_t creator =
          entry.creator_seq >= kProvisionalBase
              ? dom.true_of[static_cast<std::size_t>(entry.creator_seq - kProvisionalBase)]
              : entry.creator_seq;
      if (best < 0 || entry.creator_when < best_when ||
          (entry.creator_when == best_when && creator < best_seq)) {
        best = static_cast<int>(d);
        best_when = entry.creator_when;
        best_seq = creator;
      }
    }
    if (best < 0) break;
    Domain& dom = domains_[static_cast<std::size_t>(best)];
    const LogEntry& entry = dom.log[dom.cursor];
    const std::uint64_t seq = next_seq_++;
    dom.true_of[dom.cursor] = seq;
    ++dom.cursor;
    ++stats_.merged_events;
    if (!entry.immediate) {
      engine(entry.target->pdes_domain())
          .push_raw(entry.when, seq, *entry.target, entry.kind, entry.a, entry.b);
    }
  }
  for (Domain& dom : domains_) dom.log.clear();
}

void PdesCell::finish() {
  if (finished_) return;
  finished_ = true;
  Engine& primary = *domains_[0].engine;
  for (std::size_t d = 1; d < domains_.size(); ++d) {
    Engine& e = *domains_[d].engine;
    primary.executed_ += e.executed_;
    if (e.now_ > primary.now_) primary.now_ = e.now_;
    for (std::size_t k = 0; k < e.stats_.scheduled_by_kind.size(); ++k) {
      primary.stats_.scheduled_by_kind[k] += e.stats_.scheduled_by_kind[k];
      primary.stats_.executed_by_kind[k] += e.stats_.executed_by_kind[k];
    }
  }
  primary.next_seq_ = next_seq_;
  for (Domain& dom : domains_) {
    stats_.cross_domain_events += dom.cross_events;
    dom.cross_events = 0;
    dom.log.clear();
    dom.engine->detach_pdes();
  }
  mode_ = Mode::kIdle;
}

PdesRunner::PdesRunner(PdesCell& cell, SimTime time_limit)
    : cell_(cell), time_limit_(time_limit), sync_(cell.num_domains()) {}

void PdesRunner::run() {
  cell_.begin_run();
  // Propagate the primary engine's wall-clock watchdog so a hung domain is
  // caught no matter which thread it runs on.
  Engine& primary = cell_.engine(0);
  const std::int32_t domains = cell_.num_domains();
  if (primary.has_wall_deadline()) {
    for (std::int32_t d = 1; d < domains; ++d) {
      cell_.engine(d).set_wall_deadline(primary.wall_deadline_);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(domains - 1));
  for (std::int32_t d = 1; d < domains; ++d) {
    threads.emplace_back([this, d] { worker(d); });
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  for (std::int32_t d = 1; d < domains; ++d) cell_.engine(d).clear_wall_deadline();
  std::exception_ptr error;
  {
    const MutexLock lock(error_mutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void PdesRunner::worker(std::int32_t domain) {
  Engine& engine = cell_.engine(domain);
  for (;;) {
    sync_.arrive_and_wait();
    if (domain == 0) plan_next();
    sync_.arrive_and_wait();
    if (done_) return;
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        engine.run(run_until_);
      } catch (...) {
        failed_.store(true, std::memory_order_relaxed);
        const MutexLock lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
}

void PdesRunner::plan_next() {
  if (failed_.load(std::memory_order_relaxed)) {
    // A domain died mid-window; its log may be mid-append, so skip the merge
    // and shut down. finish()/teardown clears the logs.
    done_ = true;
    return;
  }
  cell_.merge_window();
  SimTime next = 0;
  bool any = false;
  for (std::int32_t d = 0; d < cell_.num_domains(); ++d) {
    Engine& e = cell_.engine(d);
    if (e.keys_.empty()) continue;
    const SimTime front = Engine::key_when(e.keys_.front());
    if (!any || front < next) {
      next = front;
      any = true;
    }
  }
  if (!any || next > time_limit_) {
    done_ = true;
    return;
  }
  ++cell_.stats_.windows;
  // Window [next, next + lookahead - 1]: every cross-domain event created in
  // it lands at >= creator now + lookahead > window end, so delivery can wait
  // for the barrier. Clamped to the time limit — run_until bounds the
  // provisional-execution rule too, so a truncated window never executes an
  // event whose true seq would be assigned after the limit was passed.
  SimTime until = next + cell_.partition().lookahead - 1;
  if (until > time_limit_) until = time_limit_;
  run_until_ = until;
  for (std::int32_t d = 0; d < cell_.num_domains(); ++d) {
    cell_.domains_[static_cast<std::size_t>(d)].run_until = until;
  }
  done_ = false;
}

}  // namespace dfly

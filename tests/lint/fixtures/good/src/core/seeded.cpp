#include <chrono>
#include <cstdint>

namespace fixture {

// The sanctioned pattern: a counter-based stream seeded from StudyConfig.
struct Rng {
  std::uint64_t state{1};
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

// "std::rand()" inside a string literal must not fire.
const char* kDoc = "never call std::rand() or std::chrono::system_clock";

// An allow on the line above suppresses a single deliberate use:
double stamp_ms() {
  // dfsim-lint: allow(det-clock) fixture: timing metadata, never output bytes
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch()).count();
}

}  // namespace fixture

#pragma once

#include <cstdint>
#include <string>

#include "mpi/job.hpp"

namespace dfly::workloads {

/// The paper's two communication-intensity metrics (§IV), measured from a
/// finished job:
///  - message injection rate: total message volume / execution time — the
///    application's average bandwidth requirement, and
///  - peak ingress volume: the largest run of message bytes a rank injected
///    back-to-back (no intervening blocking operation or compute).
struct IntensityMetrics {
  std::string app;
  double total_msg_mb{0};
  double execution_ms{0};
  double injection_rate_gbs{0};
  double peak_ingress_bytes{0};
  std::int64_t messages{0};
};

IntensityMetrics measure_intensity(const mpi::Job& job);

/// Human-readable size, matching Table I's units (KB / MB).
std::string format_volume(double bytes);

}  // namespace dfly::workloads

#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dfly::sched {

const char* to_string(AllocPolicy policy) {
  switch (policy) {
    case AllocPolicy::kRandom: return "random";
    case AllocPolicy::kLinear: return "linear";
    case AllocPolicy::kGroupContiguous: return "contiguous";
  }
  return "?";
}

AllocPolicy alloc_policy_from_string(const std::string& name) {
  if (name == "random") return AllocPolicy::kRandom;
  if (name == "linear") return AllocPolicy::kLinear;
  if (name == "contiguous") return AllocPolicy::kGroupContiguous;
  throw std::invalid_argument("unknown allocation policy: " + name);
}

BatchScheduler::BatchScheduler(const Dragonfly& topo, AllocPolicy policy, bool backfill,
                               std::uint64_t seed)
    : topo_(&topo),
      policy_(policy),
      backfill_(backfill),
      rng_(seed, 0x5C4ED),
      used_(static_cast<std::size_t>(topo.num_nodes()), false),
      free_per_group_(static_cast<std::size_t>(topo.num_groups()),
                      topo.params().p * topo.params().a),
      free_count_(topo.num_nodes()) {}

std::vector<int> BatchScheduler::try_allocate(int nodes) {
  std::vector<int> out;
  if (nodes > free_count_) return out;
  const int per_group = topo_->params().p * topo_->params().a;

  switch (policy_) {
    case AllocPolicy::kLinear: {
      out.reserve(static_cast<std::size_t>(nodes));
      for (int n = 0; n < topo_->num_nodes() && static_cast<int>(out.size()) < nodes; ++n) {
        if (!used_[static_cast<std::size_t>(n)]) out.push_back(n);
      }
      break;
    }
    case AllocPolicy::kRandom: {
      // Reservoir-free draw: collect the free list once, then sample.
      std::vector<int> free_nodes;
      free_nodes.reserve(static_cast<std::size_t>(free_count_));
      for (int n = 0; n < topo_->num_nodes(); ++n) {
        if (!used_[static_cast<std::size_t>(n)]) free_nodes.push_back(n);
      }
      out.reserve(static_cast<std::size_t>(nodes));
      for (int k = 0; k < nodes; ++k) {
        const auto pick =
            static_cast<std::size_t>(rng_.next_below(free_nodes.size() - static_cast<std::size_t>(k)));
        out.push_back(free_nodes[pick]);
        std::swap(free_nodes[pick], free_nodes[free_nodes.size() - 1 - static_cast<std::size_t>(k)]);
      }
      break;
    }
    case AllocPolicy::kGroupContiguous: {
      // Whole fully-free groups only: the strict isolation the bully-effect
      // literature assumes. A job may be blocked here even though
      // free_count_ >= nodes — external fragmentation.
      const int groups_needed = (nodes + per_group - 1) / per_group;
      std::vector<int> chosen;
      for (int g = 0; g < topo_->num_groups() &&
                      static_cast<int>(chosen.size()) < groups_needed;
           ++g) {
        if (free_per_group_[static_cast<std::size_t>(g)] == per_group) chosen.push_back(g);
      }
      if (static_cast<int>(chosen.size()) < groups_needed) return out;  // blocked
      out.reserve(static_cast<std::size_t>(groups_needed * per_group));
      for (const int g : chosen) {
        for (int local = 0; local < per_group; ++local) {
          out.push_back(g * per_group + local);
        }
      }
      break;
    }
  }

  if (static_cast<int>(out.size()) < nodes && policy_ != AllocPolicy::kGroupContiguous) {
    out.clear();  // free_count_ said it fits; defensive
    return out;
  }
  for (const int n : out) {
    used_[static_cast<std::size_t>(n)] = true;
    free_per_group_[static_cast<std::size_t>(topo_->group_of_node(n))]--;
  }
  free_count_ -= static_cast<int>(out.size());
  return out;
}

void BatchScheduler::release(const std::vector<int>& nodes) {
  for (const int n : nodes) {
    used_[static_cast<std::size_t>(n)] = false;
    free_per_group_[static_cast<std::size_t>(topo_->group_of_node(n))]++;
  }
  free_count_ += static_cast<int>(nodes.size());
}

int BatchScheduler::sharers_of(const std::vector<int>& nodes,
                               const std::vector<Running>& running) const {
  std::vector<bool> my_groups(static_cast<std::size_t>(topo_->num_groups()), false);
  for (const int n : nodes) {
    my_groups[static_cast<std::size_t>(topo_->group_of_node(n))] = true;
  }
  int sharers = 0;
  for (const Running& other : running) {
    for (const int n : other.nodes) {
      if (my_groups[static_cast<std::size_t>(topo_->group_of_node(n))]) {
        ++sharers;
        break;
      }
    }
  }
  return sharers;
}

ScheduleResult BatchScheduler::run(std::vector<JobRequest> jobs) {
  for (const JobRequest& job : jobs) {
    if (job.nodes < 1 || job.nodes > topo_->num_nodes()) {
      throw std::invalid_argument("BatchScheduler: job larger than the machine");
    }
    if (job.runtime_ms < 0 || job.arrival_ms < 0) {
      throw std::invalid_argument("BatchScheduler: negative arrival or runtime");
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobRequest& a, const JobRequest& b) {
    return a.arrival_ms < b.arrival_ms;
  });

  ScheduleResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.jobs[i].id = jobs[i].id;
    result.jobs[i].requested_nodes = jobs[i].nodes;
    result.jobs[i].arrival_ms = jobs[i].arrival_ms;
  }

  std::vector<Running> running;
  std::vector<std::size_t> queue;  ///< indices into jobs, FCFS order
  std::size_t next_arrival = 0;
  double now = 0;
  double requested_node_ms = 0;
  double granted_node_ms = 0;

  auto start_job = [&](std::size_t index, std::vector<int> nodes) {
    JobStats& stats = result.jobs[index];
    stats.granted_nodes = static_cast<int>(nodes.size());
    stats.start_ms = now;
    stats.wait_ms = now - stats.arrival_ms;
    stats.finish_ms = now + jobs[index].runtime_ms;
    stats.co_resident_sharers = sharers_of(nodes, running);
    requested_node_ms += static_cast<double>(jobs[index].nodes) * jobs[index].runtime_ms;
    granted_node_ms += static_cast<double>(nodes.size()) * jobs[index].runtime_ms;
    running.push_back(Running{static_cast<int>(index), stats.finish_ms, std::move(nodes)});
  };

  // FCFS: start queue-head jobs while they fit; behind a blocked head only
  // backfill mode may continue scanning.
  auto drain_queue = [&] {
    std::size_t i = 0;
    while (i < queue.size()) {
      std::vector<int> nodes = try_allocate(jobs[queue[i]].nodes);
      if (!nodes.empty()) {
        start_job(queue[i], std::move(nodes));
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (!backfill_) break;
      ++i;
    }
  };

  while (next_arrival < jobs.size() || !running.empty() || !queue.empty()) {
    // Next event: the earlier of next arrival and next completion.
    double next_time = -1;
    if (next_arrival < jobs.size()) next_time = jobs[next_arrival].arrival_ms;
    for (const Running& r : running) {
      if (next_time < 0 || r.finish_ms < next_time) next_time = r.finish_ms;
    }
    if (next_time < 0) break;  // queued jobs but nothing can ever finish: impossible

    // External fragmentation: over [now, next_time) the head stays blocked
    // (drain_queue already ran at `now`); charge the interval when the
    // machine had enough *idle* nodes — nodes not running job processes,
    // which under whole-group grants includes the internally wasted ones —
    // but the allocator could not shape them into a partition (§I).
    if (!queue.empty()) {
      int requested_busy = 0;
      for (const Running& r : running) {
        requested_busy += jobs[static_cast<std::size_t>(r.job_index)].nodes;
      }
      if (topo_->num_nodes() - requested_busy >= jobs[queue[0]].nodes) {
        result.frag_blocked_ms += next_time - now;
      }
    }
    now = next_time;

    // Completions at `now`.
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].finish_ms <= now) {
        release(running[i].nodes);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    // Arrivals at `now`.
    while (next_arrival < jobs.size() && jobs[next_arrival].arrival_ms <= now) {
      queue.push_back(next_arrival);
      ++next_arrival;
    }
    drain_queue();
  }

  result.makespan_ms = 0;
  double wait_sum = 0;
  std::vector<double> waits;
  waits.reserve(result.jobs.size());
  int sharer_sum = 0;
  for (const JobStats& stats : result.jobs) {
    result.makespan_ms = std::max(result.makespan_ms, stats.finish_ms);
    wait_sum += stats.wait_ms;
    waits.push_back(stats.wait_ms);
    result.max_wait_ms = std::max(result.max_wait_ms, stats.wait_ms);
    sharer_sum += stats.co_resident_sharers;
  }
  if (!result.jobs.empty()) {
    result.mean_wait_ms = wait_sum / static_cast<double>(result.jobs.size());
    result.mean_sharers = static_cast<double>(sharer_sum) / static_cast<double>(result.jobs.size());
    std::sort(waits.begin(), waits.end());
    std::size_t p95 = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(waits.size())));
    p95 = p95 > 0 ? p95 - 1 : 0;
    result.p95_wait_ms = waits[std::min(waits.size() - 1, p95)];
  }
  if (result.makespan_ms > 0) {
    result.utilization = requested_node_ms /
                         (static_cast<double>(topo_->num_nodes()) * result.makespan_ms);
  }
  if (granted_node_ms > 0) {
    result.internal_waste = (granted_node_ms - requested_node_ms) / granted_node_ms;
  }
  return result;
}

std::vector<JobRequest> synthetic_job_stream(int count, double mean_interarrival_ms,
                                             double mean_runtime_ms, int min_nodes,
                                             int max_nodes, std::uint64_t seed) {
  if (count < 0 || min_nodes < 1 || max_nodes < min_nodes) {
    throw std::invalid_argument("synthetic_job_stream: bad parameters");
  }
  Rng rng(seed, 0x10B5);
  std::vector<JobRequest> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  double clock = 0;
  const double log_lo = std::log(static_cast<double>(min_nodes));
  const double log_hi = std::log(static_cast<double>(max_nodes));
  for (int i = 0; i < count; ++i) {
    JobRequest job;
    job.id = i;
    clock += -mean_interarrival_ms * std::log(1.0 - rng.next_double());
    job.arrival_ms = clock;
    job.runtime_ms = -mean_runtime_ms * std::log(1.0 - rng.next_double());
    if (job.runtime_ms < 0.01) job.runtime_ms = 0.01;
    const double size = std::exp(log_lo + (log_hi - log_lo) * rng.next_double());
    job.nodes = std::clamp(static_cast<int>(std::lround(size)), min_nodes, max_nodes);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace dfly::sched

#include "core/json_report.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dfly {

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
  want_key_ = true;
  has_pending_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Ctx::kObject) {
    throw std::logic_error("JsonWriter: end_object outside an object");
  }
  if (has_pending_key_) throw std::logic_error("JsonWriter: key without value");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  on_value();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
  want_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  on_value();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Ctx::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (has_pending_key_) throw std::logic_error("JsonWriter: consecutive keys");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"' + escape(name) + "\":";
  has_pending_key_ = true;
  want_key_ = false;
  return *this;
}

void JsonWriter::comma_if_needed() {
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("JsonWriter: multiple top-level values");
    return;
  }
  if (stack_.back() == Ctx::kObject) {
    if (!has_pending_key_) throw std::logic_error("JsonWriter: value in object without key");
    has_pending_key_ = false;
    return;  // the key already emitted the comma
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::on_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObject) want_key_ = true;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ += '"' + escape(v) + '"';
  on_value();
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (std::isfinite(v)) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    out_ += buffer;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  on_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  on_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  on_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  on_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  on_value();
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: unclosed containers");
  return out_;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_app(JsonWriter& w, const AppReport& app) {
  w.begin_object();
  w.key("app").value(app.app);
  w.key("app_id").value(app.app_id);
  w.key("nodes").value(app.nodes);
  w.key("comm_mean_ms").value(app.comm_mean_ms);
  w.key("comm_std_ms").value(app.comm_std_ms);
  w.key("comm_max_ms").value(app.comm_max_ms);
  w.key("exec_ms").value(app.exec_ms);
  w.key("total_msg_mb").value(app.total_msg_mb);
  w.key("injection_rate_gbs").value(app.injection_rate_gbs);
  w.key("peak_ingress_bytes").value(app.peak_ingress_bytes);
  w.key("lat_mean_us").value(app.lat_mean_us);
  w.key("lat_p50_us").value(app.lat_p50_us);
  w.key("lat_p95_us").value(app.lat_p95_us);
  w.key("lat_p99_us").value(app.lat_p99_us);
  w.key("packets").value(app.packets);
  w.key("nonminimal_fraction").value(app.nonminimal_fraction);
  w.key("mean_hops").value(app.mean_hops);
  w.end_object();
}

void write_stat(JsonWriter& w, const char* name, const SweepStat& stat) {
  w.key(name).begin_object();
  w.key("mean").value(stat.mean);
  w.key("stddev").value(stat.stddev);
  w.key("min").value(stat.min);
  w.key("max").value(stat.max);
  w.key("ci95_half").value(stat.ci95_half);
  w.key("n").value(stat.n);
  w.end_object();
}

}  // namespace

std::string report_to_json(const Report& report) {
  JsonWriter w;
  write_report(w, report);
  return w.str();
}

void write_report(JsonWriter& w, const Report& report) {
  w.begin_object();
  w.key("routing").value(report.routing);
  w.key("completed").value(report.completed);
  w.key("makespan_ms").value(to_ms(report.makespan));
  w.key("sys_lat_mean_us").value(report.sys_lat_mean_us);
  w.key("sys_lat_p50_us").value(report.sys_lat_p50_us);
  w.key("sys_lat_p95_us").value(report.sys_lat_p95_us);
  w.key("sys_lat_p99_us").value(report.sys_lat_p99_us);
  w.key("agg_throughput_gb_per_ms").value(report.agg_throughput_gb_per_ms);
  w.key("local_stall_ms").value(report.local_stall_ms);
  w.key("global_stall_ms").value(report.global_stall_ms);
  w.key("congestion_mean").value(report.congestion_mean);
  w.key("congestion_max").value(report.congestion_max);
  w.key("congestion_imbalance").value(report.congestion_imbalance);
  w.key("events_executed").value(report.events_executed);
  w.key("apps").begin_array();
  for (const AppReport& app : report.apps) write_app(w, app);
  w.end_array();
  w.end_object();
}

std::string sweep_to_json(const SweepSummary& summary) {
  JsonWriter w;
  w.begin_object();
  w.key("routing").value(summary.routing);
  w.key("runs").value(summary.runs);
  w.key("completed_runs").value(summary.completed_runs);
  write_stat(w, "makespan_ms", summary.makespan_ms);
  write_stat(w, "sys_lat_p99_us", summary.sys_lat_p99_us);
  write_stat(w, "agg_throughput", summary.agg_throughput);
  write_stat(w, "local_stall_ms", summary.local_stall_ms);
  write_stat(w, "global_stall_ms", summary.global_stall_ms);
  write_stat(w, "congestion_imbalance", summary.congestion_imbalance);
  w.key("apps").begin_array();
  for (const AppSweep& app : summary.apps) {
    w.begin_object();
    w.key("app").value(app.app);
    write_stat(w, "comm_ms", app.comm_ms);
    write_stat(w, "exec_ms", app.exec_ms);
    write_stat(w, "lat_mean_us", app.lat_mean_us);
    write_stat(w, "lat_p99_us", app.lat_p99_us);
    write_stat(w, "nonminimal_fraction", app.nonminimal_fraction);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void save_json(const std::string& path, const std::string& json) {
  // Whole-file write via temp + atomic rename: a reader (or a crash) never
  // observes a half-written document, and a failed write leaves any previous
  // file at `path` untouched.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_json: cannot open " + tmp);
    out << json << '\n';
    out.flush();
    if (!out.good()) throw std::runtime_error("save_json: write failed on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_json: cannot rename " + tmp + " to " + path + ": " +
                             std::strerror(errno));
  }
}

}  // namespace dfly

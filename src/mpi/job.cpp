#include "mpi/job.hpp"

#include <cassert>

namespace dfly::mpi {

Job::Job(Engine& engine, Network& network, MpiSystem& system, int app_id, std::string name,
         const Motif& motif, std::vector<int> nodes, std::uint64_t seed, ProtocolConfig protocol)
    : engine_(&engine),
      network_(&network),
      system_(&system),
      app_id_(app_id),
      name_(std::move(name)),
      motif_(&motif),
      nodes_(std::move(nodes)),
      protocol_(protocol) {
  ranks_.reserve(nodes_.size());
  for (int r = 0; r < static_cast<int>(nodes_.size()); ++r) {
    ranks_.push_back(std::make_unique<RankCtx>(
        *this, r, nodes_[static_cast<std::size_t>(r)],
        Rng(seed, (static_cast<std::uint64_t>(app_id) << 32) | static_cast<std::uint64_t>(r))));
  }
}

Task Job::drive(RankCtx& ctx) {
  co_await motif_->run(ctx);
  rank_finished(ctx);
}

void Job::start() {
  assert(tasks_.empty() && "job already started");
  start_time_ = engine_->now();
  tasks_.reserve(ranks_.size());
  for (auto& rank : ranks_) tasks_.push_back(drive(*rank));
  for (auto& task : tasks_) task.start();
}

void Job::rank_finished(RankCtx&) {
  ++finished_ranks_;
  if (engine_->now() > finish_time_) finish_time_ = engine_->now();
}

std::uint64_t Job::submit(int src_rank, int dst_rank, std::int64_t bytes, int tag,
                          ReqId send_req, MsgKind kind, std::uint64_t rdv_id) {
  const std::uint64_t msg_id =
      network_->send_message(node_of(src_rank), node_of(dst_rank), bytes, app_id_);
  inflight_.emplace(msg_id, MsgMeta{src_rank, dst_rank, tag, bytes, send_req, kind, rdv_id});
  system_->track(msg_id, *this);
  return msg_id;
}

void Job::post_send(int src_rank, int dst_rank, std::int64_t bytes, int tag, ReqId send_req) {
  if (send_observer_ != nullptr) {
    send_observer_->on_post_send(app_id_, engine_->now(), src_rank, dst_rank, bytes, tag);
  }
  if (bytes <= protocol_.eager_threshold) {
    submit(src_rank, dst_rank, bytes, tag, send_req, MsgKind::kEager, 0);
    return;
  }
  // Rendezvous: RTS travels to the receiver; the payload waits for the CTS.
  const std::uint64_t rdv_id = next_rdv_id_++;
  rendezvous_.emplace(rdv_id, RdvState{src_rank, dst_rank, tag, bytes, send_req});
  submit(src_rank, dst_rank, protocol_.control_bytes, tag, send_req, MsgKind::kRts, rdv_id);
}

void Job::rdv_matched(std::uint64_t rdv_id, int dst_rank, ReqId recv_req) {
  auto& state = rendezvous_.at(rdv_id);
  assert(!state.recv_known);
  state.recv_known = true;
  state.recv_req = recv_req;
  // Clear-to-send back to the data's source rank.
  submit(dst_rank, state.src_rank, protocol_.control_bytes, state.tag, 0, MsgKind::kCts, rdv_id);
}

void Job::rdv_sink(std::uint64_t rdv_id, int dst_rank) {
  auto& state = rendezvous_.at(rdv_id);
  assert(!state.recv_known);
  state.recv_known = true;
  state.recv_req = kSinkRecv;
  submit(dst_rank, state.src_rank, protocol_.control_bytes, state.tag, 0, MsgKind::kCts, rdv_id);
}

void Job::on_message_sent(std::uint64_t msg_id) {
  const auto it = inflight_.find(msg_id);
  assert(it != inflight_.end());
  const MsgMeta& meta = it->second;
  // The sender's request completes when its *payload* is fully on the wire:
  // immediately for eager, after the handshake for rendezvous.
  if (meta.kind == MsgKind::kEager || meta.kind == MsgKind::kRdvData) {
    ranks_[static_cast<std::size_t>(meta.src_rank)]->complete_request(meta.send_req);
  }
}

void Job::on_message_delivered(std::uint64_t msg_id) {
  const auto it = inflight_.find(msg_id);
  assert(it != inflight_.end());
  const MsgMeta meta = it->second;
  inflight_.erase(it);
  switch (meta.kind) {
    case MsgKind::kEager:
      ranks_[static_cast<std::size_t>(meta.dst_rank)]->deliver_eager(meta.src_rank, meta.tag,
                                                                     meta.bytes);
      break;
    case MsgKind::kRts: {
      // Header arrived: match it against the receiver's posted receives.
      const RdvState& state = rendezvous_.at(meta.rdv_id);
      ranks_[static_cast<std::size_t>(meta.dst_rank)]->deliver_rts(meta.src_rank, meta.tag,
                                                                   state.bytes, meta.rdv_id);
      break;
    }
    case MsgKind::kCts: {
      // Receiver is ready: ship the payload.
      const RdvState& state = rendezvous_.at(meta.rdv_id);
      submit(state.src_rank, state.dst_rank, state.bytes, state.tag, state.send_req,
             MsgKind::kRdvData, meta.rdv_id);
      break;
    }
    case MsgKind::kRdvData: {
      const auto rdv_it = rendezvous_.find(meta.rdv_id);
      assert(rdv_it != rendezvous_.end() && rdv_it->second.recv_known);
      const ReqId recv_req = rdv_it->second.recv_req;
      const int dst_rank = rdv_it->second.dst_rank;
      rendezvous_.erase(rdv_it);
      if (recv_req != kSinkRecv) {
        ranks_[static_cast<std::size_t>(dst_rank)]->complete_request(recv_req);
      }
      break;
    }
  }
}

Accumulator Job::comm_time_stats() const {
  Accumulator acc;
  for (const auto& rank : ranks_) acc.add(to_ms(rank->comm_time()));
  return acc;
}

std::int64_t Job::total_bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& rank : ranks_) total += rank->bytes_sent();
  return total;
}

std::int64_t Job::total_messages_sent() const {
  std::int64_t total = 0;
  for (const auto& rank : ranks_) total += rank->messages_sent();
  return total;
}

std::int64_t Job::peak_ingress_bytes() const {
  std::int64_t peak = 0;
  for (const auto& rank : ranks_) {
    if (rank->peak_ingress_bytes() > peak) peak = rank->peak_ingress_bytes();
  }
  return peak;
}

double Job::injection_rate_gbs() const {
  const SimTime elapsed = execution_time();
  if (elapsed <= 0) return 0.0;
  // bytes / ns == GB/s
  return static_cast<double>(total_bytes_sent()) / to_ns(elapsed);
}

}  // namespace dfly::mpi

#include "workloads/motifs.hpp"

namespace dfly::workloads {

mpi::Task LuleshMotif::run(mpi::RankCtx& ctx) const {
  // LULESH communication (Carothers et al. "Durango", Roth et al.): each
  // timestep exchanges ghost zones with the full 26-point Moore
  // neighbourhood, then runs a Sweep3D-style diagonal wavefront with small
  // messages. The stencil phase dominates the peak ingress volume (~1.95MB);
  // the sweep adds the latency-sensitive 14.91KB component (Table I).
  const Grid grid({p_.nx, p_.ny, p_.nz});
  const std::vector<int> stencil = grid.moore_neighbors(ctx.rank(), /*periodic=*/false);
  const std::vector<int> coords = grid.coords(ctx.rank());
  const int x = coords[0], y = coords[1], z = coords[2];

  // Sweep predecessors/successors: one step along each axis.
  std::vector<int> preds, succs;
  if (x > 0) preds.push_back(grid.rank_of({x - 1, y, z}));
  if (y > 0) preds.push_back(grid.rank_of({x, y - 1, z}));
  if (z > 0) preds.push_back(grid.rank_of({x, y, z - 1}));
  if (x + 1 < p_.nx) succs.push_back(grid.rank_of({x + 1, y, z}));
  if (y + 1 < p_.ny) succs.push_back(grid.rank_of({x, y + 1, z}));
  if (z + 1 < p_.nz) succs.push_back(grid.rank_of({x, y, z + 1}));

  // One request buffer for the whole run (coroutine-frame local, reused
  // every timestep so steady-state iterations never touch the heap).
  std::vector<mpi::ReqId> reqs;
  reqs.reserve(stencil.size() * 2);
  for (int iter = 0; iter < p_.iterations; ++iter) {
    // Phase 1: 26-point ghost exchange (non-blocking, single burst).
    const int stencil_tag = iter * 2;
    reqs.clear();
    for (const int nb : stencil) reqs.push_back(ctx.irecv(nb, stencil_tag));
    for (const int nb : stencil) reqs.push_back(ctx.isend(nb, p_.stencil_bytes, stencil_tag));
    co_await ctx.wait_all(reqs);
    co_await ctx.compute(p_.compute);

    // Phase 2: diagonal sweep; blocking sends keep the sweep burst at one
    // message (14.91KB, Table I's second peak-ingress line).
    const int sweep_tag = iter * 2 + 1;
    for (const int pred : preds) co_await ctx.recv(pred, sweep_tag);
    co_await ctx.compute(p_.sweep_compute);
    for (const int succ : succs) co_await ctx.send(succ, p_.sweep_bytes, sweep_tag);
    ctx.mark_iteration();
  }
}

}  // namespace dfly::workloads

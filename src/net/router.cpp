#include "net/router.hpp"

#include <cassert>
#include <stdexcept>

#include "core/blueprint.hpp"
#include "net/nic.hpp"
#include "sim/log.hpp"

namespace dfly {

Router::Router(Engine& engine, const SystemBlueprint& blueprint, int id,
               PacketPool& pool, LinkStats& stats, std::uint64_t seed)
    : buffers_(blueprint.topo().radix(), blueprint.net().num_vcs,
               blueprint.net().buffer_packets) {
  reinit(engine, blueprint, id, pool, stats, seed);
}

void Router::reinit(Engine& engine, const SystemBlueprint& blueprint, int id,
                    PacketPool& pool, LinkStats& stats, std::uint64_t seed) {
  const Dragonfly& topo = blueprint.topo();
  const NetConfig& cfg = blueprint.net();
  engine_ = &engine;
  topo_ = &topo;
  cfg_ = &cfg;
  id_ = id;
  pool_ = &pool;
  stats_ = &stats;
  links_ = &blueprint.links();
  routing_ = nullptr;
  rng_ = Rng(seed, static_cast<std::uint64_t>(id) + 0x10000);
  const auto radix = static_cast<std::size_t>(topo.radix());
  buffers_.reset(topo.radix(), cfg.num_vcs, cfg.buffer_packets);
  out_.resize(radix);
  for (int port = 0; port < topo.radix(); ++port) {
    auto& o = out_[static_cast<std::size_t>(port)];
    o.peer = nullptr;
    o.peer_port = -1;
    o.peer_is_router = false;
    o.latency = blueprint.port(id, port).latency;
    o.slowdown = 1;
    o.extra_latency = 0;
    o.busy_until = 0;
    o.try_pending = false;
    o.stall_start = -1;
    o.requests.clear();
    o.stalled.resize(static_cast<std::size_t>(cfg.num_vcs));
    for (auto& parked : o.stalled) parked.clear();
    if (cfg.qos.enabled()) {
      o.class_requests.resize(static_cast<std::size_t>(cfg.qos.num_classes));
      for (auto& queue : o.class_requests) queue.clear();
      o.deficit.assign(static_cast<std::size_t>(cfg.qos.num_classes), 0);
    } else {
      o.class_requests.clear();
      o.deficit.clear();
    }
  }
  credits_.assign(radix * static_cast<std::size_t>(cfg.num_vcs), cfg.buffer_packets);
  credits_used_.assign(radix, 0);
  pending_.assign(radix, 0);
  in_.assign(radix, InWire{});
}

void Router::degrade_port(int port, int slowdown, SimTime extra_latency) {
  if (port < 0 || port >= topo_->radix()) {
    throw std::out_of_range("degrade_port: port outside radix");
  }
  if (slowdown < 1 || extra_latency < 0) {
    throw std::invalid_argument("degrade_port: slowdown must be >= 1 and latency >= 0");
  }
  auto& o = out_[static_cast<std::size_t>(port)];
  o.slowdown = slowdown;
  o.extra_latency = extra_latency;
}

void Router::connect(int port, Component& peer, int peer_port, bool peer_is_router) {
  auto& o = out_[static_cast<std::size_t>(port)];
  o.peer = &peer;
  o.peer_port = static_cast<std::int16_t>(peer_port);
  o.peer_is_router = peer_is_router;
  // The reverse direction of the same wire carries our credit returns: the
  // peer's input wiring is recorded when *they* connect to us, so here we
  // record who feeds our input `port` (symmetric wiring done by Network).
}

void Router::handle(Engine& engine, const Event& event) {
  switch (event.kind) {
    case router_ev::kArrive:
      on_arrive(engine, static_cast<std::uint32_t>(event.a),
                static_cast<int>(event.b & 0xff), static_cast<int>((event.b >> 8) & 0xff));
      break;
    case router_ev::kTryPort:
      on_try_port(engine, static_cast<int>(event.a));
      break;
    case router_ev::kCredit:
      on_credit(engine, static_cast<int>(event.a), static_cast<int>(event.b));
      break;
    default:
      assert(false && "unknown router event");
  }
}

void Router::on_arrive(Engine& engine, std::uint32_t packet_id, int in_port, int in_vc) {
  Packet& pkt = pool_->get(packet_id);
  assert(routing_ != nullptr && "router has no routing algorithm");
  if (in_port >= topo_->radix() || in_vc >= cfg_->num_vcs) {
    // A VC index beyond the budget means a routing policy produced a path
    // longer than the admissible DFA allows (a potential livelock). Fail
    // loudly rather than corrupt buffer state.
    DFLY_LOG_ERROR("router %d: packet %u arrived on port %d vc %d (radix %d, vcs %d) — "
                   "routing policy violated the hop budget",
                   id_, packet_id, in_port, in_vc, topo_->radix(), cfg_->num_vcs);
    std::abort();
  }
  assert(!buffers_.full(in_port, in_vc) && "arrival into a full buffer: credit protocol violated");

  // on_arrival runs before enter_router_time is refreshed: learning policies
  // read it as "time the packet entered the previous router" to measure the
  // full per-hop delay (queueing + serialisation + wire + pipeline).
  routing_->on_arrival(*this, pkt);
  pkt.enter_router_time = engine.now();
  const RouteDecision decision = routing_->route(*this, pkt);
  assert(decision.out_port >= 0 && decision.out_port < topo_->radix());
  pkt.out_port = decision.out_port;
  pkt.out_vc = decision.out_vc;

  buffers_.push(in_port, in_vc, packet_id);
  pending_[static_cast<std::size_t>(decision.out_port)]++;
  if (buffers_.size(in_port, in_vc) == 1) {
    post_request(engine, in_port, in_vc);
  }
}

void Router::post_request(Engine& engine, int in_port, int in_vc) {
  const Packet& pkt = pool_->get(buffers_.front(in_port, in_vc));
  auto& o = out_[static_cast<std::size_t>(pkt.out_port)];
  const Request request{static_cast<std::int16_t>(in_port), static_cast<std::int16_t>(in_vc)};
  if (cfg_->qos.enabled()) {
    int cls = pkt.traffic_class;
    if (cls >= cfg_->qos.num_classes) cls = cfg_->qos.num_classes - 1;
    o.class_requests[static_cast<std::size_t>(cls)].push_back(request);
  } else {
    o.requests.push_back(request);
  }
  schedule_try(engine, pkt.out_port, engine.now() >= o.busy_until ? engine.now() : o.busy_until);
}

int Router::head_class(const Request& request) const {
  const Packet& pkt = pool_->get(buffers_.front(request.in_port, request.in_vc));
  int cls = pkt.traffic_class;
  if (cls >= cfg_->qos.num_classes) cls = cfg_->qos.num_classes - 1;
  return cls;
}

bool Router::has_requests(const OutPort& o) const {
  if (!cfg_->qos.enabled()) return !o.requests.empty();
  for (const auto& queue : o.class_requests) {
    if (!queue.empty()) return true;
  }
  return false;
}

void Router::schedule_try(Engine& engine, int port, SimTime when) {
  auto& o = out_[static_cast<std::size_t>(port)];
  if (o.try_pending) return;
  o.try_pending = true;
  engine.schedule_at(when, *this, router_ev::kTryPort, static_cast<std::uint64_t>(port));
}

bool Router::transmit(Engine& engine, int port, const Request& request) {
  auto& o = out_[static_cast<std::size_t>(port)];
  const std::uint32_t packet_id = buffers_.pop(request.in_port, request.in_vc);
  Packet& pkt = pool_->get(packet_id);
  assert(pkt.out_port == port);

  pending_[static_cast<std::size_t>(port)]--;
  credits_ref(port, pkt.out_vc)--;
  credits_used_[static_cast<std::size_t>(port)]++;

  if (o.stall_start >= 0) {
    stats_->add_stall(links_->router_out(id_, port), engine.now() - o.stall_start);
    o.stall_start = -1;
  }

  const SimTime ser = cfg_->serialization(pkt.bytes) * o.slowdown;
  o.busy_until = engine.now() + ser;
  stats_->add_traffic(links_->router_out(id_, port), pkt.app_id, pkt.bytes);
  routing_->on_forward(*this, pkt, port);

  // ECN: mark packets leaving through a congested output (occupancy counts
  // packets queued here for `port` plus downstream slots already claimed).
  if (cfg_->cc.enabled && occupancy(port) >= cfg_->cc.ecn_threshold_packets) {
    pkt.ecn = true;
  }

  pkt.prev_router = static_cast<std::int16_t>(id_);
  pkt.prev_port = static_cast<std::int16_t>(port);

  if (o.peer_is_router) {
#ifdef DFLY_HOP_GUARD
    if (pkt.hops >= 7) {
      std::fprintf(stderr,
                   "HOPGUARD pkt id=%u hops=%d router=%d grp=%d port=%d dst_node=%d dst_router=%d "
                   "phase=%d nonmin=%d reached=%d intg=%d intr=%d\n",
                   pkt.id, pkt.hops, id_, group(), port, pkt.dst_node,
                   topo_->router_of_node(pkt.dst_node), static_cast<int>(pkt.phase),
                   pkt.nonminimal, pkt.reached_int, pkt.int_group, pkt.int_router);
    }
#endif
    pkt.hops++;
    engine.schedule_at(o.busy_until + o.latency + o.extra_latency + cfg_->router_latency,
                       *o.peer, router_ev::kArrive, packet_id,
                       static_cast<std::uint64_t>(o.peer_port) |
                           (static_cast<std::uint64_t>(pkt.out_vc) << 8));
  } else {
    engine.schedule_at(o.busy_until + o.latency + o.extra_latency, *o.peer, /*nic kArrive*/ 1,
                       packet_id, 0);
  }

  // Return the freed buffer slot upstream (reverse wire of `in_port`).
  const auto& up = in_[static_cast<std::size_t>(request.in_port)];
  if (up.peer != nullptr) {
    engine.schedule_at(engine.now() + up.latency, *up.peer,
                       up.peer_is_router ? router_ev::kCredit : /*nic kCredit*/ 3u,
                       static_cast<std::uint64_t>(up.peer_port),
                       static_cast<std::uint64_t>(request.in_vc));
  }

  // The vacated queue head exposes the next packet: post its request.
  if (!buffers_.empty(request.in_port, request.in_vc)) {
    post_request(engine, request.in_port, request.in_vc);
  }
  return true;
}

void Router::on_try_port(Engine& engine, int port) {
  auto& o = out_[static_cast<std::size_t>(port)];
  o.try_pending = false;
  if (engine.now() < o.busy_until) {
    schedule_try(engine, port, o.busy_until);
    return;
  }
  if (cfg_->qos.enabled()) {
    try_port_dwrr(engine, port);
  } else {
    try_port_fifo(engine, port);
  }
}

void Router::try_port_fifo(Engine& engine, int port) {
  auto& o = out_[static_cast<std::size_t>(port)];
  // FIFO arbitration with per-VC stall parking.
  while (!o.requests.empty()) {
    const Request request = o.requests.front();
    o.requests.pop_front();
    const Packet& pkt = pool_->get(buffers_.front(request.in_port, request.in_vc));
    if (credits_ref(port, pkt.out_vc) > 0) {
      transmit(engine, port, request);
      if (!o.requests.empty()) schedule_try(engine, port, o.busy_until);
      return;
    }
    o.stalled[static_cast<std::size_t>(pkt.out_vc)].push_back(request);
  }
  // Demand exists but every requester is credit-blocked: the link stalls.
  bool any_stalled = false;
  for (const auto& queue : o.stalled) {
    if (!queue.empty()) {
      any_stalled = true;
      break;
    }
  }
  if (any_stalled && o.stall_start < 0) o.stall_start = engine.now();
}

void Router::try_port_dwrr(Engine& engine, int port) {
  auto& o = out_[static_cast<std::size_t>(port)];
  const int num_classes = cfg_->qos.num_classes;

  // Park credit-blocked heads so only transmittable requests arbitrate;
  // within a class, FIFO order is preserved.
  for (int cls = 0; cls < num_classes; ++cls) {
    auto& queue = o.class_requests[static_cast<std::size_t>(cls)];
    while (!queue.empty()) {
      const Request request = queue.front();
      const Packet& pkt = pool_->get(buffers_.front(request.in_port, request.in_vc));
      if (credits_ref(port, pkt.out_vc) > 0) break;
      queue.pop_front();
      o.stalled[static_cast<std::size_t>(pkt.out_vc)].push_back(request);
    }
    // Standard DWRR: an idle class may not bank deficit.
    if (queue.empty()) o.deficit[static_cast<std::size_t>(cls)] = 0;
  }

  // Serve the eligible class with the largest deficit; replenish every
  // eligible class by weight * quantum until one can afford its head
  // packet. Bandwidth therefore converges to the weight proportions
  // whenever multiple classes have demand.
  for (;;) {
    int chosen = -1;
    std::int32_t chosen_bytes = 0;
    bool any_eligible = false;
    for (int cls = 0; cls < num_classes; ++cls) {
      const auto& queue = o.class_requests[static_cast<std::size_t>(cls)];
      if (queue.empty()) continue;
      any_eligible = true;
      const Packet& pkt = pool_->get(buffers_.front(queue.front().in_port, queue.front().in_vc));
      if (o.deficit[static_cast<std::size_t>(cls)] < pkt.bytes) continue;
      if (chosen < 0 || o.deficit[static_cast<std::size_t>(cls)] >
                            o.deficit[static_cast<std::size_t>(chosen)]) {
        chosen = cls;
        chosen_bytes = pkt.bytes;
      }
    }
    if (chosen >= 0) {
      auto& queue = o.class_requests[static_cast<std::size_t>(chosen)];
      const Request request = queue.front();
      queue.pop_front();
      o.deficit[static_cast<std::size_t>(chosen)] -= chosen_bytes;
      transmit(engine, port, request);
      if (has_requests(o)) schedule_try(engine, port, o.busy_until);
      return;
    }
    if (!any_eligible) break;
    const std::int64_t quantum_bytes =
        static_cast<std::int64_t>(cfg_->qos.quantum_packets) * cfg_->packet_bytes;
    for (int cls = 0; cls < num_classes; ++cls) {
      if (o.class_requests[static_cast<std::size_t>(cls)].empty()) continue;
      o.deficit[static_cast<std::size_t>(cls)] +=
          static_cast<std::int64_t>(cfg_->qos.weight_of(cls)) * quantum_bytes;
    }
  }

  bool any_stalled = false;
  for (const auto& queue : o.stalled) {
    if (!queue.empty()) {
      any_stalled = true;
      break;
    }
  }
  if (any_stalled && o.stall_start < 0) o.stall_start = engine.now();
}

void Router::on_credit(Engine& engine, int port, int vc) {
  credits_ref(port, vc)++;
  credits_used_[static_cast<std::size_t>(port)]--;
  assert(credits_ref(port, vc) <= cfg_->buffer_packets);
  auto& o = out_[static_cast<std::size_t>(port)];
  auto& parked = o.stalled[static_cast<std::size_t>(vc)];
  // Re-activate parked requesters ahead of newer arrivals (FIFO fairness);
  // under QoS each returns to the front of its own class queue.
  while (!parked.empty()) {
    if (cfg_->qos.enabled()) {
      const int cls = head_class(parked.back());
      o.class_requests[static_cast<std::size_t>(cls)].push_front(parked.back());
    } else {
      o.requests.push_front(parked.back());
    }
    parked.pop_back();
  }
  if (has_requests(o)) {
    schedule_try(engine, port, engine.now() >= o.busy_until ? engine.now() : o.busy_until);
  }
}

}  // namespace dfly

#include "workloads/motifs.hpp"

namespace dfly::workloads {

mpi::Task Fft3dMotif::run(mpi::RankCtx& ctx) const {
  // 2D ("pencil") decomposition: ranks form a rows x cols array. Each FFT
  // step transposes data with an Alltoall inside the rank's row, computes,
  // transposes inside its column, computes. The Alltoall is SST's ring
  // exchange, so the per-rank ingress burst is one 51.68KB message.
  const int my_row = ctx.rank() / p_.cols;
  const int my_col = ctx.rank() % p_.cols;

  std::vector<int> row_members;
  row_members.reserve(static_cast<std::size_t>(p_.cols));
  for (int c = 0; c < p_.cols; ++c) row_members.push_back(my_row * p_.cols + c);
  std::vector<int> col_members;
  col_members.reserve(static_cast<std::size_t>(p_.rows));
  for (int r = 0; r < p_.rows; ++r) col_members.push_back(r * p_.cols + my_col);

  for (int iter = 0; iter < p_.iterations; ++iter) {
    co_await ctx.alltoall(p_.msg_bytes, row_members);
    co_await ctx.compute(p_.compute);
    co_await ctx.alltoall(p_.msg_bytes, col_members);
    co_await ctx.compute(p_.compute);
    ctx.mark_iteration();
  }
}

}  // namespace dfly::workloads

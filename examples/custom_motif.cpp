// Custom motif: write your own communication pattern against the public
// MPI-style API and run it through the interference study framework.
//
//   $ ./custom_motif
//
// Demonstrates:
//   - subclassing mpi::Motif with a C++20 coroutine program,
//   - point-to-point (isend/irecv/wait), collectives (mpi/coll.hpp),
//   - compute phases, iteration marks, and co-running with a paper app.

#include <cstdio>
#include <memory>
#include <string>

#include "core/study.hpp"
#include "mpi/coll.hpp"

namespace {

/// A toy "conjugate-gradient" shape: each iteration does a neighbour halo
/// exchange on a 1-D ring, a short compute phase, then a tiny global
/// allreduce for the convergence test — the archetypal sparse-solver loop.
class RingSolverMotif final : public dfly::mpi::Motif {
 public:
  RingSolverMotif(int iterations, std::int64_t halo_bytes)
      : iterations_(iterations), halo_bytes_(halo_bytes) {}

  std::string name() const override { return "RingSolver"; }

  dfly::mpi::Task run(dfly::mpi::RankCtx& ctx) const override {
    const int n = ctx.size();
    const int left = (ctx.rank() - 1 + n) % n;
    const int right = (ctx.rank() + 1) % n;
    for (int iter = 0; iter < iterations_; ++iter) {
      // Post both halo receives, then both sends, then wait: the standard
      // deadlock-free stencil exchange.
      const dfly::mpi::ReqId r1 = ctx.irecv(left, /*tag=*/0);
      const dfly::mpi::ReqId r2 = ctx.irecv(right, 0);
      const dfly::mpi::ReqId s1 = ctx.isend(left, halo_bytes_, 0);
      const dfly::mpi::ReqId s2 = ctx.isend(right, halo_bytes_, 0);
      co_await ctx.wait(r1);
      co_await ctx.wait(r2);
      co_await ctx.wait(s1);
      co_await ctx.wait(s2);

      co_await ctx.compute(20 * dfly::kUs);  // sparse matrix-vector product

      // Convergence check: 8-byte dot-product allreduce, ring algorithm.
      co_await dfly::mpi::coll::allreduce(ctx, 8, dfly::mpi::coll::AllreduceAlg::kRing);
      ctx.mark_iteration();
    }
  }

 private:
  int iterations_;
  std::int64_t halo_bytes_;
};

}  // namespace

int main() {
  dfly::StudyConfig config;
  config.topo = dfly::DragonflyParams{4, 8, 4, 9};
  config.routing = "Q-adp";
  config.seed = 5;
  dfly::Study study(config);

  const int solver =
      study.add_motif(std::make_unique<RingSolverMotif>(/*iterations=*/40,
                                                        /*halo_bytes=*/65536),
                      144, "RingSolver");
  const int background = study.add_app("UR", 144);  // co-running background load

  const dfly::Report report = study.run();
  const dfly::AppReport& app = report.apps[static_cast<std::size_t>(solver)];
  std::printf("RingSolver on %d nodes co-run with UR (%s routing)\n", app.nodes,
              report.routing.c_str());
  std::printf("  comm time  : %.3f ms (sigma %.3f)\n", app.comm_mean_ms, app.comm_std_ms);
  std::printf("  exec time  : %.3f ms\n", app.exec_ms);
  std::printf("  packet lat : p50 %.2f us, p99 %.2f us\n", app.lat_p50_us, app.lat_p99_us);
  std::printf("  background : %s %.3f ms comm\n",
              report.apps[static_cast<std::size_t>(background)].app.c_str(),
              report.apps[static_cast<std::size_t>(background)].comm_mean_ms);
  return report.completed ? 0 : 1;
}

// Figure 4 (a)-(f): pairwise workload interference. For each of the six
// target applications, co-run with each background application under each
// routing and report the target's mean per-rank communication time and the
// standard deviation across ranks (the figure's bars and whiskers).
//
// The (target x background x routing) cells are independent simulations and
// run concurrently across hardware threads.

#include "bench_common.hpp"
#include "core/json_report.hpp"
#include "core/pairwise.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options =
      bench::Options::parse(argc, argv, 96, {.json = true, .smoke = true});
  const auto routings = options.routings();

  // --smoke (CI): one target, standalone + one hot background — enough to
  // exercise the whole pipeline and produce a non-trivial interference delta.
  std::vector<std::string> targets = fig4_targets();
  std::vector<std::string> backgrounds = fig4_backgrounds();
  if (options.smoke) {
    targets = {targets.front()};
    backgrounds = {"None", "UR"};
  }

  struct Cell {
    double mean{0};
    double sigma{0};
    bool ok{false};
  };
  std::vector<PairwiseCell> matrix;
  for (const std::string& target : targets) {
    for (const std::string& routing : routings) {
      for (const std::string& bg : backgrounds) {
        matrix.push_back(PairwiseCell{target, bg, routing});
      }
    }
  }

  // The core driver shards the independent cells across bench::default_jobs()
  // workers (honours --jobs / DFSIM_JOBS) and returns them in matrix order.
  const std::vector<PairwiseResult> results =
      run_pairwise_cells(options.config(routings.front()), matrix, bench::default_jobs());
  std::vector<Cell> cells;
  cells.reserve(results.size());
  for (const PairwiseResult& result : results) {
    cells.push_back(Cell{result.target_report.comm_mean_ms, result.target_report.comm_std_ms,
                         result.full.completed});
  }

  bench::print_header("Figure 4 — pairwise interference: target comm time mean (sigma), ms");
  std::size_t i = 0;
  for (const std::string& target : targets) {
    std::printf("\n--- target: %s ---\n", target.c_str());
    std::printf("%-10s", "routing");
    for (const std::string& bg : backgrounds) std::printf(" %18s", bg.c_str());
    std::printf("\n");
    for (const std::string& routing : routings) {
      std::printf("%-10s", routing.c_str());
      double standalone = 0;
      for (const std::string& bg : backgrounds) {
        const Cell& cell = cells[i++];
        if (bg == "None") standalone = cell.mean;
        char text[64];
        if (bg == "None" || standalone <= 0) {
          std::snprintf(text, sizeof text, "%.2f(%.2f)%s", cell.mean, cell.sigma,
                        cell.ok ? "" : "!");
        } else {
          std::snprintf(text, sizeof text, "%.2f(%.2f)%+.0f%%%s", cell.mean, cell.sigma,
                        (cell.mean / standalone - 1.0) * 100.0, cell.ok ? "" : "!");
        }
        std::printf(" %18s", text);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape (paper): Halo3D and DL (highest injection rates) delay\n"
              "low-rate targets 2-3x under adaptive routing; Q-adp cuts both the delay and\n"
              "the variation sharply; LQCD/Stencil5D (largest peak ingress) barely move.\n");

  if (!options.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("bench").value("fig4_pairwise");
    w.key("scale").value(options.scale);
    w.key("seed").value(options.seed);
    w.key("cells").begin_array();
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      w.begin_object();
      w.key("target").value(matrix[c].target);
      w.key("background").value(matrix[c].background);
      w.key("routing").value(matrix[c].routing);
      w.key("comm_mean_ms").value(cells[c].mean);
      w.key("comm_std_ms").value(cells[c].sigma);
      w.key("completed").value(cells[c].ok);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    try {
      save_json(options.json_path, w.str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", options.json_path.c_str());
  }
  return 0;
}

#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Minimal SVG document builder.
///
/// The paper presents its results as line charts (Figs 5, 9, 13b), bar
/// charts with error bars (Figs 4, 8, 10), box plots (Fig 6), scatter
/// series (Fig 7), a radial stall diagram (Fig 11) and heat maps (Fig 12).
/// This header provides the drawing substrate for viz/charts.hpp so every
/// bench can emit a self-contained .svg next to its textual output — no
/// external plotting dependency.
namespace dfly::viz {

/// RGB color with CSS serialization.
struct Color {
  std::uint8_t r{0}, g{0}, b{0};

  std::string css() const;

  /// Linear interpolation in RGB space.
  static Color lerp(Color a, Color b, double t);
};

/// A qualitative palette (matplotlib "tab10" order: the paper's figures use
/// the same default matplotlib colors).
const std::vector<Color>& palette();
Color palette_color(std::size_t i);

/// Sequential colormap for heat maps: 5-stop approximation of viridis.
Color viridis(double t);

/// Append-only SVG scene graph; emits one standalone <svg> document.
class Svg {
 public:
  Svg(double width, double height);

  void rect(double x, double y, double w, double h, Color fill,
            double opacity = 1.0, Color stroke = {0, 0, 0}, double stroke_width = 0.0);
  void line(double x1, double y1, double x2, double y2, Color stroke,
            double width = 1.0, bool dashed = false);
  void circle(double cx, double cy, double radius, Color fill, double opacity = 1.0);
  void polyline(const std::vector<std::pair<double, double>>& points, Color stroke,
                double width = 1.5);
  /// `anchor` in {"start", "middle", "end"}; `rotate_deg` spins around (x, y).
  void text(double x, double y, const std::string& content, double size = 11.0,
            const std::string& anchor = "start", Color fill = {0, 0, 0},
            double rotate_deg = 0.0);

  double width() const { return width_; }
  double height() const { return height_; }

  /// Serialise the complete document.
  std::string str() const;
  void save(const std::string& path) const;

  /// XML-escape text content.
  static std::string escape(const std::string& raw);

 private:
  double width_, height_;
  std::vector<std::string> body_;
};

}  // namespace dfly::viz

#include <gtest/gtest.h>

#include <memory>

#include "core/study.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing = "UGALg") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = 21;
  return config;
}

TEST(JainFairness, ZeroForSingleApp) {
  Study study(tiny_config());
  workloads::UniformRandomParams params;
  params.iterations = 20;
  params.window = 8;
  study.add_motif(std::make_unique<workloads::UniformRandomMotif>(params), 16, "UR");
  const Report report = study.run();
  EXPECT_EQ(report.jain_fairness, 0.0);
}

TEST(JainFairness, NearOneForIdenticalApps) {
  Study study(tiny_config());
  for (int i = 0; i < 2; ++i) {
    workloads::UniformRandomParams params;
    params.iterations = 40;
    params.window = 8;
    params.interval = 500 * kNs;
    study.add_motif(std::make_unique<workloads::UniformRandomMotif>(params), 24,
                    "UR" + std::to_string(i));
  }
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.jain_fairness, 0.9);
  EXPECT_LE(report.jain_fairness, 1.0 + 1e-12);
}

TEST(JainFairness, LowForSkewedRates) {
  Study study(tiny_config());
  workloads::UniformRandomParams heavy;
  heavy.msg_bytes = 65536;
  heavy.iterations = 60;
  heavy.window = 16;
  heavy.interval = 0;
  study.add_motif(std::make_unique<workloads::UniformRandomMotif>(heavy), 32, "heavy");
  workloads::PingPongParams light;
  light.msg_bytes = 512;
  light.iterations = 50;
  study.add_motif(std::make_unique<workloads::PingPongMotif>(light), 8, "light");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  // Two apps: J in [0.5, 1]; a heavy/light pair sits well below identical.
  EXPECT_GE(report.jain_fairness, 0.5);
  EXPECT_LT(report.jain_fairness, 0.85);
}

}  // namespace
}  // namespace dfly

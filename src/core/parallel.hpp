#pragma once

#include <cstddef>
#include <functional>
#include <vector>

/// Parallel experiment execution.
///
/// Every study in this suite is a sweep of independent (config, seed) cells:
/// each cell builds its own Engine, Network, Rng and stats, runs to
/// completion, and emits a Report. Cells share nothing, so they shard
/// trivially across threads — the only discipline required is that results
/// land in pre-sized slots indexed by cell, which makes the aggregate output
/// bit-identical to a sequential run regardless of worker count or
/// completion order.
namespace dfly {

/// Thread-pool runner for independent simulation cells.
///
/// Worker-count resolution, in priority order: an explicit `jobs` argument
/// (> 0), the DFSIM_JOBS environment variable, then the caller's fallback
/// (sequential by default). The same resolution backs the `--jobs=N` flag on
/// `dflysim` and on every bench binary.
class ParallelRunner {
 public:
  /// `jobs` <= 0 resolves through resolve_jobs(jobs, /*fallback=*/1).
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// `requested` > 0 wins; else DFSIM_JOBS (when set to an integer >= 1);
  /// else `fallback` (clamped to >= 1).
  static int resolve_jobs(int requested, int fallback = 1);

  /// min(hardware_concurrency, 12), at least 1. The cap bounds peak memory:
  /// every in-flight cell holds a full 1,056-node system.
  static int hardware_jobs();

  /// Invoke fn(0) .. fn(n-1), sharded across jobs() worker threads
  /// (sequential when jobs() == 1 or n <= 1). `fn` must only touch state
  /// owned by cell i — see the thread-safety notes on PacketPool, LinkStats
  /// and Rng. The first exception thrown by any cell is rethrown on the
  /// calling thread after all workers drain; cells not yet started are
  /// skipped.
  ///
  /// Each worker carries a persistent SimArena (core/arena.hpp) for the
  /// duration of the call, so Studies built inside `fn` reuse the worker's
  /// grown storage cell after cell. Disabled by --no-arena / DFSIM_NO_ARENA;
  /// output is bit-identical either way.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// Evaluate every task; results are returned in task order, so callers
  /// print deterministic tables no matter how the cells interleave.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>>& tasks) const {
    std::vector<T> results(tasks.size());
    run_indexed(tasks.size(), [&](std::size_t i) { results[i] = tasks[i](); });
    return results;
  }

 private:
  int jobs_;
};

}  // namespace dfly

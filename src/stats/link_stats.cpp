#include "stats/link_stats.hpp"

namespace dfly {

LinkStats::LinkStats(int num_links, int num_apps)
    : num_apps_(static_cast<std::size_t>(num_apps)),
      bytes_(static_cast<std::size_t>(num_links), 0),
      by_app_(static_cast<std::size_t>(num_links) * static_cast<std::size_t>(num_apps), 0),
      packets_(static_cast<std::size_t>(num_links), 0),
      stall_(static_cast<std::size_t>(num_links), 0),
      class_(static_cast<std::size_t>(num_links), LinkClass::kTerminal),
      src_(static_cast<std::size_t>(num_links), -1),
      dst_(static_cast<std::size_t>(num_links), -1) {}

void LinkStats::set_link_info(int link, LinkClass cls, int src_router, int dst_router) {
  class_[static_cast<std::size_t>(link)] = cls;
  src_[static_cast<std::size_t>(link)] = src_router;
  dst_[static_cast<std::size_t>(link)] = dst_router;
}

SimTime LinkStats::total_stall(LinkClass cls) const {
  SimTime acc = 0;
  for (std::size_t i = 0; i < stall_.size(); ++i) {
    if (class_[i] == cls) acc += stall_[i];
  }
  return acc;
}

std::int64_t LinkStats::total_bytes(LinkClass cls) const {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (class_[i] == cls) acc += bytes_[i];
  }
  return acc;
}

}  // namespace dfly

// Adversarial traffic: reproduce the classic Dragonfly worst case (Kim et
// al. ISCA'08) where every group attacks its neighbour group and minimal
// routing funnels all of it through one global link per group pair.
//
//   $ ./adversarial_traffic [stride]      (default: 1, i.e. ADV+1)
//
// Demonstrates:
//   - workloads::GroupAdversarialMotif + linear placement,
//   - comparing routing policies on a single hostile pattern,
//   - reading network-level evidence (non-minimal fraction, throughput).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
  const int stride = argc > 1 ? std::atoi(argv[1]) : 1;
  const dfly::DragonflyParams topo{4, 8, 4, 9};  // 288-node demo system
  std::printf("ADV+%d on %d nodes (%d groups), linear placement\n\n", stride,
              topo.num_nodes(), topo.g);
  std::printf("%-10s %-14s %-12s %-14s\n", "routing", "comm (ms)", "nonmin", "tput (GB/ms)");

  bool all_ok = true;
  for (const std::string routing : {"MIN", "VALn", "UGALn", "PAR", "Q-adp"}) {
    dfly::StudyConfig config;
    config.topo = topo;
    config.routing = routing;
    config.placement = dfly::PlacementPolicy::kLinear;  // rank blocks == groups
    config.seed = 3;
    dfly::Study study(config);

    dfly::workloads::GroupAdversarialParams params;
    params.group_stride = stride;
    params.ranks_per_group = topo.p * topo.a;
    params.iterations = 400;
    params.msg_bytes = 4096;
    params.interval = 0;
    study.add_motif(std::make_unique<dfly::workloads::GroupAdversarialMotif>(params),
                    topo.num_nodes(), "ADV");
    const dfly::Report report = study.run();
    all_ok = all_ok && report.completed;
    std::printf("%-10s %-14.3f %-12.2f %-14.2f\n", routing.c_str(),
                report.apps[0].comm_mean_ms, report.apps[0].nonminimal_fraction,
                report.agg_throughput_gb_per_ms);
  }
  std::printf("\nMinimal routing serialises the whole pattern on one global link per\n"
              "group pair; everything that can spread non-minimally is ~an order of\n"
              "magnitude faster. This is why Dragonfly needs adaptive routing at all.\n");
  return all_ok ? 0 : 1;
}

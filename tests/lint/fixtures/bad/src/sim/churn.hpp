#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

namespace fixture {

// Every member below must trip alloc-churn: hot-directory code may not hold
// allocation-churn std:: types.
struct HotState {
  std::function<void()> callback;                 // alloc-churn
  std::unordered_map<int, int> table;             // alloc-churn
  std::deque<int> queue;                          // alloc-churn
  std::shared_ptr<int> shared;                    // alloc-churn
};

}  // namespace fixture

#include "routing/par.hpp"

#include "routing/common.hpp"

namespace dfly::routing {

namespace {

/// Diversion candidate restricted to this router's own global ports, so a
/// revised packet leaves the source group immediately.
Candidate sample_own_global(Router& router, const Packet& pkt, bool pick_router) {
  const Dragonfly& topo = router.topo();
  const int dst_group = topo.group_of_router(topo.router_of_node(pkt.dst_node));
  const int src_group = router.group();
  Candidate c;
  const int h = topo.params().h;
  const int k = static_cast<int>(router.rng().next_below(static_cast<std::uint64_t>(h)));
  const int target = topo.group_reached_by(router.id(), k);
  if (target == dst_group || target == src_group) return c;  // not a detour
  c.int_group = target;
  c.port = topo.global_port(k);
  c.occupancy = router.occupancy(c.port);
  if (pick_router) {
    c.int_router = topo.router_id(
        target, static_cast<int>(router.rng().next_below(static_cast<std::uint64_t>(topo.params().a))));
  }
  return c;
}

}  // namespace

RouteDecision ParRouting::route(Router& router, Packet& pkt) {
  const Dragonfly& topo = router.topo();
  const int dst_group = topo.group_of_router(dst_router_of(router, pkt));

  if (pkt.hops == 0 && dst_group != router.group()) {
    // Initial UGALn-style comparison; a minimal outcome stays revisable.
    Candidate best_min;
    for (int i = 0; i < params_.min_candidates; ++i) {
      const Candidate c = sample_minimal(router, pkt);
      if (best_min.port < 0 || c.occupancy < best_min.occupancy) best_min = c;
    }
    Candidate best_nonmin;
    for (int i = 0; i < params_.nonmin_candidates; ++i) {
      const Candidate c = sample_nonminimal(router, pkt, /*pick_router=*/true);
      if (c.int_group < 0) continue;
      if (best_nonmin.port < 0 || c.occupancy < best_nonmin.occupancy) best_nonmin = c;
    }
    const bool go_minimal =
        best_nonmin.port < 0 ||
        best_min.occupancy <= params_.nonmin_weight * best_nonmin.occupancy + params_.bias;
    if (!go_minimal) {
      commit_valiant(pkt, best_nonmin.int_group, best_nonmin.int_router);
      return RouteDecision{static_cast<std::int16_t>(best_nonmin.port), vc_for(pkt)};
    }
    pkt.par_revisable = true;
    return RouteDecision{static_cast<std::int16_t>(best_min.port), vc_for(pkt)};
  }

  // Progressive revision: still minimal, still in the source group.
  if (pkt.par_revisable && !pkt.nonminimal && router.group() != dst_group) {
    const Candidate min_cont = sample_minimal(router, pkt);
    Candidate best_nonmin;
    for (int i = 0; i < params_.nonmin_candidates; ++i) {
      const Candidate c = sample_own_global(router, pkt, /*pick_router=*/true);
      if (c.int_group < 0) continue;
      if (best_nonmin.port < 0 || c.occupancy < best_nonmin.occupancy) best_nonmin = c;
    }
    pkt.par_revisable = false;  // one revision opportunity
    if (best_nonmin.port >= 0 &&
        min_cont.occupancy > params_.nonmin_weight * best_nonmin.occupancy + params_.bias) {
      commit_valiant(pkt, best_nonmin.int_group, best_nonmin.int_router);
      return RouteDecision{static_cast<std::int16_t>(best_nonmin.port), vc_for(pkt)};
    }
  }
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

// Tests for the per-worker simulation arena (core/arena.hpp): the
// counting-allocator steady-state regression, bit-identical output with
// reuse on vs off, the dirty-state fuzz (deliberately different cell shapes
// back-to-back through one arena), and the acquire/release lifecycle.

#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/json_report.hpp"
#include "core/study.hpp"
#include "mpi/coll.hpp"
#include "mpi/job.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/rng.hpp"

// --- counting allocator ------------------------------------------------------
//
// Global operator new/delete overrides count every heap allocation made by
// this binary. The tests only ever compare *deltas* around single-threaded
// regions they fully control, so unrelated gtest allocations never leak into
// an assertion.

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace dfly {
namespace {

/// Restores the global arena toggle no matter how a test exits.
class ArenaToggleGuard {
 public:
  ArenaToggleGuard() = default;
  ~ArenaToggleGuard() { set_arena_enabled(true); }
};

// --- the zero-steady-state-allocation regression -----------------------------

/// Synthetic hot-path component: every event allocates a packet, parks it in
/// a fixed ring, releases the oldest once the ring is full, schedules a
/// follow-up event, and periodically arms a pooled closure. All bookkeeping
/// lives on the stack/in the fixture so the only heap traffic is
/// Engine/PacketPool growth.
class Churn final : public Component {
 public:
  PacketPool* pool{nullptr};
  std::array<std::uint32_t, 64> held{};
  std::size_t held_count{0};
  int follow_ups{0};
  int closures_fired{0};

  void handle(Engine& engine, const Event& event) override {
    Packet& packet = pool->alloc();
    packet.bytes = static_cast<std::int32_t>(event.a % 4096);
    if (held_count == held.size()) {
      pool->release(pool->get(held[event.a % held.size()]));
      held[event.a % held.size()] = packet.id;
    } else {
      held[held_count++] = packet.id;
    }
    if (follow_ups > 0) {
      --follow_ups;
      // Two events at the same timestamp exercise the batch scratch path.
      engine.schedule_in(7, *this, 1, event.a + 1);
      engine.schedule_in(7, *this, 1, event.a + 2);
    }
    if (event.a % 50 == 0) {
      engine.call_in(3, [this] { ++closures_fired; });  // 8-byte capture: SBO
    }
  }
};

/// One synthetic cell drawn from the arena: take storage, churn events and
/// packets, hand the storage back. Returns the allocation-count delta of the
/// steady-state region — everything between borrowing the storage and
/// handing it back (scheduling, running, packet churn, drain). The borrow
/// itself costs a few constant container-move re-inits (libstdc++ re-seeds a
/// moved-from deque), which is per-cell setup, not steady state.
std::uint64_t run_synthetic_cell(SimArena& arena) {
  Engine engine = arena.take_engine();
  SimArena::NetStorage net = arena.take_net();
  Churn churn;
  churn.pool = &net.pool;
  churn.follow_ups = 3000;
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1500; ++i) {
    engine.schedule_at(i * 11, churn, 1, static_cast<std::uint64_t>(i) * 3);
  }
  engine.run();
  // Drain the ring so the pool is idle when it goes back.
  for (std::size_t i = 0; i < churn.held_count; ++i) {
    net.pool.release(net.pool.get(churn.held[i]));
  }
  const std::uint64_t steady = allocation_count() - before;
  arena.return_engine(std::move(engine));
  arena.return_net(std::move(net));
  return steady;
}

TEST(ArenaSteadyState, ZeroAllocationsOnSecondSameShapeCell) {
  SimArena arena;
  const std::uint64_t first = run_synthetic_cell(arena);
  EXPECT_GT(first, 0u) << "warm-up cell must grow the arena storage";
  // Second-and-later same-shape cells re-initialise in place: the engine's
  // heap arrays, pooled closure slots and the packet slab all carry their
  // high-water capacity, so the steady state touches the allocator ZERO
  // times. This is the regression the arena exists for — any new per-event
  // or per-packet allocation shows up here as a non-zero delta.
  const std::uint64_t second = run_synthetic_cell(arena);
  EXPECT_EQ(second, 0u);
  const std::uint64_t third = run_synthetic_cell(arena);
  EXPECT_EQ(third, 0u);
  EXPECT_GE(arena.stats().engine_peak_events, 2u);
  EXPECT_GT(arena.stats().pool_peak_packets, 0u);
  EXPECT_GT(arena.stats().pool_capacity, 0u);
}

// --- full-Study reuse --------------------------------------------------------

StudyConfig tiny_config(const std::string& routing, std::uint64_t seed) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = seed;
  config.scale = 64;
  return config;
}

Report run_cell(const StudyConfig& config, const std::string& app, int nodes,
                SimArena* arena) {
  Study study(config, arena);
  study.add_app(app, nodes);
  return study.run();
}

TEST(ArenaReuse, StudyReportsBitIdenticalToFreshRuns) {
  SimArena arena;
  std::vector<std::string> with_arena;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    with_arena.push_back(
        report_to_json(run_cell(tiny_config("UGALg", seed), "UR", 32, &arena)));
  }
  EXPECT_EQ(arena.stats().cells, 3u);
  EXPECT_GT(arena.stats().router_reuses, 0u);
  EXPECT_GT(arena.stats().nic_reuses, 0u);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Report fresh = run_cell(tiny_config("UGALg", seed), "UR", 32, nullptr);
    EXPECT_EQ(with_arena[seed - 1], report_to_json(fresh)) << "seed " << seed;
  }
}

TEST(ArenaReuse, SecondStudyCellAllocatesLess) {
  SimArena arena;
  auto measure = [&arena] {
    const std::uint64_t before = allocation_count();
    (void)run_cell(tiny_config("PAR", 7), "FFT3D", 32, &arena);
    return allocation_count() - before;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
  // A full Study still allocates in steady state (coroutine frames, report
  // strings), but the arena removes the engine/pool/router/NIC/stats
  // re-growth — the second cell must be strictly cheaper.
  EXPECT_LT(second, first);
}

// --- MPI-layer steady state --------------------------------------------------

/// Exercises every steady-state MPI allocation source in one motif: the
/// point-to-point window (request slots, match lists, eager + rendezvous
/// protocol maps), the built-in tree/ring collectives, and the extended
/// algorithm families (coroutine frames of nested collective Tasks).
class MpiChurnMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "MpiChurn"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    const int n = ctx.size();
    std::vector<int> members(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = i;
    std::vector<mpi::ReqId> window;
    window.reserve(2 * static_cast<std::size_t>(n));
    for (int iter = 0; iter < 4; ++iter) {
      window.clear();
      for (int peer = 0; peer < n; ++peer) {
        if (peer == ctx.rank()) continue;
        window.push_back(ctx.irecv(peer, iter));
        // > eager_threshold every other iteration: both protocol paths churn.
        window.push_back(ctx.isend(peer, iter % 2 == 0 ? 1024 : 64 * 1024, iter));
      }
      co_await ctx.wait_all(window);
      co_await ctx.allreduce(512);
      co_await ctx.alltoall(256, members);
      co_await mpi::coll::allreduce(ctx, 2048, mpi::coll::AllreduceAlg::kRing);
      co_await ctx.barrier();
    }
  }
};

/// One MPI cell over recycled arena storage. Returns the allocation delta of
/// the region the tentpole pins to zero: MpiSystem + Job construction from
/// parked storage, the whole simulation run, and the teardown that parks the
/// storage again. The network/routing scaffolding is built outside the
/// measured window (its reuse is covered by the Study-level tests).
std::uint64_t run_mpi_cell(SimArena& arena, const SystemBlueprint& bp) {
  Engine engine = arena.take_engine();
  routing::RoutingContext context{&engine, &bp.topo(), &bp.net(), 21};
  std::unique_ptr<RoutingAlgorithm> routing = routing::make_routing("MIN", context);
  Network net(engine, bp, *routing, 1, 21, {}, &arena);
  MpiChurnMotif motif;
  std::vector<int> nodes;
  for (int r = 0; r < 8; ++r) nodes.push_back(r);
  std::uint64_t delta;
  {
    mpi::ScopedFramePoolBinding frames(&arena.frame_pool());
    const std::uint64_t before = allocation_count();
    auto system = std::make_unique<mpi::MpiSystem>(net, &arena);
    auto job = std::make_unique<mpi::Job>(engine, net, *system, 0, "churn", motif,
                                          std::move(nodes), 21, mpi::ProtocolConfig{}, &arena);
    job->start();
    engine.run();
    job.reset();
    system.reset();
    delta = allocation_count() - before;
  }
  arena.return_engine(std::move(engine));
  return delta;
}

TEST(ArenaSteadyState, MpiLayerNearZeroAllocationsOnSecondSameShapeCell) {
  SimArena arena;
  const std::shared_ptr<const SystemBlueprint> bp =
      SystemBlueprint::build(tiny_config("MIN", 21));
  const std::uint64_t first = run_mpi_cell(arena, *bp);
  EXPECT_GT(first, 100u) << "warm-up cell must grow the MPI storage";
  // Second same-shape cell: RankCtx objects, request slots, match-list
  // pools, protocol maps, coroutine frames and the Task vector all come back
  // out of the parked JobStorage/frame pool, and the simulation itself (the
  // engine.run() region) allocates ZERO times. The only heap traffic left is
  // per-cell setup the harness and motif own: two unique_ptr nodes plus the
  // member/window vectors in each rank's coroutine frame (2 x 8 ranks).
  // Any regrowth in src/mpi shows up as a delta above this bound.
  const std::uint64_t second = run_mpi_cell(arena, *bp);
  EXPECT_LE(second, 24u);
  const std::uint64_t third = run_mpi_cell(arena, *bp);
  EXPECT_LE(third, 24u);
  EXPECT_GT(arena.stats().rank_reuses, 0u);
  EXPECT_GT(arena.stats().inflight_capacity, 0u);
  EXPECT_GT(arena.stats().owners_capacity, 0u);
  EXPECT_GT(arena.stats().match_capacity, 0u);
}

// --- dirty-state fuzz --------------------------------------------------------

// Cells of deliberately different sizes, workloads, routings and QoS shapes
// run back-to-back through ONE arena; every report must match a fresh
// no-arena run of the same cell. This is the test that catches a missed
// field in any reinit()/reset() path: state leaking from cell i shows up as
// a report mismatch in cell i+1.
TEST(ArenaReuse, DirtyStateFuzzAcrossDifferentCellShapes) {
  const std::vector<std::string> apps{"UR", "FFT3D", "Halo3D", "CosmoFlow", "LU"};
  const std::vector<std::string> routings{"MIN", "UGALg", "PAR", "Q-adp"};
  const std::vector<int> node_counts{16, 24, 32, 48};

  SimArena arena;
  Rng rng(20260729);  // seeded: the "random" schedule is reproducible
  struct Cell {
    StudyConfig config;
    std::string app;
    int nodes;
  };
  std::vector<Cell> cells;
  for (int i = 0; i < 8; ++i) {
    Cell cell;
    cell.config = tiny_config(routings[rng.next_below(routings.size())],
                              /*seed=*/100 + rng.next_below(1000));
    cell.app = apps[rng.next_below(apps.size())];
    cell.nodes = node_counts[rng.next_below(node_counts.size())];
    if (rng.next_bernoulli(0.25)) {
      cell.config.net.qos.num_classes = 2;  // flip the DWRR arbitration shape
    }
    if (rng.next_bernoulli(0.5)) {
      cell.config.observability.keep_packet_records = true;
    }
    cells.push_back(std::move(cell));
  }

  std::vector<std::string> dirty;
  for (const Cell& cell : cells) {
    dirty.push_back(report_to_json(run_cell(cell.config, cell.app, cell.nodes, &arena)));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Report fresh = run_cell(cells[i].config, cells[i].app, cells[i].nodes, nullptr);
    EXPECT_EQ(dirty[i], report_to_json(fresh))
        << "cell " << i << " (" << cells[i].app << " on " << cells[i].config.routing
        << ", seed " << cells[i].config.seed << ") diverged after arena reuse";
  }
}

/// One job running a specific (allreduce, alltoall, reduce-scatter)
/// algorithm triple — the dirty-state fuzz below drives every family through
/// one arena back-to-back so a pooled structure that one algorithm shapes
/// differently (match-list slots, frame sizes, protocol-map load) is handed
/// dirty to the next.
class AlgMixMotif final : public mpi::Motif {
 public:
  AlgMixMotif(mpi::coll::AllreduceAlg ar, mpi::coll::AlltoallAlg a2a,
              mpi::coll::ReduceScatterAlg rs)
      : ar_(ar), a2a_(a2a), rs_(rs) {}
  std::string name() const override { return "AlgMix"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    const int n = ctx.size();
    std::vector<int> members(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = i;
    for (int iter = 0; iter < 3; ++iter) {
      co_await mpi::coll::allreduce(ctx, 8192, ar_);
      co_await mpi::coll::alltoall(ctx, 1024, members, a2a_);
      co_await mpi::coll::reduce_scatter(ctx, 4096, rs_);
      ctx.mark_iteration();
    }
  }

 private:
  mpi::coll::AllreduceAlg ar_;
  mpi::coll::AlltoallAlg a2a_;
  mpi::coll::ReduceScatterAlg rs_;
};

Report run_alg_cell(const StudyConfig& config, mpi::coll::AllreduceAlg ar,
                    mpi::coll::AlltoallAlg a2a, mpi::coll::ReduceScatterAlg rs, int nodes,
                    SimArena* arena) {
  Study study(config, arena);
  study.add_motif(std::make_unique<AlgMixMotif>(ar, a2a, rs), nodes, "AlgMix");
  return study.run();
}

// Every collective-algorithm family cycles through ONE arena (varying rank
// counts, including non-power-of-two fallback paths); each report must match
// a fresh no-arena run bit-for-bit.
TEST(ArenaReuse, DirtyStateCollectivesFuzzMatchesFreshRuns) {
  using mpi::coll::AllreduceAlg;
  using mpi::coll::AlltoallAlg;
  using mpi::coll::ReduceScatterAlg;
  struct AlgCell {
    AllreduceAlg ar;
    AlltoallAlg a2a;
    ReduceScatterAlg rs;
    int nodes;
  };
  const std::vector<AlgCell> cells{
      {AllreduceAlg::kBinaryTree, AlltoallAlg::kRing, ReduceScatterAlg::kRing, 16},
      {AllreduceAlg::kRing, AlltoallAlg::kPairwise, ReduceScatterAlg::kHalving, 16},
      {AllreduceAlg::kRecursiveDoubling, AlltoallAlg::kBruck, ReduceScatterAlg::kRing, 12},
      {AllreduceAlg::kHalvingDoubling, AlltoallAlg::kBruck, ReduceScatterAlg::kHalving, 32},
      {AllreduceAlg::kRing, AlltoallAlg::kRing, ReduceScatterAlg::kHalving, 24},
      {AllreduceAlg::kBinaryTree, AlltoallAlg::kPairwise, ReduceScatterAlg::kRing, 32},
  };

  SimArena arena;
  std::vector<std::string> dirty;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const AlgCell& c = cells[i];
    dirty.push_back(report_to_json(
        run_alg_cell(tiny_config("UGALg", 40 + i), c.ar, c.a2a, c.rs, c.nodes, &arena)));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const AlgCell& c = cells[i];
    const Report fresh =
        run_alg_cell(tiny_config("UGALg", 40 + i), c.ar, c.a2a, c.rs, c.nodes, nullptr);
    EXPECT_EQ(dirty[i], report_to_json(fresh))
        << "algorithm cell " << i << " diverged after arena reuse";
  }
}

// --- lifecycle ---------------------------------------------------------------

TEST(SimArena, SecondConcurrentStudyRunsWithoutArena) {
  SimArena arena;
  StudyConfig config = tiny_config("MIN", 5);
  Study holder(config, &arena);
  EXPECT_EQ(holder.arena(), &arena);
  EXPECT_TRUE(arena.in_use());
  Study bystander(config, &arena);  // arena busy: silently builds fresh
  EXPECT_EQ(bystander.arena(), nullptr);
  {
    Study nested(config, &arena);
    EXPECT_EQ(nested.arena(), nullptr);
  }
  EXPECT_TRUE(arena.in_use());  // nested teardown must not steal the claim
}

TEST(SimArena, ThreadBindingIsPickedUpAndRestored) {
  EXPECT_EQ(SimArena::current(), nullptr);
  SimArena outer, inner;
  {
    ScopedArenaBinding bind_outer(&outer);
    EXPECT_EQ(SimArena::current(), &outer);
    {
      ScopedArenaBinding bind_inner(&inner);
      EXPECT_EQ(SimArena::current(), &inner);
      StudyConfig config = tiny_config("MIN", 9);
      Study study(config);
      EXPECT_EQ(study.arena(), &inner);
    }
    EXPECT_EQ(SimArena::current(), &outer);
  }
  EXPECT_EQ(SimArena::current(), nullptr);
}

TEST(SimArena, DisabledToggleSkipsReuse) {
  ArenaToggleGuard guard;
  SimArena arena;
  ScopedArenaBinding binding(&arena);
  set_arena_enabled(false);
  StudyConfig config = tiny_config("MIN", 11);
  Study study(config);
  EXPECT_EQ(study.arena(), nullptr);
  set_arena_enabled(true);
  Study reusing(config);
  EXPECT_EQ(reusing.arena(), &arena);
}

// --- storage-primitive reuse invariants --------------------------------------

TEST(PacketPoolReset, HandsOutFreshIdSequence) {
  PacketPool pool;
  std::vector<std::uint32_t> first_ids;
  for (int i = 0; i < 5; ++i) first_ids.push_back(pool.alloc().id);
  for (const std::uint32_t id : first_ids) pool.release(pool.get(id));
  EXPECT_EQ(pool.peak_in_use(), 5u);
  pool.reset();
  EXPECT_EQ(pool.capacity(), 5u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.peak_in_use(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pool.alloc().id, static_cast<std::uint32_t>(i)) << "reset pool must allocate "
                                                                 "ids like a fresh pool";
  }
}

TEST(PacketPoolReserve, PreGrowsSlabWithoutChangingIdOrder) {
  PacketPool pool;
  pool.reserve(8);
  EXPECT_EQ(pool.capacity(), 8u);
  EXPECT_EQ(pool.in_use(), 0u);
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pool.alloc().id, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "a reserved pool must serve its reservation without allocating";
  for (std::uint32_t id = 0; id < 8; ++id) pool.release(pool.get(id));
  pool.reserve(4);  // never shrinks (idle-pool precondition holds: all free)
  EXPECT_EQ(pool.capacity(), 8u);
  EXPECT_EQ(pool.alloc().id, 0u);  // fresh hand-out order after re-reserve
}

TEST(EngineReset, KeepsCapacityAndZeroesObservableState) {
  Engine engine;
  class Sink final : public Component {
   public:
    void handle(Engine&, const Event&) override {}
  };
  Sink sink;
  for (int i = 0; i < 1000; ++i) engine.schedule_at(i, sink, 1);
  int fired = 0;
  engine.call_at(500, [&fired] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.peak_queued(), 1001u);
  const std::size_t capacity = engine.event_capacity();
  EXPECT_GE(capacity, 1001u);

  engine.reset();
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.executed(), 0u);
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(engine.peak_queued(), 0u);
  EXPECT_EQ(engine.live_closures(), 0u);
  EXPECT_EQ(engine.event_capacity(), capacity);  // storage carried
  EXPECT_GE(engine.closure_capacity(), 1u);      // pooled adapter carried

  // The reset engine behaves exactly like a fresh one.
  engine.schedule_at(10, sink, 1);
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(engine.now(), 10);
}

TEST(EngineReserve, PreSizesEventAndClosureStorage) {
  Engine engine;
  engine.reserve(4096, 32);
  EXPECT_GE(engine.event_capacity(), 4096u);
  EXPECT_EQ(engine.closure_capacity(), 32u);
  EXPECT_EQ(engine.live_closures(), 0u);
  int fired = 0;
  const std::uint64_t before = allocation_count();
  class Sink final : public Component {
   public:
    void handle(Engine&, const Event&) override {}
  };
  Sink sink;
  for (int i = 0; i < 4000; ++i) engine.schedule_at(i, sink, 1);
  engine.call_at(4500, [&fired] { ++fired; });  // unique timestamp: no batch growth
  engine.run();
  EXPECT_EQ(allocation_count() - before, 0u)
      << "a reserved engine must not allocate within its reservation";
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace dfly

// Table I: the nine applications and their communication-intensity metrics
// (total message volume, execution time, injection rate, peak ingress
// volume), each measured standalone on half of the 1,056-node system.
// The nine standalone runs execute concurrently.
//
// Paper reference values are printed alongside. Note that --scale=N shrinks
// iteration counts, so total volume and execution time shrink by ~N while
// injection rate (GB/s) and peak ingress volume are scale-invariant.

#include "bench_common.hpp"
#include "core/study.hpp"
#include "workloads/intensity.hpp"

namespace {

struct PaperRow {
  const char* app;
  double total_mb;
  double exec_ms;
  double rate_gbs;
  const char* peak;
};

// Table I of the paper.
constexpr PaperRow kPaper[] = {
    {"UR", 11829.48, 13.31, 888.48, "3.07KB"},
    {"LU", 13713.22, 13.71, 999.88, "30.0KB"},
    {"FFT3D", 15781.09, 12.53, 1259.35, "51.68KB"},
    {"Halo3D", 47769.10, 10.85, 4403.81, "1.15MB"},
    {"LQCD", 11924.31, 13.79, 864.70, "4.60MB"},
    {"Stencil5D", 9833.95, 13.70, 717.87, "14.0MB"},
    {"CosmoFlow", 2373.84, 13.65, 173.86, "2.25MB"},
    {"DL", 9714.44, 11.86, 819.12, "2.30MB"},
    {"LULESH", 17900.12, 12.34, 1450.78, "1.95MB"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 16);
  const std::string routing = options.routing.empty() ? "UGALg" : options.routing;

  struct Row {
    workloads::IntensityMetrics metrics;
    bool completed{false};
  };
  std::vector<std::function<Row()>> tasks;
  for (const PaperRow& ref : kPaper) {
    const StudyConfig config = options.config(routing);
    const std::string app = ref.app;
    tasks.push_back([config, app] {
      Study study(config);
      study.add_app(app, config.topo.num_nodes() / 2);
      const Report report = study.run();
      return Row{workloads::measure_intensity(study.job(0)), report.completed};
    });
  }
  const auto rows = bench::parallel_map(tasks);

  bench::print_header("Table I — application communication patterns (standalone, " + routing +
                      ", scale 1/" + std::to_string(options.scale) + ")");
  std::printf("%-10s | %12s %10s %10s %10s | %10s %8s %8s %8s\n", "app", "meas MB",
              "exec ms", "GB/s", "peak", "paper MB", "ms", "GB/s", "peak");
  bench::print_rule();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PaperRow& ref = kPaper[i];
    const workloads::IntensityMetrics& m = rows[i].metrics;
    std::printf("%-10s | %12.2f %10.3f %10.1f %10s | %10.2f %8.2f %8.1f %8s %s\n", ref.app,
                m.total_msg_mb, m.execution_ms, m.injection_rate_gbs,
                workloads::format_volume(m.peak_ingress_bytes).c_str(), ref.total_mb,
                ref.exec_ms, ref.rate_gbs, ref.peak, rows[i].completed ? "" : "[INCOMPLETE]");
  }
  std::printf("\n(measured MB and exec ms are ~1/%d of paper values by design; GB/s and\n"
              " peak ingress are scale-invariant and comparable directly)\n",
              options.scale);
  return 0;
}

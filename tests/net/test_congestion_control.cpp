// Tests for ECN + AIMD congestion control (net/congestion_control.hpp).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/study.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

StudyConfig cc_config(bool enabled, const std::string& routing = "MIN") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = 17;
  config.net.cc.enabled = enabled;
  return config;
}

/// A heavy incast: 23 senders flooding one receiver guarantees deep queues
/// at the receiver's terminal port, which is exactly what ECN watches.
workloads::IncastParams heavy_incast() {
  workloads::IncastParams p;
  p.fanin_targets = 1;
  p.iterations = 120;
  p.msg_bytes = 4096;
  p.interval = 0;
  p.window = 16;
  return p;
}

TEST(CongestionControl, DisabledMatchesBaselineExactly) {
  // cc.enabled = false must leave the event stream untouched.
  Study a(cc_config(false));
  a.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 24, "I");
  const Report ra = a.run();

  StudyConfig base;
  base.topo = DragonflyParams::tiny();
  base.routing = "MIN";
  base.seed = 17;
  Study b(std::move(base));
  b.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 24, "I");
  const Report rb = b.run();

  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.events_executed, rb.events_executed);
}

TEST(CongestionControl, IncastTriggersMarksAndThrottling) {
  Study study(cc_config(true));
  study.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 24, "I");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);

  std::uint64_t notices = 0;
  double min_rate_seen = 1.0;
  for (int n = 0; n < study.topo().num_nodes(); ++n) {
    notices += study.network().nic(n).ecn_notices();
    min_rate_seen = std::min(min_rate_seen, study.network().nic(n).injection_rate());
  }
  EXPECT_GT(notices, 0u) << "deep incast queues must generate ECN marks";
  // By the end of the run most sources have recovered; the floor invariant
  // must hold regardless.
  EXPECT_GE(min_rate_seen, study.config().net.cc.min_rate);
}

TEST(CongestionControl, RateNeverBelowFloor) {
  StudyConfig config = cc_config(true);
  config.net.cc.min_rate = 0.25;
  config.net.cc.md_factor = 0.1;  // aggressive cuts to push toward the floor
  config.net.cc.decrease_guard = 0;
  Study study(std::move(config));
  study.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 24, "I");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  for (int n = 0; n < study.topo().num_nodes(); ++n) {
    EXPECT_GE(study.network().nic(n).injection_rate(), 0.25) << "node " << n;
  }
}

TEST(CongestionControl, ThrottlingReducesNetworkStall) {
  // The mechanism's whole point (SC'20 / PMBS'21): draining the fabric
  // trades injection rate for less in-network blocking.
  auto total_stall = [](bool enabled) {
    Study study(cc_config(enabled));
    study.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 24, "I");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    const auto& stats = study.network().link_stats();
    SimTime stall = 0;
    for (int link = 0; link < stats.num_links(); ++link) stall += stats.stall(link);
    return stall;
  };
  const SimTime stall_off = total_stall(false);
  const SimTime stall_on = total_stall(true);
  EXPECT_LT(stall_on, stall_off);
}

TEST(CongestionControl, LightTrafficUnaffected) {
  // A paced shift pattern never fills queues: no marks, no throttling, and
  // the makespan equals the uncontrolled run's.
  auto run_shift = [](bool enabled) {
    Study study(cc_config(enabled, "PAR"));
    workloads::ShiftParams p;
    p.iterations = 60;
    p.interval = 2 * kUs;
    study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "S");
    return study.run().makespan;
  };
  EXPECT_EQ(run_shift(false), run_shift(true));
}

TEST(CongestionControl, VictimJobBenefitsFromThrottledAggressor) {
  // Pairwise interference through the CC lens: a paced ping-pong (latency
  // sensitive victim) co-runs with a flooding incast. With CC on, the
  // aggressor is throttled and the victim's communication time drops.
  auto victim_comm = [](bool enabled) {
    StudyConfig config = cc_config(enabled);
    config.net.cc.ai_period = 50 * kUs;  // slow recovery keeps pressure off
    Study study(std::move(config));
    study.add_motif(std::make_unique<workloads::IncastMotif>(heavy_incast()), 32, "Aggressor");
    workloads::PingPongParams v;
    v.iterations = 50;
    v.msg_bytes = 1024;
    study.add_motif(std::make_unique<workloads::PingPongMotif>(v), 16, "Victim");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    return report.apps[1].comm_mean_ms;
  };
  const double comm_off = victim_comm(false);
  const double comm_on = victim_comm(true);
  EXPECT_LT(comm_on, comm_off * 1.02)
      << "victim should not get worse when the aggressor is throttled";
}

}  // namespace
}  // namespace dfly

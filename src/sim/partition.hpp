#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dfly {

class SystemBlueprint;

/// Static domain map for an intra-cell parallel run (src/sim/pdes.hpp).
///
/// Routers and NICs are partitioned by Dragonfly group into `num_domains`
/// contiguous blocks — every router of a group, and every NIC attached to it,
/// lands in the same domain, so local and terminal wires never cross a domain
/// boundary. The only cross-domain edges are global links, whose plan latency
/// bounds how far one domain can run ahead of another: `lookahead` is the
/// minimum plan latency over all cross-domain wires (fault degradation only
/// ADDS latency on top of the plan, so the plan value is a safe lower bound).
///
/// A partition with fewer than two domains, or zero lookahead, means the cell
/// cannot be parallelised and the caller falls back to the sequential engine.
struct CellPartition {
  std::int32_t num_domains{1};
  SimTime lookahead{0};                    ///< min cross-domain wire latency
  std::vector<std::int32_t> router_domain; ///< router id -> domain
  std::vector<std::int32_t> node_domain;   ///< node id -> domain

  std::int32_t domain_of_router(int router) const { return router_domain[router]; }
  std::int32_t domain_of_node(int node) const { return node_domain[node]; }

  /// Partition the blueprint's topology into min(threads, num_groups)
  /// domains of contiguous groups (domain(g) = g * D / G, so block sizes
  /// differ by at most one group) and compute the cross-domain lookahead
  /// from the blueprint's port plan.
  static CellPartition build(const SystemBlueprint& blueprint, int threads);
};

}  // namespace dfly

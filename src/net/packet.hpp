#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hpp"

namespace dfly {

/// Route phases of the constrained Dragonfly path DFA. Every admissible path
/// is a prefix-respecting walk of (local?, global, local?, global, local?),
/// which all routing algorithms in this suite obey; the phase plus hop count
/// determines the legal candidate ports at each router.
enum class RoutePhase : std::uint8_t {
  kAtSource = 0,      ///< at the injection router, no hops taken
  kSrcLocalDone = 1,  ///< took a local hop in the source group; must go global
  kMidGroup = 2,      ///< landed in a non-destination group after a global hop
  kMidLocalDone = 3,  ///< took the intermediate group's local hop; must go global
  kDstGroup = 4,      ///< inside the destination group
};

/// In-flight packet. Kept POD-small; packets are pool-allocated and recycled
/// so the hot path never touches the general-purpose allocator.
struct Packet {
  SimTime enter_router_time{0};  ///< arrival time at the current router (Q feedback)
  SimTime wire_time{0};          ///< when the first flit left the source NIC
  std::uint64_t msg_id{0};
  std::uint32_t id{0};  ///< pool slot
  std::int32_t src_node{0};
  std::int32_t dst_node{0};
  std::int32_t bytes{0};  ///< payload carried by this packet
  std::int16_t app_id{0};
  std::int16_t int_group{-1};   ///< Valiant intermediate group, -1 = none
  std::int16_t int_router{-1};  ///< Valiant intermediate router, -1 = none
  std::int16_t prev_router{-1};
  std::int16_t prev_port{-1};
  std::int16_t out_port{-1};
  std::int16_t out_vc{0};
  std::uint8_t hops{0};
  std::uint8_t traffic_class{0};  ///< QoS class (net/qos.hpp), set at injection
  RoutePhase phase{RoutePhase::kAtSource};
  bool nonminimal{false};
  bool reached_int{false};   ///< passed the Valiant midpoint
  bool par_revisable{false}; ///< PAR may still divert this packet
  bool ecn{false};           ///< congestion-experienced mark (net/congestion_control.hpp)
};

/// Free-list pool with stable addresses (deque-backed slabs).
///
/// Reuse: reset() returns every slot to the free list while keeping the slab,
/// so a pool that has grown to one cell's peak in-flight depth serves the
/// next same-shape cell without touching the allocator (the arena reuse path,
/// core/arena.hpp). A reset pool hands out slot ids 0, 1, 2, ... exactly like
/// a fresh one, so reuse is invisible to the simulation.
///
/// Thread-safety: none, by design. A PacketPool belongs to one Network and
/// therefore to one simulation cell; parallel sweeps (core/parallel.hpp)
/// give every worker its own cell and never share a pool across threads.
class PacketPool {
 public:
  Packet& alloc() {
    if (free_.empty()) {
      slab_.emplace_back();
      slab_.back().id = static_cast<std::uint32_t>(slab_.size() - 1);
      if (slab_.size() > peak_in_use_) peak_in_use_ = slab_.size();
      return slab_.back();
    }
    const std::uint32_t id = free_.back();
    free_.pop_back();
    Packet& p = slab_[id];
    const std::uint32_t keep = p.id;
    p = Packet{};
    p.id = keep;
    const std::size_t used = slab_.size() - free_.size();
    if (used > peak_in_use_) peak_in_use_ = used;
    return p;
  }

  void release(const Packet& p) { free_.push_back(p.id); }

  /// Return every slot to the free list, keeping the slab storage. The free
  /// list is rebuilt descending so the next allocations draw ids 0, 1, 2, ...
  /// — byte-identical behaviour to a freshly-constructed pool. Zeroes the
  /// per-cell peak counter.
  void reset() {
    free_.clear();
    free_.reserve(slab_.size());
    for (std::size_t id = slab_.size(); id-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(id));
    }
    peak_in_use_ = 0;
  }

  /// Grow the slab to at least `slots` packets. Only meaningful on an idle
  /// pool (nothing in flight); call right after reset().
  void reserve(std::size_t slots) {
    while (slab_.size() < slots) {
      slab_.emplace_back();
      slab_.back().id = static_cast<std::uint32_t>(slab_.size() - 1);
    }
    reset();
  }

  Packet& get(std::uint32_t id) { return slab_[id]; }
  const Packet& get(std::uint32_t id) const { return slab_[id]; }

  std::size_t capacity() const { return slab_.size(); }
  std::size_t in_use() const { return slab_.size() - free_.size(); }
  /// High-water mark of simultaneously-allocated packets since construction
  /// or the last reset().
  std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  std::deque<Packet> slab_;
  std::vector<std::uint32_t> free_;
  std::size_t peak_in_use_{0};
};

}  // namespace dfly

#include "workloads/extended.hpp"

namespace dfly::workloads {

mpi::Task MilcMotif::run(mpi::RankCtx& ctx) const {
  // 4D torus halo exchange (the LQCD pattern at smaller message size),
  // followed by the conjugate-gradient chain: `cg_per_iteration` tiny
  // allreduces, each separated by a slice of solver compute. The allreduce
  // chain serialises on global tail latency, which is what production MILC
  // runs are sensitive to.
  const std::vector<int> neighbors = grid_.face_neighbors(ctx.rank(), /*periodic=*/true);
  std::vector<mpi::ReqId> reqs;
  reqs.reserve(neighbors.size() * 2);
  for (int iter = 0; iter < p_.iterations; ++iter) {
    reqs.clear();
    for (const int nb : neighbors) reqs.push_back(ctx.irecv(nb, iter));
    for (const int nb : neighbors) reqs.push_back(ctx.isend(nb, p_.msg_bytes, iter));
    co_await ctx.wait_all(reqs);
    co_await ctx.compute(p_.compute);
    for (int cg = 0; cg < p_.cg_per_iteration; ++cg) {
      co_await ctx.allreduce(p_.cg_bytes);
      co_await ctx.compute(p_.cg_compute);
    }
    ctx.mark_iteration();
  }
}

const std::vector<std::string>& extended_app_names() {
  static const std::vector<std::string> names{"MILC", "IOBurst"};
  return names;
}

}  // namespace dfly::workloads

// Ablation: QoS traffic classes vs. routing for interference mitigation.
//
// §II-C positions QoS ("separating traffic flows of different applications
// into isolated channels", Brown ISC'21 / Mubarak ISC'19 / Wilke CLUSTER'20)
// as the main alternative to intelligent routing. This bench runs the
// paper's worst pairwise case — FFT3D as victim, Halo3D as aggressor — and
// compares four mitigation strategies on identical placements:
//
//   none        adaptive routing (PAR), no QoS
//   qos         PAR + 2 traffic classes, victim weighted 4:1
//   qadp        Q-adaptive routing, no QoS (the paper's answer)
//   qos+qadp    both mechanisms combined

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double victim_ms{0};
  double aggressor_ms{0};
  double victim_p99_us{0};
};

Outcome run_case(const StudyConfig& config, bool privilege_victim) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  const int victim = study.add_app("FFT3D", half);
  const int aggressor = study.add_app("Halo3D", half);
  if (privilege_victim) {
    study.set_traffic_class(victim, 0);
    study.set_traffic_class(aggressor, 1);
  }
  const Report report = study.run();
  Outcome outcome;
  outcome.victim_ms = report.apps[static_cast<std::size_t>(victim)].comm_mean_ms;
  outcome.aggressor_ms = report.apps[static_cast<std::size_t>(aggressor)].comm_mean_ms;
  outcome.victim_p99_us = report.apps[static_cast<std::size_t>(victim)].lat_p99_us;
  return outcome;
}

StudyConfig with_qos(StudyConfig config) {
  config.net.qos.num_classes = 2;
  config.net.qos.weights = {4, 1};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  bench::print_header("ABLATION: QoS classes vs intelligent routing (FFT3D vs Halo3D)");

  struct Case {
    std::string label;
    StudyConfig config;
    bool privileged;
  };
  const std::vector<Case> cases{
      {"PAR (baseline)", options.config("PAR"), false},
      {"PAR + QoS 4:1", with_qos(options.config("PAR")), true},
      {"Q-adp (paper)", options.config("Q-adp"), false},
      {"Q-adp + QoS 4:1", with_qos(options.config("Q-adp")), true},
  };

  std::vector<std::function<Outcome()>> tasks;
  for (const Case& c : cases) {
    tasks.push_back([config = c.config, privileged = c.privileged] {
      return run_case(config, privileged);
    });
  }
  const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

  viz::AsciiTable table(
      {"mitigation", "FFT3D comm (ms)", "FFT3D p99 (us)", "Halo3D comm (ms)"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.row({cases[i].label, bench::fmt(outcomes[i].victim_ms),
               bench::fmt(outcomes[i].victim_p99_us), bench::fmt(outcomes[i].aggressor_ms)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Victim comm time by mitigation:\n%s\n",
              viz::ascii_bars({{cases[0].label, outcomes[0].victim_ms},
                               {cases[1].label, outcomes[1].victim_ms},
                               {cases[2].label, outcomes[2].victim_ms},
                               {cases[3].label, outcomes[3].victim_ms}})
                  .c_str());
  std::printf("Expected: QoS shields the victim at the aggressor's cost (weighted\n"
              "sharing); Q-adaptive helps both by removing congestion instead of\n"
              "re-dividing it; combining them stacks the two effects.\n");
  return 0;
}

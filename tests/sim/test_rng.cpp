#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfly {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformityChiSquaredRough) {
  // 10 buckets, 100k draws: expect each bucket within 5% of 10k.
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) buckets[rng.next_below(10)]++;
  for (const int b : buckets) {
    EXPECT_GT(b, 9500);
    EXPECT_LT(b, 10500);
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.25, 0.01);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(21);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(21);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NoShortCycles) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace dfly

#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "core/arena.hpp"
#include "core/blueprint.hpp"

namespace dfly::bench {

namespace {
int g_default_jobs = 0;  ///< harness-wide --jobs value, 0 = unset
}  // namespace

void set_default_jobs(int jobs) { g_default_jobs = jobs > 0 ? jobs : 0; }

int default_jobs() {
  return ParallelRunner::resolve_jobs(g_default_jobs, ParallelRunner::hardware_jobs());
}

Options Options::parse(int argc, char** argv, int default_scale, Caps caps) {
  Options options;
  options.scale = default_scale;
  const auto reject_unsupported = [&](const char* flag, bool supported) {
    if (!supported) {
      std::fprintf(stderr, "this bench does not implement %s\n", flag);
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = std::atoi(arg.c_str() + 8);
      if (options.scale < 1) options.scale = 1;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--routing=", 0) == 0) {
      options.routing = arg.substr(10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      reject_unsupported("--jobs", caps.jobs);
      const char* value = arg.c_str() + 7;
      char* end = nullptr;
      const long jobs = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || jobs < 0) {
        std::fprintf(stderr, "--jobs needs a non-negative integer (0 = auto)\n");
        std::exit(2);
      }
      options.jobs = static_cast<int>(jobs);  // 0 = DFSIM_JOBS, else all cores
    } else if (arg.rfind("--json=", 0) == 0) {
      reject_unsupported("--json", caps.json);
      options.json_path = arg.substr(7);
    } else if (arg == "--no-arena") {
      options.no_arena = true;
      set_arena_enabled(false);
    } else if (arg == "--no-blueprint") {
      options.no_blueprint = true;
      set_blueprint_enabled(false);
    } else if (arg == "--full") {
      options.scale = 1;
    } else if (arg == "--quick") {
      options.scale = 32;
    } else if (arg == "--smoke") {
      reject_unsupported("--smoke", caps.smoke);
      options.smoke = true;
      options.scale = 64;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("options: --scale=N --seed=N --routing=NAME --no-arena --no-blueprint "
                  "--full --quick%s%s%s\n",
                  caps.jobs ? " --jobs=N" : "", caps.json ? " --json=FILE" : "",
                  caps.smoke ? " --smoke" : "");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  set_default_jobs(options.jobs);
  return options;
}

std::vector<std::string> Options::routings() const {
  if (!routing.empty()) return {routing};
  return routing::paper_routings();
}

StudyConfig Options::config(const std::string& routing_name) const {
  StudyConfig config;
  config.topo = DragonflyParams::paper();
  config.routing = routing_name;
  config.seed = seed;
  config.scale = scale;
  return config;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace dfly::bench

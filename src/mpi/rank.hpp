#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "mpi/match.hpp"
#include "mpi/task.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dfly::mpi {

class Job;

using ReqId = std::uint32_t;

/// Completion state of one outstanding non-blocking operation.
struct Request {
  bool in_use{false};
  bool complete{false};
  SimTime complete_time{0};
  std::coroutine_handle<> waiter{};
};

/// The simulated-MPI execution context of one rank (our Firefly stand-in).
///
/// Motifs drive it from a coroutine: non-blocking isend/irecv return request
/// ids, `co_await ctx.wait(r)` blocks the rank until completion, and
/// `co_await ctx.compute(ns)` models computation. Collectives (barrier,
/// allreduce tree, alltoall ring) are built on these primitives exactly as
/// SST/Firefly builds them, so their network footprint is faithful.
///
/// Accounting: time spent suspended in MPI awaits accumulates as the rank's
/// *communication time* (the paper's Fig 4/8/10 metric); consecutive sends
/// posted without an intervening block form an *ingress burst* whose maximum
/// is the rank's peak ingress volume (§IV metric 2).
class RankCtx final : public Component {
 public:
  RankCtx(Job& job, int rank, int node, Rng rng);

  int rank() const { return rank_; }
  int size() const;
  int node() const { return node_; }
  SimTime now() const;
  Rng& rng() { return rng_; }

  // --- non-blocking primitives ---------------------------------------------
  ReqId isend(int dst_rank, std::int64_t bytes, int tag);
  ReqId irecv(int src_rank, int tag);

  // --- awaitables ------------------------------------------------------------
  struct [[nodiscard]] WaitAwaiter {
    RankCtx* ctx;
    ReqId id;
    SimTime suspended_at{-1};
    bool await_ready() const { return ctx->request(id).complete; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended_at = ctx->now();
      ctx->note_block();
      ctx->request(id).waiter = h;
    }
    void await_resume() { ctx->finish_wait(id, suspended_at); }
  };
  WaitAwaiter wait(ReqId id) { return WaitAwaiter{this, id}; }

  struct [[nodiscard]] ComputeAwaiter {
    RankCtx* ctx;
    SimTime duration;
    bool await_ready() const { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->note_block();
      ctx->schedule_resume(h, duration);
    }
    void await_resume() {}
  };
  /// Model `duration` of computation (does not count as communication time).
  ComputeAwaiter compute(SimTime duration) { return ComputeAwaiter{this, duration}; }

  // --- composite operations (collectives.cpp) -------------------------------
  Task send(int dst_rank, std::int64_t bytes, int tag);  ///< isend + wait
  Task recv(int src_rank, int tag);                      ///< irecv + wait
  Task wait_all(std::vector<ReqId> ids);
  Task barrier();
  /// Binary-tree reduce + broadcast, `bytes` per edge (SST Allreduce).
  Task allreduce(std::int64_t bytes);
  /// Multi-step ring exchange over `members` (job-rank ids), `bytes` per
  /// pair (SST Alltoall): round i sends to member me+i, receives from me-i.
  Task alltoall(std::int64_t bytes, std::vector<int> members);

  /// Timestamp an application-defined iteration boundary.
  void mark_iteration() { iteration_marks_.push_back(now()); }

  /// Background-traffic mode: inbound eager messages that match no posted
  /// receive are dropped instead of parked (pure traffic generators like UR
  /// never consume what they receive; this bounds memory).
  void set_sink_mode(bool on) { sink_mode_ = on; }
  bool sink_mode() const { return sink_mode_; }

  /// Allocate a fresh collective tag. Ranks of one job allocate tags in
  /// lockstep (SPMD: every rank runs the same collective sequence), so the
  /// i-th collective gets the same tag on every rank. Used by the extended
  /// collective algorithms in mpi/coll.hpp.
  int alloc_coll_tag() { return next_coll_tag(); }

  // --- accounting ------------------------------------------------------------
  SimTime comm_time() const { return comm_time_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t peak_ingress_bytes() const { return peak_burst_; }
  const std::vector<SimTime>& iteration_marks() const { return iteration_marks_; }

  void handle(Engine& engine, const Event& event) override;

  // --- Job-side entry points -------------------------------------------------
  /// A complete eager message arrived for this rank.
  void deliver_eager(int src_rank, int tag, std::int64_t bytes);
  /// A rendezvous RTS header arrived for this rank.
  void deliver_rts(int src_rank, int tag, std::int64_t bytes, std::uint64_t rdv_id);
  void complete_request(ReqId id);
  Request& request(ReqId id) { return slots_[id]; }

 private:
  friend class Job;

  ReqId alloc_request();
  void release_request(ReqId id);
  void finish_wait(ReqId id, SimTime suspended_at);
  void note_block();
  void schedule_resume(std::coroutine_handle<> h, SimTime delay);
  int next_coll_tag() { return kCollTagBase + coll_seq_++; }

  static constexpr int kCollTagBase = 1 << 20;

  Job* job_;
  int rank_;
  int node_;
  Rng rng_;
  MatchList match_;
  std::deque<Request> slots_;
  std::vector<ReqId> free_slots_;
  std::coroutine_handle<> pending_resume_{};

  SimTime comm_time_{0};
  std::int64_t bytes_sent_{0};
  std::int64_t messages_sent_{0};
  std::int64_t burst_{0};
  std::int64_t peak_burst_{0};
  int coll_seq_{0};
  bool sink_mode_{false};
  std::vector<SimTime> iteration_marks_;
};

}  // namespace dfly::mpi

#include "serve/session.hpp"

#include <unistd.h>

#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "core/config_file.hpp"
#include "core/journal.hpp"
#include "core/json_report.hpp"
#include "serve/protocol.hpp"

namespace dfly::serve {

const char* Campaign::to_string(State state) {
  switch (state) {
    case State::kQueued: return "queued";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kCancelled: return "cancelled";
    case State::kFailed: return "failed";
  }
  return "?";
}

/// Streams results over the client connection: raw cell JSONL lines (the
/// same bytes JsonlSink writes — plan_cell_jsonl is the single formatter)
/// plus {"serve":"cell_failed",...} control lines. NEVER throws: a write
/// failure means the client is gone, which must cancel this campaign — not
/// convert a perfectly good, already-spooled cell into a sink_error failure
/// in the journal.
class Campaign::StreamSink final : public PlanSink {
 public:
  StreamSink(int fd, Campaign& campaign) : fd_(fd), campaign_(&campaign) {}

  void cell_done(const PlanCell& cell, const Report& report) override {
    send(plan_cell_jsonl(cell, report) + '\n');
  }

  void cell_failed(const PlanCell& cell, const CellFailure& failure) override {
    JsonWriter w;
    w.begin_object();
    w.key("serve").value("cell_failed");
    w.key("campaign").value(campaign_->id());
    w.key("cell").value(static_cast<std::uint64_t>(cell.index));
    w.key("message").value(failure.message);
    w.key("attempts").value(failure.attempts);
    w.key("timeout").value(failure.timeout);
    w.key("sink_error").value(failure.sink_error);
    w.end_object();
    send(w.str() + '\n');
  }

 private:
  void send(const std::string& line) {
    if (broken_) return;
    if (!write_all(fd_, line)) {
      // EPIPE/ECONNRESET: the client hung up mid-plan. Cancel exactly this
      // campaign; everything already journaled stays valid.
      broken_ = true;
      campaign_->cancel();
    }
  }

  int fd_;
  Campaign* campaign_;
  bool broken_{false};
};

/// Keeps the status-op counters live while the campaign streams.
class Campaign::CountSink final : public PlanSink {
 public:
  explicit CountSink(Campaign& campaign) : campaign_(&campaign) {}

  void begin(const ExperimentPlan&, const std::vector<PlanCell>& cells) override {
    campaign_->cells_.store(cells.size(), std::memory_order_relaxed);
  }
  void cell_done(const PlanCell&, const Report&) override {
    campaign_->completed_.fetch_add(1, std::memory_order_relaxed);
  }
  void cell_failed(const PlanCell&, const CellFailure&) override {
    campaign_->failed_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Campaign* campaign_;
};

Campaign::Campaign(std::string id, std::string spool_dir, std::string config_text,
                   int client_fd, bool resume)
    : id_(std::move(id)),
      spool_dir_(std::move(spool_dir)),
      config_text_(std::move(config_text)),
      client_fd_(client_fd),
      resume_(resume) {}

Campaign::~Campaign() { close_client(); }

void Campaign::close_client() {
  if (client_fd_ >= 0) {
    ::close(client_fd_);
    client_fd_ = -1;
  }
}

void Campaign::write_done_marker(const std::string& state, const PlanOutcome* outcome) {
  // The marker is what tells a restarted daemon this spool entry needs no
  // resume. Best-effort (a failed marker write means one redundant resume,
  // which the journal machinery replays to identical output anyway).
  JsonWriter w;
  w.begin_object();
  w.key("state").value(state);
  if (outcome != nullptr) {
    w.key("cells").value(static_cast<std::uint64_t>(outcome->cells));
    w.key("completed").value(static_cast<std::uint64_t>(outcome->completed));
    w.key("failed").value(static_cast<std::uint64_t>(outcome->failures.size()));
    w.key("resumed").value(static_cast<std::uint64_t>(outcome->resumed));
  }
  w.end_object();
  std::ofstream marker(done_path(), std::ios::binary | std::ios::trunc);
  marker << w.str() << '\n';
}

void Campaign::run(SubmissionQueue& queue) {
  state_.store(State::kRunning, std::memory_order_relaxed);
  PlanOutcome outcome;
  bool ran = false;
  std::string fatal;
  try {
    ConfigFile file = ConfigFile::parse(config_text_);
    const ExperimentPlan plan = plan_from_config(file);

    RunPlanOptions options;
    options.queue = &queue;
    options.cancel = &cancel_;

    // Exactly the CLI's --journal/--resume sequence (docs/ROBUSTNESS.md):
    // recover the journal (repairing any torn tail), truncate the output
    // back to the last journaled byte, then append.
    std::vector<JournalRecord> resume_records;
    if (resume_) {
      resume_records = PlanJournal::recover(journal_path());
      const std::uint64_t offset =
          resume_records.empty() ? 0 : resume_records.back().offset;
      truncate_file(jsonl_path(), offset);
      options.resume = &resume_records;
    }
    JsonlSink jsonl(jsonl_path(), /*append=*/resume_);
    PlanJournal journal(journal_path());
    options.journal = &journal;
    options.output_offset = [&jsonl] { return jsonl.bytes_written(); };

    // Sink order matters: the spool JSONL commits first (its offset is what
    // the journal records), counters next, the client stream last — and the
    // stream sink never throws, so a vanished client can never poison the
    // durable record of a finished cell.
    TeeSink sinks;
    sinks.add(&jsonl);
    CountSink counts(*this);
    sinks.add(&counts);
    std::unique_ptr<StreamSink> stream;
    if (client_fd_ >= 0) {
      stream = std::make_unique<StreamSink>(client_fd_, *this);
      sinks.add(stream.get());
    }

    outcome = run_plan(plan, sinks, options);
    ran = true;
  } catch (const std::exception& error) {
    fatal = error.what();
  } catch (...) {
    fatal = "unknown exception";
  }

  State final_state;
  if (!ran) {
    final_state = State::kFailed;
    {
      const MutexLock lock(error_mutex_);
      error_ = fatal;
    }
    write_done_marker("failed", nullptr);
  } else {
    completed_.store(outcome.completed, std::memory_order_relaxed);
    failed_.store(outcome.failures.size(), std::memory_order_relaxed);
    resumed_.store(outcome.resumed, std::memory_order_relaxed);
    cells_.store(outcome.cells, std::memory_order_relaxed);
    final_state = cancelled() ? State::kCancelled : State::kDone;
    write_done_marker(to_string(final_state), &outcome);
  }

  // Final control line to the client, then EOF.
  if (client_fd_ >= 0) {
    JsonWriter w;
    w.begin_object();
    if (!ran) {
      w.key("serve").value("error");
      w.key("campaign").value(id_);
      w.key("message").value(fatal);
    } else {
      w.key("serve").value("done");
      w.key("campaign").value(id_);
      w.key("ok").value(outcome.all_ok());
      w.key("cells").value(static_cast<std::uint64_t>(outcome.cells));
      w.key("completed").value(static_cast<std::uint64_t>(outcome.completed));
      w.key("failed").value(static_cast<std::uint64_t>(outcome.failures.size()));
      w.key("resumed").value(static_cast<std::uint64_t>(outcome.resumed));
      w.key("cancelled").value(cancelled());
    }
    w.end_object();
    write_all(client_fd_, w.str() + '\n');
    close_client();
  }
  state_.store(final_state, std::memory_order_relaxed);
}

std::string Campaign::status_line() const {
  JsonWriter w;
  w.begin_object();
  w.key("serve").value("status");
  w.key("campaign").value(id_);
  w.key("state").value(to_string(state()));
  w.key("cells").value(static_cast<std::uint64_t>(cells_.load(std::memory_order_relaxed)));
  w.key("completed")
      .value(static_cast<std::uint64_t>(completed_.load(std::memory_order_relaxed)));
  w.key("failed").value(static_cast<std::uint64_t>(failed_.load(std::memory_order_relaxed)));
  w.key("resumed").value(static_cast<std::uint64_t>(resumed_.load(std::memory_order_relaxed)));
  {
    const MutexLock lock(error_mutex_);
    w.key("error").value(error_);
  }
  w.end_object();
  return w.str();
}

}  // namespace dfly::serve

#include "workloads/extended.hpp"

namespace dfly::workloads {

mpi::Task IoBurstMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  const int n = ctx.size();
  const int buffers = num_buffer_ranks(n);
  if (ctx.rank() < buffers) {
    // Burst-buffer endpoints absorb writes in sink mode. Their lifetime is
    // bounded by the writers' nominal schedule plus drain slack; they do no
    // useful communication of their own.
    co_await ctx.compute(p_.period * p_.iterations + p_.period);
    co_return;
  }
  const int dst = ctx.rank() % buffers;
  const std::int64_t chunk = p_.chunk_bytes < 1 ? p_.checkpoint_bytes : p_.chunk_bytes;
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int iter = 0; iter < p_.iterations; ++iter) {
    co_await ctx.compute(p_.period);
    // Checkpoint drain: every compute rank floods its buffer rank with
    // chunk-sized writes, `window` outstanding at a time.
    window.clear();
    std::int64_t remaining = p_.checkpoint_bytes;
    while (remaining > 0) {
      const std::int64_t bytes = remaining < chunk ? remaining : chunk;
      window.push_back(ctx.isend(dst, bytes, /*tag=*/iter));
      remaining -= bytes;
      if (static_cast<int>(window.size()) >= p_.window) {
        co_await ctx.wait_all(window);
        window.clear();
      }
    }
    if (!window.empty()) co_await ctx.wait_all(window);
    ctx.mark_iteration();
  }
}

}  // namespace dfly::workloads

#include "stats/congestion.hpp"

#include <cmath>

namespace dfly {

double CongestionMatrix::mean() const {
  double acc = 0.0;
  for (const double c : cells_) acc += c;
  return cells_.empty() ? 0.0 : acc / static_cast<double>(cells_.size());
}

double CongestionMatrix::mean_global() const {
  double acc = 0.0;
  int n = 0;
  for (int s = 0; s < g_; ++s) {
    for (int d = 0; d < g_; ++d) {
      if (s == d) continue;
      acc += cell(s, d);
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / n;
}

double CongestionMatrix::mean_local() const {
  double acc = 0.0;
  for (int s = 0; s < g_; ++s) acc += cell(s, s);
  return g_ == 0 ? 0.0 : acc / g_;
}

double CongestionMatrix::max() const {
  double best = 0.0;
  for (const double c : cells_) best = c > best ? c : best;
  return best;
}

double CongestionMatrix::imbalance_global() const {
  double sum = 0.0, sum_sq = 0.0;
  int n = 0;
  for (int s = 0; s < g_; ++s) {
    for (int d = 0; d < g_; ++d) {
      if (s == d) continue;
      sum += cell(s, d);
      sum_sq += cell(s, d) * cell(s, d);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  const double mean = sum / n;
  if (mean <= 0.0) return 0.0;
  const double var = sum_sq / n - mean * mean;
  return var <= 0.0 ? 0.0 : std::sqrt(var) / mean;
}

CongestionMatrix congestion_matrix(const Dragonfly& topo, const LinkStats& stats,
                                   SimTime elapsed, double gbps) {
  const int g = topo.num_groups();
  CongestionMatrix m(g);
  if (elapsed <= 0) return m;
  // capacity in bytes over the window: gbps/8 bytes per ns.
  const double capacity_bytes = gbps / 8.0 * to_ns(elapsed);

  std::vector<double> sum(static_cast<std::size_t>(g) * g, 0.0);
  std::vector<int> cnt(static_cast<std::size_t>(g) * g, 0);
  for (int link = 0; link < stats.num_links(); ++link) {
    const LinkClass cls = stats.link_class(link);
    if (cls == LinkClass::kTerminal) continue;
    const int sg = topo.group_of_router(stats.src_router(link));
    const int dg = topo.group_of_router(stats.dst_router(link));
    const std::size_t idx = static_cast<std::size_t>(sg) * g + static_cast<std::size_t>(dg);
    sum[idx] += static_cast<double>(stats.bytes(link)) / capacity_bytes;
    cnt[idx]++;
  }
  for (int s = 0; s < g; ++s) {
    for (int d = 0; d < g; ++d) {
      const std::size_t idx = static_cast<std::size_t>(s) * g + static_cast<std::size_t>(d);
      if (cnt[idx] > 0) m.cell(s, d) = sum[idx] / cnt[idx];
    }
  }
  return m;
}

GroupStall group_stall(const Dragonfly& topo, const LinkStats& stats) {
  const int g = topo.num_groups();
  GroupStall out;
  out.local_ms.assign(static_cast<std::size_t>(g), 0.0);
  out.global_ms.assign(static_cast<std::size_t>(g), std::vector<double>(static_cast<std::size_t>(g), 0.0));
  int local_links = 0, global_links = 0;
  double local_sum = 0.0, global_sum = 0.0;
  for (int link = 0; link < stats.num_links(); ++link) {
    const double ms = to_ms(stats.stall(link));
    const LinkClass cls = stats.link_class(link);
    if (cls == LinkClass::kLocal) {
      out.local_ms[static_cast<std::size_t>(topo.group_of_router(stats.src_router(link)))] += ms;
      local_sum += ms;
      ++local_links;
    } else if (cls == LinkClass::kGlobal) {
      const int sg = topo.group_of_router(stats.src_router(link));
      const int dg = topo.group_of_router(stats.dst_router(link));
      out.global_ms[static_cast<std::size_t>(sg)][static_cast<std::size_t>(dg)] += ms;
      global_sum += ms;
      ++global_links;
    }
  }
  out.mean_local_ms = local_links > 0 ? local_sum / topo.num_groups() : 0.0;
  out.mean_global_ms = global_links > 0 ? global_sum / global_links : 0.0;
  return out;
}

}  // namespace dfly

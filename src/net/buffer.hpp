#pragma once

#include <cstdint>
#include <vector>

#include "core/ring_queue.hpp"

namespace dfly {

/// Per-input-port virtual-channel buffers of a router: one FIFO of packet
/// ids per (port, vc), each with `capacity` packet slots (the credit count
/// advertised to the upstream sender).
class InputBuffers {
 public:
  InputBuffers(int num_ports, int num_vcs, int capacity);

  /// Re-shape and empty every FIFO in place — the reuse path for routers
  /// recycled across simulation cells (core/arena.hpp).
  void reset(int num_ports, int num_vcs, int capacity);

  bool full(int port, int vc) const { return static_cast<int>(q(port, vc).size()) >= capacity_; }
  bool empty(int port, int vc) const { return q(port, vc).empty(); }
  int size(int port, int vc) const { return static_cast<int>(q(port, vc).size()); }

  void push(int port, int vc, std::uint32_t packet_id) { q(port, vc).push_back(packet_id); }

  std::uint32_t front(int port, int vc) const { return q(port, vc).front(); }
  std::uint32_t pop(int port, int vc) {
    auto& queue = q(port, vc);
    const std::uint32_t id = queue.front();
    queue.pop_front();
    return id;
  }

  /// Total packets buffered across all VCs of one input port.
  int port_occupancy(int port) const;
  /// Total packets buffered in the whole router.
  int total_occupancy() const;

  int num_ports() const { return num_ports_; }
  int num_vcs() const { return num_vcs_; }
  int capacity() const { return capacity_; }

 private:
  RingQueue<std::uint32_t>& q(int port, int vc) {
    return queues_[static_cast<std::size_t>(port) * num_vcs_ + static_cast<std::size_t>(vc)];
  }
  const RingQueue<std::uint32_t>& q(int port, int vc) const {
    return queues_[static_cast<std::size_t>(port) * num_vcs_ + static_cast<std::size_t>(vc)];
  }

  int num_ports_;
  int num_vcs_;
  int capacity_;
  // RingQueues: bounded at `capacity_` ids each, storage survives reset()
  // so recycled routers re-buffer without touching the allocator.
  std::vector<RingQueue<std::uint32_t>> queues_;
};

}  // namespace dfly

#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

/// Annotated mutex wrappers for Clang Thread Safety Analysis.
///
/// std::mutex / std::lock_guard carry no capability attributes, so a
/// GUARDED_BY(mutex_) field behind them is invisible to `-Wthread-safety`.
/// dfly::Mutex is a zero-overhead std::mutex wrapper declared as a
/// CAPABILITY, and dfly::MutexLock is the matching SCOPED_CAPABILITY RAII
/// holder. Every cross-thread structure in the repo (BlueprintCache,
/// SubmissionQueue, the serve daemon, PdesRunner's error channel) locks
/// through these so the analysis can prove each guarded access.
///
/// Condition variables: MutexLock wraps a std::unique_lock, so it can drive a
/// plain std::condition_variable via wait(). The analysis models the
/// capability as continuously held across wait() — the wake path re-acquires
/// before returning, so every guarded access around the wait point is in fact
/// protected. Predicate waits must be written as explicit `while` loops
/// (`while (!ready_) lock.wait(cv);`): a predicate lambda is analysed as a
/// separate function that cannot prove it holds the lock.
namespace dfly {

/// A std::mutex the thread-safety analysis can reason about.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped std::mutex, for APIs that need the native type (MutexLock's
  /// unique_lock). Annotated callers must not lock through this directly.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock holder (std::unique_lock semantics): acquires in the
/// constructor, releases in the destructor, and supports the mid-scope
/// unlock()/lock() window the SubmissionQueue workers use around cell
/// execution, plus condition-variable waits.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() RELEASE() {}  // the unique_lock member releases only if held
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drop the lock mid-scope (e.g. to run a cell outside the critical
  /// section); pair with lock() before touching guarded state again.
  void unlock() RELEASE() { lock_.unlock(); }
  void lock() ACQUIRE() { lock_.lock(); }

  /// Block on `cv` until notified. The capability is treated as held across
  /// the call (it is released and re-acquired inside); always re-check the
  /// guarded condition in a while loop around this.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace dfly

// Tests for the unified campaign core (core/plan.hpp): deterministic
// expansion, streaming sinks, jobs-independence, config-file plans, and
// byte-identical equivalence of the legacy driver shims (SeedSweep,
// run_pairwise_cells, run_mixed_suites) with hand-rolled references.

#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/json_report.hpp"
#include "core/mixed.hpp"
#include "core/pairwise.hpp"
#include "core/parallel.hpp"
#include "core/sweep.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing = "UGALg") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.scale = 64;
  return config;
}

ExperimentPlan tiny_single_plan() {
  ExperimentPlan plan;
  plan.base = tiny_config();
  plan.mode = PlanMode::kSingle;
  plan.jobs = {{"UR", 32}};
  return plan;
}

std::string jsonl_of(const ExperimentPlan& plan, int jobs) {
  std::ostringstream out;
  JsonlSink sink(out);
  run_plan(plan, sink, jobs);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

Report tiny_experiment(std::uint64_t seed) {
  StudyConfig config = tiny_config();
  config.seed = seed;
  Study study(config);
  study.add_app("UR", 32);
  return study.run();
}

// --- expansion ---------------------------------------------------------------

TEST(PlanExpansion, NestingOrderIsVariantRoutingPlacementScaleSeed) {
  ExperimentPlan plan = tiny_single_plan();
  PlanVariant qos;
  qos.label = "qos2";
  qos.overrides.set("qos.num_classes", "2");
  plan.variants = {PlanVariant{"base", {}}, qos};
  plan.routings = {"MIN", "PAR"};
  plan.placements = {PlacementPolicy::kRandom, PlacementPolicy::kLinear};
  plan.scales = {64, 128};
  plan.seeds = {1, 2};

  const std::vector<PlanCell> cells = plan.expand();
  ASSERT_EQ(cells.size(), 32u);
  // Innermost axis: seed varies fastest...
  EXPECT_EQ(cells[0].config.seed, 1u);
  EXPECT_EQ(cells[1].config.seed, 2u);
  // ...then scale...
  EXPECT_EQ(cells[0].config.scale, 64);
  EXPECT_EQ(cells[2].config.scale, 128);
  // ...then placement...
  EXPECT_EQ(cells[0].config.placement, PlacementPolicy::kRandom);
  EXPECT_EQ(cells[4].config.placement, PlacementPolicy::kLinear);
  // ...then routing...
  EXPECT_EQ(cells[0].config.routing, "MIN");
  EXPECT_EQ(cells[8].config.routing, "PAR");
  // ...then variant (outermost).
  EXPECT_EQ(cells[0].variant, "base");
  EXPECT_EQ(cells[16].variant, "qos2");
  EXPECT_EQ(cells[16].config.net.qos.num_classes, 2);
  EXPECT_EQ(cells[0].config.net.qos.num_classes, 1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].kind, PlanCellKind::kSingle);
    EXPECT_EQ(cells[i].jobs, plan.jobs);
  }
}

TEST(PlanExpansion, EmptyAxesUseTheBasePoint) {
  const ExperimentPlan plan = tiny_single_plan();
  const std::vector<PlanCell> cells = plan.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.routing, "UGALg");
  EXPECT_EQ(cells[0].config.seed, 42u);
  EXPECT_EQ(cells[0].variant, "");
}

TEST(PlanExpansion, PairwiseProductIsTargetMajorWithinAxisPoint) {
  ExperimentPlan plan;
  plan.base = tiny_config();
  plan.mode = PlanMode::kPairwise;
  plan.routings = {"MIN", "UGALg"};
  plan.targets = {"UR", "FFT3D"};
  plan.backgrounds = {"None", "CosmoFlow"};
  const std::vector<PlanCell> cells = plan.expand();
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].target, "UR");
  EXPECT_EQ(cells[0].background, "None");
  EXPECT_EQ(cells[1].background, "CosmoFlow");
  EXPECT_EQ(cells[2].target, "FFT3D");
  EXPECT_EQ(cells[4].config.routing, "UGALg");
  for (const PlanCell& cell : cells) EXPECT_EQ(cell.kind, PlanCellKind::kPairwise);
}

TEST(PlanExpansion, PairwiseListIsUsedVerbatim) {
  ExperimentPlan plan;
  plan.base = tiny_config("PAR");
  plan.mode = PlanMode::kPairwise;
  plan.pairwise_list = {{"UR", "", ""}, {"FFT3D", "None", "MIN"}, {"UR", "CosmoFlow", ""}};
  const std::vector<PlanCell> cells = plan.expand();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].background, "None");  // empty background normalised
  EXPECT_EQ(cells[0].config.routing, "PAR");
  EXPECT_EQ(cells[1].config.routing, "MIN");  // per-cell override
  EXPECT_EQ(cells[2].background, "CosmoFlow");
}

TEST(PlanExpansion, MixedEmitsTheMixThenSolosInTable2Order) {
  ExperimentPlan plan;
  plan.base = tiny_config();
  plan.mode = PlanMode::kMixed;
  plan.routings = {"MIN", "PAR"};
  const std::vector<PlanCell> cells = plan.expand();
  const std::size_t stride = 1 + table2_mix().size();
  ASSERT_EQ(cells.size(), 2 * stride);
  EXPECT_EQ(cells[0].kind, PlanCellKind::kMixed);
  for (std::size_t a = 0; a < table2_mix().size(); ++a) {
    EXPECT_EQ(cells[1 + a].kind, PlanCellKind::kMixedSolo);
    EXPECT_EQ(cells[1 + a].target, table2_mix()[a].app);
  }
  EXPECT_EQ(cells[stride].kind, PlanCellKind::kMixed);
  EXPECT_EQ(cells[stride].config.routing, "PAR");

  plan.mixed_solos = false;
  EXPECT_EQ(plan.expand().size(), 2u);
}

TEST(PlanExpansion, ConfigListReplacesTheAxisProduct) {
  ExperimentPlan plan = tiny_single_plan();
  plan.routings = {"MIN", "PAR"};  // ignored once config_list is set
  plan.config_list = {tiny_config("Q-adp")};
  const std::vector<PlanCell> cells = plan.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.routing, "Q-adp");
}

TEST(PlanValidation, RejectsBadPlans) {
  ExperimentPlan plan = tiny_single_plan();
  plan.jobs.clear();
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // single without jobs

  plan = tiny_single_plan();
  plan.jobs = {{"NoSuchApp", 8}};
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // unknown app

  plan = tiny_single_plan();
  plan.routings = {"NoSuchRouting"};
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // unknown routing

  plan = tiny_single_plan();
  plan.scales = {0};
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // non-positive scale

  plan = ExperimentPlan{};
  plan.mode = PlanMode::kPairwise;
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // pairwise without matrix

  plan = ExperimentPlan{};
  plan.mode = PlanMode::kCustom;
  EXPECT_THROW(plan.expand(), std::invalid_argument);  // custom without runner
}

// --- execution and sinks -----------------------------------------------------

TEST(PlanParallelDeterminism, JsonlByteIdenticalAtJobsOneAndFour) {
  ExperimentPlan plan = tiny_single_plan();
  plan.routings = {"MIN", "UGALg"};
  plan.seeds = {42, 43, 44};
  const std::string sequential = jsonl_of(plan, 1);
  const std::string parallel = jsonl_of(plan, 4);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
  // One self-contained line per cell.
  EXPECT_EQ(std::count(sequential.begin(), sequential.end(), '\n'), 6);
}

TEST(PlanParallelDeterminism, CollectSinkMatchesDirectCellRuns) {
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {7, 8};
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 4);
  EXPECT_EQ(outcome.cells, 2u);
  EXPECT_EQ(outcome.completed, 2u);
  ASSERT_EQ(sink.reports().size(), 2u);
  for (const PlanCell& cell : sink.cells()) {
    EXPECT_EQ(report_to_json(sink.reports()[cell.index]),
              report_to_json(run_plan_cell(plan, cell)));
  }
}

TEST(PlanSinks, StreamInCellOrderWithBeginAndEnd) {
  struct OrderSink final : PlanSink {
    std::vector<std::size_t> order;
    int begins{0}, ends{0};
    std::size_t expected{0};
    void begin(const ExperimentPlan&, const std::vector<PlanCell>& cells) override {
      ++begins;
      expected = cells.size();
    }
    void cell_done(const PlanCell& cell, const Report&) override { order.push_back(cell.index); }
    void end() override { ++ends; }
  } sink;
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {1, 2, 3, 4, 5};
  run_plan(plan, sink, 4);
  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  ASSERT_EQ(sink.order.size(), 5u);
  EXPECT_EQ(sink.expected, 5u);
  for (std::size_t i = 0; i < sink.order.size(); ++i) EXPECT_EQ(sink.order[i], i);
}

TEST(PlanSinks, CsvEmitsHeaderAndOneRowPerApp) {
  ExperimentPlan plan;
  plan.base = tiny_config();
  plan.mode = PlanMode::kSingle;
  plan.jobs = {{"UR", 20}, {"CosmoFlow", 20}};
  std::ostringstream out;
  CsvSink sink(out);
  run_plan(plan, sink, 1);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("cell,kind,variant,routing,placement,seed,scale", 0), 0u);
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(line.rfind("0,single,", 0), 0u);
  }
  EXPECT_EQ(rows, 2);  // one per app
}

TEST(PlanSinks, FileSinksRejectUnwritablePaths) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir/x.jsonl"), std::runtime_error);
  EXPECT_THROW(CsvSink("/nonexistent-dir/x.csv"), std::runtime_error);
}

// --- fault isolation, retry, timeout -----------------------------------------

TEST(PlanParallelIsolation, ThrowingCellsAreRecordedAndSurvivorsMatchFreshRuns) {
  // Real simulation cells fuzzed with two throwing cells through ONE run_plan
  // call (shared arenas + blueprint cache engaged): the failures are recorded
  // and isolated, every other cell is delivered in order, and each survivor
  // is byte-identical to a fresh fully-private run — a poisoned worker arena
  // or a torn cache entry would break that.
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.seeds = {1, 2, 3, 4, 5, 6};
  plan.custom = [](const PlanCell& cell) -> Report {
    if (cell.config.seed == 3 || cell.config.seed == 5) {
      throw std::runtime_error("boom seed " + std::to_string(cell.config.seed));
    }
    return tiny_experiment(cell.config.seed);
  };
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 4);

  EXPECT_EQ(outcome.cells, 6u);
  EXPECT_EQ(outcome.executed, 6u);
  EXPECT_EQ(outcome.completed, 4u);
  EXPECT_FALSE(outcome.all_ok());
  EXPECT_FALSE(outcome.worker_errors.any());
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].index, 2u);
  EXPECT_EQ(outcome.failures[1].index, 4u);
  EXPECT_NE(outcome.failures[0].message.find("boom seed 3"), std::string::npos);
  EXPECT_FALSE(outcome.failures[0].timeout);
  EXPECT_EQ(outcome.failures[0].attempts, 1);  // non-transient: no retry
  ASSERT_EQ(sink.failures().size(), 2u);
  EXPECT_EQ(sink.failures()[0].index, 2u);

  // rethrow_any gives the legacy fail-fast surface the original exception.
  EXPECT_THROW(outcome.rethrow_any(), std::runtime_error);

  struct ToggleGuard {
    ~ToggleGuard() {
      set_arena_enabled(true);
      set_blueprint_enabled(true);
    }
  } guard;
  set_arena_enabled(false);
  set_blueprint_enabled(false);
  ASSERT_EQ(sink.reports().size(), 6u);
  for (const std::size_t i : {0u, 1u, 3u, 5u}) {
    EXPECT_EQ(report_to_json(sink.reports()[i]),
              report_to_json(tiny_experiment(plan.seeds[i])))
        << "survivor cell " << i;
  }
}

TEST(PlanParallelIsolation, LegacyShimsStillFailFast) {
  // The pre-isolation drivers (SeedSweep, pairwise, mixed shims) keep their
  // contract: the first cell exception propagates out of run().
  const SeedSweep sweep(1, 4);
  EXPECT_THROW(sweep.run(
                   [](std::uint64_t seed) -> Report {
                     if (seed == 3) throw std::runtime_error("cell 3 failed");
                     Report report;
                     report.completed = true;
                     return report;
                   },
                   2),
               std::runtime_error);
}

TEST(PlanExecution, TransientFailuresAreRetriedUntilSuccess) {
  std::atomic<int> attempts{0};
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.seeds = {7};
  plan.cell_retries = 3;
  plan.custom = [&attempts](const PlanCell&) -> Report {
    if (attempts.fetch_add(1) < 2) throw TransientCellError("transient pressure");
    Report report;
    report.completed = true;
    return report;
  };
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 1);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_TRUE(outcome.all_ok());
}

TEST(PlanExecution, ExhaustedRetriesRecordTheAttemptCount) {
  std::atomic<int> attempts{0};
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.seeds = {7};
  plan.cell_retries = 1;
  plan.custom = [&attempts](const PlanCell&) -> Report {
    ++attempts;
    throw TransientCellError("still transient");
  };
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 1);
  EXPECT_EQ(attempts.load(), 2);  // initial try + one retry
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 2);
  EXPECT_FALSE(outcome.failures[0].timeout);
  EXPECT_NE(outcome.failures[0].message.find("still transient"), std::string::npos);
}

TEST(PlanExecution, NonTransientFailuresAreNotRetried) {
  std::atomic<int> attempts{0};
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.seeds = {7};
  plan.cell_retries = 5;
  plan.custom = [&attempts](const PlanCell&) -> Report {
    ++attempts;
    throw std::logic_error("deterministic bug");
  };
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 1);
  EXPECT_EQ(attempts.load(), 1);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 1);
}

TEST(PlanExecution, WatchdogRecordsTimeoutWithoutRetry) {
  // A real simulation cell with an already-expired wall budget: the Engine's
  // cooperative deadline fires on the first event, the cell is recorded as a
  // timeout, and — timeouts being final — the generous retry budget is never
  // consumed.
  ExperimentPlan plan = tiny_single_plan();
  plan.cell_timeout_s = 1e-9;
  plan.cell_retries = 5;
  CollectSink sink;
  const PlanOutcome outcome = run_plan(plan, sink, 1);
  EXPECT_EQ(outcome.completed, 0u);
  EXPECT_FALSE(outcome.all_ok());
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_TRUE(outcome.failures[0].timeout);
  EXPECT_EQ(outcome.failures[0].attempts, 1);
}

TEST(PlanSinks, ThrowingSinkBecomesARecordedSinkErrorFailure) {
  struct BadSink final : PlanSink {
    int ends{0};
    std::vector<std::size_t> delivered;
    void cell_done(const PlanCell& cell, const Report&) override {
      if (cell.index == 1) throw std::runtime_error("disk full");
      delivered.push_back(cell.index);
    }
    void end() override { ++ends; }
  } sink;
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.seeds = {1, 2, 3};
  plan.custom = [](const PlanCell&) {
    Report report;
    report.completed = true;
    return report;
  };
  const PlanOutcome outcome = run_plan(plan, sink, 1);
  EXPECT_EQ(sink.ends, 1);  // end() runs even after a sink write failed
  EXPECT_EQ(sink.delivered, (std::vector<std::size_t>{0, 2}));
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 1u);
  EXPECT_TRUE(outcome.failures[0].sink_error);
  EXPECT_NE(outcome.failures[0].message.find("disk full"), std::string::npos);
  EXPECT_FALSE(outcome.all_ok());
}

// --- cell identity hash ------------------------------------------------------

TEST(PlanCellHash, StableAcrossExpansionsAndSensitiveToCellIdentity) {
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {1, 2};
  const std::vector<PlanCell> first = plan.expand();
  const std::vector<PlanCell> second = plan.expand();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(plan_cell_hash(first[0]), plan_cell_hash(second[0]));
  EXPECT_EQ(plan_cell_hash(first[1]), plan_cell_hash(second[1]));
  EXPECT_NE(plan_cell_hash(first[0]), plan_cell_hash(first[1]));

  PlanCell tweaked = first[0];
  tweaked.config.scale *= 2;
  EXPECT_NE(plan_cell_hash(tweaked), plan_cell_hash(first[0]));
  tweaked = first[0];
  tweaked.index = 99;
  EXPECT_NE(plan_cell_hash(tweaked), plan_cell_hash(first[0]));
}

// --- sharding + merge --------------------------------------------------------

TEST(PlanSharding, ParseShardAcceptsKOverNAndRejectsJunk) {
  EXPECT_EQ(parse_shard("1/1").index, 0u);
  EXPECT_EQ(parse_shard("1/1").count, 1u);
  EXPECT_FALSE(parse_shard("1/1").active());
  const PlanShard shard = parse_shard("2/4");
  EXPECT_EQ(shard.index, 1u);
  EXPECT_EQ(shard.count, 4u);
  EXPECT_TRUE(shard.active());
  EXPECT_TRUE(shard.selects(1));
  EXPECT_FALSE(shard.selects(0));
  EXPECT_TRUE(shard.selects(5));
  for (const char* bad : {"", "0/4", "5/4", "1/0", "a/b", "1/", "/2", "-1/2", "1/2/3"}) {
    EXPECT_THROW(parse_shard(bad), std::invalid_argument) << bad;
  }
}

TEST(PlanParallelSharding, ShardUnionMergesByteIdenticalToFullRun) {
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {1, 2, 3, 4, 5};
  const std::string full = jsonl_of(plan, 2);

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> parts;
  std::size_t total_cells = 0;
  for (int k = 1; k <= 2; ++k) {
    const std::string path = dir + "/dfly_shard_" + std::to_string(k) + ".jsonl";
    JsonlSink sink(path);
    RunPlanOptions options;
    options.jobs = 2;
    options.shard = parse_shard(std::to_string(k) + "/2");
    const PlanOutcome outcome = run_plan(plan, sink, options);
    EXPECT_TRUE(outcome.all_ok()) << "shard " << k;
    total_cells += outcome.cells;
    parts.push_back(path);
  }
  EXPECT_EQ(total_cells, 5u);  // shards partition the expansion

  const std::string merged = dir + "/dfly_shard_merged.jsonl";
  EXPECT_EQ(merge_shard_jsonl(parts, merged, nullptr), 5u);
  EXPECT_EQ(read_file(merged), full);

  // Overlapping shards are a fatal reassembly error, not a silent overwrite.
  EXPECT_THROW(merge_shard_jsonl({parts[0], parts[0], parts[1]}, merged, nullptr),
               std::runtime_error);

  for (const std::string& path : parts) std::remove(path.c_str());
  std::remove(merged.c_str());
}

// --- journal + resume --------------------------------------------------------

TEST(PlanParallelResume, TornCrashStateResumesByteIdentical) {
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {1, 2, 3, 4};
  const std::string reference = jsonl_of(plan, 2);

  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/dfly_resume.jsonl";
  const std::string journal = dir + "/dfly_resume.journal";
  std::remove(jsonl.c_str());
  std::remove(journal.c_str());

  // Uninterrupted journaled run: establishes the per-cell output offsets.
  {
    PlanJournal log(journal);
    JsonlSink sink(jsonl);
    RunPlanOptions options;
    options.jobs = 2;
    options.journal = &log;
    options.output_offset = [&sink] { return sink.bytes_written(); };
    const PlanOutcome outcome = run_plan(plan, sink, options);
    EXPECT_TRUE(outcome.all_ok());
  }
  const std::vector<JournalRecord> full_records = PlanJournal::recover(journal);
  ASSERT_EQ(full_records.size(), 4u);
  EXPECT_EQ(read_file(jsonl), reference);

  // Emulate kill -9 after cell 1: the output holds cells 0-1 plus a torn
  // prefix of cell 2's line (flushed but never journaled), and the journal
  // holds records 0-1 plus a record torn mid-write.
  const std::uint64_t safe = full_records[1].offset;
  ASSERT_GE(reference.size(), safe + 29);
  write_file(jsonl, reference.substr(0, safe) + reference.substr(safe, 29));
  write_file(journal, PlanJournal::format(full_records[0]) + "\n" +
                          PlanJournal::format(full_records[1]) + "\n" +
                          "{\"cell\":2,\"ok\":tr");

  // recover() repairs the journal in place; the driver then truncates the
  // output back to the last journaled offset, cutting the orphan tail.
  const std::vector<JournalRecord> records = PlanJournal::recover(journal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], full_records[0]);
  EXPECT_EQ(records[1], full_records[1]);
  truncate_file(jsonl, records.back().offset);

  PlanJournal log(journal);
  JsonlSink sink(jsonl, /*append=*/true);
  EXPECT_EQ(sink.bytes_written(), safe);
  RunPlanOptions options;
  options.jobs = 2;
  options.journal = &log;
  options.resume = &records;
  options.output_offset = [&sink] { return sink.bytes_written(); };
  const PlanOutcome outcome = run_plan(plan, sink, options);
  EXPECT_EQ(outcome.cells, 4u);
  EXPECT_EQ(outcome.resumed, 2u);
  EXPECT_EQ(outcome.executed, 2u);
  EXPECT_TRUE(outcome.all_ok());

  EXPECT_EQ(read_file(jsonl), reference);
  EXPECT_EQ(PlanJournal::recover(journal).size(), 4u);

  std::remove(jsonl.c_str());
  std::remove(journal.c_str());
}

TEST(PlanParallelResume, RefusesAJournalFromADifferentPlan) {
  ExperimentPlan plan = tiny_single_plan();
  plan.seeds = {1, 2};
  JournalRecord stale;
  stale.cell = 0;
  stale.ok = true;
  stale.completed = true;
  stale.hash = 0xdeadbeefu;  // no expansion of this plan hashes to this
  const std::vector<JournalRecord> records{stale};
  RunPlanOptions options;
  options.resume = &records;
  CollectSink sink;
  EXPECT_THROW(run_plan(plan, sink, options), std::runtime_error);
}

TEST(PlanExecution, CustomCellsSeeTheResolvedConfig) {
  ExperimentPlan plan;
  plan.mode = PlanMode::kCustom;
  plan.routings = {"MIN", "PAR"};
  plan.seeds = {5, 6};
  plan.custom = [](const PlanCell& cell) {
    Report report;
    report.routing = cell.config.routing + "/" + std::to_string(cell.config.seed);
    report.completed = true;
    return report;
  };
  CollectSink sink;
  run_plan(plan, sink, 1);
  ASSERT_EQ(sink.reports().size(), 4u);
  EXPECT_EQ(sink.reports()[0].routing, "MIN/5");
  EXPECT_EQ(sink.reports()[3].routing, "PAR/6");
}

// --- legacy shims are byte-identical to hand-rolled references ---------------

TEST(PlanShimParallelEquivalence, SeedSweepMatchesDirectParallelRunner) {
  const SeedSweep sweep(42, 5);
  // Pre-plan reference: ParallelRunner straight over the seed list.
  for (const int jobs : {1, 4}) {
    std::vector<Report> reports(sweep.seeds().size());
    ParallelRunner(jobs).run_indexed(reports.size(), [&](std::size_t i) {
      reports[i] = tiny_experiment(sweep.seeds()[i]);
    });
    const SweepSummary reference = SeedSweep::aggregate(reports);
    const SweepSummary shimmed = sweep.run(tiny_experiment, jobs);
    EXPECT_EQ(sweep_to_json(reference), sweep_to_json(shimmed)) << "jobs=" << jobs;
  }
}

TEST(PlanShimParallelEquivalence, PairwiseCellsMatchDirectRuns) {
  const StudyConfig base = tiny_config();
  std::vector<PairwiseCell> cells;
  for (const char* routing : {"MIN", "UGALg"}) {
    cells.push_back(PairwiseCell{"UR", "None", routing});
    cells.push_back(PairwiseCell{"UR", "CosmoFlow", routing});
  }
  cells.push_back(PairwiseCell{"FFT3D", "", ""});  // base routing, no background
  for (const int jobs : {1, 4}) {
    const std::vector<PairwiseResult> shimmed = run_pairwise_cells(base, cells, jobs);
    ASSERT_EQ(shimmed.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      StudyConfig config = base;
      if (!cells[i].routing.empty()) config.routing = cells[i].routing;
      const PairwiseResult reference = run_pairwise(config, cells[i].target, cells[i].background);
      EXPECT_EQ(report_to_json(shimmed[i].full), report_to_json(reference.full))
          << "jobs=" << jobs << " cell=" << i;
      EXPECT_EQ(shimmed[i].routing, reference.routing);
      EXPECT_EQ(shimmed[i].target, reference.target);
      EXPECT_EQ(shimmed[i].background, reference.background);
      EXPECT_EQ(report_to_json(Report{.routing = shimmed[i].routing,
                                      .apps = {shimmed[i].target_report}}),
                report_to_json(Report{.routing = reference.routing,
                                      .apps = {reference.target_report}}));
      EXPECT_EQ(shimmed[i].background_report.app, reference.background_report.app);
    }
  }
}

TEST(PlanShimParallelEquivalence, MixedSuitesMatchDirectRuns) {
  // Full paper machine (Table II node counts) with a hard clock cap: the
  // comparison needs identical bytes, not converged runs.
  StudyConfig config;
  config.topo = DragonflyParams::paper();
  config.routing = "UGALg";
  config.scale = 256;
  config.time_limit = 20 * kUs;
  const std::vector<StudyConfig> configs{config};

  std::string reference;
  reference += report_to_json(run_mixed(config));
  for (const MixedJobSpec& spec : table2_mix()) {
    reference += report_to_json(run_mixed_solo(config, spec.app));
  }
  for (const int jobs : {1, 4}) {
    const std::vector<MixedSuite> suites = run_mixed_suites(configs, jobs);
    ASSERT_EQ(suites.size(), 1u);
    std::string shimmed = report_to_json(suites[0].mix);
    for (const Report& solo : suites[0].solos) shimmed += report_to_json(solo);
    EXPECT_EQ(shimmed, reference) << "jobs=" << jobs;
  }
  EXPECT_TRUE(run_mixed_suites({}, 1).empty());
}

// --- differently-shaped cells through one shared cache/arena -----------------

TEST(PlanParallelDeterminism, DifferentlyShapedVariantsThroughOneCacheMatchFreshRuns) {
  // Four shapes (two topologies x QoS on/off) and two routings fuzzed
  // through ONE run_plan call: every worker reuses its arena storage and the
  // shared BlueprintCache across shape changes. Each cell must still be
  // byte-identical to a fresh, fully-private run.
  ExperimentPlan plan;
  plan.base = tiny_config();
  plan.mode = PlanMode::kSingle;
  plan.jobs = {{"UR", 16}};
  PlanVariant smaller;
  smaller.label = "smaller";
  smaller.overrides.set("topo.g", "5");  // 40-node machine (a*h=8 = 2*(g-1))
  PlanVariant qos;
  qos.label = "qos";
  qos.overrides.set("qos.num_classes", "2");
  qos.overrides.set("qos.weights", "4,1");
  plan.variants = {PlanVariant{"base", {}}, smaller, qos};
  plan.routings = {"MIN", "Q-adp"};
  plan.seeds = {42, 43};

  CollectSink sink;
  run_plan(plan, sink, 4);

  struct ToggleGuard {
    ~ToggleGuard() {
      set_arena_enabled(true);
      set_blueprint_enabled(true);
    }
  } guard;
  set_arena_enabled(false);
  set_blueprint_enabled(false);
  for (const PlanCell& cell : sink.cells()) {
    EXPECT_EQ(report_to_json(sink.reports()[cell.index]),
              report_to_json(run_plan_cell(plan, cell)))
        << "cell " << cell.index << " variant=" << cell.variant;
  }
}

// --- config-file plans -------------------------------------------------------

TEST(PlanFromConfig, ParsesAxesModesAndVariants) {
  const ConfigFile file = ConfigFile::parse(R"(
topo.p = 2
topo.a = 4
topo.h = 2
topo.g = 9
scale = 64
plan.name = demo
plan.mode = pairwise
plan.routings = MIN, UGALg
plan.placements = random,linear
plan.scales = 64,128
plan.seeds = 42..44,100
plan.targets = UR
plan.backgrounds = None,CosmoFlow
plan.variant.base =
plan.variant.qos2 = qos.num_classes=2; qos.weights=4,1
)");
  const ExperimentPlan plan = plan_from_config(file);
  EXPECT_EQ(plan.name, "demo");
  EXPECT_EQ(plan.mode, PlanMode::kPairwise);
  EXPECT_EQ(plan.base.topo.g, 9);
  EXPECT_EQ(plan.base.scale, 64);
  EXPECT_EQ(plan.routings, (std::vector<std::string>{"MIN", "UGALg"}));
  EXPECT_EQ(plan.placements,
            (std::vector<PlacementPolicy>{PlacementPolicy::kRandom, PlacementPolicy::kLinear}));
  EXPECT_EQ(plan.scales, (std::vector<int>{64, 128}));
  EXPECT_EQ(plan.seeds, (std::vector<std::uint64_t>{42, 43, 44, 100}));
  EXPECT_EQ(plan.targets, (std::vector<std::string>{"UR"}));
  EXPECT_EQ(plan.backgrounds, (std::vector<std::string>{"None", "CosmoFlow"}));
  // Variants arrive in sorted label order (std::map key order).
  ASSERT_EQ(plan.variants.size(), 2u);
  EXPECT_EQ(plan.variants[0].label, "base");
  EXPECT_TRUE(plan.variants[0].overrides.values().empty());
  EXPECT_EQ(plan.variants[1].label, "qos2");
  EXPECT_EQ(plan.variants[1].overrides.get_int("qos.num_classes"), 2);
  EXPECT_EQ(plan.variants[1].overrides.get_int_list("qos.weights"),
            (std::vector<int>{4, 1}));
  // 2 variants x 2 routings x 2 placements x 2 scales x 4 seeds x 2 cells.
  EXPECT_EQ(plan.expand().size(), 128u);
}

TEST(PlanFromConfig, ParsesSingleModeJobLists) {
  const ConfigFile file = ConfigFile::parse(
      "plan.mode = single\nplan.jobs = FFT3D:528, Halo3D\n");
  const ExperimentPlan plan = plan_from_config(file);
  ASSERT_EQ(plan.jobs.size(), 2u);
  EXPECT_EQ(plan.jobs[0], (PlanJob{"FFT3D", 528}));
  EXPECT_EQ(plan.jobs[1], (PlanJob{"Halo3D", 0}));
}

TEST(PlanFromConfig, ParsesRobustnessKnobs) {
  const ExperimentPlan plan = plan_from_config(ConfigFile::parse(
      "plan.mode = single\nplan.jobs = UR\nplan.cell_timeout_s = 900\nplan.cell_retries = 4\n"));
  EXPECT_EQ(plan.cell_timeout_s, 900.0);
  EXPECT_EQ(plan.cell_retries, 4);

  // Defaults when unset: no watchdog, two transient retries.
  const ExperimentPlan defaults =
      plan_from_config(ConfigFile::parse("plan.mode = single\nplan.jobs = UR\n"));
  EXPECT_EQ(defaults.cell_timeout_s, 0.0);
  EXPECT_EQ(defaults.cell_retries, 2);

  EXPECT_THROW(plan_from_config(ConfigFile::parse(
                   "plan.mode = single\nplan.jobs = UR\nplan.cell_retries = -1\n")),
               std::invalid_argument);
  EXPECT_THROW(plan_from_config(ConfigFile::parse(
                   "plan.mode = single\nplan.jobs = UR\nplan.cell_timeout_s = -2\n")),
               std::invalid_argument);
}

TEST(PlanFromConfig, ErrorsNameTheOffendingLine) {
  // Unknown plan key, with its line number.
  try {
    plan_from_config(ConfigFile::parse("plan.mode = single\nplan.bogus = 1\n"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("plan.bogus"), std::string::npos);
  }
  // Bad seed range, with its line number.
  try {
    plan_from_config(ConfigFile::parse("# comment\nplan.seeds = 9..3\n"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos) << error.what();
  }
  // Bad mode.
  EXPECT_THROW(plan_from_config(ConfigFile::parse("plan.mode = everything\n")),
               std::invalid_argument);
  // Bad placement name.
  EXPECT_THROW(plan_from_config(ConfigFile::parse(
                   "plan.mode = single\nplan.jobs = UR\nplan.placements = diagonal\n")),
               std::invalid_argument);
  // Malformed job entry.
  EXPECT_THROW(plan_from_config(ConfigFile::parse(
                   "plan.mode = single\nplan.jobs = UR:many\n")),
               std::invalid_argument);
  // Zero/negative node counts used to slip through and fail (or worse,
  // misbehave) deep inside expansion; now the parser rejects them, naming
  // the line and the bare-APP "fill the machine" alternative.
  for (const char* jobs : {"UR:0", "UR:-5", "FFT3D:528,UR:0"}) {
    try {
      plan_from_config(
          ConfigFile::parse("plan.mode = single\nplan.jobs = " + std::string(jobs) + "\n"));
      FAIL() << "expected invalid_argument for plan.jobs = " << jobs;
    } catch (const std::invalid_argument& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("line 2"), std::string::npos) << what;
      EXPECT_NE(what.find(">= 1"), std::string::npos) << what;
    }
  }
  // Variant override without '='.
  EXPECT_THROW(plan_from_config(ConfigFile::parse(
                   "plan.mode = single\nplan.jobs = UR\nplan.variant.x = nonsense\n")),
               std::invalid_argument);
  // Base keys still go through apply_config's typo safety.
  EXPECT_THROW(plan_from_config(ConfigFile::parse("routng = PAR\nplan.jobs = UR\n")),
               std::invalid_argument);
}

TEST(PlanFromConfig, FileRunMatchesProgrammaticPlan) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_plan.cfg";
  {
    std::ofstream out(path);
    out << "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\nscale = 64\n"
           "routing = UGALg\nplan.mode = single\nplan.jobs = UR:32\nplan.seeds = 42,43\n";
  }
  const ExperimentPlan from_file = load_plan(path);
  std::remove(path.c_str());

  ExperimentPlan programmatic = tiny_single_plan();
  programmatic.seeds = {42, 43};
  EXPECT_EQ(jsonl_of(from_file, 2), jsonl_of(programmatic, 2));
}

}  // namespace
}  // namespace dfly

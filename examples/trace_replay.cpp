// Trace record & replay: capture every application-level message of a live
// run, save it to CSV, and re-inject it as a deterministic workload —
// including against a different routing algorithm.
//
//   $ ./trace_replay [trace.csv]     (default: writes fft3d_trace.csv)
//
// Demonstrates:
//   - Study::record_trace / Study::trace — the mpi::SendObserver hook,
//   - trace::MessageTrace::{summary,save_csv,load_csv},
//   - trace::ReplayMotif — trace-driven workload injection.

#include <cstdio>
#include <memory>
#include <string>

#include "core/study.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "fft3d_trace.csv";

  // 1. Record: run FFT3D under PAR and capture its message trace.
  dfly::trace::MessageTrace recorded;
  {
    dfly::StudyConfig config;
    config.topo = dfly::DragonflyParams{4, 8, 4, 9};
    config.routing = "PAR";
    config.scale = 16;
    dfly::Study study(config);
    const int app = study.add_app("FFT3D", 144);
    study.record_trace(app);
    const dfly::Report report = study.run();
    recorded = study.trace(app);
    std::printf("recorded run  : %s, comm %.3f ms\n", report.routing.c_str(),
                report.apps[0].comm_mean_ms);
  }

  const dfly::trace::TraceSummary summary = recorded.summary();
  std::printf("trace         : %llu messages, %.1f MB, %.2f ms span, peak ingress %.1f KB\n",
              static_cast<unsigned long long>(summary.messages), summary.total_bytes / 1e6,
              summary.duration_ms, summary.peak_ingress_bytes / 1e3);

  // 2. Round-trip through CSV (the on-disk interchange format).
  recorded.save_csv(path);
  const dfly::trace::MessageTrace loaded = dfly::trace::MessageTrace::load_csv(path);
  std::printf("saved/loaded  : %s (%zu records)\n", path.c_str(), loaded.size());

  // 3. Replay the same traffic under Q-adaptive routing.
  {
    dfly::StudyConfig config;
    config.topo = dfly::DragonflyParams{4, 8, 4, 9};
    config.routing = "Q-adp";
    dfly::Study study(config);
    auto replay = std::make_unique<dfly::trace::ReplayMotif>(loaded);
    const int ranks = replay->required_ranks();
    study.add_motif(std::move(replay), ranks, "FFT3D-replay");
    const dfly::Report report = study.run();
    std::printf("replayed run  : %s, comm %.3f ms (same bytes, same pacing)\n",
                report.routing.c_str(), report.apps[0].comm_mean_ms);
    return report.completed ? 0 : 1;
  }
}

// Tests for SeedSweep (core/sweep.hpp), ConfigFile (core/config_file.hpp)
// and the JSON report writer (core/json_report.hpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/config_file.hpp"
#include "core/json_report.hpp"
#include "core/sweep.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

Report run_shift(std::uint64_t seed, const std::string& routing = "PAR") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = seed;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.iterations = 40;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 20, "Shift");
  return study.run();
}

// --- SeedSweep ---------------------------------------------------------------

TEST(SeedSweep, AggregatesAcrossSeeds) {
  const SeedSweep sweep(100, 5);
  ASSERT_EQ(sweep.seeds().size(), 5u);
  EXPECT_EQ(sweep.seeds()[4], 104u);
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_EQ(summary.runs, 5);
  EXPECT_EQ(summary.completed_runs, 5);
  ASSERT_EQ(summary.apps.size(), 1u);
  EXPECT_EQ(summary.apps[0].app, "Shift");
  EXPECT_GT(summary.apps[0].comm_ms.mean, 0.0);
  EXPECT_EQ(summary.apps[0].comm_ms.n, 5);
  EXPECT_GE(summary.apps[0].comm_ms.max, summary.apps[0].comm_ms.min);
  // CI must be positive when there is run-to-run variation (random
  // placement differs per seed) and bounded by the spread.
  EXPECT_GE(summary.apps[0].comm_ms.ci95_half, 0.0);
  EXPECT_GT(summary.makespan_ms.mean, 0.0);
}

TEST(SeedSweep, SingleSeedHasZeroCi) {
  const SeedSweep sweep(7, 1);
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_EQ(summary.apps[0].comm_ms.n, 1);
  EXPECT_EQ(summary.apps[0].comm_ms.ci95_half, 0.0);
  EXPECT_EQ(summary.apps[0].comm_ms.stddev, 0.0);
}

TEST(SeedSweep, IdenticalSeedsGiveZeroSpread) {
  const SeedSweep sweep(std::vector<std::uint64_t>{42, 42, 42});
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_NEAR(summary.apps[0].comm_ms.stddev, 0.0, 1e-9);
  EXPECT_EQ(summary.makespan_ms.min, summary.makespan_ms.max);
}

TEST(SeedSweep, Validation) {
  EXPECT_THROW(SeedSweep(std::vector<std::uint64_t>{}), std::invalid_argument);
  EXPECT_THROW(SeedSweep(1, 0), std::invalid_argument);
  EXPECT_THROW(SeedSweep::aggregate({}), std::invalid_argument);
  const SweepSummary summary = SeedSweep::aggregate({run_shift(1)});
  EXPECT_THROW(summary.app("nope"), std::out_of_range);
  EXPECT_NO_THROW(summary.app("Shift"));
}

// --- ConfigFile ----------------------------------------------------------------

TEST(ConfigFile, ParsesTypedValues) {
  const ConfigFile cfg = ConfigFile::parse(R"(
# comment
; alt comment
routing = Q-adp
topo.g = 17
net.link_gbps = 100.5
cc.enabled = yes
qos.weights = 4, 2,1
)");
  EXPECT_EQ(cfg.get_string("routing"), "Q-adp");
  EXPECT_EQ(cfg.get_int("topo.g"), 17);
  EXPECT_DOUBLE_EQ(cfg.get_double("net.link_gbps"), 100.5);
  EXPECT_TRUE(cfg.get_bool("cc.enabled"));
  EXPECT_EQ(cfg.get_int_list("qos.weights"), (std::vector<int>{4, 2, 1}));
  // Fallbacks.
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
  EXPECT_FALSE(cfg.get_bool("missing"));
  EXPECT_TRUE(cfg.get_int_list("missing").empty());
}

TEST(ConfigFile, SyntaxAndTypeErrors) {
  EXPECT_THROW(ConfigFile::parse("novalue\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::parse("= 3\n"), std::runtime_error);
  const ConfigFile cfg = ConfigFile::parse("x = abc\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b"), std::invalid_argument);
}

TEST(ConfigFile, DuplicateKeyErrorNamesBothLines) {
  try {
    ConfigFile::parse("routing = PAR\n# comment\nrouting = MIN\n");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate key 'routing'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
}

TEST(ConfigFile, TracksSourceLinesAndNamesThemInValueErrors) {
  const ConfigFile cfg = ConfigFile::parse("\n# header\nseed = 42\n\ntopo.g = nine\n");
  EXPECT_EQ(cfg.line_of("seed"), 3);
  EXPECT_EQ(cfg.line_of("topo.g"), 5);
  EXPECT_EQ(cfg.line_of("missing"), 0);
  try {
    cfg.get_int("topo.g");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 5"), std::string::npos) << error.what();
  }
  // Programmatically-set keys have no line; errors fall back to the key name.
  ConfigFile direct;
  direct.set("x", "abc");
  try {
    direct.get_int("x");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("key 'x'"), std::string::npos) << error.what();
  }
}

TEST(ConfigFile, StringLists) {
  const ConfigFile cfg = ConfigFile::parse("names = PAR, Q-adp ,MIN\nempty_item = a,,b\n");
  EXPECT_EQ(cfg.get_string_list("names"), (std::vector<std::string>{"PAR", "Q-adp", "MIN"}));
  EXPECT_TRUE(cfg.get_string_list("missing").empty());
  EXPECT_THROW(cfg.get_string_list("empty_item"), std::invalid_argument);
}

TEST(ConfigFile, SeedListsAndRangeSyntax) {
  const ConfigFile cfg = ConfigFile::parse("seeds = 42..46,100, 7\nsingle = 3..3\n");
  EXPECT_EQ(cfg.get_seed_list("seeds"),
            (std::vector<std::uint64_t>{42, 43, 44, 45, 46, 100, 7}));
  EXPECT_EQ(cfg.get_seed_list("single"), (std::vector<std::uint64_t>{3}));
  EXPECT_TRUE(cfg.get_seed_list("missing").empty());

  // Negative items must be rejected, not wrapped to huge values by stoull.
  for (const char* bad : {"9..3", "1..", "..4", "x..4", "1..y", "forty", "-1", "-1..3"}) {
    const ConfigFile broken = ConfigFile::parse("# pad\nseeds = " + std::string(bad) + "\n");
    try {
      broken.get_seed_list("seeds");
      FAIL() << "expected invalid_argument for '" << bad << "'";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
          << bad << ": " << error.what();
    }
  }
}

TEST(ConfigFile, EmitRoundTripsExactly) {
  const ConfigFile cfg = ConfigFile::parse("b = 2\na = 1\nqos.weights = 4,1\n");
  const ConfigFile again = ConfigFile::parse(cfg.emit());
  EXPECT_EQ(cfg.values(), again.values());
  EXPECT_EQ(cfg.emit(), "a = 1\nb = 2\nqos.weights = 4,1\n");  // sorted keys
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_test.cfg";
  {
    std::ofstream out(path);
    out << "routing = UGALn\nseed = 77\n";
  }
  const ConfigFile cfg = ConfigFile::load(path);
  EXPECT_EQ(cfg.get_string("routing"), "UGALn");
  EXPECT_EQ(cfg.get_int("seed"), 77);
  std::remove(path.c_str());
  EXPECT_THROW(ConfigFile::load("/nonexistent/x.cfg"), std::runtime_error);
}

TEST(ApplyConfig, OverlaysOntoStudyConfig) {
  const ConfigFile cfg = ConfigFile::parse(R"(
topo.p = 2
topo.a = 4
topo.h = 2
topo.g = 9
routing = Q-adp
placement = contiguous
seed = 123
scale = 4
net.buffer_packets = 12
qos.num_classes = 2
qos.weights = 3,1
cc.enabled = true
qadp.alpha = 0.5
ugal.bias = 10
)");
  const StudyConfig out = apply_config(StudyConfig{}, cfg);
  EXPECT_EQ(out.topo.g, 9);
  EXPECT_EQ(out.topo.num_nodes(), 72);
  EXPECT_EQ(out.routing, "Q-adp");
  EXPECT_EQ(out.placement, PlacementPolicy::kContiguous);
  EXPECT_EQ(out.seed, 123u);
  EXPECT_EQ(out.scale, 4);
  EXPECT_EQ(out.net.buffer_packets, 12);
  EXPECT_EQ(out.net.qos.num_classes, 2);
  EXPECT_EQ(out.net.qos.weights, (std::vector<int>{3, 1}));
  EXPECT_TRUE(out.net.cc.enabled);
  EXPECT_DOUBLE_EQ(out.qadp.alpha, 0.5);
  EXPECT_EQ(out.ugal.bias, 10);
}

TEST(ApplyConfig, UnknownKeyThrows) {
  const ConfigFile cfg = ConfigFile::parse("routng = PAR\n");  // typo
  try {
    apply_config(StudyConfig{}, cfg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("routng"), std::string::npos);
  }
}

// The full parse -> apply -> re-emit -> parse loop, for EVERY accepted key:
// a StudyConfig with no field left at its default must survive the trip with
// every key byte-equal. apply_config and config_to_file walk one shared key
// table, so this test pins both directions at once.
TEST(ApplyConfig, RoundTripsEveryAcceptedKey) {
  StudyConfig config;
  config.topo = DragonflyParams{3, 6, 3, 10};
  config.topo.arrangement = GlobalArrangement::kAbsolute;
  config.routing = "Q-adp";
  config.placement = PlacementPolicy::kContiguous;
  config.seed = 123456789012345ull;
  config.scale = 7;
  config.time_limit = 1234 * kMs;
  config.net.flit_bytes = 32;
  config.net.packet_bytes = 512;
  config.net.buffer_packets = 17;
  config.net.num_vcs = 5;
  config.net.link_gbps = 87.5;
  config.net.local_latency = 33 * kNs;
  config.net.global_latency = 451 * kNs;
  config.net.router_latency = 9 * kNs;
  config.protocol.eager_threshold = 12345;
  config.protocol.control_bytes = 16;
  config.net.qos.num_classes = 3;
  config.net.qos.weights = {5, 2, 1};
  config.net.qos.quantum_packets = 6;
  config.net.cc.enabled = true;
  config.net.cc.ecn_threshold_packets = 11;
  config.net.cc.md_factor = 0.625;
  config.net.cc.ai_step = 0.0325;
  config.net.cc.min_rate = 0.07;
  config.qadp.alpha = 0.35;
  config.qadp.epsilon = 0.002;
  config.qadp.queue_weight = 1.75;
  config.ugal.bias = 4;
  config.ugal.nonmin_weight = 3;
  config.ugal.min_candidates = 3;
  config.ugal.nonmin_candidates = 4;
  config.faults.add(LinkFault{12, 11, 8, 500 * kNs});
  config.faults.add(LinkFault{0, 14, 4, 0});

  const ConfigFile emitted = config_to_file(config);
  const ConfigFile reparsed = ConfigFile::parse(emitted.emit());
  const StudyConfig rebuilt = apply_config(StudyConfig{}, reparsed);

  // Key-for-key equality of the re-emitted map proves every accepted key
  // made the round trip without loss...
  EXPECT_EQ(config_to_file(rebuilt).values(), emitted.values());
  // ...and the structural spot-checks pin the semantic fields too.
  EXPECT_EQ(rebuilt.topo, config.topo);
  EXPECT_EQ(rebuilt.net, config.net);
  EXPECT_EQ(rebuilt.routing, config.routing);
  EXPECT_EQ(rebuilt.placement, config.placement);
  EXPECT_EQ(rebuilt.seed, config.seed);
  EXPECT_EQ(rebuilt.scale, config.scale);
  EXPECT_EQ(rebuilt.time_limit, config.time_limit);
  EXPECT_EQ(rebuilt.protocol, config.protocol);
  EXPECT_EQ(rebuilt.qadp, config.qadp);
  EXPECT_EQ(rebuilt.ugal, config.ugal);
  EXPECT_EQ(rebuilt.faults, config.faults);
}

TEST(ApplyConfig, DefaultConfigRoundTripsAndOmitsEmptyFaults) {
  const ConfigFile emitted = config_to_file(StudyConfig{});
  EXPECT_FALSE(emitted.has("faults"));  // empty plan -> no key
  const StudyConfig rebuilt = apply_config(StudyConfig{}, ConfigFile::parse(emitted.emit()));
  EXPECT_EQ(config_to_file(rebuilt).values(), emitted.values());
}

TEST(ApplyConfig, NewHardeningKeysApply) {
  const ConfigFile cfg = ConfigFile::parse(
      "qadp.queue_weight = 2.5\nugal.min_candidates = 3\nugal.nonmin_candidates = 1\n"
      "protocol.control_bytes = 64\nfaults = 1:2:8:500,3:4:2\n");
  const StudyConfig out = apply_config(StudyConfig{}, cfg);
  EXPECT_DOUBLE_EQ(out.qadp.queue_weight, 2.5);
  EXPECT_EQ(out.ugal.min_candidates, 3);
  EXPECT_EQ(out.ugal.nonmin_candidates, 1);
  EXPECT_EQ(out.protocol.control_bytes, 64);
  ASSERT_EQ(out.faults.size(), 2u);
  EXPECT_EQ(out.faults.faults()[0], (LinkFault{1, 2, 8, 500 * kNs}));
  EXPECT_EQ(out.faults.faults()[1], (LinkFault{3, 4, 2, 0}));
}

TEST(ApplyConfig, ConfiguredStudyRuns) {
  const ConfigFile cfg = ConfigFile::parse(
      "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\nrouting = UGALg\n");
  Study study(apply_config(StudyConfig{}, cfg));
  workloads::ShiftParams p;
  p.iterations = 20;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 16, "S");
  EXPECT_TRUE(study.run().completed);
}

// --- JsonWriter / reports ---------------------------------------------------------

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("dfly");
  w.key("n").value(3);
  w.key("pi").value(3.5);
  w.key("ok").value(true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().key("x").value("y").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"dfly","n":3,"pi":3.5,"ok":true,"nothing":null,)"
            R"("list":[1,2],"nested":{"x":"y"}})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);  // consecutive keys
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error);  // two top-level values
  }
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(ReportJson, ContainsKeyMetrics) {
  const Report report = run_shift(5);
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"routing\":\"PAR\""), std::string::npos);
  EXPECT_NE(json.find("\"apps\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"comm_mean_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
}

TEST(SweepJson, ContainsStats) {
  const SeedSweep sweep(50, 3);
  const SweepSummary summary =
      sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  const std::string json = sweep_to_json(summary);
  EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ci95_half\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"Shift\""), std::string::npos);
}

TEST(SaveJson, RoundTripsToDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/report.json";
  save_json(path, "{\"x\":1}");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "{\"x\":1}");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dfly

#include "core/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dfly {

namespace {

std::string trim(const std::string& raw) {
  const auto first = raw.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = raw.find_last_not_of(" \t\r\n");
  return raw.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ConfigFile: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile file;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#' || stripped.front() == ';') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("ConfigFile: line " + std::to_string(line_no) +
                               " has no '=': " + stripped);
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("ConfigFile: empty key on line " + std::to_string(line_no));
    }
    file.values_[key] = value;
  }
  return file;
}

std::string ConfigFile::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int ConfigFile::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const int v = std::stoi(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("ConfigFile: key '" + key + "' is not an int: " + it->second);
  }
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("ConfigFile: key '" + key + "' is not a number: " + it->second);
  }
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("ConfigFile: key '" + key + "' is not a bool: " + it->second);
}

std::vector<int> ConfigFile::get_int_list(const std::string& key) const {
  const auto it = values_.find(key);
  std::vector<int> out;
  if (it == values_.end()) return out;
  std::istringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string t = trim(item);
    if (t.empty()) continue;
    try {
      out.push_back(std::stoi(t));
    } catch (const std::exception&) {
      throw std::invalid_argument("ConfigFile: key '" + key + "' has a non-int item: " + t);
    }
  }
  return out;
}

StudyConfig apply_config(StudyConfig base, const ConfigFile& file) {
  for (const auto& [key, value] : file.values()) {
    (void)value;
    if (key == "topo.p") base.topo.p = file.get_int(key);
    else if (key == "topo.a") base.topo.a = file.get_int(key);
    else if (key == "topo.h") base.topo.h = file.get_int(key);
    else if (key == "topo.g") base.topo.g = file.get_int(key);
    else if (key == "topo.arrangement")
      base.topo.arrangement = arrangement_from_string(file.get_string(key));
    else if (key == "routing") base.routing = file.get_string(key);
    else if (key == "placement") base.placement = placement_from_string(file.get_string(key));
    else if (key == "seed") base.seed = static_cast<std::uint64_t>(file.get_int(key));
    else if (key == "scale") base.scale = file.get_int(key);
    else if (key == "time_limit_ms") base.time_limit = file.get_int(key) * kMs;
    else if (key == "net.flit_bytes") base.net.flit_bytes = file.get_int(key);
    else if (key == "net.packet_bytes") base.net.packet_bytes = file.get_int(key);
    else if (key == "net.buffer_packets") base.net.buffer_packets = file.get_int(key);
    else if (key == "net.num_vcs") base.net.num_vcs = file.get_int(key);
    else if (key == "net.link_gbps") base.net.link_gbps = file.get_double(key);
    else if (key == "net.local_latency_ns") base.net.local_latency = file.get_int(key) * kNs;
    else if (key == "net.global_latency_ns") base.net.global_latency = file.get_int(key) * kNs;
    else if (key == "net.router_latency_ns") base.net.router_latency = file.get_int(key) * kNs;
    else if (key == "protocol.eager_threshold") {
      base.protocol.eager_threshold = file.get_int(key);
    } else if (key == "qos.num_classes") base.net.qos.num_classes = file.get_int(key);
    else if (key == "qos.weights") base.net.qos.weights = file.get_int_list(key);
    else if (key == "qos.quantum_packets") base.net.qos.quantum_packets = file.get_int(key);
    else if (key == "cc.enabled") base.net.cc.enabled = file.get_bool(key);
    else if (key == "cc.ecn_threshold_packets") {
      base.net.cc.ecn_threshold_packets = file.get_int(key);
    } else if (key == "cc.md_factor") base.net.cc.md_factor = file.get_double(key);
    else if (key == "cc.ai_step") base.net.cc.ai_step = file.get_double(key);
    else if (key == "cc.min_rate") base.net.cc.min_rate = file.get_double(key);
    else if (key == "qadp.alpha") base.qadp.alpha = file.get_double(key);
    else if (key == "qadp.epsilon") base.qadp.epsilon = file.get_double(key);
    else if (key == "ugal.bias") base.ugal.bias = file.get_int(key);
    else if (key == "ugal.nonmin_weight") base.ugal.nonmin_weight = file.get_int(key);
    else {
      throw std::invalid_argument("apply_config: unknown key '" + key + "'");
    }
  }
  return base;
}

}  // namespace dfly

#include "net/nic.hpp"

#include <cassert>

#include "core/blueprint.hpp"
#include "net/router.hpp"

namespace dfly {

Nic::Nic(Engine& engine, const SystemBlueprint& blueprint, int node,
         PacketPool& pool, LinkStats& stats, PacketLog& packet_log) {
  reinit(engine, blueprint, node, pool, stats, packet_log);
}

void Nic::reinit(Engine& engine, const SystemBlueprint& blueprint, int node,
                 PacketPool& pool, LinkStats& stats, PacketLog& packet_log) {
  const Dragonfly& topo = blueprint.topo();
  const NetConfig& cfg = blueprint.net();
  engine_ = &engine;
  topo_ = &topo;
  cfg_ = &cfg;
  node_ = node;
  pool_ = &pool;
  stats_ = &stats;
  packet_log_ = &packet_log;
  links_ = &blueprint.links();
  router_ = nullptr;
  sink_ = nullptr;
  classes_ = nullptr;
  directory_ = nullptr;
  sendq_.clear();
  queued_bytes_ = 0;
  inbound_.clear();
  locking_ = false;
  credits_ = cfg.buffer_packets;
  busy_until_ = 0;
  try_pending_ = false;
  rate_ = 1.0;
  ecn_notices_ = 0;
  last_decrease_ = -1;
  recover_pending_ = false;
}

void Nic::attach(Router& router) { router_ = &router; }

void Nic::enqueue_message(std::uint64_t msg_id, int dst_node, std::int64_t bytes, int app_id) {
  assert(bytes >= 1);
  sendq_.push_back(Chunk{msg_id, dst_node, bytes, static_cast<std::int16_t>(app_id)});
  queued_bytes_ += bytes;
  if (!try_pending_) {
    try_pending_ = true;
    engine_->schedule_at(engine_->now() >= busy_until_ ? engine_->now() : busy_until_, *this,
                         nic_ev::kTryInject);
  }
}

void Nic::expect_message(std::uint64_t msg_id, std::int64_t bytes) {
  assert(bytes >= 1);
  // Called on the destination NIC from the sender's side, which in a parallel
  // cell is another domain's thread — the one cross-domain write on a NIC.
  std::unique_lock<std::mutex> lock;
  if (locking_) lock = std::unique_lock<std::mutex>(inbound_mutex_);
  inbound_.emplace(msg_id, bytes);
}

void Nic::handle(Engine& engine, const Event& event) {
  switch (event.kind) {
    case nic_ev::kArrive:
      on_eject(engine, static_cast<std::uint32_t>(event.a));
      break;
    case nic_ev::kTryInject:
      try_pending_ = false;
      try_inject(engine);
      break;
    case nic_ev::kCredit:
      ++credits_;
      assert(credits_ <= cfg_->buffer_packets);
      if (!sendq_.empty() && !try_pending_) {
        try_pending_ = true;
        engine.schedule_at(engine.now() >= busy_until_ ? engine.now() : busy_until_, *this,
                           nic_ev::kTryInject);
      }
      break;
    case nic_ev::kSendDone:
      if (sink_ != nullptr) sink_->message_sent(event.a);
      break;
    case nic_ev::kEcnNotice:
      on_ecn_notice(engine);
      break;
    case nic_ev::kRateRecover:
      on_rate_recover(engine);
      break;
    default:
      assert(false && "unknown nic event");
  }
}

void Nic::on_ecn_notice(Engine& engine) {
  const CongestionControlConfig& cc = cfg_->cc;
  ++ecn_notices_;
  // Coalesce: one multiplicative decrease per reaction window, so a burst
  // of marks from a single congestion episode cuts the rate once.
  if (last_decrease_ >= 0 && engine.now() - last_decrease_ < cc.decrease_guard) return;
  last_decrease_ = engine.now();
  rate_ *= cc.md_factor;
  if (rate_ < cc.min_rate) rate_ = cc.min_rate;
  if (!recover_pending_) {
    recover_pending_ = true;
    engine.schedule_at(engine.now() + cc.ai_period, *this, nic_ev::kRateRecover);
  }
}

void Nic::on_rate_recover(Engine& engine) {
  const CongestionControlConfig& cc = cfg_->cc;
  recover_pending_ = false;
  rate_ += cc.ai_step;
  if (rate_ < 1.0) {
    recover_pending_ = true;
    engine.schedule_at(engine.now() + cc.ai_period, *this, nic_ev::kRateRecover);
  } else {
    rate_ = 1.0;
  }
}

void Nic::try_inject(Engine& engine) {
  if (sendq_.empty()) return;
  if (engine.now() < busy_until_) {
    if (!try_pending_) {
      try_pending_ = true;
      engine.schedule_at(busy_until_, *this, nic_ev::kTryInject);
    }
    return;
  }
  if (credits_ == 0) return;  // kCredit re-arms us

  Chunk& chunk = sendq_.front();
  const auto payload =
      static_cast<std::int32_t>(chunk.remaining < cfg_->packet_bytes ? chunk.remaining
                                                                     : cfg_->packet_bytes);
  Packet& pkt = pool_->alloc();
  pkt.msg_id = chunk.msg_id;
  pkt.src_node = node_;
  pkt.dst_node = chunk.dst_node;
  pkt.bytes = payload;
  pkt.app_id = chunk.app_id;
  pkt.traffic_class = classes_ == nullptr ? 0 : classes_->klass(chunk.app_id);
  pkt.wire_time = engine.now();
  pkt.out_vc = 0;
  pkt.phase = RoutePhase::kAtSource;

  --credits_;
  const SimTime ser = cfg_->serialization(payload);
  // AIMD pacing: a throttled source occupies its injection wire 1/rate
  // longer per packet, i.e. injects at rate x link speed.
  busy_until_ = engine.now() + (rate_ >= 1.0 ? ser : static_cast<SimTime>(
                                                         static_cast<double>(ser) / rate_));
  stats_->add_traffic(links_->nic_out(node_), pkt.app_id, payload);

  const int in_port = topo_->terminal_port_of_node(node_);
  engine.schedule_at(busy_until_ + cfg_->terminal_latency + cfg_->router_latency, *router_,
                     router_ev::kArrive, pkt.id, static_cast<std::uint64_t>(in_port));

  chunk.remaining -= payload;
  queued_bytes_ -= payload;
  if (chunk.remaining == 0) {
    engine.schedule_at(busy_until_, *this, nic_ev::kSendDone, chunk.msg_id);
    sendq_.pop_front();
  }
  if (!sendq_.empty() && !try_pending_) {
    try_pending_ = true;
    engine.schedule_at(busy_until_, *this, nic_ev::kTryInject);
  }
}

void Nic::on_eject(Engine& engine, std::uint32_t packet_id) {
  Packet& pkt = pool_->get(packet_id);
  assert(pkt.dst_node == node_);

  // Reflect ECN marks to the source as a congestion notification. The
  // return path is modelled contention-free (control-plane bandwidth) at
  // the unloaded one-way latency of a three-hop Dragonfly path.
  if (pkt.ecn && cfg_->cc.enabled && directory_ != nullptr && pkt.src_node != node_) {
    const SimTime return_delay =
        cfg_->global_latency + 2 * cfg_->local_latency + cfg_->terminal_latency;
    engine.schedule_at(engine.now() + return_delay, directory_->nic_at(pkt.src_node),
                       nic_ev::kEcnNotice);
  }

  PacketRecord record;
  record.src_node = pkt.src_node;
  record.dst_node = pkt.dst_node;
  record.app_id = pkt.app_id;
  record.hops = static_cast<std::int16_t>(pkt.hops);
  record.nonminimal = pkt.nonminimal;
  record.wire_time = pkt.wire_time;
  record.eject_time = engine.now();
  record.bytes = pkt.bytes;
  packet_log_->record(record);

  // Return the router's terminal-port buffer slot.
  engine.schedule_at(engine.now() + cfg_->terminal_latency, *router_, router_ev::kCredit,
                     static_cast<std::uint64_t>(topo_->terminal_port_of_node(node_)),
                     static_cast<std::uint64_t>(pkt.out_vc));

  const std::uint64_t msg_id = pkt.msg_id;
  bool complete = false;
  {
    std::unique_lock<std::mutex> lock;
    if (locking_) lock = std::unique_lock<std::mutex>(inbound_mutex_);
    std::int64_t* remaining = inbound_.find(msg_id);
    assert(remaining != nullptr && "packet for unknown message");
    *remaining -= pkt.bytes;
    assert(*remaining >= 0);
    complete = *remaining == 0;
    if (complete) inbound_.erase(msg_id);
  }
  pool_->release(pkt);
  if (complete && sink_ != nullptr) sink_->message_delivered(msg_id);
}

}  // namespace dfly

// Link-fault resilience: degrade a slice of the global fabric and compare
// how adaptive and intelligent routing absorb the fault.
//
//   $ ./link_faults [fraction] [slowdown]     (defaults: 0.10 8)
//
// Production Dragonfly links retrain to lower speeds after error bursts.
// A degraded wire is invisible to source-side heuristics (UGAL/PAR read
// local queues; backpressure arrives late), while Q-adaptive's learned
// delivery-time estimates steer around it. This example degrades a random
// `fraction` of global links by `slowdown`x and prints the victim
// application's communication time under both policies, healthy vs faulted.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.hpp"
#include "net/fault.hpp"

namespace {

double run_case(const std::string& routing, double fraction, int slowdown) {
  dfly::StudyConfig config;
  config.topo = dfly::DragonflyParams::paper();
  config.routing = routing;
  config.scale = 32;
  config.seed = 7;
  if (fraction > 0) {
    const dfly::Dragonfly topo(config.topo);
    config.faults =
        dfly::FaultPlan::degrade_random_globals(topo, fraction, slowdown, 0, config.seed);
  }
  dfly::Study study(config);
  study.add_app("FFT3D", 528);
  study.add_app("UR", 528);
  const dfly::Report report = study.run();
  return report.apps[0].comm_mean_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.10;
  const int slowdown = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("degrading %.0f%% of global links by %dx (FFT3D + UR background)\n\n",
              fraction * 100.0, slowdown);
  std::printf("%-8s %18s %18s %10s\n", "routing", "healthy comm (ms)", "faulted comm (ms)",
              "penalty");
  for (const std::string routing : {"PAR", "Q-adp"}) {
    const double healthy = run_case(routing, 0.0, slowdown);
    const double faulted = run_case(routing, fraction, slowdown);
    std::printf("%-8s %18.3f %18.3f %9.2fx\n", routing.c_str(), healthy, faulted,
                healthy > 0 ? faulted / healthy : 0.0);
  }
  std::puts("\nQ-adp's penalty should be markedly smaller: it learns end-to-end");
  std::puts("delivery times and detours around slow wires that PAR cannot see.");
  return 0;
}

#pragma once

#include <memory>
#include <string>

#include "core/blueprint.hpp"
#include "core/study.hpp"

namespace dfly::testsupport {

/// Build a private SystemBlueprint for direct Network/Routing fixtures that
/// bypass Study. The routing name only matters for blueprint extras (initial
/// Q-tables when "Q-adp"); fixtures still instantiate their routing policy
/// through the factory as before.
inline std::shared_ptr<const SystemBlueprint> make_blueprint(
    DragonflyParams params = DragonflyParams::tiny(), NetConfig net = {},
    const std::string& routing = "MIN") {
  StudyConfig config;
  config.topo = params;
  config.net = net;
  config.routing = routing;
  return SystemBlueprint::build(config);
}

}  // namespace dfly::testsupport

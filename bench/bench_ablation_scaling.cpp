// Ablation: system-size scaling.
//
// The paper fixes a 33-group, 1,056-node system. Dragonfly's routing
// behaviour depends on group count (path diversity grows with g): this
// bench repeats the FFT3D+Halo3D pairwise experiment on balanced systems of
// 9, 17 and 33 groups (a*h must be a multiple of g-1, so these are the
// shapes that keep one global link per group pair with a=8, h=4) and on
// multi-seed repetitions, reporting mean +/- 95% CI per cell. Emits
// scaling_interference.svg.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"

namespace {

using namespace dfly;

SweepStat run_cell(const bench::Options& options, const std::string& routing, int groups,
                   int repetitions) {
  std::vector<Report> reports;
  std::vector<std::function<Report()>> tasks;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    StudyConfig config = options.config(routing);
    config.topo = DragonflyParams{4, 8, 4, groups};
    config.seed = options.seed + static_cast<std::uint64_t>(repetition);
    tasks.push_back([config]() -> Report {
      Study study(config);
      const int half = config.topo.num_nodes() / 2;
      study.add_app("FFT3D", half);
      study.add_app("Halo3D", half);
      return study.run();
    });
  }
  reports = bench::parallel_map(tasks);
  const SweepSummary summary = SeedSweep::aggregate(reports);
  return summary.app("FFT3D").comm_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 64);
  bench::print_header("ABLATION: group-count scaling (FFT3D interfered by Halo3D)");
  std::printf("Systems: g=9 (288 nodes), g=17 (544), g=33 (1,056); a=8 h=4 p=4.\n\n");

  const std::vector<int> group_counts{9, 17, 33};
  const std::vector<std::string> routings{"UGALn", "PAR", "Q-adp"};
  constexpr int kRepetitions = 3;

  viz::AsciiTable table({"routing", "g=9 (ms +/- ci)", "g=17 (ms +/- ci)",
                         "g=33 (ms +/- ci)"});
  viz::LineChart chart("FFT3D comm time vs system size (interfered by Halo3D)",
                       "groups", "comm time (ms)");
  for (const std::string& routing : routings) {
    std::vector<std::string> cells{routing};
    std::vector<double> xs, ys;
    for (const int groups : group_counts) {
      const SweepStat stat = run_cell(options, routing, groups, kRepetitions);
      cells.push_back(bench::fmt(stat.mean) + " +/- " + bench::fmt(stat.ci95_half));
      xs.push_back(groups);
      ys.push_back(stat.mean);
    }
    table.row(cells);
    chart.add_series(routing, xs, ys);
  }
  std::printf("%s\n", table.str().c_str());
  chart.save("scaling_interference.svg");
  std::printf("Wrote scaling_interference.svg\n\n");
  std::printf("Expected: interference persists at every size; Q-adp's advantage holds\n"
              "or widens with g (more path diversity for the learned policy to exploit).\n");
  return 0;
}

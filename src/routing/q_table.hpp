#pragma once

#include <cstdint>
#include <vector>

namespace dfly {

/// Two-level Q-table of one router (Kang, Wang, Lan — HPDC'21).
///
/// Level 1 ("to group"): Q[dest_group][out_port] estimates the remaining
/// delivery time (ps) to any node in `dest_group` when leaving through
/// `out_port`. Level 2 ("in group"): Q[dest_local][out_port] estimates the
/// remaining time to the router with local index `dest_local` in this
/// router's own group. Both levels are updated by one-hop feedback signals
/// carrying the downstream router's own best estimate.
class QTable {
 public:
  QTable(int num_groups, int num_locals, int radix);

  double global_q(int dest_group, int port) const {
    return global_[static_cast<std::size_t>(dest_group) * radix_ + static_cast<std::size_t>(port)];
  }
  double local_q(int dest_local, int port) const {
    return local_[static_cast<std::size_t>(dest_local) * radix_ + static_cast<std::size_t>(port)];
  }

  void set_global(int dest_group, int port, double value) {
    global_[static_cast<std::size_t>(dest_group) * radix_ + static_cast<std::size_t>(port)] = value;
  }
  void set_local(int dest_local, int port, double value) {
    local_[static_cast<std::size_t>(dest_local) * radix_ + static_cast<std::size_t>(port)] = value;
  }

  /// Exponential update: Q += alpha * (sample - Q). Returns the new value.
  double update_global(int dest_group, int port, double sample, double alpha) {
    auto& q = global_[static_cast<std::size_t>(dest_group) * radix_ + static_cast<std::size_t>(port)];
    q += alpha * (sample - q);
    return q;
  }
  double update_local(int dest_local, int port, double sample, double alpha) {
    auto& q = local_[static_cast<std::size_t>(dest_local) * radix_ + static_cast<std::size_t>(port)];
    q += alpha * (sample - q);
    return q;
  }

  int radix() const { return static_cast<int>(radix_); }
  int num_groups() const { return num_groups_; }
  int num_locals() const { return num_locals_; }

  /// Memory footprint in bytes (the paper stresses the table is lightweight).
  std::size_t footprint_bytes() const {
    return (global_.size() + local_.size()) * sizeof(double);
  }

 private:
  std::size_t radix_;
  int num_groups_;
  int num_locals_;
  std::vector<double> global_;
  std::vector<double> local_;
};

}  // namespace dfly

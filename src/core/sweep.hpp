#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "stats/histogram.hpp"

/// Multi-seed experiment sweeps.
///
/// The paper reports run-to-run variation (Fig 4's whiskers are variation
/// across ranks; production studies like Chunduri et al. report variation
/// across runs). A SeedSweep repeats one experiment under different seeds —
/// different random placements and traffic randomness — and aggregates every
/// reported metric with mean / stddev / min / max / 95% CI, which the
/// ablation benches print alongside single-run numbers.
namespace dfly {

/// Summary of one scalar metric across sweep repetitions.
struct SweepStat {
  double mean{0};
  double stddev{0};
  double min{0};
  double max{0};
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_half{0};
  int n{0};

  static SweepStat of(const Accumulator& acc);
};

/// Aggregated per-application metrics across repetitions.
struct AppSweep {
  std::string app;
  SweepStat comm_ms;
  SweepStat exec_ms;
  SweepStat lat_mean_us;
  SweepStat lat_p99_us;
  SweepStat nonminimal_fraction;
};

/// Aggregated whole-run metrics across repetitions.
struct SweepSummary {
  std::string routing;
  int runs{0};
  int completed_runs{0};
  std::vector<AppSweep> apps;
  SweepStat makespan_ms;
  SweepStat sys_lat_p99_us;
  SweepStat agg_throughput;
  SweepStat local_stall_ms;
  SweepStat global_stall_ms;
  SweepStat congestion_imbalance;

  const AppSweep& app(const std::string& name) const;
};

/// Runs `experiment` once per seed and aggregates the Reports. The factory
/// receives the seed and must build, run and return a finished Report (apps
/// must match across repetitions; the first run defines the app set).
class SeedSweep {
 public:
  explicit SeedSweep(std::vector<std::uint64_t> seeds);
  /// Convenience: seeds base, base+1, ..., base+n-1.
  SeedSweep(std::uint64_t base_seed, int n);

  /// `jobs` shards the per-seed cells across worker threads with
  /// ParallelRunner semantics: > 0 = exactly that many workers, 0 (default)
  /// = honour DFSIM_JOBS, else sequential. Each cell builds its own Engine
  /// and Rng from its seed, and reports are collected into slots indexed by
  /// seed position and aggregated in seed order — the summary is
  /// bit-identical to a sequential run for any worker count.
  ///
  /// Deprecated-but-working shim: this is now a thin builder over the
  /// unified campaign core (core/plan.hpp — a seeds-axis ExperimentPlan
  /// with a custom cell runner). New code should build an ExperimentPlan
  /// directly and use run_plan.
  SweepSummary run(const std::function<Report(std::uint64_t seed)>& experiment,
                   int jobs = 0) const;

  const std::vector<std::uint64_t>& seeds() const { return seeds_; }

  /// Aggregate already-collected reports (exposed for tests and for benches
  /// that parallelise their own runs).
  static SweepSummary aggregate(const std::vector<Report>& reports);

 private:
  std::vector<std::uint64_t> seeds_;
};

}  // namespace dfly

// Quickstart: simulate one application on the paper's 1,056-node Dragonfly
// and print its application- and network-level metrics.
//
//   $ ./quickstart [routing]       (default: Q-adp)
//
// This is the smallest complete use of the dflysim public API:
//   1. describe the system with a StudyConfig,
//   2. add workloads,
//   3. run() and read the Report.

#include <cstdio>
#include <string>

#include "core/study.hpp"

int main(int argc, char** argv) {
  const std::string routing = argc > 1 ? argv[1] : "Q-adp";

  dfly::StudyConfig config;
  config.topo = dfly::DragonflyParams::paper();  // 33 groups, 1,056 nodes
  config.routing = routing;                      // MIN/VALg/VALn/UGALg/UGALn/PAR/Q-adp
  config.scale = 16;                             // shrink iteration counts for a fast demo
  config.seed = 1;

  dfly::Study study(config);
  study.add_app("FFT3D", /*max_nodes=*/528);  // half the machine, random placement

  const dfly::Report report = study.run();
  const dfly::AppReport& app = report.apps[0];

  std::printf("routing            : %s\n", report.routing.c_str());
  std::printf("completed          : %s\n", report.completed ? "yes" : "no");
  std::printf("app                : %s on %d nodes\n", app.app.c_str(), app.nodes);
  std::printf("execution time     : %.3f ms\n", app.exec_ms);
  std::printf("comm time (mean)   : %.3f ms  (sigma %.3f ms across ranks)\n", app.comm_mean_ms,
              app.comm_std_ms);
  std::printf("total message      : %.1f MB\n", app.total_msg_mb);
  std::printf("injection rate     : %.1f GB/s\n", app.injection_rate_gbs);
  std::printf("peak ingress       : %.2f KB\n", app.peak_ingress_bytes / 1e3);
  std::printf("packet latency     : mean %.2f us, p50 %.2f, p95 %.2f, p99 %.2f\n",
              app.lat_mean_us, app.lat_p50_us, app.lat_p95_us, app.lat_p99_us);
  std::printf("non-minimal frac   : %.1f %%\n", app.nonminimal_fraction * 100.0);
  std::printf("simulated events   : %llu\n",
              static_cast<unsigned long long>(report.events_executed));
  return report.completed ? 0 : 1;
}

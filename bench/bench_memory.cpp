// Memory / allocation bench: per-cell startup cost of a multi-cell FFT3D
// sweep across three modes — fresh builds, per-worker arena reuse, and
// arena reuse + cross-cell SystemBlueprint sharing (the production
// ParallelRunner path).
//
// Reports, per mode: wall time per cell, heap allocations per cell (counted
// by a global operator-new override in this binary), and the process peak
// RSS after the phase; plus the arena's carried capacities and reuse
// counters, and the blueprint cache's hit/miss/build-time/footprint stats.
// All modes must produce byte-identical report JSON — the bench exits
// non-zero if they do not.
//
//   bench_memory --smoke --json=BENCH_memory.json   # the CI invocation
//   bench_memory --scale=8 --cells=6 --routing=PAR
//
// CI uploads BENCH_memory.json next to BENCH_engine.json so the perf
// trajectory tracks footprint, not just time.

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/json_report.hpp"
#include "core/study.hpp"

// --- counting allocator ------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace dfly::bench {
namespace {

using Clock = std::chrono::steady_clock;

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

struct CellMetrics {
  double wall_ms{0};
  std::uint64_t allocs{0};
  std::string report_json;
  EngineStats engine;  ///< per-kind schedule/pop counters (Engine::stats())
};

struct PhaseMetrics {
  std::vector<CellMetrics> cells;
  /// ru_maxrss snapshot when the phase finished. The counter is
  /// process-lifetime-monotonic, so this is CUMULATIVE: the arena phase runs
  /// second and its reading includes the fresh phase's peak — the meaningful
  /// arena number is the delta over the fresh snapshot (any extra peak the
  /// carried storage added).
  long rss_kb_after{0};

  double mean_wall_tail() const {  // cells after the first (steady state)
    double sum = 0;
    for (std::size_t i = 1; i < cells.size(); ++i) sum += cells[i].wall_ms;
    return cells.size() > 1 ? sum / static_cast<double>(cells.size() - 1) : 0;
  }
  double mean_allocs_tail() const {
    double sum = 0;
    for (std::size_t i = 1; i < cells.size(); ++i) sum += static_cast<double>(cells[i].allocs);
    return cells.size() > 1 ? sum / static_cast<double>(cells.size() - 1) : 0;
  }
};

CellMetrics run_cell(const StudyConfig& base, std::uint64_t seed, const std::string& app,
                     int nodes, SimArena* arena) {
  StudyConfig config = base;
  config.seed = seed;
  CellMetrics metrics;
  const auto t0 = Clock::now();
  const std::uint64_t a0 = allocation_count();
  {
    // The whole cell lifecycle is the measured unit: build, run, report,
    // teardown (teardown hands storage back to the arena).
    Study study(config, arena);
    study.add_app(app, nodes);
    metrics.report_json = report_to_json(study.run());
    metrics.engine = study.engine().stats();
  }
  metrics.allocs = allocation_count() - a0;
  metrics.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(Clock::now() - t0)
          .count();
  return metrics;
}

PhaseMetrics run_phase(const StudyConfig& base, const std::string& app, int nodes, int cells,
                       std::uint64_t base_seed, SimArena* arena,
                       BlueprintCache* cache = nullptr) {
  // With a cache bound, every cell of the phase shares one immutable plan
  // (what ParallelRunner workers see); without one, each Study builds a
  // private blueprint — the pre-sharing per-cell constant.
  ScopedBlueprintCacheBinding binding(cache);
  PhaseMetrics phase;
  for (int c = 0; c < cells; ++c) {
    phase.cells.push_back(run_cell(base, base_seed + static_cast<std::uint64_t>(c), app,
                                   nodes, arena));
  }
  phase.rss_kb_after = peak_rss_kb();
  return phase;
}

std::string kind_array(const std::array<std::uint64_t, EngineStats::kKinds + 1>& counts) {
  std::string out = "[";
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(counts[k]);
  }
  return out + "]";
}

std::string json_array(const std::vector<CellMetrics>& cells, bool wall) {
  std::string out = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    if (wall) {
      std::snprintf(buf, sizeof buf, "%.3f", cells[i].wall_ms);
    } else {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(cells[i].allocs));
    }
    out += buf;
  }
  return out + "]";
}

int run(int argc, char** argv) {
  Caps caps;
  caps.json = true;
  caps.smoke = true;
  caps.jobs = false;  // cells run sequentially so per-cell numbers are clean
  const Options options = Options::parse(argc, argv, /*default_scale=*/16, caps);

  // This bench measures arena-on vs arena-off itself, so the global toggle
  // must not silently turn the "arena" phase into a second fresh phase
  // (--no-arena or DFSIM_NO_ARENA would otherwise produce a no-op
  // comparison that still exits 0).
  if (options.no_arena || !arena_enabled()) {
    std::fprintf(stderr,
                 "bench_memory: ignoring --no-arena/DFSIM_NO_ARENA — this bench "
                 "compares both modes itself\n");
  }
  set_arena_enabled(true);
  if (options.no_blueprint || !blueprint_enabled()) {
    std::fprintf(stderr,
                 "bench_memory: ignoring --no-blueprint/DFSIM_NO_BLUEPRINT — this bench "
                 "compares shared vs unshared itself\n");
  }
  set_blueprint_enabled(true);

  const std::string routing = options.routing.empty() ? "PAR" : options.routing;
  StudyConfig base = options.config(routing);
  std::string app = "FFT3D";
  int nodes;
  int cells = 4;
  if (options.smoke) {
    base.topo = DragonflyParams::tiny();  // 72 nodes: seconds, not minutes
    nodes = 32;
  } else {
    nodes = base.topo.num_nodes() / 2;
  }

  print_header("Per-cell memory footprint: " + app + " x" + std::to_string(cells) +
               " cells, routing " + routing +
               " (fresh builds vs arena reuse vs arena + shared blueprint)");

  // Fresh phase first so its RSS reading is not inflated by arena carry;
  // each later phase's ru_maxrss is cumulative over the earlier ones. The
  // arena-phase arena is destroyed before the shared phase starts so the two
  // reuse phases never hold carried storage simultaneously (that would
  // double-count ~one cell of state in the shared phase's RSS reading).
  const PhaseMetrics fresh =
      run_phase(base, app, nodes, cells, options.seed, /*arena=*/nullptr);
  PhaseMetrics reused;
  ArenaStats arena_stats;
  {
    SimArena arena;
    reused = run_phase(base, app, nodes, cells, options.seed, &arena);
    arena_stats = arena.stats();
  }
  BlueprintCache cache;
  SimArena shared_arena;
  const PhaseMetrics shared =
      run_phase(base, app, nodes, cells, options.seed, &shared_arena, &cache);
  const BlueprintCache::Stats cache_stats = cache.stats();
  const std::shared_ptr<const SystemBlueprint> blueprint = cache.get_or_build(base);

  bool identical = true;
  for (int c = 0; c < cells; ++c) {
    if (fresh.cells[static_cast<std::size_t>(c)].report_json !=
        reused.cells[static_cast<std::size_t>(c)].report_json) {
      identical = false;
      std::fprintf(stderr, "cell %d: arena report differs from fresh report!\n", c);
    }
    if (fresh.cells[static_cast<std::size_t>(c)].report_json !=
        shared.cells[static_cast<std::size_t>(c)].report_json) {
      identical = false;
      std::fprintf(stderr, "cell %d: shared-blueprint report differs from fresh report!\n", c);
    }
  }

  std::printf("%-6s %11s %11s %12s %14s %14s %14s\n", "cell", "fresh ms", "arena ms",
              "shared ms", "fresh allocs", "arena allocs", "shared allocs");
  print_rule();
  for (int c = 0; c < cells; ++c) {
    const auto& f = fresh.cells[static_cast<std::size_t>(c)];
    const auto& a = reused.cells[static_cast<std::size_t>(c)];
    const auto& sh = shared.cells[static_cast<std::size_t>(c)];
    std::printf("%-6d %11.3f %11.3f %12.3f %14llu %14llu %14llu\n", c, f.wall_ms, a.wall_ms,
                sh.wall_ms, static_cast<unsigned long long>(f.allocs),
                static_cast<unsigned long long>(a.allocs),
                static_cast<unsigned long long>(sh.allocs));
  }
  print_rule();
  const double alloc_ratio =
      fresh.mean_allocs_tail() > 0 ? reused.mean_allocs_tail() / fresh.mean_allocs_tail() : 0;
  const double shared_alloc_ratio =
      fresh.mean_allocs_tail() > 0 ? shared.mean_allocs_tail() / fresh.mean_allocs_tail() : 0;
  std::printf("steady-state (cells 2..%d) mean: fresh %.3f ms / %.0f allocs, "
              "arena %.3f ms / %.0f allocs (%.1f%% of fresh), arena+blueprint %.3f ms / "
              "%.0f allocs (%.1f%% of fresh)\n",
              cells, fresh.mean_wall_tail(), fresh.mean_allocs_tail(),
              reused.mean_wall_tail(), reused.mean_allocs_tail(), 100.0 * alloc_ratio,
              shared.mean_wall_tail(), shared.mean_allocs_tail(), 100.0 * shared_alloc_ratio);
  std::printf("blueprint cache: %llu hits / %llu misses, %.3f ms total build time, "
              "%.1f KB shared plan footprint\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses), cache_stats.build_ms_total,
              static_cast<double>(blueprint->footprint_bytes()) / 1024.0);
  const long arena_rss_delta = reused.rss_kb_after - fresh.rss_kb_after;
  const long shared_rss_delta = shared.rss_kb_after - reused.rss_kb_after;
  std::printf("peak RSS (cumulative ru_maxrss): %ld KB after fresh phase, +%ld KB added by "
              "the arena phase, +%ld KB by the shared-blueprint phase\n",
              fresh.rss_kb_after, arena_rss_delta, shared_rss_delta);
  std::printf("arena carry: %zu event slots, %zu packet slots, %llu/%llu routers, "
              "%llu/%llu NICs and %llu/%llu ranks recycled\n",
              arena_stats.engine_event_capacity, arena_stats.pool_capacity,
              static_cast<unsigned long long>(arena_stats.router_reuses),
              static_cast<unsigned long long>(arena_stats.router_reuses +
                                              arena_stats.router_builds),
              static_cast<unsigned long long>(arena_stats.nic_reuses),
              static_cast<unsigned long long>(arena_stats.nic_reuses +
                                              arena_stats.nic_builds),
              static_cast<unsigned long long>(arena_stats.rank_reuses),
              static_cast<unsigned long long>(arena_stats.rank_reuses +
                                              arena_stats.rank_builds));
  std::printf("mpi carry: %zu inflight-map slots, %zu owners-map slots, %zu match-list slots\n",
              arena_stats.inflight_capacity, arena_stats.owners_capacity,
              arena_stats.match_capacity);
  std::printf("outputs byte-identical: %s\n", identical ? "yes" : "NO (regression!)");

  if (!options.json_path.empty()) {
    char buf[512];
    std::string json = "{\n";
    json += "  \"bench\": \"memory\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"app\": \"%s\", \"nodes\": %d, \"cells\": %d, \"scale\": %d, "
                  "\"routing\": \"%s\", \"seed\": %llu,\n",
                  app.c_str(), nodes, cells, options.scale, routing.c_str(),
                  static_cast<unsigned long long>(options.seed));
    json += buf;
    json += "  \"fresh\": {\"cell_wall_ms\": " + json_array(fresh.cells, true) +
            ", \"cell_allocs\": " + json_array(fresh.cells, false) +
            ", \"peak_rss_kb\": " + std::to_string(fresh.rss_kb_after) + "},\n";
    // Per-kind schedule/pop counters of the first cell (what the workload's
    // event mix looks like; identical whether storage came from the arena).
    const EngineStats& engine_stats = fresh.cells.front().engine;
    json += "  \"engine\": {\"scheduled_total\": " +
            std::to_string(engine_stats.scheduled_total()) +
            ", \"executed_total\": " + std::to_string(engine_stats.executed_total()) +
            ",\n    \"scheduled_by_kind\": " + kind_array(engine_stats.scheduled_by_kind) +
            ",\n    \"executed_by_kind\": " + kind_array(engine_stats.executed_by_kind) +
            "},\n";
    // rss readings are cumulative ru_maxrss snapshots (the arena phase runs
    // second); arena_rss_delta_kb is the peak the carried storage added.
    json += "  \"arena\": {\"cell_wall_ms\": " + json_array(reused.cells, true) +
            ", \"cell_allocs\": " + json_array(reused.cells, false) +
            ", \"peak_rss_kb_cumulative\": " + std::to_string(reused.rss_kb_after) +
            ", \"arena_rss_delta_kb\": " + std::to_string(arena_rss_delta);
    const ArenaStats& stats = arena_stats;
    std::snprintf(buf, sizeof buf,
                  ", \"engine_event_capacity\": %zu, \"engine_peak_events\": %zu, "
                  "\"closure_peak\": %zu, \"pool_capacity\": %zu, \"pool_peak_packets\": %zu, "
                  "\"router_reuses\": %llu, \"nic_reuses\": %llu, \"rank_reuses\": %llu, "
                  "\"inflight_capacity\": %zu, \"owners_capacity\": %zu, "
                  "\"match_capacity\": %zu},\n",
                  stats.engine_event_capacity, stats.engine_peak_events, stats.closure_peak,
                  stats.pool_capacity, stats.pool_peak_packets,
                  static_cast<unsigned long long>(stats.router_reuses),
                  static_cast<unsigned long long>(stats.nic_reuses),
                  static_cast<unsigned long long>(stats.rank_reuses), stats.inflight_capacity,
                  stats.owners_capacity, stats.match_capacity);
    json += buf;
    // The shared phase runs third: its RSS delta is over the arena phase.
    json += "  \"shared_blueprint\": {\"cell_wall_ms\": " + json_array(shared.cells, true) +
            ", \"cell_allocs\": " + json_array(shared.cells, false) +
            ", \"peak_rss_kb_cumulative\": " + std::to_string(shared.rss_kb_after) +
            ", \"shared_rss_delta_kb\": " + std::to_string(shared_rss_delta);
    std::snprintf(buf, sizeof buf,
                  ", \"cache_hits\": %llu, \"cache_misses\": %llu, "
                  "\"blueprint_build_ms\": %.3f, \"blueprint_footprint_bytes\": %zu},\n",
                  static_cast<unsigned long long>(cache_stats.hits),
                  static_cast<unsigned long long>(cache_stats.misses),
                  cache_stats.build_ms_total, blueprint->footprint_bytes());
    json += buf;
    // steady_allocs_* are absolute per-cell means over the steady tail —
    // CI diffs steady_allocs_arena against bench/memory_alloc_ceiling.txt.
    std::snprintf(buf, sizeof buf,
                  "  \"derived\": {\"identical_output\": %s, "
                  "\"steady_alloc_ratio\": %.4f, \"steady_alloc_ratio_shared\": %.4f, "
                  "\"steady_allocs_fresh\": %.0f, \"steady_allocs_arena\": %.0f, "
                  "\"steady_wall_ms_fresh\": %.3f, \"steady_wall_ms_arena\": %.3f, "
                  "\"steady_wall_ms_shared\": %.3f}\n}\n",
                  identical ? "true" : "false", alloc_ratio, shared_alloc_ratio,
                  fresh.mean_allocs_tail(), reused.mean_allocs_tail(),
                  fresh.mean_wall_tail(), reused.mean_wall_tail(), shared.mean_wall_tail());
    json += buf;
    save_json(options.json_path, json);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace dfly::bench

int main(int argc, char** argv) { return dfly::bench::run(argc, argv); }

#include <gtest/gtest.h>

#include "core/pairwise.hpp"
#include "core/study.hpp"

namespace dfly {
namespace {

/// End-to-end invariants across every routing algorithm: multi-app runs
/// complete, traffic is conserved, and the observability plane is coherent.
class EndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEnd, MultiAppRunCompletesWithConservedTraffic) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = GetParam();
  config.scale = 64;
  Study study(config);
  study.add_app("FFT3D", 24);
  study.add_app("Halo3D", 30);
  study.add_app("UR", 16);
  const Report report = study.run();
  ASSERT_TRUE(report.completed);

  // Conservation: delivered payload equals sent payload per app, plus at
  // most one RTS + one CTS control message (8B each) per application
  // message for the rendezvous protocol.
  for (int a = 0; a < study.num_jobs(); ++a) {
    const double sent = static_cast<double>(study.job(a).total_bytes_sent());
    const double delivered = study.network().packet_log().delivered(a).total();
    const double max_control =
        static_cast<double>(study.job(a).total_messages_sent()) * 16.0;
    EXPECT_GE(delivered, sent) << report.apps[static_cast<std::size_t>(a)].app;
    EXPECT_LE(delivered, sent + max_control) << report.apps[static_cast<std::size_t>(a)].app;
  }

  // The packet pool fully drains at quiescence.
  EXPECT_EQ(study.network().pool().in_use(), 0u);

  // Latency statistics exist and are ordered.
  EXPECT_GT(report.sys_lat_mean_us, 0.0);
  EXPECT_LE(report.sys_lat_p50_us, report.sys_lat_p95_us);
  EXPECT_LE(report.sys_lat_p95_us, report.sys_lat_p99_us);
}

INSTANTIATE_TEST_SUITE_P(Routings, EndToEnd,
                         ::testing::Values("MIN", "VALg", "VALn", "UGALg", "UGALn", "PAR",
                                           "Q-adp"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Interference, BackgroundTrafficDelaysTarget) {
  // The paper's core phenomenon at miniature scale: co-running Halo3D (high
  // injection rate) must not make FFT3D *faster*; typically it slows it.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "UGALg";
  config.scale = 32;
  const PairwiseResult alone = run_pairwise(config, "FFT3D", "None");
  const PairwiseResult interfered = run_pairwise(config, "FFT3D", "Halo3D");
  ASSERT_TRUE(alone.full.completed);
  ASSERT_TRUE(interfered.full.completed);
  EXPECT_GE(interfered.target_report.comm_mean_ms, alone.target_report.comm_mean_ms * 0.98);
}

TEST(Interference, StandaloneTargetMatchesAcrossRoutingsInShape) {
  // All routings must deliver the same payload volume for the same app.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.scale = 64;
  double reference = -1;
  for (const std::string routing : {"UGALg", "PAR", "Q-adp"}) {
    config.routing = routing;
    const PairwiseResult result = run_pairwise(config, "LU", "None");
    ASSERT_TRUE(result.full.completed) << routing;
    if (reference < 0) {
      reference = result.target_report.total_msg_mb;
    } else {
      EXPECT_DOUBLE_EQ(result.target_report.total_msg_mb, reference) << routing;
    }
  }
}

TEST(Interference, ValiantUniformLoadBeatsMinimalAdversarial) {
  // Sanity: under an adversarial group-to-group pattern, Valiant routing
  // spreads load while minimal piles onto the single inter-group link.
  // Use the UR motif placed contiguously: groups talk across one link.
  StudyConfig min_config;
  min_config.topo = DragonflyParams::tiny();
  min_config.routing = "MIN";
  min_config.placement = PlacementPolicy::kContiguous;
  min_config.scale = 32;
  StudyConfig val_config = min_config;
  val_config.routing = "VALg";

  Study min_study(min_config);
  min_study.add_app("Halo3D", 27);
  const Report min_report = min_study.run();

  Study val_study(val_config);
  val_study.add_app("Halo3D", 27);
  const Report val_report = val_study.run();

  ASSERT_TRUE(min_report.completed);
  ASSERT_TRUE(val_report.completed);
  // Valiant must show a higher non-minimal fraction (trivially) and the
  // congestion imbalance of minimal must not be lower than Valiant's.
  EXPECT_GT(val_report.apps[0].nonminimal_fraction, 0.5);
  EXPECT_EQ(min_report.apps[0].nonminimal_fraction, 0.0);
}

TEST(Interference, QAdaptiveCompletesMixedLoadNoWorseThanDoubleParTime) {
  // Guard-rail rather than a strict claim at tiny scale: Q-adaptive's
  // makespan stays within 2x of PAR on a small mixed load.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.scale = 64;
  config.routing = "PAR";
  Study par_study(config);
  par_study.add_app("FFT3D", 24);
  par_study.add_app("Halo3D", 27);
  const Report par_report = par_study.run();

  config.routing = "Q-adp";
  Study q_study(config);
  q_study.add_app("FFT3D", 24);
  q_study.add_app("Halo3D", 27);
  const Report q_report = q_study.run();

  ASSERT_TRUE(par_report.completed);
  ASSERT_TRUE(q_report.completed);
  EXPECT_LT(to_ms(q_report.makespan), 2.0 * to_ms(par_report.makespan));
}

}  // namespace
}  // namespace dfly

#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <exception>
#include <vector>

#include "core/mutex.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"
#include "sim/time.hpp"
#include "stats/packet_log.hpp"

namespace dfly {

class SimArena;

/// Counters for one parallel cell run (surfaced by bench_pdes).
struct PdesStats {
  std::int32_t num_domains{1};
  SimTime lookahead{0};
  std::uint64_t windows{0};             ///< barrier windows executed
  std::uint64_t merged_events{0};       ///< log entries sequenced at barriers
  std::uint64_t cross_domain_events{0}; ///< events delivered across domains
};

/// Conservative, windowed, group-partitioned parallel engine for one cell.
///
/// A PdesCell splits a cell's components into `num_domains` domains along the
/// CellPartition group map and gives each domain its own Engine (domain 0 is
/// the study's own engine; the rest come from the arena's extra-engine pool).
/// PdesRunner executes the domains on one thread each in barrier-synchronised
/// windows of width `lookahead` — the minimum cross-domain link latency — so
/// no domain can receive an event dated inside a window it is already
/// executing.
///
/// Determinism is exact, not statistical: the run replays the sequential
/// engine's (when, seq) order event for event. Every schedule_at during a
/// window is appended to the creating domain's emission log tagged with its
/// creator's (when, seq); at each barrier the logs are k-way merged in
/// creator order — which IS the order the sequential engine would have made
/// those schedule_at calls — and each merged entry receives the next global
/// sequence number. Same-domain events falling inside the current window
/// also enter the creator's heap immediately under a provisional sequence
/// number (kProvisionalBase + log index, above every true seq so same-time
/// ties resolve exactly as sequentially), and are re-sequenced retroactively
/// at the merge via the per-window `true_of` table. The result: identical
/// event order, identical statistics, byte-identical reports for any thread
/// count, including 1 (CI byte-compares this).
///
/// Setup (build + Job::start) stays single-threaded in kSetup mode, where
/// schedule_at routes straight to the target's domain heap with true
/// sequence numbers — the same assignment order as sequential.
class PdesCell {
 public:
  /// Provisional sequence numbers start at 2^63: larger than any true seq a
  /// run can reach, so a provisional event always sorts after every true
  /// event at the same timestamp — matching the sequential engine, where an
  /// event scheduled "now" gets the largest seq so far.
  static constexpr std::uint64_t kProvisionalBase = 1ull << 63;

  /// `primary` becomes domain 0; the other num_domains-1 engines are taken
  /// from `arena`'s extra-engine pool (or owned outright when arena is null)
  /// and returned on destruction.
  PdesCell(Engine& primary, CellPartition partition, SimArena* arena);
  ~PdesCell();
  PdesCell(const PdesCell&) = delete;
  PdesCell& operator=(const PdesCell&) = delete;

  std::int32_t num_domains() const { return partition_.num_domains; }
  const CellPartition& partition() const { return partition_; }
  Engine& engine(std::int32_t domain) { return *domains_[static_cast<std::size_t>(domain)].engine; }
  Engine& engine_for_router(int router) { return engine(partition_.router_domain[static_cast<std::size_t>(router)]); }
  Engine& engine_for_node(int node) { return engine(partition_.node_domain[static_cast<std::size_t>(node)]); }

  /// Packet-log shard for a domain's NICs to record into without contending
  /// on the cell-wide log: null for domain 0 (which records straight into
  /// the Network's own log), a private PacketLog otherwise. Network resets
  /// the shards to its shape and merges them back after the run
  /// (Network::finalize_pdes) — every merged statistic is order-independent,
  /// so sharded accumulation is byte-exact.
  PacketLog* log_shard(std::int32_t domain) {
    return domain == 0 ? nullptr : &shards_[static_cast<std::size_t>(domain - 1)];
  }
  std::deque<PacketLog>& log_shards() { return shards_; }

  /// Route schedule_at traffic during single-threaded construction and
  /// Job::start: events go straight to the target's domain heap with true
  /// sequence numbers. Engines stay attached until finish().
  void begin_setup();
  /// Switch to windowed-run mode (PdesRunner::run does this).
  void begin_run();
  /// Aggregate the secondary domains' executed/stat counters and clock into
  /// domain 0 (now() becomes the global max, matching the sequential engine's
  /// last-event clock) and detach every engine. Idempotent per run.
  void finish();

  /// schedule_at hook (called by an attached Engine on its own thread).
  void on_schedule(Engine& from, SimTime when, Component& target,
                   std::uint32_t kind, std::uint64_t a, std::uint64_t b);

  const PdesStats& stats() const { return stats_; }

 private:
  friend class PdesRunner;

  enum class Mode { kIdle, kSetup, kRun };

  /// One emission-log entry: the scheduled event plus the identity of the
  /// event that created it. `immediate` marks same-domain events that were
  /// also pushed provisionally into the creator's heap (already executed by
  /// merge time — the merge only assigns their true seq).
  struct LogEntry {
    SimTime creator_when;
    std::uint64_t creator_seq;
    SimTime when;
    Component* target;
    std::uint32_t kind;
    std::uint64_t a, b;
    bool immediate;
  };

  /// Per-domain state, cache-line aligned: `log` is appended by the domain's
  /// own thread during a window, and only thread 0 touches any of it at
  /// barriers.
  struct alignas(64) Domain {
    Engine* engine{nullptr};
    std::vector<LogEntry> log;
    std::vector<std::uint64_t> true_of;  ///< per-window provisional -> true seq
    std::size_t cursor{0};               ///< merge scan position
    SimTime run_until{0};                ///< current window bound (immediate rule)
    std::uint64_t cross_events{0};
  };

  /// Barrier step (thread 0 only): k-way merge every domain's log in
  /// (creator_when, resolved creator seq) order — resolving provisional
  /// creator seqs through true_of, which is always populated before a child
  /// entry reaches the front because a creator precedes its children in the
  /// same log — assigning true seqs in sequential call order and delivering
  /// non-immediate events to their target domain's heap.
  void merge_window();

  CellPartition partition_;
  SimArena* arena_;
  std::vector<Domain> domains_;
  std::deque<Engine> extras_;      ///< engines for domains 1..D-1 (stable addresses)
  std::deque<PacketLog> shards_;   ///< packet-log shards for domains 1..D-1
  std::uint64_t next_seq_{0};      ///< next true (global) sequence number
  Mode mode_{Mode::kIdle};
  PdesStats stats_;
  bool finished_{false};
};

/// Executes a PdesCell to completion: one std::thread per secondary domain
/// (the calling thread drives domain 0), windows planned by thread 0 between
/// two barriers per round. Exceptions from any domain (including the
/// wall-deadline watchdog, which is propagated to every domain engine) stop
/// the run at the next barrier and are rethrown on the calling thread.
class PdesRunner {
 public:
  PdesRunner(PdesCell& cell, SimTime time_limit);

  /// Run until every heap's front is past the time limit (or empty).
  /// Equivalent to cell.engine(0).run(time_limit) in the sequential engine,
  /// including events landing exactly at the limit.
  void run();

 private:
  void worker(std::int32_t domain);
  /// Thread 0, between barriers: merge logs, pick the next window
  /// [min front, min front + lookahead - 1] clamped to the time limit, or
  /// declare the run done.
  void plan_next();

  PdesCell& cell_;
  SimTime time_limit_;
  std::barrier<> sync_;
  // run_until_ and done_ are written by thread 0 between the two barriers of
  // a round and read by every domain after the second barrier — the barrier
  // itself is the synchronisation (TSan checks it; annotations cannot model
  // barrier phases, so these two stay unannotated by design).
  SimTime run_until_{0};
  bool done_{false};
  std::atomic<bool> failed_{false};
  Mutex error_mutex_;
  std::exception_ptr error_ GUARDED_BY(error_mutex_);
};

}  // namespace dfly

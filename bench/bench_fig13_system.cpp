// Figure 13: system-wide packet latency distribution (mean/p95/p99 per
// routing) and the aggregated network throughput series under the mixed
// workload (PAR vs Q-adp). Per-routing runs execute concurrently.

#include "bench_common.hpp"
#include "core/mixed.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  const auto routings = options.routings();

  struct Result {
    Report report;
    std::vector<double> series_gb_per_ms;
    double bucket_ms{0};
  };
  std::vector<std::function<Result()>> tasks;
  for (const std::string& routing : routings) {
    const StudyConfig config = options.config(routing);
    tasks.push_back([config] {
      Study study(config);
      add_mixed_workload(study);
      Result out;
      out.report = study.run();
      const TimeSeries& series = study.network().packet_log().system_delivered();
      out.bucket_ms = to_ms(series.bucket_width());
      for (std::size_t b = 0; b < series.num_buckets(); ++b) {
        out.series_gb_per_ms.push_back(series.bucket(b) / 1e9 / out.bucket_ms);
      }
      return out;
    });
  }
  const auto results = bench::parallel_map(tasks);

  bench::print_header("Figure 13 — system-wide latency and aggregate throughput (mixed)");
  std::printf("%-8s %12s %12s %12s %12s %16s\n", "routing", "mean us", "p50 us", "p95 us",
              "p99 us", "thr GB/ms");
  bench::print_rule();
  for (std::size_t r = 0; r < routings.size(); ++r) {
    const Report& report = results[r].report;
    std::printf("%-8s %12.2f %12.2f %12.2f %12.2f %16.3f\n", routings[r].c_str(),
                report.sys_lat_mean_us, report.sys_lat_p50_us, report.sys_lat_p95_us,
                report.sys_lat_p99_us, report.agg_throughput_gb_per_ms);
  }
  viz::LineChart chart("Fig 13(b) aggregate network throughput (mixed workload)",
                       "time (ms)", "GB/ms");
  for (std::size_t r = 0; r < routings.size(); ++r) {
    if (routings[r] != "PAR" && routings[r] != "Q-adp") continue;
    std::printf("series aggregate_%s buckets_ms %.3f :", routings[r].c_str(),
                results[r].bucket_ms);
    for (const double v : results[r].series_gb_per_ms) std::printf(" %.3f", v);
    std::printf("\n");
    std::printf("spark aggregate_%s: %s\n", routings[r].c_str(),
                viz::sparkline(results[r].series_gb_per_ms).c_str());
    std::vector<double> xs;
    for (std::size_t b = 0; b < results[r].series_gb_per_ms.size(); ++b) {
      xs.push_back(results[r].bucket_ms * static_cast<double>(b));
    }
    chart.add_series(routings[r], xs, results[r].series_gb_per_ms);
  }
  chart.save("fig13_throughput.svg");
  std::printf("Wrote fig13_throughput.svg\n");
  std::printf("\nExpected shape (paper): Q-adp's mean and p99 latency are >60%% below PAR's\n"
              "and its average aggregate throughput ~35%% higher.\n");
  return 0;
}

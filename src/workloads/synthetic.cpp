#include "workloads/synthetic.hpp"

#include <utility>
#include <vector>

#include "mpi/coll.hpp"

namespace dfly::workloads {

mpi::Task IncastMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  const int targets = p_.fanin_targets < 1 ? 1 : p_.fanin_targets;
  if (ctx.rank() < targets) {
    // Receivers idle; sink mode counts and drops inbound payloads. They
    // still participate in job completion, so give them a bounded lifetime
    // matched to the senders' nominal schedule.
    co_await ctx.compute(p_.interval * p_.iterations);
    co_return;
  }
  const int dst = ctx.rank() % targets;
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int i = 0; i < p_.iterations; ++i) {
    window.push_back(ctx.isend(dst, p_.msg_bytes, /*tag=*/0));
    if (static_cast<int>(window.size()) >= p_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
    co_await ctx.compute(p_.interval);
  }
  if (!window.empty()) co_await ctx.wait_all(window);
  ctx.mark_iteration();
}

mpi::Task ShiftMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  const int n = ctx.size();
  const int dst = (ctx.rank() + p_.stride % n + n) % n;
  if (dst == ctx.rank()) co_return;  // stride is a multiple of n
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int i = 0; i < p_.iterations; ++i) {
    window.push_back(ctx.isend(dst, p_.msg_bytes, /*tag=*/0));
    if (static_cast<int>(window.size()) >= p_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
    co_await ctx.compute(p_.interval);
  }
  if (!window.empty()) co_await ctx.wait_all(window);
  ctx.mark_iteration();
}

mpi::Task GroupAdversarialMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  const int n = ctx.size();
  const int per_group = p_.ranks_per_group < 1 ? 1 : p_.ranks_per_group;
  const int num_blocks = (n + per_group - 1) / per_group;
  if (num_blocks < 2) co_return;  // no other group to attack
  const int my_block = ctx.rank() / per_group;
  const int dst_block = (my_block + p_.group_stride % num_blocks + num_blocks) % num_blocks;
  const int block_base = dst_block * per_group;
  const int block_size =
      dst_block == num_blocks - 1 ? n - block_base : per_group;  // last block may be short

  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int i = 0; i < p_.iterations; ++i) {
    // A fresh random rank inside the destination block every message: the
    // whole block's ingress is loaded, but (under linear placement) all of
    // it funnels through the one global link between the two groups.
    int dst = block_base + static_cast<int>(ctx.rng().next_below(
                               static_cast<std::uint64_t>(block_size)));
    if (dst == ctx.rank()) dst = block_base + (dst - block_base + 1) % block_size;
    window.push_back(ctx.isend(dst, p_.msg_bytes, /*tag=*/0));
    if (static_cast<int>(window.size()) >= p_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
    co_await ctx.compute(p_.interval);
  }
  if (!window.empty()) co_await ctx.wait_all(window);
  ctx.mark_iteration();
}

mpi::Task PingPongMotif::run(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  const int half = n / 2;
  if (half == 0) co_return;
  const int me = ctx.rank();
  if (me >= 2 * half) co_return;  // odd n: last rank sits out

  const int tag = 1;
  if (me < half) {
    const int partner = me + half;
    for (int i = 0; i < p_.iterations; ++i) {
      co_await ctx.send(partner, p_.msg_bytes, tag);
      co_await ctx.recv(partner, tag);
      ctx.mark_iteration();
    }
  } else {
    const int partner = me - half;
    for (int i = 0; i < p_.iterations; ++i) {
      co_await ctx.recv(partner, tag);
      co_await ctx.send(partner, p_.msg_bytes, tag);
    }
  }
}

mpi::Task BisectionMotif::run(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  const int half = n / 2;
  if (half == 0) co_return;
  const int me = ctx.rank();
  if (me >= 2 * half) co_return;
  const int partner = me < half ? me + half : me - half;
  const int tag = 2;
  for (int i = 0; i < p_.iterations; ++i) {
    // Full-duplex: both directions in flight simultaneously; the receive is
    // posted first so rendezvous-size payloads cannot deadlock.
    const mpi::ReqId r = ctx.irecv(partner, tag);
    const mpi::ReqId s = ctx.isend(partner, p_.msg_bytes, tag);
    co_await ctx.wait(r);
    co_await ctx.wait(s);
    if (p_.interval > 0) co_await ctx.compute(p_.interval);
    ctx.mark_iteration();
  }
}

mpi::Task HotRegionMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  const int n = ctx.size();
  const int hot = p_.hot_ranks < 1 ? 1 : (p_.hot_ranks > n ? n : p_.hot_ranks);
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(p_.window));
  for (int i = 0; i < p_.iterations; ++i) {
    const bool aim_hot =
        static_cast<int>(ctx.rng().next_below(1000)) < p_.hot_per_mille;
    const int span = aim_hot ? hot : n;
    int dst = static_cast<int>(ctx.rng().next_below(static_cast<std::uint64_t>(span)));
    if (dst == ctx.rank()) dst = (dst + 1) % span;
    if (dst == ctx.rank()) {
      co_await ctx.compute(p_.interval);
      continue;  // span == 1 and we are the hot rank
    }
    window.push_back(ctx.isend(dst, p_.msg_bytes, /*tag=*/0));
    if (static_cast<int>(window.size()) >= p_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
    co_await ctx.compute(p_.interval);
  }
  if (!window.empty()) co_await ctx.wait_all(window);
  ctx.mark_iteration();
}

namespace {

/// splitmix64 — cheap stateless mixer for the deterministic lane pattern.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::int64_t SparseExchangeMotif::lane_bytes(int src, int dst, int iteration) const {
  if (src == dst) return 0;
  const std::uint64_t h = mix64(p_.pattern_seed ^ mix64(static_cast<std::uint64_t>(src) << 40 |
                                                        static_cast<std::uint64_t>(dst) << 16 |
                                                        static_cast<std::uint64_t>(iteration)));
  if (static_cast<int>(h % 1000) >= p_.density_per_mille) return 0;
  return p_.msg_bytes * static_cast<std::int64_t>(1 + (h >> 32) % 4);
}

mpi::Task SparseExchangeMotif::run(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  std::vector<int> members(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = i;
  std::vector<std::int64_t> send_bytes(static_cast<std::size_t>(n));
  std::vector<std::int64_t> recv_bytes(static_cast<std::size_t>(n));
  for (int iter = 0; iter < p_.iterations; ++iter) {
    for (int peer = 0; peer < n; ++peer) {
      send_bytes[static_cast<std::size_t>(peer)] = lane_bytes(ctx.rank(), peer, iter);
      recv_bytes[static_cast<std::size_t>(peer)] = lane_bytes(peer, ctx.rank(), iter);
    }
    co_await mpi::coll::alltoallv_ring(ctx, send_bytes, recv_bytes, members);
    co_await ctx.compute(p_.compute);
    ctx.mark_iteration();
  }
}

}  // namespace dfly::workloads

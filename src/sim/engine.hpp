#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace dfly {

/// Deterministic sequential discrete-event engine.
///
/// Replaces the SST core for this study: the paper's metrics are statistics
/// over simulated time, so a sequential deterministic engine reproduces them
/// exactly and makes every run replayable from a seed.
///
/// Ordering: events fire in (when, seq) order where seq is the global
/// scheduling order, i.e. same-time events fire in the order scheduled.
class Engine {
 public:
  Engine() = default;

  SimTime now() const { return now_; }

  /// Schedule `target->handle` at absolute time `when` (>= now).
  void schedule_at(SimTime when, Component& target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0);

  /// Schedule after a relative delay (>= 0).
  void schedule_in(SimTime delay, Component& target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + delay, target, kind, a, b);
  }

  /// Convenience: schedule an owned closure (allocates; for tests/setup, not
  /// the per-packet hot path).
  void call_at(SimTime when, std::function<void()> fn);
  void call_in(SimTime delay, std::function<void()> fn) { call_at(now_ + delay, std::move(fn)); }

  /// Run until the queue is empty or `until` is passed. Returns the number of
  /// events executed. Events at exactly `until` are executed.
  std::uint64_t run(SimTime until = kSec * 3600);

  /// Execute at most one event; returns false when the queue is empty.
  bool step();

  bool empty() const { return heap_.empty(); }
  std::size_t queued() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// Drop every pending event (used by tests and by teardown).
  void clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Component* target;
    std::uint32_t kind;
    std::uint64_t a, b;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  class Closure;

  void push(Entry entry);
  Entry pop();

  std::vector<Entry> heap_;  // binary min-heap via std::push_heap/greater
  std::vector<std::unique_ptr<Component>> closures_;
  SimTime now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

}  // namespace dfly

# CTest script: run the same multi-seed sweep with --jobs=1, --jobs=4,
# --jobs=4 --no-arena, --jobs={1,4} --no-blueprint, and
# --jobs=2 --cell-threads=2 and require byte-identical JSON reports — worker
# count, per-worker arena storage reuse, cross-cell SystemBlueprint sharing
# AND the intra-cell parallel engine must all be invisible in the output.
# Invoked by the sweep_parallel_smoke test with -DDFLYSIM=<binary>
# -DWORK_DIR=<build dir>.
set(ARGS --app=UR:64 --scale=64 --seed=42 --sweep=4)

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=1 --json=${WORK_DIR}/sweep_seq.json
  RESULT_VARIABLE SEQ_RESULT OUTPUT_QUIET)
if(NOT SEQ_RESULT EQUAL 0)
  message(FATAL_ERROR "sequential sweep failed with exit code ${SEQ_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=4 --json=${WORK_DIR}/sweep_par.json
  RESULT_VARIABLE PAR_RESULT OUTPUT_QUIET)
if(NOT PAR_RESULT EQUAL 0)
  message(FATAL_ERROR "parallel sweep failed with exit code ${PAR_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=4 --no-arena --json=${WORK_DIR}/sweep_noarena.json
  RESULT_VARIABLE NOARENA_RESULT OUTPUT_QUIET)
if(NOT NOARENA_RESULT EQUAL 0)
  message(FATAL_ERROR "--no-arena sweep failed with exit code ${NOARENA_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=1 --no-blueprint
          --json=${WORK_DIR}/sweep_nobp_seq.json
  RESULT_VARIABLE NOBP_SEQ_RESULT OUTPUT_QUIET)
if(NOT NOBP_SEQ_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=1 --no-blueprint sweep failed with exit code ${NOBP_SEQ_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=4 --no-blueprint
          --json=${WORK_DIR}/sweep_nobp_par.json
  RESULT_VARIABLE NOBP_PAR_RESULT OUTPUT_QUIET)
if(NOT NOBP_PAR_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 --no-blueprint sweep failed with exit code ${NOBP_PAR_RESULT}")
endif()

# Both parallelism levels at once: 2 worker threads x 2 engine domains.
execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=2 --cell-threads=2
          --json=${WORK_DIR}/sweep_cellpar.json
  RESULT_VARIABLE CELLPAR_RESULT OUTPUT_QUIET)
if(NOT CELLPAR_RESULT EQUAL 0)
  message(FATAL_ERROR "--cell-threads=2 sweep failed with exit code ${CELLPAR_RESULT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_par.json
  RESULT_VARIABLE DIFF_RESULT)
if(NOT DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 sweep JSON differs from --jobs=1 (determinism regression)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_noarena.json
  RESULT_VARIABLE ARENA_DIFF_RESULT)
if(NOT ARENA_DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--no-arena sweep JSON differs from the arena-reuse run "
                      "(arena reuse leaked state across cells)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_nobp_seq.json
  RESULT_VARIABLE NOBP_SEQ_DIFF_RESULT)
if(NOT NOBP_SEQ_DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=1 --no-blueprint sweep JSON differs from the shared-blueprint "
                      "run (blueprint sharing changed the output)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_nobp_par.json
  RESULT_VARIABLE NOBP_PAR_DIFF_RESULT)
if(NOT NOBP_PAR_DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 --no-blueprint sweep JSON differs from the shared-blueprint "
                      "run (blueprint sharing changed the output)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_cellpar.json
  RESULT_VARIABLE CELLPAR_DIFF_RESULT)
if(NOT CELLPAR_DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=2 --cell-threads=2 sweep JSON differs from the sequential "
                      "run (intra-cell parallel engine determinism regression)")
endif()
message(STATUS "jobs=1, jobs=4, jobs=4 --no-arena, jobs={1,4} --no-blueprint and "
               "jobs=2 --cell-threads=2 sweep reports are byte-identical")

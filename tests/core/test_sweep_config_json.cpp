// Tests for SeedSweep (core/sweep.hpp), ConfigFile (core/config_file.hpp)
// and the JSON report writer (core/json_report.hpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/config_file.hpp"
#include "core/json_report.hpp"
#include "core/sweep.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

Report run_shift(std::uint64_t seed, const std::string& routing = "PAR") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = seed;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.iterations = 40;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 20, "Shift");
  return study.run();
}

// --- SeedSweep ---------------------------------------------------------------

TEST(SeedSweep, AggregatesAcrossSeeds) {
  const SeedSweep sweep(100, 5);
  ASSERT_EQ(sweep.seeds().size(), 5u);
  EXPECT_EQ(sweep.seeds()[4], 104u);
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_EQ(summary.runs, 5);
  EXPECT_EQ(summary.completed_runs, 5);
  ASSERT_EQ(summary.apps.size(), 1u);
  EXPECT_EQ(summary.apps[0].app, "Shift");
  EXPECT_GT(summary.apps[0].comm_ms.mean, 0.0);
  EXPECT_EQ(summary.apps[0].comm_ms.n, 5);
  EXPECT_GE(summary.apps[0].comm_ms.max, summary.apps[0].comm_ms.min);
  // CI must be positive when there is run-to-run variation (random
  // placement differs per seed) and bounded by the spread.
  EXPECT_GE(summary.apps[0].comm_ms.ci95_half, 0.0);
  EXPECT_GT(summary.makespan_ms.mean, 0.0);
}

TEST(SeedSweep, SingleSeedHasZeroCi) {
  const SeedSweep sweep(7, 1);
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_EQ(summary.apps[0].comm_ms.n, 1);
  EXPECT_EQ(summary.apps[0].comm_ms.ci95_half, 0.0);
  EXPECT_EQ(summary.apps[0].comm_ms.stddev, 0.0);
}

TEST(SeedSweep, IdenticalSeedsGiveZeroSpread) {
  const SeedSweep sweep(std::vector<std::uint64_t>{42, 42, 42});
  const SweepSummary summary = sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  EXPECT_NEAR(summary.apps[0].comm_ms.stddev, 0.0, 1e-9);
  EXPECT_EQ(summary.makespan_ms.min, summary.makespan_ms.max);
}

TEST(SeedSweep, Validation) {
  EXPECT_THROW(SeedSweep(std::vector<std::uint64_t>{}), std::invalid_argument);
  EXPECT_THROW(SeedSweep(1, 0), std::invalid_argument);
  EXPECT_THROW(SeedSweep::aggregate({}), std::invalid_argument);
  const SweepSummary summary = SeedSweep::aggregate({run_shift(1)});
  EXPECT_THROW(summary.app("nope"), std::out_of_range);
  EXPECT_NO_THROW(summary.app("Shift"));
}

// --- ConfigFile ----------------------------------------------------------------

TEST(ConfigFile, ParsesTypedValues) {
  const ConfigFile cfg = ConfigFile::parse(R"(
# comment
; alt comment
routing = Q-adp
topo.g = 17
net.link_gbps = 100.5
cc.enabled = yes
qos.weights = 4, 2,1
)");
  EXPECT_EQ(cfg.get_string("routing"), "Q-adp");
  EXPECT_EQ(cfg.get_int("topo.g"), 17);
  EXPECT_DOUBLE_EQ(cfg.get_double("net.link_gbps"), 100.5);
  EXPECT_TRUE(cfg.get_bool("cc.enabled"));
  EXPECT_EQ(cfg.get_int_list("qos.weights"), (std::vector<int>{4, 2, 1}));
  // Fallbacks.
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
  EXPECT_FALSE(cfg.get_bool("missing"));
  EXPECT_TRUE(cfg.get_int_list("missing").empty());
}

TEST(ConfigFile, SyntaxAndTypeErrors) {
  EXPECT_THROW(ConfigFile::parse("novalue\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::parse("= 3\n"), std::runtime_error);
  const ConfigFile cfg = ConfigFile::parse("x = abc\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b"), std::invalid_argument);
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/dfly_test.cfg";
  {
    std::ofstream out(path);
    out << "routing = UGALn\nseed = 77\n";
  }
  const ConfigFile cfg = ConfigFile::load(path);
  EXPECT_EQ(cfg.get_string("routing"), "UGALn");
  EXPECT_EQ(cfg.get_int("seed"), 77);
  std::remove(path.c_str());
  EXPECT_THROW(ConfigFile::load("/nonexistent/x.cfg"), std::runtime_error);
}

TEST(ApplyConfig, OverlaysOntoStudyConfig) {
  const ConfigFile cfg = ConfigFile::parse(R"(
topo.p = 2
topo.a = 4
topo.h = 2
topo.g = 9
routing = Q-adp
placement = contiguous
seed = 123
scale = 4
net.buffer_packets = 12
qos.num_classes = 2
qos.weights = 3,1
cc.enabled = true
qadp.alpha = 0.5
ugal.bias = 10
)");
  const StudyConfig out = apply_config(StudyConfig{}, cfg);
  EXPECT_EQ(out.topo.g, 9);
  EXPECT_EQ(out.topo.num_nodes(), 72);
  EXPECT_EQ(out.routing, "Q-adp");
  EXPECT_EQ(out.placement, PlacementPolicy::kContiguous);
  EXPECT_EQ(out.seed, 123u);
  EXPECT_EQ(out.scale, 4);
  EXPECT_EQ(out.net.buffer_packets, 12);
  EXPECT_EQ(out.net.qos.num_classes, 2);
  EXPECT_EQ(out.net.qos.weights, (std::vector<int>{3, 1}));
  EXPECT_TRUE(out.net.cc.enabled);
  EXPECT_DOUBLE_EQ(out.qadp.alpha, 0.5);
  EXPECT_EQ(out.ugal.bias, 10);
}

TEST(ApplyConfig, UnknownKeyThrows) {
  const ConfigFile cfg = ConfigFile::parse("routng = PAR\n");  // typo
  EXPECT_THROW(apply_config(StudyConfig{}, cfg), std::invalid_argument);
}

TEST(ApplyConfig, ConfiguredStudyRuns) {
  const ConfigFile cfg = ConfigFile::parse(
      "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\nrouting = UGALg\n");
  Study study(apply_config(StudyConfig{}, cfg));
  workloads::ShiftParams p;
  p.iterations = 20;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 16, "S");
  EXPECT_TRUE(study.run().completed);
}

// --- JsonWriter / reports ---------------------------------------------------------

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("dfly");
  w.key("n").value(3);
  w.key("pi").value(3.5);
  w.key("ok").value(true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().key("x").value("y").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"dfly","n":3,"pi":3.5,"ok":true,"nothing":null,)"
            R"("list":[1,2],"nested":{"x":"y"}})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);  // consecutive keys
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error);  // two top-level values
  }
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(ReportJson, ContainsKeyMetrics) {
  const Report report = run_shift(5);
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"routing\":\"PAR\""), std::string::npos);
  EXPECT_NE(json.find("\"apps\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"comm_mean_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
}

TEST(SweepJson, ContainsStats) {
  const SeedSweep sweep(50, 3);
  const SweepSummary summary =
      sweep.run([](std::uint64_t seed) { return run_shift(seed); });
  const std::string json = sweep_to_json(summary);
  EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ci95_half\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"Shift\""), std::string::npos);
}

TEST(SaveJson, RoundTripsToDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/report.json";
  save_json(path, "{\"x\":1}");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "{\"x\":1}");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dfly

// Figure 11: network stall-time analysis under the mixed workload. Per
// group: total local-link stall (the figure's circle sizes); per global
// link from Group 0: stall time (the figure's edge darkness). PAR vs
// Q-adaptive, run concurrently.

#include <algorithm>
#include <string>

#include "bench_common.hpp"
#include "core/mixed.hpp"
#include "stats/congestion.hpp"
#include "viz/charts.hpp"

namespace {

using namespace dfly;

std::string run_case(const StudyConfig& config) {
  Study study(config);
  add_mixed_workload(study);
  study.run();
  const GroupStall stall = group_stall(study.topo(), study.network().link_stats());

  std::string out = "\n[" + config.routing + "]\nlocal stall per group (ms):";
  char line[96];
  for (std::size_t g = 0; g < stall.local_ms.size(); ++g) {
    std::snprintf(line, sizeof line, " G%zu=%.2f", g, stall.local_ms[g]);
    out += line;
  }
  out += "\nglobal stall from G0 (ms):";
  for (std::size_t d = 1; d < stall.global_ms[0].size(); ++d) {
    std::snprintf(line, sizeof line, " G0-G%zu=%.3f", d, stall.global_ms[0][d]);
    out += line;
  }
  std::vector<std::size_t> order(stall.local_ms.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return stall.local_ms[a] > stall.local_ms[b]; });
  std::snprintf(line, sizeof line, "\nhot groups: G%zu(%.2fms) G%zu(%.2fms) G%zu(%.2fms)\n",
                order[0], stall.local_ms[order[0]], order[1], stall.local_ms[order[1]],
                order[2], stall.local_ms[order[2]]);
  out += line;
  std::snprintf(line, sizeof line,
                "summary %s mean_local_stall_ms_per_group %.3f mean_global_stall_ms_per_link %.4f\n",
                config.routing.c_str(), stall.mean_local_ms, stall.mean_global_ms);
  out += line;
  // The paper's radial diagram: circle size = local stall, edge darkness =
  // global stall from Group 0.
  viz::RadialGroupPlot plot("Fig 11 stall — " + config.routing);
  plot.set_group_values(stall.local_ms);
  plot.set_focal_edges(0, stall.global_ms[0]);
  plot.save("fig11_" + config.routing + ".svg");
  out += "wrote fig11_" + config.routing + ".svg\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  std::vector<std::function<std::string()>> tasks;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    const StudyConfig config = options.config(routing);
    tasks.push_back([config] { return run_case(config); });
  }
  const auto blocks = bench::parallel_map(tasks);
  bench::print_header("Figure 11 — per-group stall time under the mixed workload");
  for (const auto& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("\nExpected shape (paper): Q-adp roughly halves both local (31.4 vs 59.2 ms)\n"
              "and global (0.52 vs 1.33 ms) stall and removes PAR's distinct hot groups.\n");
  return 0;
}

// Tests for the immutable SystemBlueprint (core/blueprint.hpp): key/hash
// semantics, build purity, the concurrent cache's hit/miss behaviour, Study
// integration (explicit / thread-bound / private resolution and the shape
// check), byte-identical output with sharing on vs off, the dirty-state fuzz
// (deliberately different cell shapes through ONE cache), and the coroutine
// FramePool's recycle counters.

#include "core/blueprint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/arena.hpp"
#include "core/json_report.hpp"
#include "core/study.hpp"
#include "sim/rng.hpp"

namespace dfly {
namespace {

/// set_blueprint_enabled is process-global; every test that flips it must
/// restore the default so later tests see sharing on.
struct BlueprintToggleGuard {
  ~BlueprintToggleGuard() { set_blueprint_enabled(true); }
};

StudyConfig tiny_config(const std::string& routing = "MIN", std::uint64_t seed = 42) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = seed;
  config.scale = 64;
  return config;
}

Report run_cell(const StudyConfig& config, const std::string& app, int nodes,
                std::shared_ptr<const SystemBlueprint> blueprint = nullptr) {
  Study study(config, nullptr, std::move(blueprint));
  study.add_app(app, nodes);
  return study.run();
}

// --- field-count guard -------------------------------------------------------
//
// BlueprintKey::of() copies shape fields out of StudyConfig by hand, so a new
// StudyConfig field silently defaults to "not shape" — correct for knobs like
// seed or wall_limit_s, but a cache-poisoning bug if the field changes the
// built network. These static_asserts pin both field counts: adding a field
// fails compilation right here, forcing the author to classify it in the
// perturbation table below (and, if it is shape, add it to BlueprintKey, of()
// and hash()).

/// Converts to anything except T itself (so T's copy constructor can never
/// swallow the probe), declared-only: used in unevaluated requires-clauses.
template <class T>
struct AnyFieldBut {
  template <class U>
    requires(!std::is_same_v<std::remove_cvref_t<U>, T>)
  constexpr operator U() const noexcept;
};

/// Number of fields of aggregate T: the largest N for which T can be
/// brace-initialised with N probe arguments.
template <class T, class... Probe>
constexpr std::size_t field_count() {
  if constexpr (requires { T{Probe{}...}; }) {
    return field_count<T, Probe..., AnyFieldBut<T>>();
  } else {
    return sizeof...(Probe) - 1;
  }
}

static_assert(field_count<StudyConfig>() == 14,
              "StudyConfig changed: classify the new field as shape or non-shape in "
              "PerturbationSweepCoversEveryField (tests/core/test_blueprint.cpp); if it is "
              "shape, add it to BlueprintKey, BlueprintKey::of() and BlueprintKey::hash()");
static_assert(field_count<BlueprintKey>() == 8,
              "BlueprintKey changed: update BlueprintKey::of(), BlueprintKey::hash(), the "
              "shape perturbation list in tests/core/test_blueprint.cpp, and the non-shape "
              "comment in core/blueprint.hpp");

// --- key / hash --------------------------------------------------------------

TEST(BlueprintKey, SeedScaleAndObservabilityAreNotShape) {
  StudyConfig a = tiny_config("UGALg", 1);
  StudyConfig b = tiny_config("UGALg", 999);
  b.scale = 1;
  b.observability.keep_packet_records = true;
  b.time_limit = kSec;
  EXPECT_EQ(BlueprintKey::of(a), BlueprintKey::of(b));
  EXPECT_EQ(BlueprintKey::of(a).hash(), BlueprintKey::of(b).hash());
}

TEST(BlueprintKey, EveryShapeFieldChangesTheKey) {
  const BlueprintKey base = BlueprintKey::of(tiny_config());
  {
    StudyConfig c = tiny_config();
    c.routing = "UGALg";
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.topo = DragonflyParams{2, 4, 2, 5};
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.net.buffer_packets = 7;
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.placement = PlacementPolicy::kContiguous;
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.protocol.eager_threshold = 1024;
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.ugal.bias = 99;
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.qadp.alpha = 0.9;
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
  {
    StudyConfig c = tiny_config();
    c.faults = parse_fault_plan("0:2:4");
    EXPECT_FALSE(BlueprintKey::of(c) == base);
  }
}

TEST(BlueprintKey, PerturbationSweepCoversEveryField) {
  // One perturbation per StudyConfig field, each classified shape (must
  // change key AND hash) or non-shape (must change neither). The count
  // assertion at the bottom ties the table to the static_assert above: a new
  // field cannot compile without also being classified here.
  struct Perturbation {
    const char* field;
    void (*apply)(StudyConfig&);
  };
  const std::vector<Perturbation> shape{
      {"topo", [](StudyConfig& c) { c.topo = DragonflyParams{2, 4, 2, 5}; }},
      {"net", [](StudyConfig& c) { c.net.buffer_packets = 7; }},
      {"routing", [](StudyConfig& c) { c.routing = "UGALg"; }},
      {"placement", [](StudyConfig& c) { c.placement = PlacementPolicy::kContiguous; }},
      {"protocol", [](StudyConfig& c) { c.protocol.eager_threshold = 1024; }},
      {"ugal", [](StudyConfig& c) { c.ugal.bias = 99; }},
      {"qadp", [](StudyConfig& c) { c.qadp.alpha = 0.9; }},
      {"faults", [](StudyConfig& c) { c.faults = parse_fault_plan("0:2:4"); }},
  };
  const std::vector<Perturbation> non_shape{
      {"seed", [](StudyConfig& c) { c.seed = 999; }},
      {"scale", [](StudyConfig& c) { c.scale = 3; }},
      {"observability", [](StudyConfig& c) { c.observability.keep_packet_records = true; }},
      {"time_limit", [](StudyConfig& c) { c.time_limit = kSec; }},
      {"wall_limit_s", [](StudyConfig& c) { c.wall_limit_s = 5.0; }},
      {"cell_threads", [](StudyConfig& c) { c.cell_threads = 2; }},
  };
  ASSERT_EQ(shape.size() + non_shape.size(), field_count<StudyConfig>())
      << "every StudyConfig field must appear in exactly one perturbation list";
  ASSERT_EQ(shape.size(), field_count<BlueprintKey>())
      << "every BlueprintKey field must have a shape perturbation";

  const BlueprintKey base = BlueprintKey::of(tiny_config());
  for (const Perturbation& p : shape) {
    StudyConfig c = tiny_config();
    p.apply(c);
    const BlueprintKey key = BlueprintKey::of(c);
    EXPECT_FALSE(key == base) << "shape field '" << p.field << "' ignored by operator==";
    EXPECT_NE(key.hash(), base.hash())
        << "shape field '" << p.field << "' ignored by BlueprintKey::hash()";
  }
  for (const Perturbation& p : non_shape) {
    StudyConfig c = tiny_config();
    p.apply(c);
    const BlueprintKey key = BlueprintKey::of(c);
    EXPECT_TRUE(key == base) << "non-shape field '" << p.field << "' leaked into the key";
    EXPECT_EQ(key.hash(), base.hash())
        << "non-shape field '" << p.field << "' leaked into the hash";
  }
}

// --- build purity ------------------------------------------------------------

TEST(SystemBlueprint, BuildIsPureForEqualShapes) {
  const StudyConfig config = tiny_config("Q-adp");
  const auto a = SystemBlueprint::build(config);
  const auto b = SystemBlueprint::build(config);
  ASSERT_NE(a, b);  // distinct snapshots...
  EXPECT_EQ(a->key(), b->key());
  EXPECT_EQ(a->footprint_bytes(), b->footprint_bytes());
  const Dragonfly& topo = a->topo();
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int p = 0; p < topo.radix(); ++p) {
      // ...with identical content (the wiring plan is a pure function of
      // the shape).
      EXPECT_EQ(a->port(r, p).peer_router, b->port(r, p).peer_router);
      EXPECT_EQ(a->port(r, p).peer_port, b->port(r, p).peer_port);
      EXPECT_EQ(a->port(r, p).latency, b->port(r, p).latency);
    }
  }
  EXPECT_EQ(a->paths().min_hops, b->paths().min_hops);
  EXPECT_EQ(a->paths().group_paths, b->paths().group_paths);
  ASSERT_NE(a->initial_qtables(), nullptr);
  ASSERT_NE(b->initial_qtables(), nullptr);
  ASSERT_EQ(a->initial_qtables()->size(), b->initial_qtables()->size());
}

TEST(SystemBlueprint, PortPlanMatchesTopologyWiring) {
  const auto bp = SystemBlueprint::build(tiny_config());
  const Dragonfly& topo = bp->topo();
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int p = 0; p < topo.radix(); ++p) {
      const SystemBlueprint::PortPlan& plan = bp->port(r, p);
      if (topo.is_terminal_port(p)) {
        EXPECT_EQ(plan.peer_router, -1);
        EXPECT_EQ(plan.cls, LinkClass::kTerminal);
        continue;
      }
      const Dragonfly::Wire wire = topo.wire(r, p);
      EXPECT_EQ(plan.peer_router, wire.peer_router);
      EXPECT_EQ(plan.peer_port, wire.peer_port);
      EXPECT_EQ(plan.global, wire.global);
    }
  }
}

TEST(SystemBlueprint, InitialQTablesOnlyForQAdaptive) {
  EXPECT_EQ(SystemBlueprint::build(tiny_config("MIN"))->initial_qtables(), nullptr);
  EXPECT_NE(SystemBlueprint::build(tiny_config("Q-adp"))->initial_qtables(), nullptr);
}

// --- cache -------------------------------------------------------------------

TEST(BlueprintCache, SameShapeSharesOneSnapshot) {
  BlueprintCache cache;
  const auto a = cache.get_or_build(tiny_config("UGALg", 1));
  const auto b = cache.get_or_build(tiny_config("UGALg", 2));  // seed is not shape
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.size(), 1u);
  const BlueprintCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.build_ms_total, 0.0);
}

TEST(BlueprintCache, DifferentShapesGetDifferentSnapshots) {
  BlueprintCache cache;
  const auto a = cache.get_or_build(tiny_config("MIN"));
  const auto b = cache.get_or_build(tiny_config("PAR"));
  EXPECT_NE(a, b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(BlueprintCache, ThreadBindingNestsAndRestores) {
  EXPECT_EQ(BlueprintCache::current(), nullptr);
  BlueprintCache outer, inner;
  {
    ScopedBlueprintCacheBinding bind_outer(&outer);
    EXPECT_EQ(BlueprintCache::current(), &outer);
    {
      ScopedBlueprintCacheBinding bind_inner(&inner);
      EXPECT_EQ(BlueprintCache::current(), &inner);
      ScopedBlueprintCacheBinding noop(nullptr);  // null binding: keep current
      EXPECT_EQ(BlueprintCache::current(), &inner);
    }
    EXPECT_EQ(BlueprintCache::current(), &outer);
  }
  EXPECT_EQ(BlueprintCache::current(), nullptr);
}

// --- Study integration -------------------------------------------------------

TEST(StudyBlueprint, BoundCacheIsPickedUpAndShared) {
  BlueprintCache cache;
  ScopedBlueprintCacheBinding binding(&cache);
  const StudyConfig config = tiny_config("UGALg");
  Study first(config);
  Study second(config);
  EXPECT_EQ(first.blueprint(), second.blueprint());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(StudyBlueprint, ExplicitBlueprintIsUsedVerbatim) {
  const StudyConfig config = tiny_config("UGALg");
  const auto bp = SystemBlueprint::build(config);
  StudyConfig other_seed = config;
  other_seed.seed = 777;  // seed is not shape: the same plan serves it
  Study study(other_seed, nullptr, bp);
  EXPECT_EQ(study.blueprint(), bp);
}

TEST(StudyBlueprint, ShapeMismatchThrows) {
  const auto bp = SystemBlueprint::build(tiny_config("MIN"));
  EXPECT_THROW(Study(tiny_config("UGALg"), nullptr, bp), std::invalid_argument);
}

TEST(StudyBlueprint, DisabledTogglesIgnoreTheBoundCache) {
  BlueprintToggleGuard guard;
  BlueprintCache cache;
  ScopedBlueprintCacheBinding binding(&cache);
  set_blueprint_enabled(false);
  Study study(tiny_config());
  EXPECT_NE(study.blueprint(), nullptr);  // private plan, built anyway
  EXPECT_EQ(cache.size(), 0u);            // ...without touching the cache
  set_blueprint_enabled(true);
  Study cached(tiny_config());
  EXPECT_EQ(cache.size(), 1u);
}

// --- output equivalence ------------------------------------------------------

TEST(StudyBlueprint, SharedPlanOutputIsByteIdenticalToPrivate) {
  const StudyConfig config = tiny_config("PAR", 7);
  BlueprintCache cache;
  std::string shared_json, repeat_json;
  {
    ScopedBlueprintCacheBinding binding(&cache);
    shared_json = report_to_json(run_cell(config, "FFT3D", 32));
    repeat_json = report_to_json(run_cell(config, "FFT3D", 32));  // cache hit
  }
  const std::string private_json = report_to_json(run_cell(config, "FFT3D", 32));
  EXPECT_EQ(shared_json, private_json);
  EXPECT_EQ(repeat_json, private_json);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(StudyBlueprint, DirtyStateFuzzAcrossShapesThroughOneCache) {
  // Deliberately different cell shapes scheduled through ONE blueprint cache
  // (and one arena, as a ParallelRunner worker would): every report must
  // match a fresh cache-less, arena-less run of the same cell. Seeded so the
  // "random" schedule is reproducible.
  const std::vector<std::string> apps{"UR", "FFT3D", "Halo3D", "CosmoFlow"};
  const std::vector<std::string> routings{"MIN", "UGALg", "PAR", "Q-adp"};
  const std::vector<int> node_counts{16, 24, 32, 48};

  Rng rng(20260729);
  struct Cell {
    StudyConfig config;
    std::string app;
    int nodes;
  };
  std::vector<Cell> cells;
  for (int i = 0; i < 8; ++i) {
    Cell cell;
    cell.config = tiny_config(routings[rng.next_below(routings.size())],
                              /*seed=*/100 + rng.next_below(1000));
    cell.app = apps[rng.next_below(apps.size())];
    cell.nodes = node_counts[rng.next_below(node_counts.size())];
    if (rng.next_bernoulli(0.25)) {
      cell.config.net.qos.num_classes = 2;  // flip the DWRR arbitration shape
    }
    if (rng.next_bernoulli(0.25)) {
      cell.config.topo = DragonflyParams{2, 4, 2, 5};  // different machine
      cell.nodes = 16;
    }
    if (rng.next_bernoulli(0.5)) {
      cell.config.observability.keep_packet_records = true;
    }
    cells.push_back(std::move(cell));
  }

  BlueprintCache cache;
  std::vector<std::string> shared;
  {
    SimArena arena;
    ScopedArenaBinding arena_binding(&arena);
    ScopedBlueprintCacheBinding cache_binding(&cache);
    for (const Cell& cell : cells) {
      shared.push_back(report_to_json(run_cell(cell.config, cell.app, cell.nodes)));
    }
  }
  EXPECT_GT(cache.stats().misses, 0u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Report fresh = run_cell(cells[i].config, cells[i].app, cells[i].nodes);
    EXPECT_EQ(shared[i], report_to_json(fresh))
        << "cell " << i << " (" << cells[i].app << " on " << cells[i].config.routing
        << ", seed " << cells[i].config.seed << ") diverged under blueprint sharing";
  }
}

// --- coroutine frame pool ----------------------------------------------------

TEST(FramePool, UnboundByDefault) { EXPECT_EQ(mpi::FramePool::current(), nullptr); }

TEST(FramePool, ArenaBindingRecyclesFramesAcrossCells) {
  SimArena arena;
  const StudyConfig config = tiny_config("MIN", 3);
  {
    ScopedArenaBinding binding(&arena);
    EXPECT_EQ(mpi::FramePool::current(), &arena.frame_pool());
    run_cell(config, "UR", 32);
  }
  const std::uint64_t built_first = arena.frame_pool().frames_built();
  EXPECT_GT(built_first, 0u);          // first cell had to build its frames
  EXPECT_GT(arena.frame_pool().parked_blocks(), 0u);  // ...and parked them
  EXPECT_GT(arena.frame_pool().parked_bytes(), 0u);
  {
    ScopedArenaBinding binding(&arena);
    run_cell(config, "UR", 32);
  }
  EXPECT_GT(arena.frame_pool().frames_recycled(), 0u);
  // The same-shape second cell re-uses the first cell's frames instead of
  // growing the pool.
  EXPECT_EQ(arena.frame_pool().frames_built(), built_first);
}

TEST(FramePool, PoolLessAllocationRoundTrips) {
  // With no pool bound, promise frames fall back to the plain heap; the
  // deallocation path must accept such frames (bucket 0 tag).
  ASSERT_EQ(mpi::FramePool::current(), nullptr);
  void* frame = mpi::FramePool::allocate(256);
  ASSERT_NE(frame, nullptr);
  mpi::FramePool::deallocate(frame);

  // And a pool-built frame may be freed after its pool unbinds.
  mpi::FramePool pool;
  void* pooled = nullptr;
  {
    mpi::ScopedFramePoolBinding binding(&pool);
    pooled = mpi::FramePool::allocate(256);
    ASSERT_NE(pooled, nullptr);
  }
  mpi::FramePool::deallocate(pooled);  // no pool bound: plain-freed
}

}  // namespace
}  // namespace dfly

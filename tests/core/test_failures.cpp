#include <gtest/gtest.h>

#include "core/study.hpp"

namespace dfly {
namespace {

/// Failure injection: motifs that misbehave must be reported, not hang the
/// harness or corrupt state.

class DeadlockMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "Deadlock"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    // Rank 0 waits for a message nobody sends.
    if (ctx.rank() == 0) co_await ctx.recv(1, /*tag=*/99);
  }
};

class HalfDeadMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "HalfDead"; }
  mpi::Task run(mpi::RankCtx& ctx) const override {
    if (ctx.rank() % 2 == 0) {
      co_await ctx.compute(10 * kUs);
    } else {
      co_await ctx.recv(mpi::kAnySource, 12345);  // never satisfied
    }
  }
};

StudyConfig tiny_config() {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.scale = 64;            // healthy co-runners finish well inside the limit
  config.time_limit = 5 * kMs;  // fail fast
  return config;
}

TEST(Failures, DeadlockedJobReportsIncomplete) {
  Study study(tiny_config());
  study.add_motif(std::make_unique<DeadlockMotif>(), 4, "deadlock");
  const Report report = study.run();
  EXPECT_FALSE(report.completed);
}

TEST(Failures, PartialCompletionIsVisiblePerRank) {
  Study study(tiny_config());
  study.add_motif(std::make_unique<HalfDeadMotif>(), 8, "halfdead");
  const Report report = study.run();
  EXPECT_FALSE(report.completed);
  // The even ranks finished; the job as a whole did not.
  EXPECT_FALSE(study.job(0).done());
}

TEST(Failures, HealthyJobUnaffectedByDeadlockedNeighbor) {
  // A co-running application must still be able to finish even when the
  // other job never terminates (the paper's harness runs jobs of unequal
  // length all the time).
  Study study(tiny_config());
  study.add_motif(std::make_unique<DeadlockMotif>(), 4, "deadlock");
  study.add_app("UR", 16);
  const Report report = study.run();
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(study.job(0).done());
  EXPECT_TRUE(study.job(1).done());
}

TEST(Failures, TimeLimitBoundsRuntime) {
  Study study(tiny_config());
  study.add_motif(std::make_unique<DeadlockMotif>(), 2, "deadlock");
  study.run();
  EXPECT_LE(study.engine().now(), 5 * kMs + kMs);
}

TEST(Failures, OversizedJobThrowsAtAdd) {
  Study study(tiny_config());
  EXPECT_THROW(study.add_motif(std::make_unique<DeadlockMotif>(), 10000, "huge"),
               std::runtime_error);
}

}  // namespace
}  // namespace dfly

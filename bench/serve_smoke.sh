#!/usr/bin/env bash
# Campaign-daemon smoke: start `dflysim --serve` on a unix socket, submit the
# trimmed Fig-4 campaign over the socket, and require the streamed JSONL to be
# byte-identical to the same plan run directly via `--plan=FILE --jsonl=-`.
# Then the crash half: submit again, SIGKILL the daemon mid-campaign, restart
# it on the same spool, and require the resumed spool output to be
# byte-identical too (docs/DAEMON.md). Invoked by the serve_smoke CTest as
#   serve_smoke.sh <dflysim> <examples/fig4_campaign.cfg> <work dir>
set -u

DFLYSIM=$1
CAMPAIGN=$2
WORK=$3

# Three backgrounds keep the smoke cheap enough for a 1-core CI box while
# still exercising multi-cell streaming and a mid-campaign kill point.
SETS=(--set=plan.routings=MIN
      --set=plan.targets=FFT3D
      --set=plan.backgrounds=None,UR,CosmoFlow
      --set=scale=64)

SOCK=$WORK/serve_smoke.sock
SPOOL=$WORK/serve_smoke.spool
REF=$WORK/serve_smoke_ref.jsonl
OUT=$WORK/serve_smoke.jsonl
CT=$WORK/serve_smoke_ct.jsonl
rm -rf "$SOCK" "$SPOOL" "$REF" "$OUT" "$CT"

cleanup() {
  [ -n "${SRV:-}" ] && kill "$SRV" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never bound $SOCK"
  exit 1
}

echo "== reference run (direct --plan, no daemon) =="
"$DFLYSIM" --plan="$CAMPAIGN" "${SETS[@]}" --jobs=2 --jsonl=- 2>/dev/null > "$REF" || {
  echo "FAIL: reference run exited $?"
  exit 1
}

echo "== daemon up, submit over the socket =="
"$DFLYSIM" --serve="$SOCK" --spool="$SPOOL" --jobs=2 2>"$WORK/serve_smoke_daemon.log" &
SRV=$!
wait_for_socket
"$DFLYSIM" --submit="$SOCK" --plan="$CAMPAIGN" "${SETS[@]}" 2>/dev/null > "$OUT" || {
  echo "FAIL: submit exited $?"
  exit 1
}
if cmp "$REF" "$OUT"; then
  echo "PASS: socket-streamed JSONL is byte-identical to the direct --plan run"
else
  echo "FAIL: socket-streamed JSONL differs from the direct --plan run"
  exit 1
fi

echo "== submit with cell_threads=2; the streamed JSONL must not change =="
"$DFLYSIM" --submit="$SOCK" --plan="$CAMPAIGN" "${SETS[@]}" --set=cell_threads=2 \
    2>/dev/null > "$CT" || {
  echo "FAIL: cell_threads submit exited $?"
  exit 1
}
if cmp "$REF" "$CT"; then
  echo "PASS: cell_threads=2 socket JSONL is byte-identical to the sequential reference"
else
  echo "FAIL: cell_threads=2 socket JSONL differs from the sequential reference"
  exit 1
fi

echo "== submit again, SIGKILL the daemon mid-campaign =="
"$DFLYSIM" --submit="$SOCK" --plan="$CAMPAIGN" "${SETS[@]}" >/dev/null 2>&1 &
CLIENT=$!
JOURNAL=$SPOOL/c000003.journal
for _ in $(seq 1 3000); do
  [ -s "$JOURNAL" ] && break
  kill -0 "$SRV" 2>/dev/null || break
  sleep 0.1
done
if kill -9 "$SRV" 2>/dev/null; then
  echo "killed daemon pid $SRV after $(wc -l <"$JOURNAL" 2>/dev/null || echo 0) journaled cells"
else
  echo "note: daemon exited before the kill landed"
fi
wait "$SRV" 2>/dev/null
wait "$CLIENT" 2>/dev/null
SRV=

echo "== restart the daemon; it must resume the spooled campaign unprompted =="
"$DFLYSIM" --serve="$SOCK" --spool="$SPOOL" --jobs=2 2>>"$WORK/serve_smoke_daemon.log" &
SRV=$!
wait_for_socket
for _ in $(seq 1 3000); do
  [ -f "$SPOOL/c000003.done" ] && break
  sleep 0.1
done
"$DFLYSIM" --shutdown="$SOCK" >/dev/null 2>&1
wait "$SRV" 2>/dev/null
SRV=

if [ ! -f "$SPOOL/c000003.done" ]; then
  echo "FAIL: restarted daemon never finished the spooled campaign"
  exit 1
fi
if cmp "$SPOOL/c000003.jsonl" "$REF"; then
  echo "PASS: resumed spool JSONL is byte-identical to the uninterrupted reference"
else
  echo "FAIL: resumed spool JSONL differs from the reference"
  exit 1
fi

#!/usr/bin/env python3
"""Fail on broken intra-repo links in the project's Markdown docs.

Scans every root-level *.md and docs/*.md for Markdown links and image
references whose
target is a relative path, and verifies the target exists in the working
tree. Heading anchors (``file.md#section`` or ``#section``) are checked
against the target file's ATX headings using GitHub's anchor rules
(lowercase, spaces to dashes, punctuation dropped).

External links (http/https/mailto) and generated paths (``build/...``) are
skipped — CI has no business probing the network, and build outputs don't
exist in a fresh checkout.

Usage: tools/check_links.py [root]   (root defaults to the repo root)
Exit status: 0 when every link resolves, 1 otherwise (each break printed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "build/")


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: strip markup, lowercase, spaces->dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {anchor_of(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(doc: Path, root: Path) -> list[str]:
    errors = []
    text = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("../../"):
            continue  # external, generated, or forge-relative (CI badge)
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            if fragment and anchor_of(fragment) not in anchors_in(doc):
                errors.append(f"{doc.relative_to(root)}: broken anchor '#{fragment}'")
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{doc.relative_to(root)}: broken link '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if anchor_of(fragment) not in anchors_in(resolved):
                errors.append(
                    f"{doc.relative_to(root)}: broken anchor '{target}' "
                    f"(no such heading in {path_part})")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    # Glob, not a hardcoded list: a new doc is covered the moment it exists.
    docs = sorted((root).glob("*.md")) + sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            continue
        checked += 1
        errors.extend(check_file(doc, root))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"check_links: {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

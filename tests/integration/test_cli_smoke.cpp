// End-to-end smoke test for the dflysim CLI: drives the real binary (path
// injected by CMake as DFSIM_CLI_PATH) on a quickstart-equivalent run and
// checks the exit status plus the JSON report's key surface.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef DFSIM_CLI_PATH
#error "DFSIM_CLI_PATH must be defined to the dflysim binary path"
#endif

int run_cli(const std::string& args) {
  const std::string command = std::string(DFSIM_CLI_PATH) + " " + args;
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_json_path() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/dfsim_cli_smoke.json";
}

TEST(CliSmoke, HelpAndListingsExitZero) {
  EXPECT_EQ(run_cli("--help > /dev/null 2>&1"), 0);
  EXPECT_EQ(run_cli("--list-apps > /dev/null 2>&1"), 0);
  EXPECT_EQ(run_cli("--list-routings > /dev/null 2>&1"), 0);
}

TEST(CliSmoke, BadUsageExitsNonZero) {
  EXPECT_NE(run_cli("> /dev/null 2>&1"), 0);                   // no --app
  EXPECT_NE(run_cli("--no-such-flag > /dev/null 2>&1"), 0);
}

TEST(CliSmoke, QuickstartRunWritesJsonReport) {
  const std::string json_path = temp_json_path();
  std::remove(json_path.c_str());

  // Quickstart-equivalent: FFT3D on half the paper machine, Q-adaptive
  // routing, iteration counts shrunk for a fast smoke run.
  const int exit_code = run_cli("--app=FFT3D:528 --routing=Q-adp --scale=32 --seed=1 --json=" +
                                json_path + " > /dev/null 2>&1");
  EXPECT_EQ(exit_code, 0);

  const std::string json = slurp(json_path);
  ASSERT_FALSE(json.empty()) << "CLI did not write " << json_path;
  for (const char* key :
       {"\"routing\"", "\"completed\"", "\"makespan_ms\"", "\"sys_lat_p99_us\"",
        "\"agg_throughput_gb_per_ms\"", "\"events_executed\"", "\"apps\"", "\"app\"",
        "\"comm_mean_ms\"", "\"lat_p99_us\"", "\"nonminimal_fraction\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"routing\":\"Q-adp\""), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(CliSmoke, JsonToStdout) {
  const std::string json_path = temp_json_path() + ".stdout";
  const int exit_code = run_cli("--app=UR:64 --routing=MIN --scale=64 --json=- > " + json_path +
                                " 2>/dev/null");
  EXPECT_EQ(exit_code, 0);
  const std::string out = slurp(json_path);
  EXPECT_NE(out.find("\"routing\""), std::string::npos);
  EXPECT_NE(out.find("\"apps\""), std::string::npos);
  std::remove(json_path.c_str());
}

}  // namespace

#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"
#include "core/sweep.hpp"

/// Machine-readable run output.
///
/// Complements the IO module's CSV streams: where CSV carries bulk series
/// (per-packet records, congestion matrices), the JSON report is the
/// single-document summary of one run or one sweep — the thing a CI job or
/// a plotting notebook ingests. Hand-rolled writer (no dependency), RFC 8259
/// escaping, stable key order.
namespace dfly {

/// Streaming JSON writer with container tracking; misuse (value outside a
/// container, key inside an array) throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key for the next value (objects only).
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Final document; throws if containers are still open.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Ctx : char { kObject, kArray };

  void comma_if_needed();
  void on_value();

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;
  bool want_key_{false};
  bool has_pending_key_{false};
};

/// Serialise a single run's Report.
std::string report_to_json(const Report& report);

/// Write a Report as one JSON object into an open writer (the compositional
/// form report_to_json and the plan sinks share, so a report embedded in a
/// JSONL record is byte-identical to the standalone document).
void write_report(JsonWriter& w, const Report& report);

/// Serialise a SweepSummary (multi-seed aggregate).
std::string sweep_to_json(const SweepSummary& summary);

/// Write `json` to `path` (throws on IO failure).
void save_json(const std::string& path, const std::string& json);

}  // namespace dfly

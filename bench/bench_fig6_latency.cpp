// Figure 6: FFT3D packet latency distribution (box plot statistics with
// p95/p99), standalone vs interfered-by-Halo3D, under PAR and Q-adaptive.
// The paper's claim: similar medians, but Q-adp's far smaller tail keeps
// the Alltoall fast (tail latency governs collective completion).

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/charts.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 32);

  struct Row {
    double mean, q1, median, q3, p95, p99;
  };
  std::vector<std::function<Row()>> tasks;
  std::vector<std::string> labels;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    for (const bool interfered : {false, true}) {
      labels.push_back(routing + (interfered ? "_interfered" : "_alone"));
      const StudyConfig config = options.config(routing);
      tasks.push_back([config, interfered] {
        Study study(config);
        const int half = config.topo.num_nodes() / 2;
        study.add_app("FFT3D", half);
        if (interfered) study.add_app("Halo3D", half);
        study.run();
        const Histogram& lat = study.network().packet_log().latency(0);
        const double us = static_cast<double>(kUs);
        return Row{lat.mean() / us,
                   static_cast<double>(lat.percentile(0.25)) / us,
                   static_cast<double>(lat.median()) / us,
                   static_cast<double>(lat.percentile(0.75)) / us,
                   static_cast<double>(lat.p95()) / us,
                   static_cast<double>(lat.p99()) / us};
      });
    }
  }
  const auto rows = bench::parallel_map(tasks);

  bench::print_header("Figure 6 — FFT3D packet latency distribution (us)");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "case", "mean", "q1", "median", "q3",
              "p95", "p99");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-22s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", labels[i].c_str(),
                rows[i].mean, rows[i].q1, rows[i].median, rows[i].q3, rows[i].p95, rows[i].p99);
  }
  viz::BoxPlot plot("Fig 6 — FFT3D packet latency", "latency (us)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    viz::BoxPlot::Stats stats;
    stats.q1 = rows[i].q1;
    stats.median = rows[i].median;
    stats.q3 = rows[i].q3;
    stats.whisker_lo = 0;
    stats.whisker_hi = rows[i].p95;
    stats.p95 = rows[i].p95;
    stats.p99 = rows[i].p99;
    stats.mean = rows[i].mean;
    plot.add_box(labels[i], stats);
  }
  plot.save("fig6_latency_box.svg");
  std::printf("\nWrote fig6_latency_box.svg\n");
  std::printf("\nExpected shape (paper): alone, both routings are comparable; interfered,\n"
              "PAR's p95/p99 are ~1.6x/2x Q-adp's while medians stay similar.\n");
  return 0;
}

# CTest script: run the committed Fig-4 campaign file through the unified
# plan runner (`dflysim --plan`) at --cell-threads=1, 2 and 4 and require
# byte-identical JSON Lines output — the intra-cell parallel engine
# (src/sim/pdes.cpp) must be invisible to everything downstream of the
# event order it replays. --cell-threads=1 resolves to the plain sequential
# engine, so this also pins the parallel path against the sequential one.
# The campaign is trimmed to the same 3-cell slice as plan_smoke.cmake.
# Invoked by the pdes_plan_smoke test with -DDFLYSIM=<binary>
# -DCAMPAIGN=<examples/fig4_campaign.cfg> -DWORK_DIR=<build dir>.
set(ARGS --plan=${CAMPAIGN}
    --set=plan.routings=MIN
    --set=plan.targets=FFT3D
    --set=plan.backgrounds=None,UR,LU
    --set=scale=64
    --jobs=1)

foreach(threads 1 2 4)
  execute_process(
    COMMAND ${DFLYSIM} ${ARGS} --cell-threads=${threads}
            --jsonl=${WORK_DIR}/pdes_plan_t${threads}.jsonl
    RESULT_VARIABLE RUN_RESULT OUTPUT_QUIET)
  if(NOT RUN_RESULT EQUAL 0)
    message(FATAL_ERROR
            "--cell-threads=${threads} plan run failed with exit code ${RUN_RESULT}")
  endif()
endforeach()

foreach(threads 2 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/pdes_plan_t1.jsonl ${WORK_DIR}/pdes_plan_t${threads}.jsonl
    RESULT_VARIABLE DIFF_RESULT)
  if(NOT DIFF_RESULT EQUAL 0)
    message(FATAL_ERROR
            "--cell-threads=${threads} campaign JSONL differs from --cell-threads=1 "
            "(parallel engine determinism regression)")
  endif()
endforeach()

message(STATUS "cell-threads 1/2/4 campaign JSONL outputs are byte-identical")

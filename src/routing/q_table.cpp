#include "routing/q_table.hpp"

namespace dfly {

QTable::QTable(int num_groups, int num_locals, int radix)
    : radix_(static_cast<std::size_t>(radix)),
      num_groups_(num_groups),
      num_locals_(num_locals),
      global_(static_cast<std::size_t>(num_groups) * radix_, 0.0),
      local_(static_cast<std::size_t>(num_locals) * radix_, 0.0) {}

}  // namespace dfly

// Micro-benchmarks (google-benchmark): the discrete-event engine's event
// throughput and the end-to-end simulator packet rate. These bound how
// large a --scale the experiment benches can afford.
//
// The Legacy* benchmarks reproduce the seed implementation's event queue
// (std::push_heap/std::pop_heap binary heap, one pop per event) so the
// index-based 4-ary heap + same-timestamp batch pop in Engine is *measured*
// against its predecessor, not asserted: compare BM_Legacy<X> with
// BM_Engine<X> items_per_second on the same workload.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/blueprint.hpp"
#include "core/study.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dfly;

class NullComponent final : public Component {
 public:
  void handle(Engine& engine, const Event& event) override {
    if (event.a > 0) engine.schedule_in(10, *this, 0, event.a - 1);
  }
};

/// Surface the engine's per-kind schedule/pop counters (Engine::stats()) on
/// the benchmark so BENCH_engine.json records what each workload actually
/// ran: totals always, per-kind only where non-zero to keep the JSON small.
void report_engine_stats(benchmark::State& state, const EngineStats& stats) {
  state.counters["ev_scheduled"] =
      benchmark::Counter(static_cast<double>(stats.scheduled_total()));
  state.counters["ev_executed"] =
      benchmark::Counter(static_cast<double>(stats.executed_total()));
  for (std::size_t k = 0; k < stats.executed_by_kind.size(); ++k) {
    if (stats.executed_by_kind[k] == 0) continue;
    state.counters["ev_kind" + std::to_string(k)] =
        benchmark::Counter(static_cast<double>(stats.executed_by_kind[k]));
  }
}

/// Verbatim re-creation of the seed Engine's queue and dispatch loop: binary
/// min-heap of full 48-byte entries via the std::*_heap algorithms, one pop
/// + re-sift per event, and the seed's exact per-event bookkeeping (the
/// schedule assert, the executed counter, one Event construction, one
/// virtual dispatch).
class LegacyEngine {
 public:
  struct Sink {
    virtual ~Sink() = default;
    virtual void on_event(LegacyEngine& engine, const Event& event) = 0;
  };

  SimTime now() const { return now_; }

  void schedule_at(SimTime when, Sink& target, std::uint32_t kind, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
    assert(when >= now_ && "cannot schedule into the past");
    heap_.push_back(Entry{when, next_seq_++, &target, kind, a, b});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  std::uint64_t run() {
    std::uint64_t count = 0;
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      const Entry entry = heap_.back();
      heap_.pop_back();
      now_ = entry.when;
      ++executed_;
      ++count;
      const Event event{entry.when, entry.seq, nullptr, entry.kind, entry.a, entry.b};
      entry.target->on_event(*this, event);
    }
    return count;
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Sink* target;
    std::uint32_t kind;
    std::uint64_t a, b;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::vector<Entry> heap_;
  SimTime now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

class LegacyNullSink final : public LegacyEngine::Sink {
 public:
  void on_event(LegacyEngine& engine, const Event& event) override {
    if (event.a > 0) engine.schedule_at(engine.now() + 10, *this, 0, event.a - 1);
  }
};

/// Pure engine overhead: schedule + dispatch of chained events.
void BM_EngineEventChain(benchmark::State& state) {
  EngineStats engine_stats;
  for (auto _ : state) {
    Engine engine;
    NullComponent component;
    const std::uint64_t chain = 100000;
    engine.schedule_at(0, component, 0, chain);
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
    engine_stats = engine.stats();
  }
  report_engine_stats(state, engine_stats);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100001);
}
BENCHMARK(BM_EngineEventChain)->Unit(benchmark::kMillisecond);

/// Baseline for BM_EngineEventChain on the seed's binary heap.
void BM_LegacyEventChain(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine engine;
    LegacyNullSink sink;
    const std::uint64_t chain = 100000;
    engine.schedule_at(0, sink, 0, chain);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100001);
}
BENCHMARK(BM_LegacyEventChain)->Unit(benchmark::kMillisecond);

/// Engine with a populated heap: random-time scheduling.
void BM_EngineRandomHeap(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    NullComponent component;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.next_below(1000000)), component, 0, 0);
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EngineRandomHeap)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(30000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Baseline for BM_EngineRandomHeap on the seed's binary heap.
void BM_LegacyRandomHeap(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LegacyEngine engine;
    LegacyNullSink sink;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.next_below(1000000)), sink, 0);
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * events);
}
// 1k/5k/30k bracket the measured queue depth of a paper-topology FFT3D run
// (mean ~4.7k in-flight events, peak ~35k).
BENCHMARK(BM_LegacyRandomHeap)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(30000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Steady-state schedule/pop throughput at constant queue depth: every
/// handled event schedules one replacement at a random future offset. This
/// is the shape of a real simulation cell (measured FFT3D run: mean ~4.7k
/// in-flight events, peak ~35k), unlike the bulk-load-then-drain of
/// BM_*RandomHeap.
class SteadyComponent final : public Component {
 public:
  explicit SteadyComponent(std::uint64_t seed) : rng_(seed) {}
  void handle(Engine& engine, const Event& event) override {
    if (event.a > 0) {
      engine.schedule_in(static_cast<SimTime>(rng_.next_below(100000)) + 1, *this, 0,
                         event.a - 1);
    }
  }

 private:
  Rng rng_;
};

void BM_EngineSteadyState(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const std::uint64_t rounds = 20;  // events per chain; total = depth * rounds
  EngineStats engine_stats;
  for (auto _ : state) {
    Engine engine;
    SteadyComponent component(1);
    Rng rng(2);
    for (int i = 0; i < depth; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.next_below(100000)), component, 0, rounds);
    }
    engine.run();
    engine_stats = engine.stats();
  }
  report_engine_stats(state, engine_stats);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * depth *
                          static_cast<std::int64_t>(rounds + 1));
}
BENCHMARK(BM_EngineSteadyState)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

class LegacySteadySink final : public LegacyEngine::Sink {
 public:
  explicit LegacySteadySink(std::uint64_t seed) : rng_(seed) {}
  void on_event(LegacyEngine& engine, const Event& event) override {
    if (event.a > 0) {
      engine.schedule_at(engine.now() + static_cast<SimTime>(rng_.next_below(100000)) + 1,
                         *this, 0, event.a - 1);
    }
  }

 private:
  Rng rng_;
};

/// Baseline for BM_EngineSteadyState on the seed's binary heap.
void BM_LegacySteadyState(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const std::uint64_t rounds = 20;
  for (auto _ : state) {
    LegacyEngine engine;
    LegacySteadySink sink(1);
    Rng rng(2);
    for (int i = 0; i < depth; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.next_below(100000)), sink, 0, rounds);
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * depth *
                          static_cast<std::int64_t>(rounds + 1));
}
BENCHMARK(BM_LegacySteadyState)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

/// Same-timestamp floods: many events per distinct time, the shape produced
/// by synchronised collectives. Exercises Engine::run's batch pop.
void BM_EngineSameTimeFlood(benchmark::State& state) {
  const int timestamps = 1000;
  const int per_timestamp = static_cast<int>(state.range(0));
  EngineStats engine_stats;
  for (auto _ : state) {
    Engine engine;
    NullComponent component;
    for (int t = 0; t < timestamps; ++t) {
      for (int i = 0; i < per_timestamp; ++i) {
        engine.schedule_at(static_cast<SimTime>(t) * 100, component, 0, 0);
      }
    }
    engine.run();
    engine_stats = engine.stats();
  }
  report_engine_stats(state, engine_stats);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * timestamps *
                          per_timestamp);
}
BENCHMARK(BM_EngineSameTimeFlood)->Arg(16)->Arg(128)->Unit(benchmark::kMillisecond);

/// Baseline for BM_EngineSameTimeFlood on the seed's binary heap.
void BM_LegacySameTimeFlood(benchmark::State& state) {
  const int timestamps = 1000;
  const int per_timestamp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LegacyEngine engine;
    LegacyNullSink sink;
    for (int t = 0; t < timestamps; ++t) {
      for (int i = 0; i < per_timestamp; ++i) {
        engine.schedule_at(static_cast<SimTime>(t) * 100, sink, 0);
      }
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * timestamps *
                          per_timestamp);
}
BENCHMARK(BM_LegacySameTimeFlood)->Arg(16)->Arg(128)->Unit(benchmark::kMillisecond);

/// End-to-end packet rate: uniform-random traffic on the tiny system.
void BM_NetworkPacketRate(benchmark::State& state) {
  const std::string routing_name =
      state.range(0) == 0 ? "MIN" : (state.range(0) == 1 ? "UGALn" : "Q-adp");
  std::int64_t packets = 0;
  EngineStats engine_stats;
  // The immutable plan is loop-invariant: build it once outside the timed
  // region (pre-blueprint, the per-iteration Dragonfly build was timed; the
  // benchmark measures engine/network packet rate, not plan construction).
  StudyConfig bp_config;
  bp_config.topo = DragonflyParams::tiny();
  bp_config.routing = routing_name;
  const auto bp = SystemBlueprint::build(bp_config);
  const Dragonfly& topo = bp->topo();
  for (auto _ : state) {
    Engine engine;
    routing::RoutingContext context{&engine,  &topo, &bp->net(), 1, {}, {},
                                    bp->initial_qtables()};
    auto routing = routing::make_routing(routing_name, context);
    Network net(engine, *bp, *routing, 1, 1);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
      int dst = src;
      while (dst == src) {
        dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
      }
      net.send_message(src, dst, 2048, 0);
    }
    engine.run();
    packets += static_cast<std::int64_t>(net.packet_log().delivered_packets(0));
    engine_stats = engine.stats();
  }
  report_engine_stats(state, engine_stats);
  state.SetItemsProcessed(packets);
  state.SetLabel(routing_name);
}
BENCHMARK(BM_NetworkPacketRate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// Full-stack rate: one FFT3D iteration on the paper topology.
void BM_StudyFft3dIteration(benchmark::State& state) {
  for (auto _ : state) {
    StudyConfig config;
    config.topo = DragonflyParams::paper();
    config.routing = "UGALg";
    config.scale = 13;  // exactly one FFT3D iteration
    Study study(config);
    study.add_app("FFT3D", 528);
    const Report report = study.run();
    benchmark::DoNotOptimize(report.events_executed);
  }
}
BENCHMARK(BM_StudyFft3dIteration)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

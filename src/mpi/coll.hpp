#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "mpi/rank.hpp"
#include "mpi/task.hpp"

/// Extended collective-communication algorithms.
///
/// SST/Firefly implements Allreduce as a binary tree and Alltoall as a ring
/// exchange; those live on RankCtx (mpi/collectives.cpp) and are what the
/// paper's workloads use. This header adds the classic algorithm families
/// from the MPI-implementation literature (MPICH/Horovod lineage) so that
/// the interference study can be extended with algorithm ablations: the
/// same logical collective stresses the network very differently depending
/// on the algorithm (burst fan-out vs. pipelined neighbour traffic), which
/// shifts an application's peak ingress volume (§IV metric 2) without
/// changing its total message volume.
///
/// All algorithms are modelled at the message level: payload bytes cross the
/// network exactly as the real algorithm would move them, reduction compute
/// is not modelled (consistent with SST/Ember motifs).
namespace dfly::mpi::coll {

/// Allreduce algorithm families.
///  - kBinaryTree: SST/Firefly default — reduce to root then broadcast
///    (peak ingress = 2 messages at the fan-out, latency O(log n) rounds of
///    full-size payloads).
///  - kRing: Horovod-style reduce-scatter + allgather ring, 2(n-1) rounds of
///    bytes/n chunks — bandwidth-optimal, smooth injection.
///  - kRecursiveDoubling: log2(n) rounds of full-size exchange with partner
///    me XOR 2^k — latency-optimal for short payloads.
///  - kHalvingDoubling: Rabenseifner recursive-halving reduce-scatter plus
///    recursive-doubling allgather — bandwidth-optimal, log-round.
enum class AllreduceAlg {
  kBinaryTree,
  kRing,
  kRecursiveDoubling,
  kHalvingDoubling,
};

/// Alltoall algorithm families.
///  - kRing: SST default, n-1 rounds, one message per round.
///  - kPairwise: XOR-partner exchange (n power of two; falls back to ring).
///  - kBruck: ceil(log2 n) rounds of aggregated blocks — fewer, larger
///    messages; raises peak ingress volume but cuts round count.
enum class AlltoallAlg {
  kRing,
  kPairwise,
  kBruck,
};

/// Reduce-scatter algorithm families.
///  - kRing: n-1 rounds of bytes/n chunks between ring neighbours — the
///    first pass of Horovod ring allreduce, bandwidth-optimal.
///  - kHalving: MPICH recursive halving — log2(n) rounds, round k exchanges
///    bytes/2^(k+1) with partner me XOR 2^k (power-of-two membership; the
///    dispatcher falls back to ring otherwise).
enum class ReduceScatterAlg {
  kRing,
  kHalving,
};

const char* to_string(AllreduceAlg alg);
const char* to_string(AlltoallAlg alg);
const char* to_string(ReduceScatterAlg alg);
AllreduceAlg allreduce_from_string(const std::string& name);
AlltoallAlg alltoall_from_string(const std::string& name);
ReduceScatterAlg reduce_scatter_from_string(const std::string& name);

/// Dispatch on `alg`; every rank of the job must call with the same values.
///
/// Membership spans are borrowed, not copied: the caller's buffer must stay
/// valid until the awaited collective completes. Every call site in this
/// codebase passes a coroutine-frame local (built once, reused every
/// iteration), which satisfies that for free — and makes repeated
/// collectives allocation-free.
Task allreduce(RankCtx& ctx, std::int64_t bytes, AllreduceAlg alg);
Task alltoall(RankCtx& ctx, std::int64_t bytes, std::span<const int> members, AlltoallAlg alg);
Task reduce_scatter(RankCtx& ctx, std::int64_t bytes, ReduceScatterAlg alg);

// --- allreduce family -------------------------------------------------------

/// Horovod ring allreduce: reduce-scatter pass then allgather pass, each
/// n-1 rounds of ceil(bytes/n)-byte chunks between ring neighbours.
Task ring_allreduce(RankCtx& ctx, std::int64_t bytes);

/// Recursive doubling: log2 rounds exchanging the full payload with partner
/// me XOR 2^k. Non-power-of-two sizes fold the excess ranks onto partners
/// first (MPICH scheme) and unfold at the end.
Task recursive_doubling_allreduce(RankCtx& ctx, std::int64_t bytes);

/// Rabenseifner: recursive-halving reduce-scatter (round k exchanges
/// bytes/2^(k+1) with partner me XOR 2^k) followed by the mirror-image
/// recursive-doubling allgather. Non-power-of-two handled by folding.
Task halving_doubling_allreduce(RankCtx& ctx, std::int64_t bytes);

// --- rooted collectives ------------------------------------------------------

/// Binomial-tree broadcast from `root`: receive once, forward to
/// log-spaced children (largest subtree first).
Task bcast_binomial(RankCtx& ctx, int root, std::int64_t bytes);

/// Binomial-tree reduction to `root` (communication mirror of bcast).
Task reduce_binomial(RankCtx& ctx, int root, std::int64_t bytes);

/// Binomial gather to `root`: subtree payloads aggregate upward, so a
/// message covering a subtree of s ranks carries s * per_rank_bytes.
Task gather_binomial(RankCtx& ctx, int root, std::int64_t per_rank_bytes);

/// Binomial scatter from `root` (communication mirror of gather).
Task scatter_binomial(RankCtx& ctx, int root, std::int64_t per_rank_bytes);

// --- unrooted data movement ---------------------------------------------------

/// Ring allgather: n-1 rounds forwarding the next per-rank block around the
/// ring (each round moves per_rank_bytes to the right neighbour).
Task allgather_ring(RankCtx& ctx, std::int64_t per_rank_bytes);

/// Pairwise-exchange alltoall: n-1 rounds, partner me XOR round (requires
/// power-of-two membership; the dispatcher falls back to ring otherwise).
Task alltoall_pairwise(RankCtx& ctx, std::int64_t bytes, std::span<const int> members);

/// Bruck alltoall: ceil(log2 n) rounds; round r ships every block whose
/// index has bit r set (about n/2 blocks of `bytes` each) to member me+2^r.
Task alltoall_bruck(RankCtx& ctx, std::int64_t bytes, std::span<const int> members);

/// Ring reduce-scatter: after n-1 rounds of ceil(bytes/n) chunks each rank
/// owns one fully reduced block (the first pass of ring allreduce).
Task reduce_scatter_ring(RankCtx& ctx, std::int64_t bytes);

/// MPICH recursive-halving reduce-scatter: log2(n) rounds, halving the
/// exchanged payload each round. Requires power-of-two job size.
Task reduce_scatter_halving(RankCtx& ctx, std::int64_t bytes);

/// Vector alltoall (MPI_Alltoallv): member at index i of `members` sends
/// `send_bytes[j]` to the member at index j and receives `recv_bytes[j]`
/// from it. Zero-byte lanes move no message at all, so sparse exchange
/// patterns cost only their non-zero traffic. Every member must pass
/// mirror-consistent vectors (my send_bytes[j] == j's recv_bytes[my index]);
/// ring schedule (round i talks to members me+i / me-i).
Task alltoallv_ring(RankCtx& ctx, std::span<const std::int64_t> send_bytes,
                    std::span<const std::int64_t> recv_bytes, std::span<const int> members);

/// Dissemination barrier: ceil(log2 n) rounds of 8-byte flags to member
/// me + 2^k. Completes in log rounds regardless of arrival skew.
Task barrier_dissemination(RankCtx& ctx);

/// Number of point-to-point rounds algorithm `alg` takes on `n` ranks
/// (used by tests and by the ablation bench's analytic columns).
int allreduce_rounds(AllreduceAlg alg, int n);
int alltoall_rounds(AlltoallAlg alg, int n);

/// Total bytes one rank sends for an allreduce of `bytes` over `n` ranks
/// under `alg` (analytic; tests compare the simulation against this).
std::int64_t allreduce_bytes_per_rank(AllreduceAlg alg, int n, std::int64_t bytes);

/// Rounds / bytes-per-rank for reduce-scatter (analytic, power-of-two n for
/// kHalving; tests compare the simulation against these).
int reduce_scatter_rounds(ReduceScatterAlg alg, int n);
std::int64_t reduce_scatter_bytes_per_rank(ReduceScatterAlg alg, int n, std::int64_t bytes);

}  // namespace dfly::mpi::coll

#pragma once

#include "net/config.hpp"
#include "stats/link_stats.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

/// Stable link-id scheme for statistics:
///   router output links:  router * radix + port   (terminal/local/global)
///   NIC injection links:  num_routers * radix + node
/// Every directed wire in the system has exactly one id.
class LinkMap {
 public:
  explicit LinkMap(const Dragonfly& topo)
      : radix_(topo.radix()),
        router_links_(topo.num_routers() * topo.radix()),
        total_(router_links_ + topo.num_nodes()) {}

  int router_out(int router, int port) const { return router * radix_ + port; }
  int nic_out(int node) const { return router_links_ + node; }
  int total_links() const { return total_; }

  /// Latency of the wire behind a router output port.
  static SimTime port_latency(const Dragonfly& topo, const NetConfig& cfg, int port) {
    if (topo.is_global_port(port)) return cfg.global_latency;
    if (topo.is_local_port(port)) return cfg.local_latency;
    return cfg.terminal_latency;
  }

  static LinkClass port_class(const Dragonfly& topo, int port) {
    if (topo.is_global_port(port)) return LinkClass::kGlobal;
    if (topo.is_local_port(port)) return LinkClass::kLocal;
    return LinkClass::kTerminal;
  }

 private:
  int radix_;
  int router_links_;
  int total_;
};

}  // namespace dfly

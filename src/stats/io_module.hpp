#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace dfly {

/// Coalescing CSV writer — our version of the paper's §III IO module.
///
/// "For the purpose of simulation efficiency, the IO module can be flexibly
/// configured to coalesce multiple write operations into one action to
/// balance the trade-off between IO efficiency and system memory usage."
///
/// Rows are buffered in memory and flushed to disk in batches of
/// `coalesce_rows`; flush() and the destructor drain the remainder.
class CsvWriter {
 public:
  CsvWriter(std::string path, std::vector<std::string> columns,
            std::size_t coalesce_rows = 4096);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; `values.size()` must equal the column count.
  void row(const std::vector<std::string>& values);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& values);

  void flush();

  const std::string& path() const { return path_; }
  std::uint64_t rows_written() const { return rows_written_; }

  /// Format a double with enough precision for round-tripping.
  static std::string num(double v);

 private:
  void open_if_needed();

  std::string path_;
  std::vector<std::string> columns_;
  std::size_t coalesce_rows_;
  std::vector<std::string> pending_;
  std::ofstream out_;
  bool header_written_{false};
  std::uint64_t rows_written_{0};
};

}  // namespace dfly

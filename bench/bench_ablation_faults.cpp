// Ablation: link faults (degraded wires) vs routing policy.
//
// Production Dragonfly/Slingshot links retrain to lower speeds after CRC
// error bursts, leaving "slow wires" that heuristic routing cannot see from
// the source router: UGAL/PAR read local queue occupancy, which only grows
// once backpressure from the slow wire reaches them, whereas Q-adaptive's
// Q-values encode end-to-end delivery time and steer around the fault.
//
// Setup: the paper's worst pairwise case (FFT3D victim, UR background on the
// other half) with an increasing fraction of global links degraded 8x.
// Expected shape: all routings degrade as faults grow, but Q-adaptive keeps
// the victim's comm time and p99 flattest; MIN-leaning policies pay the most
// because minimal paths cannot avoid a degraded direct link.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "net/fault.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double victim_ms{0};
  double victim_p99_us{0};
  double nonmin{0};
};

Outcome run_case(StudyConfig config, double fault_fraction) {
  if (fault_fraction > 0) {
    const Dragonfly topo(config.topo);
    config.faults = FaultPlan::degrade_random_globals(topo, fault_fraction, /*slowdown=*/8,
                                                      /*extra_latency=*/0, config.seed);
  }
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  const int victim = study.add_app("FFT3D", half);
  study.add_app("UR", half);
  const Report report = study.run();
  const AppReport& app = report.apps[static_cast<std::size_t>(victim)];
  return Outcome{app.comm_mean_ms, app.lat_p99_us, app.nonminimal_fraction};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  bench::print_header("ABLATION: degraded links (8x slower) vs routing policy");

  const std::vector<double> fractions{0.0, 0.05, 0.15};
  const std::vector<std::string> routings =
      options.routing.empty() ? std::vector<std::string>{"UGALg", "PAR", "Q-adp"}
                              : std::vector<std::string>{options.routing};

  std::vector<std::function<Outcome()>> tasks;
  for (const std::string& routing : routings) {
    for (const double fraction : fractions) {
      tasks.push_back([config = options.config(routing), fraction] {
        return run_case(config, fraction);
      });
    }
  }
  const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

  viz::AsciiTable table({"routing", "faulted globals", "FFT3D comm (ms)", "FFT3D p99 (us)",
                         "nonmin frac"});
  viz::GroupedBarChart chart("FFT3D comm time vs degraded-global-link fraction (8x slowdown)",
                             "comm time (ms)");
  chart.set_categories(routings);
  std::vector<std::vector<double>> by_fraction(fractions.size());

  std::size_t index = 0;
  for (const std::string& routing : routings) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Outcome& outcome = outcomes[index++];
      char percent[16];
      std::snprintf(percent, sizeof percent, "%.0f%%", fractions[f] * 100.0);
      table.row({routing, percent, bench::fmt(outcome.victim_ms),
                 bench::fmt(outcome.victim_p99_us), bench::fmt(outcome.nonmin)});
      by_fraction[f].push_back(outcome.victim_ms);
    }
  }
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%% faulted", fractions[f] * 100.0);
    chart.add_group(label, by_fraction[f]);
  }
  std::fputs(table.str().c_str(), stdout);
  chart.save("fault_degradation.svg");
  std::puts("\nWrote fault_degradation.svg");
  std::puts(
      "\nExpected: comm time grows with the faulted fraction under every\n"
      "policy, but Q-adp stays flattest (it learns end-to-end delivery time\n"
      "and detours around slow wires); UGAL/PAR only react once backpressure\n"
      "reaches the source router.");
  return 0;
}

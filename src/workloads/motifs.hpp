#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/job.hpp"
#include "sim/time.hpp"
#include "workloads/grid.hpp"

namespace dfly::workloads {

/// Divide an iteration count by the run-scale knob, clamping at `min_iters`.
/// Scaling shrinks run length only: per-message sizes, burst shapes and
/// compute/communication interleaving (hence injection rate and peak ingress
/// volume) are preserved, so contention behaviour is unchanged.
inline int scaled(int iterations, int scale, int min_iters = 1) {
  const int scaled_iters = iterations / (scale < 1 ? 1 : scale);
  return scaled_iters < min_iters ? min_iters : scaled_iters;
}

// ---------------------------------------------------------------------------
// UR — uniform-random background traffic (Table I: 3.07KB peak, 888 GB/s).
// ---------------------------------------------------------------------------
struct UniformRandomParams {
  std::int64_t msg_bytes{3072};
  int iterations{7300};
  SimTime interval{1823 * kNs};  ///< paced so exec ~= 13.31 ms at 528 ranks
  int window{64};                ///< outstanding sends drained per window
};

class UniformRandomMotif final : public mpi::Motif {
 public:
  explicit UniformRandomMotif(UniformRandomParams params) : p_(params) {}
  std::string name() const override { return "UR"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const UniformRandomParams& params() const { return p_; }

 private:
  UniformRandomParams p_;
};

// ---------------------------------------------------------------------------
// LU — NPB LU wavefront sweep (Table I: 30KB peak = 2 x 15KB, 1000 GB/s).
// Each iteration runs a forward sweep from one grid corner and a backward
// sweep from the opposite corner, pipelined over `planes` k-planes; ranks
// block on upstream neighbours, so the motif is communication-dominated.
// ---------------------------------------------------------------------------
struct LuSweepParams {
  int nx{22};
  int ny{22};
  int planes{6};
  std::int64_t msg_bytes{15360};
  int iterations{82};
  SimTime compute_per_plane{500 * kNs};
};

class LuSweepMotif final : public mpi::Motif {
 public:
  explicit LuSweepMotif(LuSweepParams params) : p_(params) {}
  std::string name() const override { return "LU"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const LuSweepParams& params() const { return p_; }

 private:
  LuSweepParams p_;
};

// ---------------------------------------------------------------------------
// FFT3D — 2D process array; row Alltoall + column Alltoall per iteration
// with FFT compute between (Table I: 51.68KB peak = 1 message, 1259 GB/s).
// ---------------------------------------------------------------------------
struct Fft3dParams {
  int rows{22};
  int cols{24};
  std::int64_t msg_bytes{52920};
  int iterations{13};
  SimTime compute{380 * kUs};  ///< FFT stage between the two Alltoalls
};

class Fft3dMotif final : public mpi::Motif {
 public:
  explicit Fft3dMotif(Fft3dParams params) : p_(params) {}
  std::string name() const override { return "FFT3D"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const Fft3dParams& params() const { return p_; }

 private:
  Fft3dParams p_;
};

// ---------------------------------------------------------------------------
// N-dimensional halo exchange — shared engine for Halo3D (6 neighbours),
// LQCD (4D torus, 8 neighbours) and Stencil5D (up to 10 neighbours).
// Per iteration: post all receives, post all sends back-to-back (the
// ingress burst that defines peak ingress volume), wait, compute.
// ---------------------------------------------------------------------------
struct NdStencilParams {
  std::string label{"NdStencil"};
  std::vector<int> dims{8, 8, 8};
  std::int64_t msg_bytes{196608};
  int iterations{79};
  SimTime compute{60 * kUs};
  bool periodic{true};
};

class NdStencilMotif final : public mpi::Motif {
 public:
  explicit NdStencilMotif(NdStencilParams params) : p_(std::move(params)), grid_(p_.dims) {}
  std::string name() const override { return p_.label; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const NdStencilParams& params() const { return p_; }
  const Grid& grid() const { return grid_; }

  /// Table I presets (528/512-node standalone shapes).
  static NdStencilParams halo3d();     ///< 8x8x8 torus, 192KB, 1.15MB burst
  static NdStencilParams lqcd();       ///< 4x4x4x8 torus, 576KB, 4.6MB burst
  static NdStencilParams stencil5d();  ///< 3x3x3x3x6 open grid, 1.4MB, 14MB burst

 private:
  NdStencilParams p_;
  Grid grid_;
};

// ---------------------------------------------------------------------------
// CosmoFlow / DL — synchronous data-parallel training: long compute, then a
// binary-tree Allreduce (Table I: 2.25MB peak = 2 x 1.126MB down-phase).
// DL is the same pattern with a 4.7x higher injection rate (shorter
// compute interval, more rounds).
// ---------------------------------------------------------------------------
struct AllreducePeriodicParams {
  std::string label{"CosmoFlow"};
  std::int64_t msg_bytes{1126000};
  int iterations{2};
  SimTime interval{5160 * kUs};
  int min_iterations{2};  ///< keep at least the paper's round structure
  /// Allreduce algorithm (tree = SST/paper default; ring / rdouble /
  /// rabenseifner enable the algorithm-ablation benches).
  mpi::coll::AllreduceAlg algorithm{mpi::coll::AllreduceAlg::kBinaryTree};
};

class AllreducePeriodicMotif final : public mpi::Motif {
 public:
  explicit AllreducePeriodicMotif(AllreducePeriodicParams params) : p_(std::move(params)) {}
  std::string name() const override { return p_.label; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const AllreducePeriodicParams& params() const { return p_; }

  static AllreducePeriodicParams cosmoflow();  ///< 28.15MB/25 every 129ms/25
  static AllreducePeriodicParams dl();         ///< ~4.7x CosmoFlow's rate

 private:
  AllreducePeriodicParams p_;
};

// ---------------------------------------------------------------------------
// LULESH — hybrid: 26-point 3D stencil followed by a Sweep3D-style diagonal
// wavefront (Table I: 1.95MB stencil burst + 14.91KB sweep messages).
// ---------------------------------------------------------------------------
struct LuleshParams {
  int nx{8}, ny{8}, nz{8};
  std::int64_t stencil_bytes{76800};
  std::int64_t sweep_bytes{15268};
  int iterations{22};
  SimTime compute{300 * kUs};
  SimTime sweep_compute{2 * kUs};
};

class LuleshMotif final : public mpi::Motif {
 public:
  explicit LuleshMotif(LuleshParams params) : p_(params) {}
  std::string name() const override { return "LULESH"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const LuleshParams& params() const { return p_; }

 private:
  LuleshParams p_;
};

}  // namespace dfly::workloads

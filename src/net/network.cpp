#include "net/network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "sim/pdes.hpp"

namespace dfly {

Network::Network(Engine& engine, const SystemBlueprint& blueprint, RoutingAlgorithm& routing,
                 int num_apps, std::uint64_t seed, NetworkObservability observability,
                 SimArena* arena, PdesCell* pdes)
    : engine_(&engine),
      blueprint_(&blueprint),
      topo_(&blueprint.topo()),
      cfg_(&blueprint.net()),
      links_(&blueprint.links()),
      arena_(arena),
      pdes_(pdes),
      traffic_classes_(num_apps) {
  const Dragonfly& topo = *topo_;
  if (arena_ != nullptr) {
    // Adopt the worker's carried storage before any component references it;
    // member addresses are stable, so routers/NICs built below can safely
    // point at pool_/link_stats_/packet_log_.
    SimArena::NetStorage storage = arena_->take_net();
    pool_ = std::move(storage.pool);
    link_stats_ = std::move(storage.stats);
    packet_log_ = std::move(storage.log);
    routers_ = std::move(storage.routers);
    nics_ = std::move(storage.nics);
  }
  link_stats_.reset(links_->total_links(), num_apps);
  packet_log_.reset(num_apps, observability.keep_packet_records, observability.throughput_bucket);
  if (pdes_ != nullptr) {
    // Parallel cell: per-domain packet-log shards for the secondary domains'
    // NICs, and locking on the structures touched across domains.
    for (PacketLog& shard : pdes_->log_shards()) {
      shard.reset(num_apps, observability.keep_packet_records, observability.throughput_bucket);
    }
    pool_.set_locking(true);
  }

  const auto num_routers = static_cast<std::size_t>(topo.num_routers());
  if (routers_.size() > num_routers) routers_.resize(num_routers);
  routers_.reserve(num_routers);
  for (int r = 0; r < topo.num_routers(); ++r) {
    const auto slot = static_cast<std::size_t>(r);
    const std::int32_t domain = pdes_ != nullptr ? pdes_->partition().domain_of_router(r) : 0;
    Engine& domain_engine = pdes_ != nullptr ? pdes_->engine(domain) : engine;
    const bool reused = slot < routers_.size();
    if (reused) {
      routers_[slot]->reinit(domain_engine, blueprint, r, pool_, link_stats_, seed);
    } else {
      routers_.push_back(std::make_unique<Router>(domain_engine, blueprint, r, pool_,
                                                  link_stats_, seed));
    }
    if (arena_ != nullptr) arena_->count_router(reused);
    routers_[slot]->set_pdes_domain(domain);
    routers_[slot]->set_routing(routing);
  }
  const auto num_nodes = static_cast<std::size_t>(topo.num_nodes());
  if (nics_.size() > num_nodes) nics_.resize(num_nodes);
  nics_.reserve(num_nodes);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const auto slot = static_cast<std::size_t>(n);
    const std::int32_t domain = pdes_ != nullptr ? pdes_->partition().domain_of_node(n) : 0;
    Engine& domain_engine = pdes_ != nullptr ? pdes_->engine(domain) : engine;
    PacketLog* shard = pdes_ != nullptr ? pdes_->log_shard(domain) : nullptr;
    PacketLog& nic_log = shard != nullptr ? *shard : packet_log_;
    const bool reused = slot < nics_.size();
    if (reused) {
      nics_[slot]->reinit(domain_engine, blueprint, n, pool_, link_stats_, nic_log);
    } else {
      nics_.push_back(std::make_unique<Nic>(domain_engine, blueprint, n, pool_, link_stats_,
                                            nic_log));
    }
    if (arena_ != nullptr) arena_->count_nic(reused);
    nics_[slot]->set_pdes_domain(domain);
    nics_[slot]->set_locking(pdes_ != nullptr);
    nics_[slot]->attach(*routers_[static_cast<std::size_t>(topo.router_of_node(n))]);
    nics_[slot]->set_traffic_classes(&traffic_classes_);
    nics_[slot]->set_directory(this);
  }

  // Wire router-to-router links (both the forward data path and the reverse
  // credit path) and router-to-NIC terminal links, straight off the
  // blueprint's precomputed wiring plan.
  for (int r = 0; r < topo.num_routers(); ++r) {
    Router& router = *routers_[static_cast<std::size_t>(r)];
    for (int port = 0; port < topo.radix(); ++port) {
      const SystemBlueprint::PortPlan& plan = blueprint.port(r, port);
      const int link = links_->router_out(r, port);
      if (plan.peer_router < 0) {  // terminal port: the peer is a NIC
        const int node = topo.node_id(r, port);
        Nic& nic = *nics_[static_cast<std::size_t>(node)];
        router.connect(port, nic, 0, /*peer_is_router=*/false);
        router.in_[static_cast<std::size_t>(port)] =
            Router::InWire{&nic, 0, plan.latency, false};
        link_stats_.set_link_info(link, LinkClass::kTerminal, r, r);
        link_stats_.set_link_info(links_->nic_out(node), LinkClass::kTerminal, r, r);
        continue;
      }
      Router& peer = *routers_[static_cast<std::size_t>(plan.peer_router)];
      router.connect(port, peer, plan.peer_port, /*peer_is_router=*/true);
      peer.in_[static_cast<std::size_t>(plan.peer_port)] =
          Router::InWire{&router, static_cast<std::int16_t>(port), plan.latency, true};
      link_stats_.set_link_info(link, plan.cls, r, plan.peer_router);
    }
  }
}

Network::~Network() {
  if (arena_ == nullptr) return;
  // Hand the storage back for the worker's next cell. The recycled routers
  // and NICs still point at this (dying) Network's members; reinit()
  // re-points every one of those pointers before the next cell uses them.
  SimArena::NetStorage storage;
  storage.pool = std::move(pool_);
  storage.stats = std::move(link_stats_);
  storage.log = std::move(packet_log_);
  storage.routers = std::move(routers_);
  storage.nics = std::move(nics_);
  arena_->return_net(std::move(storage));
}

void Network::apply_faults(const FaultPlan& plan) {
  for (const LinkFault& fault : plan.faults()) {
    if (fault.router < 0 || fault.router >= topo_->num_routers()) {
      throw std::out_of_range("apply_faults: router id outside system");
    }
    routers_[static_cast<std::size_t>(fault.router)]->degrade_port(fault.port, fault.slowdown,
                                                                   fault.extra_latency);
  }
}

void Network::set_sink(MessageEvents& sink) {
  sink_ = &sink;
  for (auto& nic : nics_) nic->set_sink(&sink);
}

Engine& Network::engine_for_node(int node) {
  return pdes_ != nullptr ? pdes_->engine_for_node(node) : *engine_;
}

void Network::finalize_pdes() {
  if (pdes_ == nullptr) return;
  for (PacketLog& shard : pdes_->log_shards()) packet_log_.merge_from(shard);
}

std::uint64_t Network::send_message(int src_node, int dst_node, std::int64_t bytes, int app_id) {
  assert(bytes >= 1);
  const std::uint64_t msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  if (src_node == dst_node) {
    // Local (intra-node) message: no network involvement. Completes after a
    // memcpy-like delay at link rate so timing stays monotone. The closure
    // runs on the source node's domain engine (the caller's own domain).
    const SimTime delay = cfg_->serialization(static_cast<int>(bytes > cfg_->packet_bytes
                                                                   ? cfg_->packet_bytes
                                                                   : bytes));
    MessageEvents* sink = sink_;
    Engine& src_engine = engine_for_node(src_node);
    src_engine.call_at(src_engine.now() + delay, [sink, msg_id] {
      if (sink != nullptr) {
        sink->message_sent(msg_id);
        sink->message_delivered(msg_id);
      }
    });
    return msg_id;
  }
  nics_[static_cast<std::size_t>(dst_node)]->expect_message(msg_id, bytes);
  nics_[static_cast<std::size_t>(src_node)]->enqueue_message(msg_id, dst_node, bytes, app_id);
  return msg_id;
}

}  // namespace dfly

#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/json_report.hpp"
#include "core/mixed.hpp"
#include "core/pairwise.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing = "UGALg") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.scale = 64;
  return config;
}

Report tiny_experiment(std::uint64_t seed) {
  StudyConfig config = tiny_config();
  config.seed = seed;
  Study study(config);
  study.add_app("UR", 32);
  return study.run();
}

TEST(ParallelRunner, MapReturnsResultsInTaskOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([i] { return i * i; });
  }
  const std::vector<int> results = ParallelRunner(4).map(tasks);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, RunIndexedCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& hit : hits) hit = 0;
  ParallelRunner(8).run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelRunner, SequentialWhenJobsIsOne) {
  const std::thread::id caller = std::this_thread::get_id();
  ParallelRunner(1).run_indexed(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelRunner, PropagatesTheFirstException) {
  EXPECT_THROW(ParallelRunner(4).run_indexed(32,
                                             [](std::size_t i) {
                                               if (i == 7) {
                                                 throw std::runtime_error("cell 7 failed");
                                               }
                                             }),
               std::runtime_error);
}

TEST(ParallelRunner, CollectModeAttemptsEveryIndexAndRecordsEachFailure) {
  // errors != nullptr: no early stop, no rethrow — every index runs, each
  // worker's failure count and first message land in the WorkerErrors.
  std::vector<std::atomic<int>> hits(64);
  for (auto& hit : hits) hit = 0;
  WorkerErrors errors;
  ParallelRunner(4).run_indexed(
      hits.size(),
      [&](std::size_t i) {
        ++hits[i];
        if (i % 7 == 3) throw std::runtime_error("index " + std::to_string(i));
      },
      &errors);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);  // nothing skipped
  std::size_t expected = 0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i % 7 == 3) ++expected;
  }
  EXPECT_EQ(errors.total(), expected);
  EXPECT_TRUE(errors.any());
  EXPECT_NE(errors.summary().find("failure"), std::string::npos);
}

TEST(ParallelRunner, CollectModeSequentialKeepsGoingAndKeepsTheFirstMessage) {
  WorkerErrors errors;
  int calls = 0;
  ParallelRunner(1).run_indexed(
      8,
      [&](std::size_t i) {
        ++calls;
        if (i == 2 || i == 5) throw std::runtime_error("boom at " + std::to_string(i));
      },
      &errors);
  EXPECT_EQ(calls, 8);
  EXPECT_EQ(errors.total(), 2u);
  ASSERT_EQ(errors.workers.size(), 1u);
  EXPECT_EQ(errors.workers[0].failures, 2u);
  EXPECT_NE(errors.workers[0].first.find("boom at 2"), std::string::npos);
}

TEST(ParallelRunner, CollectModeIsEmptyOnACleanRun) {
  WorkerErrors errors;
  ParallelRunner(4).run_indexed(32, [](std::size_t) {}, &errors);
  EXPECT_FALSE(errors.any());
  EXPECT_EQ(errors.total(), 0u);
  EXPECT_TRUE(errors.summary().empty());
}

TEST(ParallelRunner, ResolveJobsPrefersExplicitThenEnvThenFallback) {
  const char* saved = std::getenv("DFSIM_JOBS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("DFSIM_JOBS", "7", 1);
  EXPECT_EQ(ParallelRunner::resolve_jobs(3, 1), 3);  // explicit wins
  EXPECT_EQ(ParallelRunner::resolve_jobs(0, 1), 7);  // env next
  EXPECT_EQ(ParallelRunner(0).jobs(), 7);

  ::unsetenv("DFSIM_JOBS");
  EXPECT_EQ(ParallelRunner::resolve_jobs(0, 2), 2);
  EXPECT_EQ(ParallelRunner::resolve_jobs(0, 0), 1);  // fallback clamped to 1

  if (saved) {
    ::setenv("DFSIM_JOBS", saved_value.c_str(), 1);
  }
}

// A malformed DFSIM_JOBS used to be swallowed silently — std::atoi turned
// "4x" into 4 workers and "abc" into the fallback, so a typo'd environment
// ran with the wrong parallelism and nobody noticed. It now fails loudly,
// full-string and positive-only, like any bad config value.
TEST(ParallelRunner, ResolveJobsRejectsMalformedEnvLoudly) {
  const char* saved = std::getenv("DFSIM_JOBS");
  const std::string saved_value = saved ? saved : "";

  for (const char* bad : {"not-a-number", "4x", "", " 4", "0", "-3", "1e3",
                          "99999999999999999999"}) {
    ::setenv("DFSIM_JOBS", bad, 1);
    EXPECT_THROW(ParallelRunner::resolve_jobs(0, 5), std::invalid_argument) << bad;
    // An explicit request never consults the env, so it still works.
    EXPECT_EQ(ParallelRunner::resolve_jobs(3, 5), 3) << bad;
  }

  if (saved) {
    ::setenv("DFSIM_JOBS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("DFSIM_JOBS");
  }
}

TEST(ParallelRunner, HardwareJobsIsAtLeastOneAndMemoryCapped) {
  // The worker cap is no longer a fixed 12: with the read-only plan factored
  // into the shared SystemBlueprint, it derives from physical memory at
  // kCellBudgetBytes per in-flight cell (clamped to [1, 256]; 12 remains the
  // fallback when the platform cannot report memory).
  const int cap = ParallelRunner::memory_jobs_cap();
  EXPECT_GE(cap, 1);
  EXPECT_LE(cap, 256);
  const int jobs = ParallelRunner::hardware_jobs();
  EXPECT_GE(jobs, 1);
  EXPECT_LE(jobs, cap);
}

// The acceptance bar for the parallel sweep: four workers must produce a
// SweepSummary whose JSON serialisation is byte-identical to a sequential
// run — same seeds, same cells, same aggregation order.
TEST(SweepParallelDeterminism, FourJobsByteIdenticalToSequential) {
  const SeedSweep sweep(42, 6);
  const SweepSummary sequential = sweep.run(tiny_experiment, 1);
  const SweepSummary parallel = sweep.run(tiny_experiment, 4);

  EXPECT_EQ(sweep_to_json(sequential), sweep_to_json(parallel));

  // Spot-check raw doubles bitwise via exact equality as well, in case the
  // JSON formatter ever rounds.
  EXPECT_EQ(sequential.makespan_ms.mean, parallel.makespan_ms.mean);
  EXPECT_EQ(sequential.makespan_ms.stddev, parallel.makespan_ms.stddev);
  EXPECT_EQ(sequential.sys_lat_p99_us.ci95_half, parallel.sys_lat_p99_us.ci95_half);
  EXPECT_EQ(sequential.completed_runs, parallel.completed_runs);
  ASSERT_EQ(sequential.apps.size(), parallel.apps.size());
  for (std::size_t a = 0; a < sequential.apps.size(); ++a) {
    EXPECT_EQ(sequential.apps[a].app, parallel.apps[a].app);
    EXPECT_EQ(sequential.apps[a].comm_ms.mean, parallel.apps[a].comm_ms.mean);
    EXPECT_EQ(sequential.apps[a].lat_p99_us.max, parallel.apps[a].lat_p99_us.max);
  }
}

// Arena reuse must be invisible in the output: the same sweep with per-worker
// storage reuse ON and OFF, and with one or four workers, serialises to the
// same bytes. A state leak across a worker's cells would break this.
TEST(SweepParallelDeterminism, ArenaOnAndOffByteIdenticalForAnyWorkerCount) {
  struct ToggleGuard {
    ~ToggleGuard() { set_arena_enabled(true); }
  } guard;
  const SeedSweep sweep(42, 6);

  set_arena_enabled(true);
  const std::string arena_seq = sweep_to_json(sweep.run(tiny_experiment, 1));
  const std::string arena_par = sweep_to_json(sweep.run(tiny_experiment, 4));

  set_arena_enabled(false);
  const std::string fresh_seq = sweep_to_json(sweep.run(tiny_experiment, 1));
  const std::string fresh_par = sweep_to_json(sweep.run(tiny_experiment, 4));

  EXPECT_EQ(arena_seq, fresh_seq);
  EXPECT_EQ(arena_seq, arena_par);
  EXPECT_EQ(arena_seq, fresh_par);
}

// Blueprint sharing must be invisible in the output: the same sweep with
// cross-cell plan sharing ON and OFF, with one or four workers, and in every
// combination with arena reuse, serialises to the same bytes.
TEST(SweepParallelDeterminism, BlueprintOnAndOffByteIdenticalForAnyWorkerCount) {
  struct ToggleGuard {
    ~ToggleGuard() {
      set_blueprint_enabled(true);
      set_arena_enabled(true);
    }
  } guard;
  const SeedSweep sweep(42, 6);

  set_blueprint_enabled(true);
  const std::string shared_seq = sweep_to_json(sweep.run(tiny_experiment, 1));
  const std::string shared_par = sweep_to_json(sweep.run(tiny_experiment, 4));

  set_blueprint_enabled(false);
  const std::string private_seq = sweep_to_json(sweep.run(tiny_experiment, 1));
  const std::string private_par = sweep_to_json(sweep.run(tiny_experiment, 4));

  EXPECT_EQ(shared_seq, private_seq);
  EXPECT_EQ(shared_seq, shared_par);
  EXPECT_EQ(shared_seq, private_par);

  // The orthogonal knobs compose: arena off + blueprint off at four workers
  // still reproduces the fully-shared bytes.
  set_arena_enabled(false);
  EXPECT_EQ(shared_seq, sweep_to_json(sweep.run(tiny_experiment, 4)));
}

TEST(PairwiseParallelDeterminism, BlueprintOnAndOffByteIdenticalForAnyWorkerCount) {
  struct ToggleGuard {
    ~ToggleGuard() { set_blueprint_enabled(true); }
  } guard;
  std::vector<PairwiseCell> cells;
  for (const char* routing : {"MIN", "UGALg"}) {
    cells.push_back(PairwiseCell{"UR", "None", routing});
    cells.push_back(PairwiseCell{"UR", "CosmoFlow", routing});
  }
  auto run_to_json = [&](int jobs) {
    std::string out;
    for (const PairwiseResult& result : run_pairwise_cells(tiny_config(), cells, jobs)) {
      out += report_to_json(result.full);
    }
    return out;
  };

  set_blueprint_enabled(true);
  const std::string shared_seq = run_to_json(1);
  const std::string shared_par = run_to_json(4);
  set_blueprint_enabled(false);
  const std::string private_seq = run_to_json(1);
  const std::string private_par = run_to_json(4);

  EXPECT_EQ(shared_seq, private_seq);
  EXPECT_EQ(shared_seq, shared_par);
  EXPECT_EQ(shared_seq, private_par);
}

TEST(MixedParallelDeterminism, BlueprintOnAndOffByteIdenticalForAnyWorkerCount) {
  // The Fig 10 driver needs the full 1,056-node machine (Table II node
  // counts), so cap the simulated clock hard: the comparison needs identical
  // bytes, not converged runs, and every truncated cell still exercises the
  // shared plan through build, placement and early traffic.
  struct ToggleGuard {
    ~ToggleGuard() { set_blueprint_enabled(true); }
  } guard;
  StudyConfig config;
  config.topo = DragonflyParams::paper();
  config.routing = "UGALg";
  config.scale = 256;
  config.time_limit = 20 * kUs;
  const std::vector<StudyConfig> configs{config};

  auto run_to_json = [&](int jobs) {
    std::string out;
    for (const MixedSuite& suite : run_mixed_suites(configs, jobs)) {
      out += report_to_json(suite.mix);
      for (const Report& solo : suite.solos) out += report_to_json(solo);
    }
    return out;
  };

  set_blueprint_enabled(true);
  const std::string shared_seq = run_to_json(1);
  const std::string shared_par = run_to_json(4);
  set_blueprint_enabled(false);
  const std::string private_seq = run_to_json(1);
  const std::string private_par = run_to_json(4);

  EXPECT_EQ(shared_seq, private_seq);
  EXPECT_EQ(shared_seq, shared_par);
  EXPECT_EQ(shared_seq, private_par);
}

TEST(PairwiseParallelDeterminism, CellBatchMatchesIndividualRuns) {
  std::vector<PairwiseCell> cells;
  for (const char* routing : {"MIN", "UGALg"}) {
    cells.push_back(PairwiseCell{"UR", "None", routing});
    cells.push_back(PairwiseCell{"UR", "CosmoFlow", routing});
  }
  const std::vector<PairwiseResult> batch = run_pairwise_cells(tiny_config(), cells, 2);
  ASSERT_EQ(batch.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    StudyConfig config = tiny_config(cells[i].routing);
    const PairwiseResult solo = run_pairwise(config, cells[i].target, cells[i].background);
    EXPECT_EQ(report_to_json(batch[i].full), report_to_json(solo.full)) << "cell " << i;
    EXPECT_EQ(batch[i].routing, cells[i].routing);
    EXPECT_EQ(batch[i].target, cells[i].target);
    EXPECT_EQ(batch[i].background, cells[i].background);
  }
}

// --- SubmissionQueue: the daemon's persistent pool ---------------------------

TEST(SubmissionQueue, RunsEveryIndexExactlyOnce) {
  SubmissionQueue queue(3);
  EXPECT_EQ(queue.jobs(), 3);
  std::vector<std::atomic<int>> hits(100);
  queue.run_indexed(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // The pool survives between submissions — a second batch reuses it.
  std::atomic<int> total{0};
  queue.run_indexed(17, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 17);
}

TEST(SubmissionQueue, ConcurrentSubmissionsInterleaveAndBothComplete) {
  SubmissionQueue queue(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread first([&] { queue.run_indexed(40, [&](std::size_t) { a.fetch_add(1); }); });
  std::thread second([&] { queue.run_indexed(40, [&](std::size_t) { b.fetch_add(1); }); });
  first.join();
  second.join();
  EXPECT_EQ(a.load(), 40);
  EXPECT_EQ(b.load(), 40);
}

TEST(SubmissionQueue, CollectsExceptionsLikeParallelRunnerCollectMode) {
  SubmissionQueue queue(1);
  WorkerErrors errors;
  std::atomic<int> calls{0};
  queue.run_indexed(
      8,
      [&](std::size_t i) {
        calls.fetch_add(1);
        if (i == 2 || i == 5) throw std::runtime_error("boom at " + std::to_string(i));
      },
      &errors);
  EXPECT_EQ(calls.load(), 8);  // nothing rethrown, every cell attempted
  EXPECT_EQ(errors.total(), 2u);
  ASSERT_EQ(errors.workers.size(), 1u);
  EXPECT_NE(errors.workers[0].first.find("boom at 2"), std::string::npos);
}

// The reason the queue exists: campaigns submitted one after the other share
// ONE BlueprintCache, so the second campaign of a given shape starts from a
// cache hit instead of rebuilding the topology plan.
TEST(SubmissionQueue, SharesOneBlueprintCacheAcrossSubmissions) {
  SubmissionQueue queue(2);
  const auto run_campaign = [&queue] {
    queue.run_indexed(4, [](std::size_t i) { tiny_experiment(42 + i); });
  };
  run_campaign();
  const BlueprintCache::Stats after_first = queue.cache().stats();
  EXPECT_EQ(after_first.misses, 1u);  // one shape, built once
  EXPECT_GE(after_first.hits, 3u);

  run_campaign();
  const BlueprintCache::Stats after_second = queue.cache().stats();
  EXPECT_EQ(after_second.misses, 1u);  // no rebuild: the cache carried over
  EXPECT_GE(after_second.hits, after_first.hits + 4);
}

// Arena reuse and blueprint sharing never change bytes: a report produced on
// the persistent pool is identical to a cold private run.
TEST(SubmissionQueue, PooledRunByteIdenticalToPrivateRun) {
  SubmissionQueue queue(2);
  std::vector<std::string> pooled(3);
  queue.run_indexed(pooled.size(),
                    [&](std::size_t i) { pooled[i] = report_to_json(tiny_experiment(7 + i)); });
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], report_to_json(tiny_experiment(7 + i))) << i;
  }
}

}  // namespace
}  // namespace dfly

#pragma once

#include <string>
#include <vector>

#include "mpi/job.hpp"
#include "sim/time.hpp"
#include "workloads/grid.hpp"

/// Extension workloads beyond Table I.
///
/// The paper's introduction motivates the study with two workload families
/// it does not include in the evaluation mix: MILC — whose 70% run-to-run
/// variability on production Dragonfly systems (Chunduri SC'17) is the
/// headline evidence that interference matters — and I/O traffic to burst
/// buffers (Mubarak CLUSTER'17), the classic *endpoint* hot-spot generator.
/// These motifs extend the study to both, characterised with the same §IV
/// intensity metrics as the Table I applications.
namespace dfly::workloads {

// ---------------------------------------------------------------------------
// MILC — 4D lattice QCD with conjugate-gradient solver synchronisation.
// ---------------------------------------------------------------------------
struct MilcParams {
  std::vector<int> dims{4, 4, 4, 8};
  /// Halo-exchange message per face neighbour (8 neighbours on a 4D torus).
  std::int64_t msg_bytes{49152};
  int iterations{40};
  /// Lattice update compute between halo exchange and the CG solve.
  SimTime compute{150 * kUs};
  /// CG solver: small global allreduces (dot products) per iteration —
  /// the latency-critical chain that makes MILC interference-sensitive.
  int cg_per_iteration{3};
  std::int64_t cg_bytes{64};
  SimTime cg_compute{20 * kUs};
};

/// MILC differs from LQCD (Table I) in kind, not degree: its halo messages
/// are ~12x smaller, but every iteration ends in a chain of tiny global
/// allreduces whose completion is gated by the *slowest* rank — the tail
/// latency amplifier behind the 7x MPI-collective variability reported on
/// production systems (§II-C). Expect MILC to be bullied through its CG
/// chain even by aggressors that barely move its halo exchange.
class MilcMotif final : public mpi::Motif {
 public:
  explicit MilcMotif(MilcParams params) : p_(std::move(params)), grid_(p_.dims) {}
  std::string name() const override { return "MILC"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const MilcParams& params() const { return p_; }
  const Grid& grid() const { return grid_; }

 private:
  MilcParams p_;
  Grid grid_;
};

// ---------------------------------------------------------------------------
// IOBurst — periodic checkpoint drain to burst-buffer nodes.
// ---------------------------------------------------------------------------
struct IoBurstParams {
  /// One burst-buffer rank per `bb_ratio` job ranks (at least one).
  int bb_ratio{16};
  /// Checkpoint bytes each compute rank drains per period (timescale is
  /// compressed like the paper compresses CosmoFlow: production checkpoints
  /// are GBs every tens of seconds; the drain/compute duty cycle and the
  /// many-to-few fan-in shape are what matter for contention).
  std::int64_t checkpoint_bytes{4 * 1024 * 1024};
  /// Chunk size of individual write messages.
  std::int64_t chunk_bytes{262144};
  /// Compute time between checkpoints.
  SimTime period{1 * kMs};
  int iterations{4};
  /// Outstanding chunk writes per compute rank.
  int window{16};
};

/// Ranks [0, n/bb_ratio) act as burst-buffer endpoints (sink mode); every
/// other rank computes for `period`, then drains `checkpoint_bytes` in
/// `chunk_bytes` writes to its assigned buffer rank. All compute ranks hit
/// the checkpoint barrier together, so the drain is a synchronised many-to-
/// few burst: an *endpoint* hot spot that no routing policy can dissolve
/// (§II-C positions congestion control, not routing, as the fix).
class IoBurstMotif final : public mpi::Motif {
 public:
  explicit IoBurstMotif(IoBurstParams params) : p_(params) {}
  std::string name() const override { return "IOBurst"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const IoBurstParams& params() const { return p_; }

  int num_buffer_ranks(int job_size) const {
    const int bb = job_size / (p_.bb_ratio < 1 ? 1 : p_.bb_ratio);
    return bb < 1 ? 1 : bb;
  }

 private:
  IoBurstParams p_;
};

/// Names accepted by make_app beyond the paper's nine ("MILC", "IOBurst").
const std::vector<std::string>& extended_app_names();

}  // namespace dfly::workloads

// Ablation: job placement policy. The paper uses random placement (§V) and
// cites contiguous placement as the classic interference mitigation with a
// fragmentation cost. This bench quantifies the trade-off on the
// FFT3D+Halo3D pair for PAR and Q-adaptive. Runs execute concurrently.

#include "bench_common.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 32);

  struct Row {
    double fft_ms, halo_ms, p99_us;
  };
  std::vector<std::function<Row()>> tasks;
  std::vector<std::pair<std::string, PlacementPolicy>> cases;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    for (const auto policy : {PlacementPolicy::kRandom, PlacementPolicy::kContiguous,
                              PlacementPolicy::kLinear}) {
      cases.emplace_back(routing, policy);
      StudyConfig config = options.config(routing);
      config.placement = policy;
      tasks.push_back([config] {
        Study study(config);
        const int half = config.topo.num_nodes() / 2;
        study.add_app("FFT3D", half);
        study.add_app("Halo3D", half);
        const Report report = study.run();
        return Row{report.app("FFT3D").comm_mean_ms, report.app("Halo3D").comm_mean_ms,
                   report.sys_lat_p99_us};
      });
    }
  }
  const auto rows = bench::parallel_map(tasks);

  bench::print_header("Ablation — placement policy (FFT3D + Halo3D pairwise)");
  std::printf("%-8s %-12s %14s %14s %14s\n", "routing", "placement", "FFT3D ms", "Halo3D ms",
              "sys p99 us");
  bench::print_rule();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-8s %-12s %14.3f %14.3f %14.2f\n", cases[i].first.c_str(),
                to_string(cases[i].second), rows[i].fft_ms, rows[i].halo_ms, rows[i].p99_us);
  }
  std::printf("\nExpected: contiguous isolates the jobs (less interference) at the price of\n"
              "intra-group hot spots; random spreads load but shares every link.\n");
  return 0;
}

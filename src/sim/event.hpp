#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dfly {

class Engine;

/// One scheduled occurrence. Events carry a small fixed payload (two 64-bit
/// words plus a kind tag) instead of a closure so that scheduling never
/// allocates; components interpret (kind, a, b) themselves.
struct Event {
  SimTime when{0};
  std::uint64_t seq{0};  ///< FIFO tie-break among same-time events.
  class Component* target{nullptr};
  std::uint32_t kind{0};
  std::uint64_t a{0};
  std::uint64_t b{0};
};

/// Anything that can receive events from the engine.
///
/// Components are owned by their containing subsystem (network, job, ...);
/// the engine only borrows pointers, so a component must outlive every event
/// scheduled against it (subsystems guarantee this by draining the engine
/// before teardown).
class Component {
 public:
  Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;
  virtual ~Component() = default;

  virtual void handle(Engine& engine, const Event& event) = 0;

  /// Partition domain this component executes in under the optional
  /// group-partitioned parallel engine (src/sim/pdes.hpp). Always 0 in
  /// sequential runs; stamped during wiring when --cell-threads is active so
  /// schedule_at can route events to the owning domain's heap.
  std::int32_t pdes_domain() const { return pdes_domain_; }
  void set_pdes_domain(std::int32_t domain) { pdes_domain_ = domain; }

 private:
  std::int32_t pdes_domain_{0};
};

}  // namespace dfly

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// Open-addressing hash map for the protocol-engine hot path.
///
/// The MPI layer keys everything by dense 64-bit ids (message ids, rendezvous
/// handles), and every simulated message performs one insert and one erase in
/// each tracking map. libstdc++'s std::unordered_map allocates a fresh node
/// per insert even when a same-sized erase just freed one, so per-message map
/// churn used to dominate the steady-state allocation count (see
/// docs/MEMORY.md). FlatMap stores slots inline in one flat array: once the
/// table has grown to a cell's peak occupancy it never allocates again, and
/// clear() keeps the capacity so an arena-recycled map replays the next cell
/// allocation-free.
///
/// Requirements and deliberate non-features:
///  - Keys are non-zero (0 is the empty-slot sentinel). Message ids and
///    rendezvous handles both start at 1.
///  - No iteration: the protocol engine only ever does find/emplace/erase by
///    key, and keeping iteration out makes reuse trivially determinism-safe
///    (occupancy layout can differ between a fresh and a recycled table
///    without any observable difference).
///  - Erase uses backward-shift deletion, so lookups never probe over
///    tombstones and long-lived maps do not degrade.
namespace dfly {

template <typename V>
class FlatMap {
 public:
  FlatMap() = default;
  ~FlatMap() { clear(); }
  FlatMap(FlatMap&& other) noexcept
      : keys_(std::move(other.keys_)),
        values_(std::move(other.values_)),
        size_(std::exchange(other.size_, 0)) {
    other.keys_.clear();
  }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      clear();
      keys_ = std::move(other.keys_);
      values_ = std::move(other.values_);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots the table holds before the next rehash (test / stats hook).
  std::size_t capacity() const { return keys_.size(); }

  /// Drop every entry, keeping the table storage for reuse.
  void clear() {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) {
        keys_[i] = 0;
        values_[i].~V();
      }
    }
    size_ = 0;
  }

  /// Grow the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kMaxLoadDen) want *= 2;
    if (want > keys_.size()) rehash(want);
  }

  /// Pointer to the mapped value, or nullptr when absent.
  V* find(std::uint64_t key) {
    assert(key != 0);
    if (keys_.empty()) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = index_of(key);
    while (keys_[i] != 0) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const { return const_cast<FlatMap*>(this)->find(key); }

  /// The mapped value; the key must be present.
  V& at(std::uint64_t key) {
    V* v = find(key);
    assert(v != nullptr && "FlatMap::at: key not present");
    return *v;
  }
  const V& at(std::uint64_t key) const { return const_cast<FlatMap*>(this)->at(key); }

  /// Insert `value` under `key` (the key must not already be present).
  void emplace(std::uint64_t key, V value) {
    assert(key != 0);
    assert(find(key) == nullptr && "FlatMap::emplace: duplicate key");
    if (keys_.empty() || (size_ + 1) * kMaxLoadDen > keys_.size() * kMaxLoadNum) {
      rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2);
    }
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = index_of(key);
    while (keys_[i] != 0) i = (i + 1) & mask;
    keys_[i] = key;
    new (&values_[i]) V(std::move(value));
    ++size_;
  }

  /// Remove `key` if present; returns whether an entry was removed.
  bool erase(std::uint64_t key) {
    assert(key != 0);
    if (keys_.empty()) return false;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = index_of(key);
    while (keys_[i] != key) {
      if (keys_[i] == 0) return false;
      i = (i + 1) & mask;
    }
    // Backward-shift deletion: close the gap by moving back every element of
    // the probe run that hashes at or before the vacated slot.
    std::size_t hole = i;
    values_[hole].~V();
    std::size_t j = (hole + 1) & mask;
    while (keys_[j] != 0) {
      const std::size_t home = index_of(keys_[j]);
      // Move j back into the hole iff its home position does not sit in the
      // (cyclic) open interval (hole, j] — the standard Robin-Hood test.
      const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        keys_[hole] = keys_[j];
        new (&values_[hole]) V(std::move(values_[j]));
        values_[j].~V();
        hole = j;
      }
      j = (j + 1) & mask;
    }
    keys_[hole] = 0;
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: probes stay short and growth steps are rare.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  std::size_t index_of(std::uint64_t key) const {
    // Fibonacci multiplicative hash: message ids are sequential, so the
    // multiplier spreads dense runs across the table.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) & (keys_.size() - 1);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    RawSlots old_values = std::move(values_);
    keys_.assign(new_capacity, 0);
    values_ = RawSlots(new_capacity);
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      std::size_t j = index_of(old_keys[i]);
      while (keys_[j] != 0) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      new (&values_[j]) V(std::move(old_values[i]));
      old_values[i].~V();
    }
  }

  /// Uninitialised value slots: lifetimes are managed manually so V needs no
  /// default constructor and empty slots cost no construction.
  class RawSlots {
   public:
    RawSlots() = default;
    explicit RawSlots(std::size_t n)
        : data_(n > 0 ? static_cast<V*>(::operator new(n * sizeof(V), std::align_val_t(alignof(V))))
                      : nullptr) {}
    RawSlots(RawSlots&& other) noexcept : data_(std::exchange(other.data_, nullptr)) {}
    RawSlots& operator=(RawSlots&& other) noexcept {
      if (this != &other) {
        free_storage();
        data_ = std::exchange(other.data_, nullptr);
      }
      return *this;
    }
    RawSlots(const RawSlots&) = delete;
    RawSlots& operator=(const RawSlots&) = delete;
    ~RawSlots() { free_storage(); }

    V& operator[](std::size_t i) { return data_[i]; }

   private:
    void free_storage() {
      if (data_ != nullptr) ::operator delete(data_, std::align_val_t(alignof(V)));
    }
    V* data_{nullptr};
  };

  std::vector<std::uint64_t> keys_;  ///< 0 = empty slot
  RawSlots values_;                  ///< constructed iff the matching key != 0
  std::size_t size_{0};
};

}  // namespace dfly

#include "mpi/match.hpp"

namespace dfly::mpi {

std::uint32_t MatchList::on_arrival(int src_rank, int tag, std::int64_t bytes, SimTime now,
                                    std::uint64_t rdv_id) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if ((it->src_rank == kAnySource || it->src_rank == src_rank) && it->tag == tag) {
      const std::uint32_t request = it->request;
      posted_.erase(it);
      return request;
    }
  }
  unexpected_.push_back(Unexpected{src_rank, tag, bytes, now, rdv_id});
  return kNoMatch;
}

std::optional<MatchList::Unexpected> MatchList::post_recv(int src_rank, int tag,
                                                          std::uint32_t request) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src_rank == kAnySource || it->src_rank == src_rank) && it->tag == tag) {
      Unexpected hit = *it;
      unexpected_.erase(it);
      return hit;
    }
  }
  posted_.push_back(Posted{src_rank, tag, request});
  return std::nullopt;
}

}  // namespace dfly::mpi

// Extension workloads: MILC and IOBurst on the §IV intensity axes, plus the
// two interference experiments the paper's introduction motivates but never
// runs:
//
//   (1) MILC under a bandwidth aggressor — Chunduri SC'17 measured 70%
//       run-to-run variability for MILC on production Dragonfly systems;
//       here we reproduce the mechanism: the CG solver's tiny-allreduce
//       chain serialises on tail latency, so a Halo3D-class aggressor
//       inflates MILC's comm time far beyond what its bandwidth share
//       suggests. Q-adaptive's tail-latency control (paper §V-B) is
//       expected to recover most of it.
//
//   (2) IOBurst as the aggressor — Mubarak CLUSTER'17 studied I/O traffic
//       interference on Dragonfly burst buffers. The checkpoint drain is an
//       *endpoint* hot spot: routing cannot dissolve a many-to-one fan-in,
//       so the gap between PAR and Q-adp narrows for the co-running victim
//       (the contention is at the destination NIC, not on shared links).

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"
#include "workloads/extended.hpp"
#include "workloads/intensity.hpp"

namespace {

using namespace dfly;

struct PairOutcome {
  double alone_ms{0};
  double corun_ms{0};
  double corun_p99_us{0};
};

/// Background IOBurst tuned to the pairwise window: scaled victims finish in
/// a couple of milliseconds, so checkpoints must recur quickly enough to
/// overlap them (default 2 ms checkpoints would all land after the victim
/// exits — measuring nothing).
void add_background(Study& study, const std::string& name, int nodes) {
  if (name == "IOBurst") {
    workloads::IoBurstParams params;
    params.checkpoint_bytes = 2 * 1024 * 1024;
    params.period = 250 * kUs;
    params.iterations = 4;
    params.window = 32;
    study.add_motif(std::make_unique<workloads::IoBurstMotif>(params), nodes, "IOBurst");
    return;
  }
  study.add_app(name, nodes);
}

PairOutcome run_pair(const StudyConfig& config, const std::string& target,
                     const std::string& background) {
  const int half = config.topo.num_nodes() / 2;
  PairOutcome outcome;
  {
    Study study(config);
    study.add_app(target, half);
    const Report report = study.run();
    outcome.alone_ms = report.apps[0].comm_mean_ms;
  }
  {
    Study study(config);
    const int id = study.add_app(target, half);
    add_background(study, background, half);
    const Report report = study.run();
    outcome.corun_ms = report.apps[static_cast<std::size_t>(id)].comm_mean_ms;
    outcome.corun_p99_us = report.apps[static_cast<std::size_t>(id)].lat_p99_us;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  const std::string char_routing = options.routing.empty() ? "UGALg" : options.routing;

  // --- Table I extension rows ------------------------------------------------
  struct CharRow {
    std::string app;
    workloads::IntensityMetrics metrics;
    bool completed{false};
  };
  std::vector<std::function<CharRow()>> char_tasks;
  for (const std::string app : {"MILC", "IOBurst"}) {
    const StudyConfig config = options.config(char_routing);
    char_tasks.push_back([config, app] {
      Study study(config);
      study.add_app(app, config.topo.num_nodes() / 2);
      const Report report = study.run();
      return CharRow{app, workloads::measure_intensity(study.job(0)), report.completed};
    });
  }

  // --- pairwise experiments ----------------------------------------------------
  const std::vector<std::string> routings =
      options.routing.empty() ? std::vector<std::string>{"PAR", "Q-adp"}
                              : std::vector<std::string>{options.routing};
  struct PairCase {
    std::string label;
    std::string target;
    std::string background;
    std::string routing;
  };
  std::vector<PairCase> cases;
  for (const std::string& routing : routings) {
    cases.push_back({"MILC <- Halo3D", "MILC", "Halo3D", routing});
    cases.push_back({"LU <- IOBurst", "LU", "IOBurst", routing});
  }
  std::vector<std::function<PairOutcome()>> pair_tasks;
  for (const PairCase& c : cases) {
    pair_tasks.push_back([config = options.config(c.routing), target = c.target,
                          background = c.background] {
      return run_pair(config, target, background);
    });
  }

  const auto char_rows = bench::parallel_map(char_tasks);
  const auto pair_rows = bench::parallel_map(pair_tasks);

  bench::print_header("Extension workloads — Table I metrics (standalone, " + char_routing +
                      ", scale 1/" + std::to_string(options.scale) + ")");
  viz::AsciiTable char_table({"app", "total MB", "exec ms", "GB/s", "peak ingress"});
  for (const CharRow& row : char_rows) {
    char_table.row({row.app + (row.completed ? "" : " [INCOMPLETE]"),
                    bench::fmt(row.metrics.total_msg_mb), bench::fmt(row.metrics.execution_ms, 3),
                    bench::fmt(row.metrics.injection_rate_gbs, 1),
                    workloads::format_volume(row.metrics.peak_ingress_bytes)});
  }
  std::fputs(char_table.str().c_str(), stdout);

  bench::print_header("Extension pairwise interference");
  viz::AsciiTable pair_table(
      {"experiment", "routing", "alone (ms)", "co-run (ms)", "slowdown", "co-run p99 (us)"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PairOutcome& o = pair_rows[i];
    pair_table.row({cases[i].label, cases[i].routing, bench::fmt(o.alone_ms),
                    bench::fmt(o.corun_ms),
                    bench::fmt(o.alone_ms > 0 ? o.corun_ms / o.alone_ms : 0.0),
                    bench::fmt(o.corun_p99_us)});
  }
  std::fputs(pair_table.str().c_str(), stdout);

  std::puts(
      "\nExpected: MILC slows sharply under Halo3D via its CG tail-latency\n"
      "chain, and Q-adp recovers part of it (the paper's §V-B mechanism).\n"
      "IOBurst's checkpoint fan-in hurts LU under every routing; Q-adp\n"
      "contains the spill-over congestion around the buffer nodes (PAR's\n"
      "non-minimal detours spread it fabric-wide), but the terminal-link\n"
      "bottleneck itself is routing-invariant — the congestion-control\n"
      "ablation (ECN+AIMD) is the mechanism that addresses it.");
  return 0;
}

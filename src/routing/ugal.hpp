#pragma once

#include "net/routing_iface.hpp"

namespace dfly::routing {

/// Tunables for the UGAL family (paper §III: zero bias, 2 candidates each).
struct UgalParams {
  int min_candidates{2};
  int nonmin_candidates{2};
  /// Minimal is chosen when q_min <= nonmin_weight * q_nonmin + bias.
  int nonmin_weight{2};
  int bias{0};

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const UgalParams&) const = default;
};

/// Universal Globally-Adaptive Load-balanced routing (Cray-style).
///
/// At the source router the packet samples `min_candidates` minimal and
/// `nonmin_candidates` non-minimal first hops and compares port queue
/// occupancies: minimal wins unless it is at least `nonmin_weight` times as
/// congested (the paper's "less than twice" rule). UGALg forwards minimally
/// once inside the intermediate group; UGALn first visits a random router in
/// it to dodge intermediate-group local congestion.
class UgalRouting final : public RoutingAlgorithm {
 public:
  UgalRouting(bool node_variant, UgalParams params = {})
      : node_variant_(node_variant), params_(params) {}

  std::string name() const override { return node_variant_ ? "UGALn" : "UGALg"; }
  RouteDecision route(Router& router, Packet& pkt) override;

  const UgalParams& params() const { return params_; }

 private:
  // Immutable parameterisation: UGAL keeps no per-cell learning state — every
  // decision reads live router queue occupancy.
  const bool node_variant_;
  const UgalParams params_;
};

}  // namespace dfly::routing

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

/// Parallel experiment execution.
///
/// Every study in this suite is a sweep of independent (config, seed) cells:
/// each cell builds its own Engine, Network, Rng and stats, runs to
/// completion, and emits a Report. Cells share nothing, so they shard
/// trivially across threads — the only discipline required is that results
/// land in pre-sized slots indexed by cell, which makes the aggregate output
/// bit-identical to a sequential run regardless of worker count or
/// completion order.
namespace dfly {

/// Per-worker exception diagnostics collected by a run_indexed() call.
///
/// Historically only the FIRST exception thrown by any worker survived (it
/// was rethrown; everything else was dropped on the floor). Campaign-grade
/// diagnostics need the full picture: how many cells each worker lost and
/// what the first failure on each worker looked like — enough to tell "one
/// pathological cell" from "worker 3's arena is poisoned" from "the disk
/// filled up everywhere". run_plan() forwards this into PlanOutcome.
struct WorkerErrors {
  struct Worker {
    std::size_t failures{0};  ///< cells whose fn threw on this worker
    std::string first;        ///< what() of this worker's first exception
  };
  std::vector<Worker> workers;  ///< index = worker id (size = worker count)

  std::size_t total() const {
    std::size_t sum = 0;
    for (const Worker& worker : workers) sum += worker.failures;
    return sum;
  }
  bool any() const { return total() > 0; }
  /// "worker 0: 3 failures, first: bad_alloc; worker 2: ..." (empty when
  /// clean) — the one-line form the CLI prints.
  std::string summary() const;
};

/// Thread-pool runner for independent simulation cells.
///
/// Worker-count resolution, in priority order: an explicit `jobs` argument
/// (> 0), the DFSIM_JOBS environment variable, then the caller's fallback
/// (sequential by default). The same resolution backs the `--jobs=N` flag on
/// `dflysim` and on every bench binary.
class ParallelRunner {
 public:
  /// `jobs` <= 0 resolves through resolve_jobs(jobs, /*fallback=*/1).
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// `requested` > 0 wins; else DFSIM_JOBS (when set to an integer >= 1);
  /// else `fallback` (clamped to >= 1).
  static int resolve_jobs(int requested, int fallback = 1);

  /// Per-cell peak-RSS budget used by memory_jobs_cap(): the measured
  /// high-water mutable footprint of one full 1,056-node cell *with*
  /// blueprint sharing and arena reuse on, rounded up generously. Re-derive
  /// from the BENCH_memory.json CI artifact when the footprint moves. This
  /// is a paper-shape heuristic: sweeps over substantially larger custom
  /// topologies should bound workers explicitly (--jobs / DFSIM_JOBS), which
  /// always overrides the derived cap.
  static constexpr std::uint64_t kCellBudgetBytes = 192ull << 20;  // 192 MiB

  /// Workers admitted by available memory: in-flight cells may budget at
  /// most half of the memory this process can actually use — physical RAM,
  /// further limited by a cgroup ceiling when one is set (containers/CI) —
  /// at kCellBudgetBytes each (the blueprint keeps the read-only plan out of
  /// that constant; pre-blueprint this was a fixed cap of 12 workers). Falls
  /// back to 12 when no limit can be determined; clamped to [1, 256].
  static int memory_jobs_cap();

  /// min(hardware_concurrency, memory_jobs_cap()), at least 1.
  static int hardware_jobs();

  /// Invoke fn(0) .. fn(n-1), sharded across jobs() worker threads
  /// (sequential when jobs() == 1 or n <= 1). `fn` must only touch state
  /// owned by cell i — see the thread-safety notes on PacketPool, LinkStats
  /// and Rng.
  ///
  /// Exception handling comes in two modes:
  ///  - errors == nullptr (legacy): the first failure stops workers from
  ///    claiming new cells, and the first exception is rethrown on the
  ///    calling thread after all workers drain; cells not yet started are
  ///    skipped. Every exception is still *counted* per worker internally.
  ///  - errors != nullptr: nothing is rethrown and no early stop happens —
  ///    every cell is attempted, each worker's failure count and first
  ///    message land in *errors (resized to the worker count). Callers that
  ///    isolate failures per cell (run_plan) catch inside fn themselves, so
  ///    entries here indicate infrastructure failures, not cell failures.
  ///
  /// Each worker carries a persistent SimArena (core/arena.hpp) for the
  /// duration of the call, so Studies built inside `fn` reuse the worker's
  /// grown storage cell after cell; and all workers share one BlueprintCache
  /// (core/blueprint.hpp), so same-shape cells read one immutable
  /// topology/wiring/routing plan instead of rebuilding it. Disabled by
  /// --no-arena / DFSIM_NO_ARENA and --no-blueprint / DFSIM_NO_BLUEPRINT
  /// respectively; output is bit-identical in every combination.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                   WorkerErrors* errors = nullptr) const;

  /// Evaluate every task; results are returned in task order, so callers
  /// print deterministic tables no matter how the cells interleave.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>>& tasks) const {
    std::vector<T> results(tasks.size());
    run_indexed(tasks.size(), [&](std::size_t i) { results[i] = tasks[i](); });
    return results;
  }

 private:
  int jobs_;
};

}  // namespace dfly

#pragma once

#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

/// One degraded directed link: the wire behind output `port` of `router`
/// serialises packets `slowdown` times slower and adds `extra_latency` of
/// propagation delay. Models production link faults (Slingshot links retrain
/// to a lower lane count after errors) rather than hard cuts: connectivity is
/// preserved, so every routing policy still has a legal path and the study
/// measures how well each policy *steers around* the fault.
struct LinkFault {
  int router{-1};
  int port{-1};
  int slowdown{1};
  SimTime extra_latency{0};

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const LinkFault&) const = default;
};

/// A set of link faults applied to a Network after construction.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(LinkFault fault) { faults_.push_back(fault); }
  void merge(const FaultPlan& other);

  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }
  const std::vector<LinkFault>& faults() const { return faults_; }

  /// Shape identity (blueprint cache key, config round-trip tests).
  bool operator==(const FaultPlan&) const = default;

  /// Degrade every global link between `group_a` and `group_b`, in both
  /// directions (the common field failure: one cable, two directions).
  static FaultPlan degrade_global(const Dragonfly& topo, int group_a, int group_b,
                                  int slowdown, SimTime extra_latency = 0);

  /// Degrade a uniformly random `fraction` of the system's global links
  /// (each direction drawn independently). Deterministic for a given seed.
  static FaultPlan degrade_random_globals(const Dragonfly& topo, double fraction,
                                          int slowdown, SimTime extra_latency,
                                          std::uint64_t seed);

  /// Degrade every local link of router `router` (a failing switch ASIC:
  /// its intra-group connectivity survives but at reduced speed).
  static FaultPlan degrade_router_locals(const Dragonfly& topo, int router,
                                         int slowdown, SimTime extra_latency = 0);

 private:
  std::vector<LinkFault> faults_;
};

/// Parse a fault-plan spec: comma-separated `router:port:slowdown[:extra_ns]`
/// entries, e.g. "12:11:8" or "0:14:4:500,8:12:4:500". Throws
/// std::invalid_argument on malformed entries or non-positive slowdowns.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace dfly

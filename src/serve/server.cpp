#include "serve/server.hpp"

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/config_file.hpp"
#include "core/json_report.hpp"
#include "core/plan.hpp"
#include "serve/protocol.hpp"

namespace dfly::serve {

namespace {

/// A request line (and therefore an embedded plan file) larger than this is
/// rejected instead of buffered forever.
constexpr std::size_t kMaxRequestBytes = 1 << 20;  // 1 MiB

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string error_line(const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.key("serve").value("error");
  w.key("message").value(message);
  w.end_object();
  return w.str();
}

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)), queue_(options_.jobs) {
  if (options_.spool_dir.empty()) options_.spool_dir = options_.socket_path + ".spool";
  if (::mkdir(options_.spool_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error(errno_text("mkdir '" + options_.spool_dir + "'"));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: '" + options_.socket_path + "'");
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw std::runtime_error(errno_text("socket"));
  // A previous daemon that died uncleanly leaves its socket file behind;
  // binding over it is the expected restart path (spool resume handles the
  // campaigns it left unfinished).
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = errno_text("bind '" + options_.socket_path + "'");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message = errno_text("listen '" + options_.socket_path + "'");
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    throw std::runtime_error(message);
  }
}

Server::~Server() {
  reap_finished_drivers(/*join_all=*/true);
  for (PendingConn& conn : pending_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

std::string Server::next_campaign_id() {
  const MutexLock lock(mutex_);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "c%06zu", next_id_++);
  return buffer;
}

void Server::scan_spool_for_resume() {
  // Every <id>.plan without a <id>.done marker is a campaign some earlier
  // daemon accepted but never finished — resume it (no client attached; the
  // spool JSONL is the durable output). .done entries only advance next_id_
  // so restarted daemons never reuse an id.
  DIR* dir = ::opendir(options_.spool_dir.c_str());
  if (dir == nullptr) throw std::runtime_error(errno_text("opendir '" + options_.spool_dir + "'"));
  std::vector<std::string> unfinished;
  {
    const MutexLock lock(mutex_);
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      const std::string suffix = ".plan";
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
        continue;
      }
      const std::string id = name.substr(0, name.size() - suffix.size());
      if (id.size() < 2 || id[0] != 'c') continue;
      char* end = nullptr;
      const unsigned long number = std::strtoul(id.c_str() + 1, &end, 10);
      if (end == nullptr || *end != '\0') continue;
      if (number + 1 > next_id_) next_id_ = number + 1;
      if (!file_exists(options_.spool_dir + "/" + id + ".done")) unfinished.push_back(id);
    }
  }
  ::closedir(dir);

  std::sort(unfinished.begin(), unfinished.end());
  for (const std::string& id : unfinished) {
    const std::string plan_path = options_.spool_dir + "/" + id + ".plan";
    auto campaign = std::make_shared<Campaign>(id, options_.spool_dir,
                                               read_file_text(plan_path),
                                               /*client_fd=*/-1, /*resume=*/true);
    start_campaign(campaign);
  }
}

void Server::start_campaign(const std::shared_ptr<Campaign>& campaign) {
  const MutexLock lock(mutex_);
  campaigns_[campaign->id()] = campaign;
  SubmissionQueue* queue = &queue_;
  drivers_.emplace_back(std::thread([campaign, queue] { campaign->run(*queue); }), campaign);
}

void Server::reap_finished_drivers(bool join_all) {
  // join() can block (join_all drains whole campaigns), but only the
  // acceptor thread ever takes mutex_, so holding it across the join cannot
  // deadlock — campaign drivers never touch Server state.
  const MutexLock lock(mutex_);
  for (auto it = drivers_.begin(); it != drivers_.end();) {
    if (join_all || it->second->finished()) {
      it->first.join();
      it = drivers_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::reply_and_close(int fd, const std::string& line) {
  write_all(fd, line + "\n");
  ::close(fd);
}

void Server::dispatch(const std::string& line, int fd) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    reply_and_close(fd, error_line(error.what()));
    return;
  }

  if (request.op == "submit") {
    std::string config_text;
    std::size_t cells = 0;
    try {
      ConfigFile file = ConfigFile::parse(request.plan_text);
      for (const auto& [key, value] : request.sets) file.set(key, value);
      const ExperimentPlan plan = plan_from_config(file);
      cells = plan.expand().size();
      // Spool exactly what will run: the emitted post-override file, so a
      // restarted daemon re-parses the identical configuration.
      config_text = file.emit();
    } catch (const std::exception& error) {
      reply_and_close(fd, error_line(error.what()));
      return;
    }

    const std::string id = next_campaign_id();
    const std::string plan_path = options_.spool_dir + "/" + id + ".plan";
    {
      std::ofstream out(plan_path, std::ios::binary | std::ios::trunc);
      out << config_text;
      out.flush();
      if (!out.good()) {
        reply_and_close(fd, error_line("cannot spool plan to '" + plan_path + "'"));
        return;
      }
    }

    JsonWriter w;
    w.begin_object();
    w.key("serve").value("accepted");
    w.key("campaign").value(id);
    w.key("cells").value(static_cast<std::uint64_t>(cells));
    w.end_object();
    if (!write_all(fd, w.str() + "\n")) {
      // Client vanished between submitting and the accept line: nothing has
      // run yet, so drop the spool entry rather than run for nobody.
      ::close(fd);
      ::unlink(plan_path.c_str());
      return;
    }
    start_campaign(std::make_shared<Campaign>(id, options_.spool_dir, config_text, fd,
                                              /*resume=*/false));
    return;
  }

  if (request.op == "status" || request.op == "cancel") {
    std::shared_ptr<Campaign> campaign;
    {
      const MutexLock lock(mutex_);
      const auto it = campaigns_.find(request.campaign);
      if (it != campaigns_.end()) campaign = it->second;
    }
    if (campaign == nullptr) {
      reply_and_close(fd, error_line("unknown campaign '" + request.campaign + "'"));
      return;
    }
    if (request.op == "cancel") {
      campaign->cancel();
      JsonWriter w;
      w.begin_object();
      w.key("serve").value("ok");
      w.key("campaign").value(request.campaign);
      w.end_object();
      reply_and_close(fd, w.str());
      return;
    }
    reply_and_close(fd, campaign->status_line());
    return;
  }

  if (request.op == "stats") {
    std::size_t active = 0;
    std::size_t total = 0;
    {
      const MutexLock lock(mutex_);
      total = campaigns_.size();
      for (const auto& [id, campaign] : campaigns_) {
        if (!campaign->finished()) ++active;
      }
    }
    const BlueprintCache::Stats stats = queue_.cache().stats();
    JsonWriter w;
    w.begin_object();
    w.key("serve").value("stats");
    w.key("jobs").value(queue_.jobs());
    w.key("campaigns").value(static_cast<std::uint64_t>(total));
    w.key("active").value(static_cast<std::uint64_t>(active));
    w.key("blueprint_hits").value(static_cast<std::uint64_t>(stats.hits));
    w.key("blueprint_misses").value(static_cast<std::uint64_t>(stats.misses));
    w.end_object();
    reply_and_close(fd, w.str());
    return;
  }

  // shutdown (parse_request rejects every other op)
  shutdown_requested_ = true;
  shutdown_drain_ = request.drain;
  JsonWriter w;
  w.begin_object();
  w.key("serve").value("ok");
  w.end_object();
  reply_and_close(fd, w.str());
}

int Server::serve() {
  scan_spool_for_resume();

  while (!shutdown_requested_ && !stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const PendingConn& conn : pending_) fds.push_back({conn.fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error(errno_text("poll"));
    }

    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN: drained
        }
        pending_.push_back(PendingConn{fd, {}});
      }
    }

    // Walk the connections that were polled (new accepts wait a cycle).
    // dispatch() owns each completed request's fd, so a conn leaves
    // pending_ the moment its line is complete.
    for (std::size_t i = fds.size() - 1; i >= 1; --i) {
      if (ready <= 0 || (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      PendingConn& conn = pending_[i - 1];
      char buffer[4096];
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n <= 0) {
        // Hung up before completing a request line.
        ::close(conn.fd);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i - 1));
        continue;
      }
      conn.buffer.append(buffer, static_cast<std::size_t>(n));
      std::string line;
      if (pop_line(conn.buffer, line)) {
        const int fd = conn.fd;
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i - 1));
        dispatch(line, fd);
      } else if (conn.buffer.size() > kMaxRequestBytes) {
        reply_and_close(conn.fd, error_line("request exceeds 1 MiB"));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }

    reap_finished_drivers(/*join_all=*/false);
    if (shutdown_requested_) break;
  }

  // Stop accepting first so drain can't race new submissions.
  ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = -1;
  for (PendingConn& conn : pending_) ::close(conn.fd);
  pending_.clear();

  if (!shutdown_drain_) {
    const MutexLock lock(mutex_);
    for (const auto& [id, campaign] : campaigns_) campaign->cancel();
  }
  reap_finished_drivers(/*join_all=*/true);
  return 0;
}

}  // namespace dfly::serve

#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// Small-buffer one-shot callable for the engine's callback path.
///
/// Engine::call_at used to store its callback in a std::function, whose
/// small-buffer optimisation tops out at two pointers on libstdc++ — the MPI
/// and network layers' protocol callbacks (a sink pointer plus a message id,
/// sometimes a couple of ints more) sat right at that edge, and every capture
/// past it cost a heap allocation per scheduled callback. InlineFn widens the
/// inline buffer to kInlineBytes so every protocol/completion capture in the
/// simulator stays inline; captures larger than the buffer still work through
/// a heap fallback, so tests and setup code keep full generality.
///
/// Move-only and deliberately minimal: no copy, no target introspection, no
/// allocator support — exactly what a pooled one-shot closure slot needs.
namespace dfly {

class InlineFn {
 public:
  /// Inline capture budget. 48 bytes = six pointers: comfortably above every
  /// hot-path capture (see net/network.cpp, mpi/job.cpp) without bloating
  /// the pooled closure slots that store one InlineFn each.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFn> && std::is_invocable_r_v<void, F&>)
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (buffer_) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buffer_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buffer_, other.buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineFn");
    ops_->invoke(buffer_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src`, then destroy `src`'s target.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* storage) { (**std::launder(reinterpret_cast<Fn**>(storage)))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](void* storage) { delete *std::launder(reinterpret_cast<Fn**>(storage)); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace dfly

#pragma once

#include <vector>

#include "sim/time.hpp"
#include "stats/link_stats.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

/// Congestion-index matrix for the paper's Fig 12 heat map.
///
/// The congestion index of a link (adapted from He et al.) is the ratio of
/// its mean delivered throughput to its capacity. Cell (s,d), s != d, is the
/// average index over the global links from group s to group d; diagonal
/// cell (s,s) averages the local links inside group s.
class CongestionMatrix {
 public:
  CongestionMatrix(int num_groups) : g_(num_groups), cells_(static_cast<std::size_t>(num_groups) * num_groups, 0.0) {}

  double cell(int src_group, int dst_group) const {
    return cells_[static_cast<std::size_t>(src_group) * g_ + static_cast<std::size_t>(dst_group)];
  }
  double& cell(int src_group, int dst_group) {
    return cells_[static_cast<std::size_t>(src_group) * g_ + static_cast<std::size_t>(dst_group)];
  }

  int num_groups() const { return g_; }

  /// Mean over all cells (overall system congestion level).
  double mean() const;
  /// Mean over off-diagonal (global) cells only.
  double mean_global() const;
  /// Mean over diagonal (local) cells only.
  double mean_local() const;
  /// Max cell value.
  double max() const;
  /// Coefficient of variation over off-diagonal cells: the paper's
  /// "unbalanced traffic distribution" manifests as a high value.
  double imbalance_global() const;

 private:
  int g_;
  std::vector<double> cells_;
};

/// Build the matrix from per-link byte counters accumulated over [0, elapsed)
/// on a system with link capacity `gbps` gigabits/s.
CongestionMatrix congestion_matrix(const Dragonfly& topo, const LinkStats& stats,
                                   SimTime elapsed, double gbps);

/// Per-group stall summary for Fig 11: total local-link stall inside each
/// group, and per-destination-group global-link stall.
struct GroupStall {
  std::vector<double> local_ms;                ///< [g] sum of local stall per group, ms
  std::vector<std::vector<double>> global_ms;  ///< [g][g] global stall from s to d, ms
  double mean_local_ms{0};
  double mean_global_ms{0};
};
GroupStall group_stall(const Dragonfly& topo, const LinkStats& stats);

}  // namespace dfly

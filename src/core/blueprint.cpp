#include "core/blueprint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <utility>

#include "core/study.hpp"

namespace dfly {

namespace {

thread_local BlueprintCache* t_current_cache = nullptr;

/// -1 = not resolved yet, 0 = disabled, 1 = enabled. Resolved lazily from
/// DFSIM_NO_BLUEPRINT so tests and the CLI can override either way first.
std::atomic<int> g_blueprint_enabled{-1};

int resolve_blueprint_enabled() {
  const char* env = std::getenv("DFSIM_NO_BLUEPRINT");
  const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return disabled ? 0 : 1;
}

/// FNV-1a over a stream of explicitly-fed values (never over raw struct
/// bytes: padding would make equal keys hash differently).
struct KeyHasher {
  std::uint64_t state{1469598103934665603ull};

  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state ^= (value >> (8 * i)) & 0xff;
      state *= 1099511628211ull;
    }
  }
  void mix(int value) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value))); }
  void mix(bool value) { mix(static_cast<std::uint64_t>(value ? 1 : 0)); }
  void mix(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    mix(bits);
  }
  void mix(const std::string& value) {
    mix(static_cast<std::uint64_t>(value.size()));
    for (const char c : value) mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
};

}  // namespace

bool blueprint_enabled() {
  int state = g_blueprint_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_blueprint_enabled();
    g_blueprint_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_blueprint_enabled(bool enabled) {
  g_blueprint_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

BlueprintKey BlueprintKey::of(const StudyConfig& config) {
  BlueprintKey key;
  key.topo = config.topo;
  key.net = config.net;
  key.routing = config.routing;
  key.placement = config.placement;
  key.protocol = config.protocol;
  key.ugal = config.ugal;
  key.qadp = config.qadp;
  key.faults = config.faults.faults();
  return key;
}

std::size_t BlueprintKey::hash() const {
  KeyHasher h;
  h.mix(topo.p);
  h.mix(topo.a);
  h.mix(topo.h);
  h.mix(topo.g);
  h.mix(static_cast<int>(topo.arrangement));
  h.mix(net.flit_bytes);
  h.mix(net.packet_bytes);
  h.mix(net.buffer_packets);
  h.mix(net.num_vcs);
  h.mix(net.link_gbps);
  h.mix(static_cast<std::uint64_t>(net.local_latency));
  h.mix(static_cast<std::uint64_t>(net.global_latency));
  h.mix(static_cast<std::uint64_t>(net.terminal_latency));
  h.mix(static_cast<std::uint64_t>(net.router_latency));
  h.mix(net.qos.num_classes);
  h.mix(static_cast<std::uint64_t>(net.qos.weights.size()));
  for (const int w : net.qos.weights) h.mix(w);
  h.mix(net.qos.quantum_packets);
  h.mix(net.cc.enabled);
  h.mix(net.cc.ecn_threshold_packets);
  h.mix(net.cc.md_factor);
  h.mix(net.cc.ai_step);
  h.mix(static_cast<std::uint64_t>(net.cc.ai_period));
  h.mix(net.cc.min_rate);
  h.mix(static_cast<std::uint64_t>(net.cc.decrease_guard));
  h.mix(routing);
  h.mix(static_cast<int>(placement));
  h.mix(static_cast<std::uint64_t>(protocol.eager_threshold));
  h.mix(static_cast<std::uint64_t>(protocol.control_bytes));
  h.mix(ugal.min_candidates);
  h.mix(ugal.nonmin_candidates);
  h.mix(ugal.nonmin_weight);
  h.mix(ugal.bias);
  h.mix(qadp.alpha);
  h.mix(qadp.epsilon);
  h.mix(qadp.queue_weight);
  h.mix(static_cast<std::uint64_t>(faults.size()));
  for (const LinkFault& f : faults) {
    h.mix(f.router);
    h.mix(f.port);
    h.mix(f.slowdown);
    h.mix(static_cast<std::uint64_t>(f.extra_latency));
  }
  return static_cast<std::size_t>(h.state);
}

SystemBlueprint::SystemBlueprint(BlueprintKey key)
    : key_(std::move(key)), topo_(key_.topo), links_(topo_), radix_(topo_.radix()) {}

std::shared_ptr<const SystemBlueprint> SystemBlueprint::build(const StudyConfig& config) {
  // dfsim-lint: allow(det-clock) build_ms_ is cache diagnostics, not output
  const auto t0 = std::chrono::steady_clock::now();
  // make_shared needs a public ctor; the private-ctor new is fine here.
  std::shared_ptr<SystemBlueprint> bp(new SystemBlueprint(BlueprintKey::of(config)));
  const Dragonfly& topo = bp->topo_;
  bp->faults_ = config.faults;

  // Wiring plan: resolve every router output port once. Network's wiring
  // loop and Q-adaptive's initial estimates both read these entries instead
  // of re-deriving the arrangement arithmetic per cell.
  bp->ports_.resize(static_cast<std::size_t>(topo.num_routers()) *
                    static_cast<std::size_t>(bp->radix_));
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int port = 0; port < bp->radix_; ++port) {
      PortPlan& plan = bp->ports_[static_cast<std::size_t>(r) * bp->radix_ + port];
      plan.latency = LinkMap::port_latency(topo, bp->key_.net, port);
      plan.cls = LinkMap::port_class(topo, port);
      if (topo.is_terminal_port(port)) continue;  // peer is a NIC
      const Dragonfly::Wire wire = topo.wire(r, port);
      plan.peer_router = wire.peer_router;
      plan.peer_port = static_cast<std::int16_t>(wire.peer_port);
      plan.global = wire.global;
    }
  }

  bp->paths_ = PathPlan::build(topo);

  bp->placement_pool_.resize(static_cast<std::size_t>(topo.num_nodes()));
  std::iota(bp->placement_pool_.begin(), bp->placement_pool_.end(), 0);

  if (bp->key_.routing == "Q-adp") {
    bp->qinit_ = routing::build_initial_qtables(topo, bp->key_.net);
  }

  // dfsim-lint: allow(det-clock) build_ms_ is cache diagnostics, not output
  const auto t1 = std::chrono::steady_clock::now();
  bp->build_ms_ =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0).count();
  return bp;
}

std::size_t SystemBlueprint::footprint_bytes() const {
  std::size_t bytes = sizeof(SystemBlueprint);
  bytes += ports_.size() * sizeof(PortPlan);
  bytes += paths_.min_hops.size() * sizeof(std::uint8_t);
  bytes += paths_.group_paths.size() * sizeof(std::int32_t);
  bytes += placement_pool_.size() * sizeof(int);
  for (const QTable& table : qinit_) bytes += table.footprint_bytes();
  // Gateways: one endpoint per (router, global port) plus the per-pair lists.
  bytes += static_cast<std::size_t>(topo_.num_routers()) *
           static_cast<std::size_t>(topo_.params().h) * sizeof(GlobalEndpoint);
  return bytes;
}

BlueprintCache* BlueprintCache::current() { return t_current_cache; }

std::shared_ptr<const SystemBlueprint> BlueprintCache::get_or_build(const StudyConfig& config) {
  const BlueprintKey key = BlueprintKey::of(config);
  const std::size_t hash = key.hash();
  const MutexLock lock(mutex_);
  auto& bucket = by_hash_[hash];
  for (const auto& entry : bucket) {
    if (entry->key() == key) {
      ++stats_.hits;
      return entry;
    }
  }
  ++stats_.misses;
  std::shared_ptr<const SystemBlueprint> built = SystemBlueprint::build(config);
  stats_.build_ms_total += built->build_ms();
  bucket.push_back(built);
  return built;
}

BlueprintCache::Stats BlueprintCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

std::size_t BlueprintCache::size() const {
  const MutexLock lock(mutex_);
  std::size_t n = 0;
  // dfsim-lint: allow(det-unordered-iter) summing bucket sizes is
  // order-independent; nothing here reaches simulation output.
  for (const auto& [hash, bucket] : by_hash_) n += bucket.size();
  return n;
}

ScopedBlueprintCacheBinding::ScopedBlueprintCacheBinding(BlueprintCache* cache)
    : previous_(t_current_cache) {
  if (cache != nullptr) t_current_cache = cache;
}

ScopedBlueprintCacheBinding::~ScopedBlueprintCacheBinding() { t_current_cache = previous_; }

}  // namespace dfly

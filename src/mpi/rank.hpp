#pragma once

#include <coroutine>
#include <cstdint>
#include <span>
#include <vector>

#include "mpi/match.hpp"
#include "mpi/task.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dfly::mpi {

class Job;

using ReqId = std::uint32_t;

/// Completion state of one outstanding non-blocking operation.
struct Request {
  bool in_use{false};
  bool complete{false};
  SimTime complete_time{0};
  std::coroutine_handle<> waiter{};
};

/// The simulated-MPI execution context of one rank (our Firefly stand-in).
///
/// Motifs drive it from a coroutine: non-blocking isend/irecv return request
/// ids, `co_await ctx.wait(r)` blocks the rank until completion, and
/// `co_await ctx.compute(ns)` models computation. Collectives (barrier,
/// allreduce tree, alltoall ring) are built on these primitives exactly as
/// SST/Firefly builds them, so their network footprint is faithful.
///
/// Accounting: time spent suspended in MPI awaits accumulates as the rank's
/// *communication time* (the paper's Fig 4/8/10 metric); consecutive sends
/// posted without an intervening block form an *ingress burst* whose maximum
/// is the rank's peak ingress volume (§IV metric 2).
///
/// Allocation discipline: the request-slot pool, the match-list pools and
/// the iteration-mark vector all keep their high-water storage, and the
/// span-based collective entry points borrow the caller's buffers instead of
/// copying them — so a rank in steady state issues MPI traffic without
/// touching the heap. A RankCtx recycled from a SimArena (via reinit()) is
/// observably identical to a fresh one: request ids are handed out 0, 1,
/// 2, ... again and every counter restarts at zero, only the container
/// capacity carries over (see docs/ARCHITECTURE.md).
class RankCtx final : public Component {
 public:
  RankCtx(Job& job, int rank, int node, Rng rng);

  /// Re-point and re-zero every piece of per-cell state so a RankCtx
  /// recycled from a per-worker arena behaves exactly like a freshly
  /// constructed one while keeping its container storage (request slots,
  /// match-list pools, iteration-mark capacity). The constructor funnels
  /// through this; Job calls it when rebuilding from a parked JobStorage.
  void reinit(Job& job, int rank, int node, Rng rng);

  int rank() const { return rank_; }
  int size() const;
  int node() const { return node_; }
  SimTime now() const;
  Rng& rng() { return rng_; }

  // --- non-blocking primitives ---------------------------------------------
  /// Post a send of `bytes` to `dst_rank`. Whether it goes eagerly or via
  /// the RTS/CTS rendezvous handshake is the Job's protocol decision
  /// (ProtocolConfig::eager_threshold); either way the returned request
  /// completes when the payload is fully on the wire.
  ReqId isend(int dst_rank, std::int64_t bytes, int tag);
  /// Post a receive for (src_rank, tag); kAnySource matches any sender. An
  /// already-buffered eager message completes the request immediately; an
  /// unexpected rendezvous RTS triggers the clear-to-send instead, and the
  /// request completes when the payload lands.
  ReqId irecv(int src_rank, int tag);

  // --- awaitables ------------------------------------------------------------
  struct [[nodiscard]] WaitAwaiter {
    RankCtx* ctx;
    ReqId id;
    SimTime suspended_at{-1};
    bool await_ready() const { return ctx->request(id).complete; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended_at = ctx->now();
      ctx->note_block();
      ctx->request(id).waiter = h;
    }
    void await_resume() { ctx->finish_wait(id, suspended_at); }
  };
  WaitAwaiter wait(ReqId id) { return WaitAwaiter{this, id}; }

  struct [[nodiscard]] ComputeAwaiter {
    RankCtx* ctx;
    SimTime duration;
    bool await_ready() const { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->note_block();
      ctx->schedule_resume(h, duration);
    }
    void await_resume() {}
  };
  /// Model `duration` of computation (does not count as communication time).
  ComputeAwaiter compute(SimTime duration) { return ComputeAwaiter{this, duration}; }

  // --- composite operations (collectives.cpp) -------------------------------
  Task send(int dst_rank, std::int64_t bytes, int tag);  ///< isend + wait
  Task recv(int src_rank, int tag);                      ///< irecv + wait
  /// Wait for every request in `ids`. Borrows the caller's buffer: the span
  /// must stay valid until the await completes (a coroutine-frame local —
  /// the only call pattern in this codebase — always is). The ids are NOT
  /// consumed from the caller's container; reuse a window buffer by
  /// clear()ing it after the await.
  Task wait_all(std::span<const ReqId> ids);
  Task barrier();
  /// Binary-tree reduce + broadcast, `bytes` per edge (SST Allreduce).
  Task allreduce(std::int64_t bytes);
  /// Multi-step ring exchange over `members` (job-rank ids), `bytes` per
  /// pair (SST Alltoall): round i sends to member me+i, receives from me-i.
  /// Borrows `members` for the duration of the await (same rule as
  /// wait_all) — a motif can build the member list once and reuse it every
  /// iteration without per-call copies.
  Task alltoall(std::int64_t bytes, std::span<const int> members);

  /// Timestamp an application-defined iteration boundary.
  void mark_iteration() { iteration_marks_.push_back(now()); }

  /// Background-traffic mode: inbound eager messages that match no posted
  /// receive are dropped instead of parked (pure traffic generators like UR
  /// never consume what they receive; this bounds memory).
  void set_sink_mode(bool on) { sink_mode_ = on; }
  bool sink_mode() const { return sink_mode_; }

  /// Allocate a fresh collective tag. Ranks of one job allocate tags in
  /// lockstep (SPMD: every rank runs the same collective sequence), so the
  /// i-th collective gets the same tag on every rank. Used by the extended
  /// collective algorithms in mpi/coll.hpp.
  int alloc_coll_tag() { return next_coll_tag(); }

  // --- accounting ------------------------------------------------------------
  SimTime comm_time() const { return comm_time_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t peak_ingress_bytes() const { return peak_burst_; }
  const std::vector<SimTime>& iteration_marks() const { return iteration_marks_; }
  /// Carried match-list slot capacity (arena bookkeeping / test hook).
  std::size_t match_capacity() const { return match_.capacity(); }

  void handle(Engine& engine, const Event& event) override;

  // --- Job-side entry points -------------------------------------------------
  /// A complete eager message arrived for this rank.
  void deliver_eager(int src_rank, int tag, std::int64_t bytes);
  /// A rendezvous RTS header arrived for this rank.
  void deliver_rts(int src_rank, int tag, std::int64_t bytes, std::uint64_t rdv_id);
  void complete_request(ReqId id);
  Request& request(ReqId id) { return slots_[id]; }

 private:
  friend class Job;

  ReqId alloc_request();
  /// Resolve the engine this rank's node lives on (the cell engine when
  /// sequential, the node's domain engine under --cell-threads) and stamp the
  /// matching pdes domain. Both construction paths funnel through this.
  void bind_engine();
  void release_request(ReqId id);
  void finish_wait(ReqId id, SimTime suspended_at);
  void note_block();
  void schedule_resume(std::coroutine_handle<> h, SimTime delay);
  int next_coll_tag() { return kCollTagBase + coll_seq_++; }

  static constexpr int kCollTagBase = 1 << 20;

  Job* job_;
  Engine* engine_{nullptr};  ///< this node's domain engine (see bind_engine)
  int rank_;
  int node_;
  Rng rng_;
  MatchList match_;
  // Request slots are a plain vector (id == index): nothing holds a
  // Request& across a point where alloc_request could grow the vector, and
  // the capacity carries across reinit() so steady-state traffic allocates
  // nothing here.
  std::vector<Request> slots_;
  std::vector<ReqId> free_slots_;
  std::coroutine_handle<> pending_resume_{};

  SimTime comm_time_{0};
  std::int64_t bytes_sent_{0};
  std::int64_t messages_sent_{0};
  std::int64_t burst_{0};
  std::int64_t peak_burst_{0};
  int coll_seq_{0};
  bool sink_mode_{false};
  std::vector<SimTime> iteration_marks_;
};

}  // namespace dfly::mpi

#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/pairwise.hpp"
#include "core/parallel.hpp"
#include "core/study.hpp"

namespace dfly::bench {

/// Worker count every bench uses when a call site does not pass one:
/// --jobs=N (recorded by Options::parse), else DFSIM_JOBS, else
/// min(hardware_concurrency, 12).
int default_jobs();
/// Record the harness-wide --jobs value (0 = unset). Options::parse calls
/// this; exposed for drivers with their own flag parsing.
void set_default_jobs(int jobs);

/// Run independent simulation tasks concurrently (each task is a complete
/// Study; they share no state). Results are returned in submission order, so
/// callers print deterministic tables. Worker count defaults to
/// default_jobs(); the heavy lifting lives in dfly::ParallelRunner.
template <typename T>
std::vector<T> parallel_map(const std::vector<std::function<T()>>& tasks, int threads = 0) {
  return ParallelRunner(threads > 0 ? threads : default_jobs()).map(tasks);
}

/// Common command-line options for the experiment harnesses.
///
///   --scale=N        iteration divisor (default 8; 1 = paper-scale volumes)
///   --seed=N         placement/routing RNG seed
///   --routing=NAME   restrict to one routing (default: the paper's four)
///   --jobs=N         worker threads for independent cells (default:
///                    DFSIM_JOBS, else all cores, memory-capped — see
///                    ParallelRunner::memory_jobs_cap)
///   --no-arena       disable per-worker arena storage reuse (cells rebuild
///                    from scratch; output is identical either way)
///   --no-blueprint   disable cross-cell sharing of the immutable
///                    SystemBlueprint (cells build private plans; output is
///                    identical either way)
///   --json=FILE      also write the bench's machine-readable report
///   --full           shorthand for --scale=1
///   --quick          shorthand for --scale=32
///   --smoke          CI mode: --scale=64 plus a bench-defined minimal sweep
///
/// --json and --smoke are opt-in per bench (`Caps`): a driver that has not
/// implemented them rejects the flag instead of silently ignoring it.
///
/// Which optional flags a bench actually honours (namespace scope so it can
/// be a default argument of Options::parse). `jobs` defaults on because
/// every cell-sweep bench routes through parallel_map / the core batch
/// drivers; the few strictly-sequential benches opt out so --jobs is
/// rejected, not silently ignored.
struct Caps {
  bool json{false};
  bool smoke{false};
  bool jobs{true};
};

struct Options {
  int scale{8};
  std::uint64_t seed{42};
  std::string routing;    ///< empty = sweep the paper's four routings
  int jobs{0};            ///< 0 = DFSIM_JOBS, else all cores (memory-capped)
  std::string json_path;  ///< empty = console table only
  bool smoke{false};      ///< benches shrink their sweep to a representative cell or two
  bool no_arena{false};   ///< --no-arena seen (set_arena_enabled(false) already applied)
  bool no_blueprint{false};  ///< --no-blueprint seen (set_blueprint_enabled(false) applied)

  /// `default_scale` lets heavy benches (the 168-cell Fig 4 sweep) default
  /// to a coarser scale so the whole suite completes in minutes; --scale
  /// and --full always override.
  static Options parse(int argc, char** argv, int default_scale = 8, Caps caps = Caps{});

  /// Routings to sweep (honours --routing).
  std::vector<std::string> routings() const;

  /// A StudyConfig for the paper's 1,056-node system with these options.
  StudyConfig config(const std::string& routing_name) const;
};

/// Printf-style row helpers for aligned console tables.
void print_header(const std::string& title);
void print_rule();

/// Format helpers.
std::string fmt(double value, int decimals = 2);

}  // namespace dfly::bench

#include "core/plan.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/json_report.hpp"
#include "core/mixed.hpp"
#include "core/parallel.hpp"
#include "routing/factory.hpp"
#include "workloads/factory.hpp"

namespace dfly {

namespace {

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

void check_app(const std::string& context, const std::string& name) {
  if (!contains(workloads::app_names(), name)) {
    throw std::invalid_argument("ExperimentPlan: " + context + " names unknown application '" +
                                name + "'");
  }
}

void check_routing(const std::string& context, const std::string& name) {
  if (!contains(routing::all_routings(), name)) {
    throw std::invalid_argument("ExperimentPlan: " + context + " names unknown routing '" +
                                name + "'");
  }
}

/// CSV fields are plain identifiers/numbers today; quote defensively anyway
/// so a future label with a comma cannot corrupt the table.
std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

const char* to_string(PlanMode mode) {
  switch (mode) {
    case PlanMode::kSingle: return "single";
    case PlanMode::kPairwise: return "pairwise";
    case PlanMode::kMixed: return "mixed";
    case PlanMode::kCustom: return "custom";
  }
  return "?";
}

PlanMode plan_mode_from_string(const std::string& name) {
  if (name == "single") return PlanMode::kSingle;
  if (name == "pairwise") return PlanMode::kPairwise;
  if (name == "mixed") return PlanMode::kMixed;
  throw std::invalid_argument("unknown plan mode: '" + name +
                              "' (expected single, pairwise or mixed)");
}

const char* to_string(PlanCellKind kind) {
  switch (kind) {
    case PlanCellKind::kSingle: return "single";
    case PlanCellKind::kPairwise: return "pairwise";
    case PlanCellKind::kMixed: return "mixed";
    case PlanCellKind::kMixedSolo: return "mixed_solo";
    case PlanCellKind::kCustom: return "custom";
  }
  return "?";
}

void PlanSink::begin(const ExperimentPlan&, const std::vector<PlanCell>&) {}
void PlanSink::end() {}

// --- expansion ---------------------------------------------------------------

void ExperimentPlan::validate() const {
  for (const int scale : scales) {
    if (scale < 1) {
      throw std::invalid_argument("ExperimentPlan: scales must be >= 1, got " +
                                  std::to_string(scale));
    }
  }
  for (const std::string& name : routings) check_routing("routings axis", name);
  switch (mode) {
    case PlanMode::kSingle:
      if (jobs.empty()) {
        throw std::invalid_argument("ExperimentPlan: mode 'single' needs a non-empty job list "
                                    "(plan.jobs = APP:NODES,...)");
      }
      for (const PlanJob& job : jobs) {
        check_app("job list", job.app);
        if (job.nodes < 0) {
          throw std::invalid_argument("ExperimentPlan: job '" + job.app +
                                      "' has negative node count");
        }
      }
      break;
    case PlanMode::kPairwise:
      if (pairwise_list.empty() && (targets.empty() || backgrounds.empty())) {
        throw std::invalid_argument("ExperimentPlan: mode 'pairwise' needs plan.targets and "
                                    "plan.backgrounds (or an explicit pairwise_list)");
      }
      for (const std::string& name : targets) check_app("targets axis", name);
      for (const std::string& name : backgrounds) {
        if (name != "None") check_app("backgrounds axis", name);
      }
      for (const PairwiseCell& cell : pairwise_list) {
        check_app("pairwise_list", cell.target);
        if (!cell.background.empty() && cell.background != "None") {
          check_app("pairwise_list", cell.background);
        }
        if (!cell.routing.empty()) check_routing("pairwise_list", cell.routing);
      }
      break;
    case PlanMode::kMixed:
      break;
    case PlanMode::kCustom:
      if (!custom) {
        throw std::invalid_argument("ExperimentPlan: mode 'custom' needs a custom runner");
      }
      break;
  }
}

std::vector<PlanCell> ExperimentPlan::expand() const {
  validate();
  std::vector<PlanCell> cells;

  const auto add_mix_cells = [&](const StudyConfig& config, const std::string& variant_label) {
    const auto push = [&](PlanCellKind kind, StudyConfig cell_config) {
      PlanCell cell;
      cell.kind = kind;
      cell.config = std::move(cell_config);
      cell.variant = variant_label;
      return cells.insert(cells.end(), std::move(cell));
    };
    switch (mode) {
      case PlanMode::kSingle: {
        const auto it = push(PlanCellKind::kSingle, config);
        it->jobs = jobs;
        break;
      }
      case PlanMode::kCustom:
        push(PlanCellKind::kCustom, config);
        break;
      case PlanMode::kPairwise:
        if (!pairwise_list.empty()) {
          for (const PairwiseCell& pair : pairwise_list) {
            StudyConfig cell_config = config;
            if (!pair.routing.empty()) cell_config.routing = pair.routing;
            const auto it = push(PlanCellKind::kPairwise, std::move(cell_config));
            it->target = pair.target;
            it->background = pair.background.empty() ? "None" : pair.background;
          }
        } else {
          for (const std::string& target : targets) {
            for (const std::string& background : backgrounds) {
              const auto it = push(PlanCellKind::kPairwise, config);
              it->target = target;
              it->background = background;
            }
          }
        }
        break;
      case PlanMode::kMixed:
        push(PlanCellKind::kMixed, config);
        if (mixed_solos) {
          for (const MixedJobSpec& spec : table2_mix()) {
            const auto it = push(PlanCellKind::kMixedSolo, config);
            it->target = spec.app;
          }
        }
        break;
    }
  };

  if (!config_list.empty()) {
    for (const StudyConfig& config : config_list) add_mix_cells(config, "");
  } else {
    // Fixed nesting: variant > routing > placement > scale > seed. Axes are
    // applied after the variant overlay so an explicit axis always wins.
    const std::vector<PlanVariant> no_variant{PlanVariant{}};
    for (const PlanVariant& variant : variants.empty() ? no_variant : variants) {
      const StudyConfig varied = variant.overrides.values().empty()
                                     ? base
                                     : apply_config(base, variant.overrides);
      for (std::size_t r = 0; r < std::max<std::size_t>(routings.size(), 1); ++r) {
        for (std::size_t p = 0; p < std::max<std::size_t>(placements.size(), 1); ++p) {
          for (std::size_t sc = 0; sc < std::max<std::size_t>(scales.size(), 1); ++sc) {
            for (std::size_t sd = 0; sd < std::max<std::size_t>(seeds.size(), 1); ++sd) {
              StudyConfig config = varied;
              if (!routings.empty()) config.routing = routings[r];
              if (!placements.empty()) config.placement = placements[p];
              if (!scales.empty()) config.scale = scales[sc];
              if (!seeds.empty()) config.seed = seeds[sd];
              add_mix_cells(config, variant.label);
            }
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].index = i;
  return cells;
}

// --- execution ---------------------------------------------------------------

Report run_plan_cell(const ExperimentPlan& plan, const PlanCell& cell) {
  switch (cell.kind) {
    case PlanCellKind::kSingle: {
      Study study(cell.config);
      for (const PlanJob& job : cell.jobs) study.add_app(job.app, job.nodes);
      return study.run();
    }
    case PlanCellKind::kPairwise:
      return run_pairwise(cell.config, cell.target, cell.background).full;
    case PlanCellKind::kMixed:
      return run_mixed(cell.config);
    case PlanCellKind::kMixedSolo:
      return run_mixed_solo(cell.config, cell.target);
    case PlanCellKind::kCustom:
      return plan.custom(cell);
  }
  throw std::logic_error("run_plan_cell: unhandled cell kind");
}

PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink, int jobs) {
  const std::vector<PlanCell> cells = plan.expand();
  sink.begin(plan, cells);

  PlanOutcome outcome;
  outcome.cells = cells.size();

  // Workers finish out of order; results wait in their slot until every
  // earlier cell has been emitted, then flush to the sink in index order (a
  // flushed slot is released immediately, so memory holds only the
  // out-of-order window, not the whole campaign).
  std::vector<Report> slots(cells.size());
  std::vector<char> ready(cells.size(), 0);
  std::size_t next_emit = 0;
  std::mutex emit_mutex;

  ParallelRunner(jobs).run_indexed(cells.size(), [&](std::size_t i) {
    Report report = run_plan_cell(plan, cells[i]);
    const std::lock_guard<std::mutex> lock(emit_mutex);
    slots[i] = std::move(report);
    ready[i] = 1;
    while (next_emit < cells.size() && ready[next_emit]) {
      if (slots[next_emit].completed) ++outcome.completed;
      sink.cell_done(cells[next_emit], slots[next_emit]);
      slots[next_emit] = Report{};
      ++next_emit;
    }
  });

  sink.end();
  return outcome;
}

// --- sinks -------------------------------------------------------------------

void CollectSink::begin(const ExperimentPlan&, const std::vector<PlanCell>& cells) {
  cells_ = cells;
  reports_.assign(cells.size(), Report{});
}

void CollectSink::cell_done(const PlanCell& cell, const Report& report) {
  reports_[cell.index] = report;
}

void TeeSink::begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) {
  for (PlanSink* sink : sinks_) sink->begin(plan, cells);
}

void TeeSink::cell_done(const PlanCell& cell, const Report& report) {
  for (PlanSink* sink : sinks_) sink->cell_done(cell, report);
}

void TeeSink::end() {
  for (PlanSink* sink : sinks_) sink->end();
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::cell_done(const PlanCell& cell, const Report& report) {
  JsonWriter w;
  w.begin_object();
  w.key("cell").value(static_cast<std::uint64_t>(cell.index));
  w.key("kind").value(to_string(cell.kind));
  w.key("variant").value(cell.variant);
  w.key("routing").value(cell.config.routing);
  w.key("placement").value(to_string(cell.config.placement));
  w.key("seed").value(cell.config.seed);
  w.key("scale").value(cell.config.scale);
  w.key("target").value(cell.target);
  w.key("background").value(cell.background);
  w.key("jobs").begin_array();
  for (const PlanJob& job : cell.jobs) {
    w.begin_object();
    w.key("app").value(job.app);
    w.key("nodes").value(job.nodes);
    w.end_object();
  }
  w.end_array();
  w.key("report");
  write_report(w, report);
  w.end_object();
  *out_ << w.str() << '\n' << std::flush;
}

CsvSink::CsvSink(std::ostream& out) : out_(&out) {}

CsvSink::CsvSink(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) throw std::runtime_error("CsvSink: cannot open " + path);
}

void CsvSink::begin(const ExperimentPlan&, const std::vector<PlanCell>&) {
  *out_ << "cell,kind,variant,routing,placement,seed,scale,target,background,app,nodes,"
           "comm_mean_ms,comm_std_ms,exec_ms,injection_rate_gbs,lat_mean_us,lat_p99_us,"
           "nonminimal_fraction,completed,makespan_ms,sys_lat_p99_us\n"
        << std::flush;
}

void CsvSink::cell_done(const PlanCell& cell, const Report& report) {
  const std::string prefix = std::to_string(cell.index) + ',' + to_string(cell.kind) + ',' +
                             csv_field(cell.variant) + ',' + csv_field(cell.config.routing) +
                             ',' + to_string(cell.config.placement) + ',' +
                             std::to_string(cell.config.seed) + ',' +
                             std::to_string(cell.config.scale) + ',' + csv_field(cell.target) +
                             ',' + csv_field(cell.background) + ',';
  const std::string suffix = std::string(report.completed ? "true" : "false") + ',' +
                             csv_double(to_ms(report.makespan)) + ',' +
                             csv_double(report.sys_lat_p99_us);
  for (const AppReport& app : report.apps) {
    *out_ << prefix << csv_field(app.app) << ',' << app.nodes << ','
          << csv_double(app.comm_mean_ms) << ',' << csv_double(app.comm_std_ms) << ','
          << csv_double(app.exec_ms) << ',' << csv_double(app.injection_rate_gbs) << ','
          << csv_double(app.lat_mean_us) << ',' << csv_double(app.lat_p99_us) << ','
          << csv_double(app.nonminimal_fraction) << ',' << suffix << '\n';
  }
  *out_ << std::flush;
}

// --- config-file surface -----------------------------------------------------

namespace {

std::vector<PlanJob> parse_plan_jobs(const ConfigFile& file, const std::string& key) {
  std::vector<PlanJob> jobs;
  for (const std::string& item : file.get_string_list(key)) {
    PlanJob job;
    const auto colon = item.find(':');
    job.app = item.substr(0, colon);
    if (colon != std::string::npos) {
      try {
        std::size_t used = 0;
        job.nodes = std::stoi(item.substr(colon + 1), &used);
        if (used != item.size() - colon - 1) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        throw std::invalid_argument("ConfigFile: " + file.where(key) + ": job '" + item +
                                    "' wants APP or APP:NODES");
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Variant overrides are semicolon-separated `key=value` pairs, e.g.
///   plan.variant.qos2 = qos.num_classes=2; qos.weights=4,1
PlanVariant parse_variant(const ConfigFile& file, const std::string& key,
                          const std::string& label, const std::string& text) {
  PlanVariant variant;
  variant.label = label;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    const std::size_t end = semi == std::string::npos ? text.size() : semi;
    std::string item = text.substr(start, end - start);
    const auto strip = [](std::string s) {
      const auto a = s.find_first_not_of(" \t");
      if (a == std::string::npos) return std::string();
      const auto b = s.find_last_not_of(" \t");
      return s.substr(a, b - a + 1);
    };
    item = strip(item);
    if (!item.empty()) {
      const auto eq = item.find('=');
      if (eq == std::string::npos || strip(item.substr(0, eq)).empty()) {
        throw std::invalid_argument("ConfigFile: " + file.where(key) + ": variant override '" +
                                    item + "' wants key=value");
      }
      variant.overrides.set(strip(item.substr(0, eq)), strip(item.substr(eq + 1)),
                            file.line_of(key));
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return variant;
}

}  // namespace

ExperimentPlan plan_from_config(const ConfigFile& file) {
  static const char* kVariantPrefix = "plan.variant.";
  static const std::vector<std::string> kPlanKeys{
      "plan.name",    "plan.mode",  "plan.routings",    "plan.placements",
      "plan.scales",  "plan.seeds", "plan.jobs",        "plan.targets",
      "plan.backgrounds", "plan.solos",
  };

  ExperimentPlan plan;
  ConfigFile base_keys;
  for (const auto& [key, value] : file.values()) {
    if (key.rfind("plan.", 0) != 0) {
      base_keys.set(key, value, file.line_of(key));
      continue;
    }
    if (key.rfind(kVariantPrefix, 0) == 0) {
      const std::string label = key.substr(std::string(kVariantPrefix).size());
      if (label.empty()) {
        throw std::invalid_argument("plan_from_config: " + file.where(key) +
                                    ": variant needs a label (plan.variant.<label>)");
      }
      plan.variants.push_back(parse_variant(file, key, label, value));
      continue;
    }
    if (!contains(kPlanKeys, key)) {
      throw std::invalid_argument("plan_from_config: " + file.where(key) +
                                  ": unknown plan key '" + key + "'");
    }
  }
  plan.base = apply_config(StudyConfig{}, base_keys);

  plan.name = file.get_string("plan.name", "campaign");
  if (file.has("plan.mode")) plan.mode = plan_mode_from_string(file.get_string("plan.mode"));
  plan.routings = file.get_string_list("plan.routings");
  for (const std::string& name : file.get_string_list("plan.placements")) {
    try {
      plan.placements.push_back(placement_from_string(name));
    } catch (const std::exception&) {
      throw std::invalid_argument("ConfigFile: " + file.where("plan.placements") +
                                  ": unknown placement '" + name + "'");
    }
  }
  plan.scales = file.get_int_list("plan.scales");
  plan.seeds = file.get_seed_list("plan.seeds");
  plan.jobs = parse_plan_jobs(file, "plan.jobs");
  plan.targets = file.get_string_list("plan.targets");
  plan.backgrounds = file.get_string_list("plan.backgrounds");
  plan.mixed_solos = file.get_bool("plan.solos", true);

  plan.validate();
  return plan;
}

ExperimentPlan load_plan(const std::string& path) {
  return plan_from_config(ConfigFile::load(path));
}

}  // namespace dfly

#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

// Keying by stable integer ids is always fine.
struct StableKeyed {
  std::map<std::uint64_t, int> by_id;
  std::vector<int*> slots;  // a pointer *value*, not a pointer *key*
};

}  // namespace fixture

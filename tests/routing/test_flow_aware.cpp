// Tests for flow-aware adaptive routing (routing/flow_aware.hpp).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/study.hpp"
#include "routing/flow_aware.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

Report run_with(const std::string& routing, std::uint64_t seed, int iterations = 60) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = seed;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.stride = 9;  // cross-group under linear ids
  p.iterations = iterations;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "Shift");
  return study.run();
}

TEST(FlowAware, CompletesOnShiftTraffic) {
  const Report report = run_with("FlowUGAL", 3);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.routing, "FlowUGAL");
}

TEST(FlowAware, CompletesOnAllWorkloadShapes) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "FlowUGAL";
  config.seed = 5;
  Study study(std::move(config));
  workloads::UniformRandomParams ur;
  ur.iterations = 80;
  study.add_motif(std::make_unique<workloads::UniformRandomMotif>(ur), 24, "UR");
  workloads::AllreducePeriodicParams ar = workloads::AllreducePeriodicMotif::cosmoflow();
  ar.iterations = 1;
  ar.msg_bytes = 60000;
  ar.interval = 30 * kUs;
  study.add_motif(std::make_unique<workloads::AllreducePeriodicMotif>(std::move(ar)), 16,
                  "CF");
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
}

TEST(FlowAware, PinsFlowsBetweenRefreshes) {
  // With a long refresh period, a steady flow keeps one path: the flow
  // table ends up with exactly one entry per cross-group (src,dst) pair and
  // no refreshes.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "FlowUGAL";
  config.seed = 11;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.stride = 9;
  p.iterations = 50;
  study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "Shift");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& flow = dynamic_cast<const routing::FlowAwareRouting&>(study.routing());
  EXPECT_GT(flow.active_flows(), 0u);
  EXPECT_LE(flow.active_flows(), 24u);  // at most one flow per sender
}

TEST(FlowAware, DefaultsAndAccessors) {
  routing::FlowAwareParams params;
  params.refresh_period = 1 * kNs;
  const routing::FlowAwareRouting routing(params);
  EXPECT_EQ(routing.name(), "FlowUGAL");
  EXPECT_EQ(routing.params().refresh_period, 1 * kNs);
  EXPECT_EQ(routing.refreshes(), 0u);
  EXPECT_EQ(routing.active_flows(), 0u);
}

TEST(FlowAware, StableUnderMultipleSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_TRUE(run_with("FlowUGAL", seed, 30).completed) << "seed " << seed;
  }
}

TEST(FlowAware, ListedInFactory) {
  bool found = false;
  for (const std::string& name : routing::all_routings()) {
    if (name == "FlowUGAL") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FlowAware, ComparableToUgalOnLightLoad) {
  // On light, steady traffic a pinned path and a per-packet path should be
  // within a small factor of each other (no pathological livelock).
  const Report flow = run_with("FlowUGAL", 21);
  const Report ugal = run_with("UGALn", 21);
  ASSERT_TRUE(flow.completed);
  ASSERT_TRUE(ugal.completed);
  EXPECT_LT(flow.apps[0].comm_mean_ms, ugal.apps[0].comm_mean_ms * 3 + 0.5);
}

}  // namespace
}  // namespace dfly

#include "core/mixed.hpp"

#include <utility>

#include "core/plan.hpp"
#include "workloads/factory.hpp"

namespace dfly {

const std::vector<MixedJobSpec>& table2_mix() {
  // Table II: FFT3D 140, CosmoFlow 138, LU 140, UR 139, LQCD 256,
  // Stencil5D 243 — 1,056 nodes in total.
  static const std::vector<MixedJobSpec> mix{
      {"FFT3D", 140}, {"CosmoFlow", 138}, {"LU", 140},
      {"UR", 139},    {"LQCD", 256},      {"Stencil5D", 243},
  };
  return mix;
}

void add_mixed_workload(Study& study) {
  for (const auto& spec : table2_mix()) {
    study.add_app(spec.app, spec.nodes);
  }
}

Report run_mixed(const StudyConfig& config) {
  Study study(config);
  add_mixed_workload(study);
  return study.run();
}

namespace {
/// A job that finishes immediately: occupies its allocation, sends nothing.
class NullMotif final : public mpi::Motif {
 public:
  std::string name() const override { return "idle"; }
  mpi::Task run(mpi::RankCtx&) const override { co_return; }
};
}  // namespace

Report run_mixed_solo(const StudyConfig& config, const std::string& solo_app) {
  Study study(config);
  for (const auto& spec : table2_mix()) {
    if (spec.app == solo_app) {
      study.add_app(spec.app, spec.nodes);
    } else {
      // Same allocation call sequence as run_mixed: reserves the same node
      // count from the same placer stream, so placements line up.
      const workloads::AppInstance app = workloads::make_app(spec.app, spec.nodes, config.scale);
      study.add_motif(std::make_unique<NullMotif>(), app.nodes, spec.app + "-idle");
    }
  }
  return study.run();
}

std::vector<MixedSuite> run_mixed_suites(const std::vector<StudyConfig>& configs, int jobs) {
  // Shim over the unified campaign core: one mixed-mode plan whose
  // config_list is the caller's configs. Expansion flattens (config, cell)
  // into one task list so worker threads stay busy across routings — cell 0
  // of each suite is the full mix, cells 1..N the solo baselines in
  // table2_mix order, matching the pre-plan stride layout exactly.
  if (configs.empty()) return {};
  ExperimentPlan plan;
  plan.name = "mixed_suites";
  plan.mode = PlanMode::kMixed;
  plan.config_list = configs;
  plan.mixed_solos = true;
  CollectSink sink;
  // Legacy fail-fast contract: callers of this shim predate cell isolation
  // and expect the first cell exception to propagate.
  run_plan(plan, sink, jobs).rethrow_any();
  std::vector<Report> reports = sink.take_reports();

  const std::size_t stride = 1 + table2_mix().size();
  std::vector<MixedSuite> suites(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    suites[c].mix = std::move(reports[c * stride]);
    suites[c].solos.reserve(stride - 1);
    for (std::size_t a = 1; a < stride; ++a) {
      suites[c].solos.push_back(std::move(reports[c * stride + a]));
    }
  }
  return suites;
}

}  // namespace dfly

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mpi/rank.hpp"
#include "mpi/storage.hpp"
#include "mpi/task.hpp"
#include "net/network.hpp"
#include "stats/histogram.hpp"

namespace dfly {
class SimArena;
}

namespace dfly::mpi {

/// A communication motif: the per-rank program of one application.
/// Implementations live in src/workloads; `run` is a coroutine that issues
/// MPI operations through the RankCtx.
class Motif {
 public:
  virtual ~Motif() = default;
  virtual std::string name() const = 0;
  virtual Task run(RankCtx& ctx) const = 0;
};

/// Messaging-protocol parameters (Firefly-style eager/rendezvous split).
struct ProtocolConfig {
  /// Messages of at most this many bytes go eagerly (buffered at the
  /// receiver); larger ones run the RTS/CTS rendezvous handshake, so the
  /// payload only moves once the receive is posted.
  std::int64_t eager_threshold{32 * 1024};
  /// Size of RTS/CTS control messages on the wire.
  std::int64_t control_bytes{8};

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const ProtocolConfig&) const = default;
};

class MpiSystem;

/// Observer of application-level message posts (one call per MPI-level send,
/// before protocol splitting into eager/rendezvous control traffic). The
/// trace subsystem records through this hook.
class SendObserver {
 public:
  virtual ~SendObserver() = default;
  virtual void on_post_send(int app_id, SimTime when, int src_rank, int dst_rank,
                            std::int64_t bytes, int tag) = 0;
};

/// One running application: a set of ranks mapped 1:1 onto compute nodes,
/// all executing the same motif (SPMD).
///
/// The Job is also the messaging-protocol engine for its ranks: post_send
/// decides eager vs rendezvous (ProtocolConfig::eager_threshold), drives the
/// RTS/CTS handshake, and routes message completions back to the right
/// rank's request. In-flight messages and handshakes are tracked in FlatMaps
/// (one insert + one erase per message, allocation-free once the tables have
/// grown to the cell's peak).
///
/// Pass a SimArena to recycle the Job's backing storage across cells: the
/// RankCtx objects, the coroutine task handles and the tracking maps are
/// taken from the arena's parked JobStorage bundles, reinit()-ed in place,
/// and handed back (cleared, capacity intact) on destruction. Recycling is
/// observable-state-neutral — a recycled Job runs bit-identically to a fresh
/// one (see docs/ARCHITECTURE.md).
class Job {
 public:
  Job(Engine& engine, Network& network, MpiSystem& system, int app_id, std::string name,
      const Motif& motif, std::vector<int> nodes, std::uint64_t seed,
      ProtocolConfig protocol = {}, SimArena* arena = nullptr);
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Launch every rank's coroutine (runs until first suspension).
  void start();

  bool done() const { return finished_ranks_ == static_cast<int>(ranks_.size()); }
  SimTime finish_time() const { return finish_time_; }
  SimTime start_time() const { return start_time_; }

  int app_id() const { return app_id_; }
  const std::string& name() const { return name_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  int node_of(int rank) const { return nodes_[static_cast<std::size_t>(rank)]; }
  RankCtx& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const RankCtx& rank(int r) const { return *ranks_[static_cast<std::size_t>(r)]; }
  Network& network() { return *network_; }
  Engine& engine() { return *engine_; }
  const ProtocolConfig& protocol() const { return protocol_; }

  // --- metrics over all ranks (valid once done) -----------------------------
  /// Mean/σ/min/max of per-rank communication time (ms).
  Accumulator comm_time_stats() const;
  std::int64_t total_bytes_sent() const;
  std::int64_t total_messages_sent() const;
  /// Largest single-rank ingress burst (the application's peak ingress
  /// volume, §IV).
  std::int64_t peak_ingress_bytes() const;
  /// Execution time (job start to last rank finish).
  SimTime execution_time() const { return finish_time_ - start_time_; }
  /// Aggregate injection rate in GB/s (total bytes / execution time).
  double injection_rate_gbs() const;

  // --- protocol engine (used by RankCtx) -------------------------------------
  /// Start an application-level send; returns immediately (the request
  /// completes via eager injection or the rendezvous handshake).
  void post_send(int src_rank, int dst_rank, std::int64_t bytes, int tag, ReqId send_req);
  /// A posted receive matched an unexpected rendezvous RTS: clear the
  /// sender to transmit.
  void rdv_matched(std::uint64_t rdv_id, int dst_rank, ReqId recv_req);
  /// Sink-mode acceptance of an RTS: clear the sender, drop the payload on
  /// delivery without completing any receive request.
  void rdv_sink(std::uint64_t rdv_id, int dst_rank);

  void on_message_sent(std::uint64_t msg_id);
  void on_message_delivered(std::uint64_t msg_id);
  void rank_finished(RankCtx& ctx);

  /// Attach an application-level send observer (null to detach).
  void set_send_observer(SendObserver* observer) { send_observer_ = observer; }

  /// Serialise the protocol entry points for a parallel cell
  /// (src/sim/pdes.hpp): a job's ranks span domains, so post_send /
  /// on_message_* / rank_finished can run on different domain threads. The
  /// mutex is recursive because completing a request resumes the waiting
  /// coroutine synchronously, which may re-enter post_send on the same
  /// thread. Sequential cells leave it off and pay one branch per entry.
  void set_locking(bool locking) { locking_ = locking; }

 private:
  /// Sentinel receive-request id for sink-accepted rendezvous (rdv_sink).
  static constexpr ReqId kSinkRecv = 0xffffffffu;

  Task drive(RankCtx& ctx);
  std::uint64_t submit(int src_rank, int dst_rank, std::int64_t bytes, int tag, ReqId send_req,
                       MsgKind kind, std::uint64_t rdv_id);

  /// Lock held only when locking_ (parallel cell); empty otherwise.
  std::unique_lock<std::recursive_mutex> maybe_lock() {
    return locking_ ? std::unique_lock<std::recursive_mutex>(mutex_)
                    : std::unique_lock<std::recursive_mutex>();
  }

  Engine* engine_;
  Network* network_;
  MpiSystem* system_;
  SimArena* arena_;
  int app_id_;
  std::string name_;
  const Motif* motif_;
  std::vector<int> nodes_;
  ProtocolConfig protocol_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  std::vector<Task> tasks_;
  FlatMap<MsgMeta> inflight_;
  FlatMap<RdvState> rendezvous_;
  std::recursive_mutex mutex_;  ///< guards the protocol state when locking_
  bool locking_{false};
  std::uint64_t next_rdv_id_{1};
  SendObserver* send_observer_{nullptr};
  int finished_ranks_{0};
  SimTime start_time_{0};
  SimTime finish_time_{0};
};

/// Routes network message events to the owning job (several jobs share one
/// network; message ids are globally unique). With a SimArena, the routing
/// map's table is recycled across cells like the Jobs' storage.
class MpiSystem final : public MessageEvents {
 public:
  explicit MpiSystem(Network& network, SimArena* arena = nullptr);
  ~MpiSystem() override;

  MpiSystem(const MpiSystem&) = delete;
  MpiSystem& operator=(const MpiSystem&) = delete;

  void track(std::uint64_t msg_id, Job& job) {
    std::unique_lock<std::mutex> lock;
    if (locking_) lock = std::unique_lock<std::mutex>(mutex_);
    owners_.emplace(msg_id, &job);
  }

  // The owners_ mutex is a leaf: the map lookup/erase happens under it, the
  // Job call after releasing it — Job has its own (recursive) lock, so no
  // lock ordering can invert.
  void message_sent(std::uint64_t msg_id) override {
    Job* job;
    {
      std::unique_lock<std::mutex> lock;
      if (locking_) lock = std::unique_lock<std::mutex>(mutex_);
      job = owners_.at(msg_id);
    }
    job->on_message_sent(msg_id);
  }
  void message_delivered(std::uint64_t msg_id) override {
    Job* job;
    {
      std::unique_lock<std::mutex> lock;
      if (locking_) lock = std::unique_lock<std::mutex>(mutex_);
      job = owners_.at(msg_id);
      owners_.erase(msg_id);
    }
    job->on_message_delivered(msg_id);
  }

  /// Serialise the routing map for a parallel cell (see Job::set_locking).
  void set_locking(bool locking) { locking_ = locking; }

 private:
  SimArena* arena_;
  FlatMap<Job*> owners_;
  std::mutex mutex_;  ///< guards owners_ when locking_
  bool locking_{false};
};

}  // namespace dfly::mpi

// Tests for the visualization module (viz/svg.hpp, viz/charts.hpp,
// viz/ascii.hpp): structural checks on the generated documents.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "viz/ascii.hpp"
#include "viz/charts.hpp"
#include "viz/svg.hpp"

namespace dfly::viz {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ColorTest, CssAndLerp) {
  EXPECT_EQ((Color{255, 0, 128}.css()), "#ff0080");
  const Color mid = Color::lerp({0, 0, 0}, {100, 200, 50}, 0.5);
  EXPECT_EQ(mid.r, 50);
  EXPECT_EQ(mid.g, 100);
  EXPECT_EQ(mid.b, 25);
  // Clamping.
  EXPECT_EQ(Color::lerp({0, 0, 0}, {10, 10, 10}, 2.0).r, 10);
  EXPECT_EQ(Color::lerp({0, 0, 0}, {10, 10, 10}, -1.0).r, 0);
}

TEST(ColorTest, ViridisEndpoints) {
  EXPECT_EQ(viridis(0.0).css(), "#440154");  // dark purple
  EXPECT_EQ(viridis(1.0).css(), "#fde725");  // yellow
  // Monotone-ish brightness: end brighter than start.
  const Color lo = viridis(0.0), hi = viridis(1.0);
  EXPECT_GT(static_cast<int>(hi.r) + hi.g + hi.b, static_cast<int>(lo.r) + lo.g + lo.b);
}

TEST(SvgTest, DocumentStructure) {
  Svg svg(200, 100);
  svg.rect(1, 2, 3, 4, {10, 20, 30});
  svg.line(0, 0, 10, 10, {0, 0, 0});
  svg.circle(5, 5, 2, {1, 2, 3});
  svg.text(1, 1, "hello <world> & \"friends\"");
  const std::string doc = svg.str();
  EXPECT_NE(doc.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("&lt;world&gt; &amp; &quot;friends&quot;"), std::string::npos);
  EXPECT_EQ(doc.find("<world>"), std::string::npos);
}

TEST(SvgTest, InvalidCanvasThrows) {
  EXPECT_THROW(Svg(0, 100), std::invalid_argument);
  EXPECT_THROW(Svg(100, -1), std::invalid_argument);
}

TEST(SvgTest, PolylineSkipsDegenerate) {
  Svg svg(10, 10);
  svg.polyline({{1, 1}}, {0, 0, 0});  // single point: no element
  EXPECT_EQ(svg.str().find("<polyline"), std::string::npos);
}

TEST(LineChartTest, RendersSeriesAndLegend) {
  LineChart chart("Throughput", "time (ms)", "GB/ms");
  chart.add_series("PAR", {{0, 1.0}, {1, 2.0}, {2, 1.5}});
  chart.add_series("Q-adp", {{0, 1.2}, {1, 2.5}, {2, 2.2}});
  const std::string doc = chart.render();
  EXPECT_EQ(count_occurrences(doc, "<polyline"), 2);
  EXPECT_NE(doc.find("PAR"), std::string::npos);
  EXPECT_NE(doc.find("Q-adp"), std::string::npos);
  EXPECT_NE(doc.find("Throughput"), std::string::npos);
}

TEST(LineChartTest, MismatchedXYThrows) {
  LineChart chart("t", "x", "y");
  EXPECT_THROW(chart.add_series("a", {1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(LineChartTest, EmptyChartStillRenders) {
  LineChart chart("empty", "x", "y");
  const std::string doc = chart.render();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
}

TEST(GroupedBarChartTest, BarsErrorsAndValidation) {
  GroupedBarChart chart("Fig4a", "Comm. time (ms)");
  chart.set_categories({"UGALg", "UGALn", "PAR", "Q-adp"});
  chart.add_group("None", {4, 4.2, 4.1, 3.2}, {0.2, 0.3, 0.2, 0.1});
  chart.add_group("Halo3D", {11, 12, 11.5, 8.9}, {1, 1.2, 0.9, 0.4});
  const std::string doc = chart.render();
  // 8 bars + 2 legend swatches + background.
  EXPECT_GE(count_occurrences(doc, "<rect"), 11);
  EXPECT_NE(doc.find("UGALn"), std::string::npos);
  EXPECT_THROW(chart.add_group("bad", {1.0}), std::invalid_argument);
  EXPECT_THROW(chart.add_group("bad", {1, 2, 3, 4}, {0.1}), std::invalid_argument);
}

TEST(HeatmapTest, CellsAndColorbar) {
  Heatmap map("Fig12", "src group", "dst group");
  map.set_matrix({{0.0, 0.5}, {0.5, 1.0}});
  const std::string doc = map.render();
  // 4 cells + 32 colorbar steps + background + frame decorations.
  EXPECT_GE(count_occurrences(doc, "<rect"), 37);
  EXPECT_NE(doc.find("Fig12"), std::string::npos);
}

TEST(HeatmapTest, RaggedMatrixThrows) {
  Heatmap map("x", "", "");
  EXPECT_THROW(map.set_matrix({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW(map.set_range(2, 2), std::invalid_argument);
}

TEST(RadialGroupPlotTest, MarkersAndEdges) {
  RadialGroupPlot plot("Fig11");
  plot.set_group_values({1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::vector<double> edges(9, 0.5);
  plot.set_focal_edges(0, edges);
  const std::string doc = plot.render();
  EXPECT_EQ(count_occurrences(doc, "<circle"), 9);
  // 8 edges (focal group skips itself).
  EXPECT_GE(count_occurrences(doc, "<line"), 8);
  EXPECT_NE(doc.find("G8"), std::string::npos);
}

TEST(BoxPlotTest, BoxesWithPercentiles) {
  BoxPlot plot("Fig6", "Packet latency (us)");
  plot.add_box("PAR_alone", {1.0, 1.3, 1.8, 0.7, 3.0, 4.1, 6.0, 1.5});
  plot.add_box("Qadp_alone", {0.9, 1.1, 1.5, 0.6, 2.5, 3.2, 4.0, 1.2});
  const std::string doc = plot.render();
  EXPECT_EQ(count_occurrences(doc, "<circle"), 2);  // mean markers
  EXPECT_NE(doc.find("PAR_alone"), std::string::npos);
}

TEST(SaveTest, WritesFiles) {
  const std::string path = std::string(::testing::TempDir()) + "/viz_test.svg";
  LineChart chart("t", "x", "y");
  chart.add_series("s", {{0, 0}, {1, 1}});
  chart.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

// --- ASCII -------------------------------------------------------------------

TEST(SparklineTest, ScalesToBlocks) {
  const std::string line = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_NE(line.find("▁"), std::string::npos);
  EXPECT_NE(line.find("█"), std::string::npos);
  EXPECT_EQ(sparkline({}), "");
  // Flat input renders all-min without dividing by zero.
  const std::string flat = sparkline({2, 2, 2});
  EXPECT_EQ(flat, "▁▁▁");
}

TEST(AsciiHeatmapTest, ShadeRamp) {
  const std::string art = ascii_heatmap({{0, 1}, {0.5, 0.2}});
  EXPECT_EQ(count_occurrences(art, "\n"), 2);
  EXPECT_NE(art.find("@"), std::string::npos);  // max cell
  EXPECT_NE(art.find(" "), std::string::npos);  // min cell
}

TEST(AsciiBarsTest, ScalesAndAnnotates) {
  const std::string art = ascii_bars({{"PAR", 2.0}, {"Q-adp", 1.0}}, 10);
  EXPECT_NE(art.find("PAR"), std::string::npos);
  EXPECT_NE(art.find("##########"), std::string::npos);  // full-width bar
  EXPECT_NE(art.find("2.000"), std::string::npos);
  EXPECT_THROW(ascii_bars({}, 0), std::invalid_argument);
}

TEST(AsciiTableTest, AlignmentAndValidation) {
  AsciiTable table({"app", "comm_ms", "p99_us"});
  table.row({"FFT3D", "3.100", "9.200"});
  table.row("LU", {4.25, 11.0}, 2);
  const std::string out = table.str();
  EXPECT_NE(out.find("app"), std::string::npos);
  EXPECT_NE(out.find("FFT3D"), std::string::npos);
  EXPECT_NE(out.find("4.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_THROW(table.row({"too", "few"}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(LineChartTest, XsYsOverloadMatchesPairOverload) {
  LineChart pairs("t", "x", "y");
  pairs.add_series("s", {{0.0, 1.0}, {1.0, 4.0}, {2.0, 9.0}});
  LineChart split("t", "x", "y");
  split.add_series("s", {0.0, 1.0, 2.0}, {1.0, 4.0, 9.0});
  EXPECT_EQ(pairs.render(), split.render());
}

TEST(LineChartTest, FlatSeriesRendersWithoutDividingByZero) {
  // All points share one x and one y: both axis ranges are degenerate.
  LineChart chart("flat", "x", "y");
  chart.add_series("s", {{1.0, 2.0}, {1.0, 2.0}});
  const std::string doc = chart.render();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
}

TEST(GroupedBarChartTest, RendersWithoutErrorBars) {
  GroupedBarChart chart("bars", "y");
  chart.set_categories({"A", "B"});
  chart.add_group("g", {1.0, 2.0});  // no whiskers
  const std::string doc = chart.render();
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  EXPECT_NE(doc.find("g"), std::string::npos);
}

TEST(HeatmapTest, ExplicitRangeClampsCells) {
  Heatmap map("clamped", "", "");
  map.set_matrix({{-5.0, 0.5}, {0.7, 99.0}});
  map.set_range(0.0, 1.0);  // -5 and 99 must clamp, not explode the scale
  const std::string doc = map.render();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  // Cells at or past the range ends take the colormap endpoint colours.
  EXPECT_NE(doc.find(viridis(0.0).css()), std::string::npos);
  EXPECT_NE(doc.find(viridis(1.0).css()), std::string::npos);
}

TEST(HeatmapTest, FlatMatrixRendersWithDefaultRange) {
  Heatmap map("flat", "", "");
  map.set_matrix({{3.0, 3.0}, {3.0, 3.0}});  // data min == max
  const std::string doc = map.render();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(SaveTest, UnwritablePathThrows) {
  LineChart chart("t", "x", "y");
  chart.add_series("s", {{0, 0}, {1, 1}});
  EXPECT_THROW(chart.save("/nonexistent-dir/zzz/chart.svg"), std::runtime_error);
  Svg svg(10, 10);
  EXPECT_THROW(svg.save("/nonexistent-dir/zzz/doc.svg"), std::runtime_error);
}

TEST(BoxPlotTest, SaveWritesDocument) {
  const std::string path = std::string(::testing::TempDir()) + "/viz_boxplot.svg";
  BoxPlot plot("box", "y");
  plot.add_box("one", {1.0, 1.5, 2.0, 0.5, 3.0, 3.5, 4.0, 1.6});
  plot.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  EXPECT_NE(content.find("one"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RadialGroupPlotTest, EmptyPlotStillRenders) {
  RadialGroupPlot plot("empty");
  const std::string doc = plot.render();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "<circle"), 0);
}

}  // namespace
}  // namespace dfly::viz

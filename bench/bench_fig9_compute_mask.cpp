// Figure 9: CosmoFlow and Halo3D throughput along simulated time. The
// compute-dominated CosmoFlow masks interference: Halo3D behaves as if it
// ran alone except for brief dents when CosmoFlow's Allreduce pulses fire.
// The four cases run concurrently.

#include <string>

#include "bench_common.hpp"
#include "core/study.hpp"

namespace {

using namespace dfly;

std::string run_case(const StudyConfig& config, bool interfered) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  study.add_app("CosmoFlow", half);
  if (interfered) study.add_app("Halo3D", half);
  const Report report = study.run();

  std::string out;
  char line[160];
  const PacketLog& log = study.network().packet_log();
  for (int a = 0; a < study.num_jobs(); ++a) {
    const std::string label = report.apps[a].app + (interfered ? "_interfered" : "_alone") +
                              "_" + config.routing;
    const TimeSeries& series = log.delivered(a);
    std::snprintf(line, sizeof line, "series %s buckets_ms %.3f :", label.c_str(),
                  to_ms(series.bucket_width()));
    out += line;
    for (std::size_t b = 0; b < series.num_buckets(); ++b) {
      std::snprintf(line, sizeof line, " %.3f",
                    series.bucket(b) / 1e9 / to_ms(series.bucket_width()));
      out += line;
    }
    out += '\n';
    const TimeSeries::Peak peak = series.peak();
    std::snprintf(line, sizeof line, "summary %s peak_gb_per_ms %.3f at_ms %.3f comm_ms %.3f\n",
                  label.c_str(), peak.value / 1e9 / to_ms(series.bucket_width()),
                  to_ms(peak.when), report.apps[a].comm_mean_ms);
    out += line;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  std::vector<std::function<std::string()>> tasks;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    for (const bool interfered : {false, true}) {
      const StudyConfig config = options.config(routing);
      tasks.push_back([config, interfered] { return run_case(config, interfered); });
    }
  }
  const auto blocks = bench::parallel_map(tasks);
  bench::print_header("Figure 9 — CosmoFlow / Halo3D throughput over time (compute masking)");
  for (const auto& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("\nExpected shape (paper): CosmoFlow shows isolated Allreduce pulses; Halo3D's\n"
              "average throughput is nearly identical alone vs co-run, with only momentary\n"
              "dips at the pulses. CosmoFlow's comm time moves little (esp. under Q-adp).\n");
  return 0;
}

#!/usr/bin/env python3
"""Fixture tests for tools/dfsim_lint.py, run as a CTest.

Three assertions, in order of what they protect:

1. The *bad* fixture tree fires exactly the expected (file, line, rule)
   triples — no more (false positives would poison the real gate), no fewer
   (a regressed rule would silently stop protecting the invariant).
2. The *good* fixture tree — compliant idioms, comments/strings naming banned
   tokens, and real banned constructs under inline allows — is clean.
3. The real repository tree is clean, so CI failures always mean new code,
   never stale fixtures.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINT = REPO / "tools" / "dfsim_lint.py"

FINDING_RE = re.compile(r"^error: (?P<file>[^:]+):(?P<line>\d+): (?P<rule>[\w\-]+): ")

# Every finding the bad tree must produce, and nothing else.
EXPECTED_BAD = {
    ("src/sim/churn.hpp", 13, "alloc-churn"),   # std::function
    ("src/sim/churn.hpp", 14, "alloc-churn"),   # std::unordered_map
    ("src/sim/churn.hpp", 15, "alloc-churn"),   # std::deque
    ("src/sim/churn.hpp", 16, "alloc-churn"),   # std::shared_ptr
    ("src/core/entropy.cpp", 8, "det-rand"),    # std::random_device
    ("src/core/entropy.cpp", 9, "det-clock"),   # system_clock::now
    ("src/core/entropy.cpp", 11, "det-rand"),   # std::rand
    ("src/core/pointer_key.hpp", 12, "det-pointer-key"),  # map<Node*, ...>
    ("src/core/pointer_key.hpp", 13, "det-pointer-key"),  # unordered_set<const Node*>
    ("src/core/pointer_key.hpp", 14, "det-pointer-key"),  # std::hash<Node*>
    ("src/core/unordered_iter.cpp", 10, "det-unordered-iter"),
    ("src/routing/policy.hpp", 21, "routing-state"),      # LeakyPolicy::drift_
}


def run_lint(root: Path) -> tuple[int, set[tuple[str, int, str]]]:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )
    findings = set()
    for line in proc.stderr.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group("file"), int(m.group("line")), m.group("rule")))
    return proc.returncode, findings


def main() -> int:
    failures = []

    rc, found = run_lint(HERE / "fixtures" / "bad")
    if rc != 1:
        failures.append(f"bad tree: expected exit 1, got {rc}")
    for missing in sorted(EXPECTED_BAD - found):
        failures.append(f"bad tree: rule did not fire: {missing}")
    for extra in sorted(found - EXPECTED_BAD):
        failures.append(f"bad tree: unexpected finding (false positive): {extra}")

    rc, found = run_lint(HERE / "fixtures" / "good")
    if rc != 0:
        failures.append(f"good tree: expected exit 0, got {rc}")
    for extra in sorted(found):
        failures.append(f"good tree: unexpected finding: {extra}")

    rc, found = run_lint(REPO)
    if rc != 0:
        failures.append(f"real tree: dfsim-lint must stay clean, got exit {rc}")
    for extra in sorted(found):
        failures.append(f"real tree: {extra}")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"FAIL: {len(failures)} assertion(s)", file=sys.stderr)
        return 1
    print(f"PASS: bad tree fires all {len(EXPECTED_BAD)} expected findings; "
          "good tree and real tree are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "core/mutex.hpp"
#include "core/parallel.hpp"
#include "core/plan.hpp"

/// One accepted campaign inside the daemon (`dflysim --serve`).
///
/// A Campaign owns everything a submission needs to run, stream and survive:
/// its spool entry (<spool>/<id>.{plan,journal,jsonl,done}), the client
/// connection it streams results to (if any — a campaign resumed after a
/// daemon restart has none), its cooperative cancel flag, and the live
/// counters the `status` op reports. The driver body, run(), executes the
/// plan through the exact journal/resume machinery the CLI uses (see
/// docs/ROBUSTNESS.md), so a daemon killed with SIGKILL resumes every
/// unfinished spool entry to byte-identical output on restart; cells execute
/// on the server's shared SubmissionQueue so every campaign shares warm
/// worker arenas and one BlueprintCache.
namespace dfly::serve {

class Campaign {
 public:
  enum class State { kQueued, kRunning, kDone, kCancelled, kFailed };

  /// `client_fd` < 0 = no attached client (spool resume). The campaign takes
  /// ownership of the fd and closes it when the stream ends.
  Campaign(std::string id, std::string spool_dir, std::string config_text, int client_fd,
           bool resume);
  ~Campaign();
  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  const std::string& id() const { return id_; }
  std::string plan_path() const { return spool_base() + ".plan"; }
  std::string journal_path() const { return spool_base() + ".journal"; }
  std::string jsonl_path() const { return spool_base() + ".jsonl"; }
  std::string done_path() const { return spool_base() + ".done"; }

  /// Driver body (runs on its own thread): execute the campaign on the
  /// shared pool, stream to the spool JSONL + the client, journal every
  /// cell, write the .done marker. Never throws.
  void run(SubmissionQueue& queue);

  /// Request cooperative cancellation (cancel op, client disconnect,
  /// shutdown mode "now"): cells not yet started stop running; the driver
  /// finishes and marks the campaign cancelled.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancel_.load(std::memory_order_relaxed); }

  State state() const { return state_.load(std::memory_order_relaxed); }
  bool finished() const {
    const State s = state();
    return s == State::kDone || s == State::kCancelled || s == State::kFailed;
  }

  /// One {"serve":"status",...} line (no trailing newline) for the status op.
  std::string status_line() const;

  static const char* to_string(State state);

 private:
  class StreamSink;
  class CountSink;

  std::string spool_base() const { return spool_dir_ + "/" + id_; }
  void write_done_marker(const std::string& state, const PlanOutcome* outcome);
  /// Close the client connection (idempotent; safe from the driver only).
  void close_client();

  std::string id_;
  std::string spool_dir_;
  std::string config_text_;
  int client_fd_;
  bool resume_;
  std::atomic<bool> cancel_{false};
  std::atomic<State> state_{State::kQueued};
  // Live counters for the status op (written by the driver thread, read by
  // the acceptor thread).
  std::atomic<std::size_t> cells_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::size_t> resumed_{0};
  // First fatal (infrastructure) error, for status after State::kFailed —
  // written by the driver thread, read by the acceptor's status op.
  mutable Mutex error_mutex_;
  std::string error_ GUARDED_BY(error_mutex_);
};

}  // namespace dfly::serve

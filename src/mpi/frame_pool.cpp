#include "mpi/frame_pool.hpp"

#include <new>

namespace dfly::mpi {

namespace {

thread_local FramePool* t_current_pool = nullptr;

/// Per-block header, written in front of every frame. 16 bytes keeps the
/// frame at max_align (::operator new returns max_align storage and
/// coroutine frames assume no more than that from a promise operator new).
struct BlockHeader {
  std::uint64_t bucket_bytes;  ///< 0 = not poolable: always plain-freed
  std::uint64_t reserved;      ///< pad to alignof(std::max_align_t)
};
static_assert(sizeof(BlockHeader) == 16);
static_assert(alignof(std::max_align_t) <= 16);

}  // namespace

FramePool* FramePool::current() { return t_current_pool; }

FramePool::~FramePool() { trim(); }

void FramePool::trim() {
  for (auto& bucket : buckets_) {
    for (void* block : bucket) ::operator delete(block);
    bucket.clear();
    bucket.shrink_to_fit();
  }
}

void* FramePool::take(std::size_t bucket_bytes) {
  auto& bucket = buckets_[bucket_bytes / kGranularity - 1];
  if (bucket.empty()) return nullptr;
  void* block = bucket.back();
  bucket.pop_back();
  return block;
}

void FramePool::park(void* block, std::size_t bucket_bytes) {
  buckets_[bucket_bytes / kGranularity - 1].push_back(block);
}

void* FramePool::allocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(BlockHeader);
  FramePool* pool = current();
  if (pool != nullptr && total <= kMaxPooledBytes) {
    const std::size_t bucket_bytes = (total + kGranularity - 1) / kGranularity * kGranularity;
    void* block = pool->take(bucket_bytes);
    if (block != nullptr) {
      ++pool->recycled_;
    } else {
      block = ::operator new(bucket_bytes);
      ++pool->built_;
    }
    *static_cast<BlockHeader*>(block) = BlockHeader{bucket_bytes, 0};
    return static_cast<char*>(block) + sizeof(BlockHeader);
  }
  void* block = ::operator new(total);
  *static_cast<BlockHeader*>(block) = BlockHeader{0, 0};
  return static_cast<char*>(block) + sizeof(BlockHeader);
}

void FramePool::deallocate(void* frame) noexcept {
  if (frame == nullptr) return;
  void* block = static_cast<char*>(frame) - sizeof(BlockHeader);
  const std::uint64_t bucket_bytes = static_cast<BlockHeader*>(block)->bucket_bytes;
  FramePool* pool = current();
  if (bucket_bytes != 0 && pool != nullptr) {
    pool->park(block, static_cast<std::size_t>(bucket_bytes));
    return;
  }
  ::operator delete(block);
}

std::size_t FramePool::parked_blocks() const {
  std::size_t n = 0;
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

std::size_t FramePool::parked_bytes() const {
  std::size_t bytes = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    bytes += buckets_[b].size() * (b + 1) * kGranularity;
  }
  return bytes;
}

ScopedFramePoolBinding::ScopedFramePoolBinding(FramePool* pool) : previous_(t_current_pool) {
  if (pool != nullptr) t_current_pool = pool;
}

ScopedFramePoolBinding::~ScopedFramePoolBinding() { t_current_pool = previous_; }

}  // namespace dfly::mpi

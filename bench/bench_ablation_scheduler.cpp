// Ablation: placement policy at the batch-scheduler level — what contiguous
// isolation actually costs.
//
// §I dismisses contiguous placement as an interference fix because it
// "causes severe system fragmentation"; §II-C cites the bully-effect work
// that recommends it. This bench puts numbers on both sides of that trade
// using the sched module: a synthetic job stream (exponential arrivals and
// runtimes, log-uniform sizes) is scheduled FCFS (with and without
// aggressive backfill) onto the paper's 1,056-node machine under
//
//   random      any free nodes (the paper's placement; full network sharing)
//   linear      first-fit by node id (packed, still shares groups)
//   contiguous  whole free groups only (full isolation)
//
// Reported per policy: mean/p95 queue wait, machine utilisation, internal
// waste (granted-but-unused node-time), external-fragmentation blocking
// (head waits while enough idle nodes exist — the paper's §I scenario), and
// mean group-sharing exposure (co-resident jobs per job, the interference
// proxy that the routing study addresses).
//
// Expected: contiguous drives sharing to zero but pays in wait time,
// utilisation and fragmentation; random runs the machine hot with zero
// fragmentation but exposes every job to interference — which is the gap
// intelligent routing closes without paying either price.

#include <cstdio>

#include "bench_common.hpp"
#include "sched/scheduler.hpp"
#include "viz/ascii.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  // Strictly sequential (one scheduler simulation per policy cell), so
  // --jobs is rejected rather than silently ignored.
  const bench::Options options = bench::Options::parse(argc, argv, 1, {.jobs = false});
  bench::print_header("ABLATION: scheduler placement policy (isolation vs fragmentation)");

  const Dragonfly topo(DragonflyParams::paper());
  // Offered load ~ mean_nodes * mean_runtime / (interarrival * machine)
  // ~= 190 * 40 / (8 * 1056) ~= 0.9: a busy machine with real queueing.
  const auto jobs = sched::synthetic_job_stream(/*count=*/400, /*mean_interarrival_ms=*/8.0,
                                                /*mean_runtime_ms=*/40.0, /*min_nodes=*/8,
                                                /*max_nodes=*/1056, options.seed);

  viz::AsciiTable table({"policy", "queue", "mean wait (ms)", "p95 wait (ms)", "util",
                         "int. waste", "frag blocked (ms)", "mean sharers"});
  for (const auto policy : {sched::AllocPolicy::kRandom, sched::AllocPolicy::kLinear,
                            sched::AllocPolicy::kGroupContiguous}) {
    for (const bool backfill : {false, true}) {
      sched::BatchScheduler scheduler(topo, policy, backfill, options.seed);
      const sched::ScheduleResult result = scheduler.run(jobs);
      table.row({sched::to_string(policy), backfill ? "backfill" : "fcfs",
                 bench::fmt(result.mean_wait_ms), bench::fmt(result.p95_wait_ms),
                 bench::fmt(result.utilization), bench::fmt(result.internal_waste),
                 bench::fmt(result.frag_blocked_ms), bench::fmt(result.mean_sharers)});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts(
      "\nExpected: contiguous -> mean sharers 0 (full isolation) but higher\n"
      "wait, lower utilisation, nonzero internal waste and fragmentation\n"
      "blocking; random -> zero fragmentation, highest sharing. Backfill\n"
      "recovers part of the contiguous wait-time penalty.");
  return 0;
}

// Figure 8: LQCD vs Stencil5D communication time, standalone and co-run,
// across all four routings. The application with the larger peak ingress
// volume (Stencil5D, ~14MB bursts) is barely affected, while LQCD suffers
// — strongly under adaptive routing, mildly under Q-adaptive.

#include "bench_common.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  const auto routings = options.routings();

  // Three independent simulations per routing, flattened so they all run
  // concurrently; reassembled per routing for printing.
  std::vector<std::function<std::pair<double, double>()>> tasks;
  for (const std::string& routing : routings) {
    const StudyConfig config = options.config(routing);
    tasks.push_back([config] {
      Study study(config);
      study.add_app("LQCD", config.topo.num_nodes() / 2);
      return std::make_pair(study.run().apps[0].comm_mean_ms, 0.0);
    });
    tasks.push_back([config] {
      Study study(config);
      study.add_app("Stencil5D", config.topo.num_nodes() / 2);
      return std::make_pair(study.run().apps[0].comm_mean_ms, 0.0);
    });
    tasks.push_back([config] {
      Study study(config);
      study.add_app("LQCD", config.topo.num_nodes() / 2);
      study.add_app("Stencil5D", config.topo.num_nodes() / 2);
      const Report report = study.run();
      return std::make_pair(report.app("LQCD").comm_mean_ms,
                            report.app("Stencil5D").comm_mean_ms);
    });
  }
  const auto flat = bench::parallel_map(tasks);
  struct Result {
    double lqcd_alone, s5d_alone, lqcd_both, s5d_both;
  };
  std::vector<Result> results;
  for (std::size_t r = 0; r < routings.size(); ++r) {
    results.push_back(Result{flat[r * 3].first, flat[r * 3 + 1].first, flat[r * 3 + 2].first,
                             flat[r * 3 + 2].second});
  }

  bench::print_header("Figure 8 — LQCD / Stencil5D comm time (ms): alone vs co-run");
  std::printf("%-8s | %14s %14s | %14s %14s\n", "routing", "LQCD alone", "LQCD co-run",
              "S5D alone", "S5D co-run");
  bench::print_rule();
  for (std::size_t r = 0; r < routings.size(); ++r) {
    const Result& res = results[r];
    std::printf("%-8s | %14.3f %14.3f | %14.3f %14.3f   (LQCD %+.1f%%, S5D %+.1f%%)\n",
                routings[r].c_str(), res.lqcd_alone, res.lqcd_both, res.s5d_alone, res.s5d_both,
                (res.lqcd_both / res.lqcd_alone - 1.0) * 100.0,
                (res.s5d_both / res.s5d_alone - 1.0) * 100.0);
  }
  std::printf("\nExpected shape (paper): Stencil5D <3%% change everywhere; LQCD ~+49%% under\n"
              "PAR but only ~+9%% under Q-adp.\n");
  return 0;
}

#include "routing/q_adaptive.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "net/link.hpp"
#include "net/router.hpp"
#include "routing/common.hpp"

namespace dfly::routing {

namespace {
constexpr double kUnreachable = 1e18;
constexpr std::uint32_t kFeedback = 1;
}  // namespace

namespace {
double unloaded_hop_cost(const NetConfig& cfg, bool global) {
  const double ser = static_cast<double>(cfg.packet_serialization());
  const double wire = static_cast<double>(global ? cfg.global_latency : cfg.local_latency);
  return ser + wire + static_cast<double>(cfg.router_latency);
}
}  // namespace

std::vector<QTable> build_initial_qtables(const Dragonfly& topo, const NetConfig& cfg) {
  std::vector<QTable> tables;
  tables.reserve(static_cast<std::size_t>(topo.num_routers()));
  for (int r = 0; r < topo.num_routers(); ++r) {
    tables.emplace_back(topo.num_groups(), topo.params().a, topo.radix());
  }
  const double lc = unloaded_hop_cost(cfg, false);
  const double gc = unloaded_hop_cost(cfg, true);
  for (int r = 0; r < topo.num_routers(); ++r) {
    QTable& table = tables[static_cast<std::size_t>(r)];
    const int my_group = topo.group_of_router(r);
    for (int port = 0; port < topo.radix(); ++port) {
      const bool terminal = topo.is_terminal_port(port);
      const Dragonfly::Wire wire = terminal ? Dragonfly::Wire{} : topo.wire(r, port);
      for (int gd = 0; gd < topo.num_groups(); ++gd) {
        if (terminal) {
          table.set_global(gd, port, kUnreachable);
          continue;
        }
        const int peer = wire.peer_router;
        const int peer_group = topo.group_of_router(peer);
        const double first = wire.global ? gc : lc;
        double rem;
        if (peer_group == gd) {
          rem = lc;  // expected final local hop
        } else if (!topo.gateways(peer_group, gd).empty()) {
          bool own = false;
          for (const auto& e : topo.gateways(peer_group, gd)) {
            if (e.router == peer) {
              own = true;
              break;
            }
          }
          rem = (own ? 0.0 : lc) + gc + lc;
        } else {
          rem = kUnreachable;
        }
        table.set_global(gd, port, rem >= kUnreachable ? kUnreachable : first + rem);
      }
      for (int dl = 0; dl < topo.params().a; ++dl) {
        if (terminal) {
          table.set_local(dl, port, kUnreachable);
          continue;
        }
        if (dl == topo.local_index(r)) {
          table.set_local(dl, port, 0.0);
          continue;
        }
        const bool direct = !wire.global && topo.local_index(wire.peer_router) == dl &&
                            topo.group_of_router(wire.peer_router) == my_group;
        table.set_local(dl, port, direct ? lc : 3.0 * lc);
      }
    }
  }
  return tables;
}

QAdaptiveRouting::QAdaptiveRouting(Engine& engine, const Dragonfly& topo, const NetConfig& cfg,
                                   QAdaptiveParams params, std::uint64_t seed,
                                   const std::vector<QTable>* initial)
    : topo_(&topo),
      cfg_(&cfg),
      params_(params),
      engine_(&engine),
      rng_(seed, 0x0ADA97151ull),
      tables_(initial != nullptr ? *initial : build_initial_qtables(topo, cfg)) {
  assert(static_cast<int>(tables_.size()) == topo.num_routers() &&
         "initial Q-tables built for a different system shape");
}

void QAdaptiveRouting::candidates(Router& router, const Packet& pkt, std::vector<int>& out) const {
  out.clear();
  const Dragonfly& topo = *topo_;
  const int r = router.id();
  const int dst_router = topo.router_of_node(pkt.dst_node);
  const int dst_group = topo.group_of_router(dst_router);
  const int my_group = topo.group_of_router(r);

  if (my_group == dst_group) {
    out.push_back(topo.local_port_to(r, topo.local_index(dst_router)));
    return;
  }
  switch (pkt.phase) {
    case RoutePhase::kAtSource:
      for (int p = topo.first_local_port(); p < topo.radix(); ++p) out.push_back(p);
      return;
    case RoutePhase::kSrcLocalDone:
      // Leaving the source group: any global port (the landing group becomes
      // the single allowed intermediate group if it is not the destination).
      for (int p = topo.first_global_port(); p < topo.radix(); ++p) out.push_back(p);
      return;
    case RoutePhase::kMidLocalDone:
      // The intermediate group's local hop was spent reaching a gateway:
      // only this router's own globals toward the destination remain legal
      // (anything else would start a second detour and risk livelock).
      for (const auto& e : topo.gateways(my_group, dst_group)) {
        if (e.router == r) out.push_back(topo.global_port(e.global_port));
      }
      return;
    case RoutePhase::kMidGroup: {
      // Minimal continuation only: own globals to the destination group plus
      // local hops to that group's gateways.
      for (const auto& e : topo.gateways(my_group, dst_group)) {
        if (e.router == r) {
          out.push_back(topo.global_port(e.global_port));
        } else {
          const int port = topo.local_port_to(r, topo.local_index(e.router));
          bool seen = false;
          for (const int q : out) {
            if (q == port) {
              seen = true;
              break;
            }
          }
          if (!seen) out.push_back(port);
        }
      }
      return;
    }
    case RoutePhase::kDstGroup:
      out.push_back(topo.local_port_to(r, topo.local_index(dst_router)));
      return;
  }
}

RouteDecision QAdaptiveRouting::route(Router& router, Packet& pkt) {
  const Dragonfly& topo = *topo_;
  const int dst_router = topo.router_of_node(pkt.dst_node);
  if (router.id() == dst_router) return eject(router, pkt);

  const int dst_group = topo.group_of_router(dst_router);
  const int my_group = router.group();

  candidates(router, pkt, scratch_);
  assert(!scratch_.empty());

  int chosen;
  if (scratch_.size() == 1) {
    chosen = scratch_.front();
  } else if (rng_.next_bernoulli(params_.epsilon)) {
    chosen = scratch_[rng_.next_below(scratch_.size())];
  } else {
    const QTable& table = tables_[static_cast<std::size_t>(router.id())];
    const double ser = static_cast<double>(cfg_->packet_serialization());
    double best = std::numeric_limits<double>::infinity();
    chosen = scratch_.front();
    for (const int p : scratch_) {
      const double q = my_group == dst_group ? table.local_q(topo.local_index(dst_router), p)
                                             : table.global_q(dst_group, p);
      const double score = q + params_.queue_weight * static_cast<double>(router.occupancy(p)) * ser;
      if (score < best) {
        best = score;
        chosen = p;
      }
    }
  }

  // Phase bookkeeping for the next router.
  if (my_group == dst_group) {
    pkt.phase = RoutePhase::kDstGroup;
  } else if (topo.is_local_port(chosen)) {
    pkt.phase = pkt.phase == RoutePhase::kAtSource ? RoutePhase::kSrcLocalDone
                                                   : RoutePhase::kMidLocalDone;
  } else {
    const int landing = topo.group_reached_by(router.id(), chosen - topo.first_global_port());
    if (landing == dst_group) {
      pkt.phase = RoutePhase::kDstGroup;
    } else {
      pkt.phase = RoutePhase::kMidGroup;
      pkt.nonminimal = true;
      pkt.int_group = static_cast<std::int16_t>(landing);
    }
  }
  return RouteDecision{static_cast<std::int16_t>(chosen), vc_for(pkt)};
}

double QAdaptiveRouting::best_estimate(int router_id, int dst_router, const Packet& pkt) const {
  if (router_id == dst_router) return 0.0;
  const Dragonfly& topo = *topo_;
  const QTable& table = tables_[static_cast<std::size_t>(router_id)];
  const int dst_group = topo.group_of_router(dst_router);
  const int my_group = topo.group_of_router(router_id);
  if (my_group == dst_group) {
    const int direct = topo.local_port_to(router_id, topo.local_index(dst_router));
    return table.local_q(topo.local_index(dst_router), direct);
  }
  // Phase-aware minimum over the same candidate set route() would use.
  double best = kUnreachable;
  switch (pkt.phase) {
    case RoutePhase::kSrcLocalDone:
      for (int p = topo.first_global_port(); p < topo.radix(); ++p) {
        best = std::min(best, table.global_q(dst_group, p));
      }
      break;
    case RoutePhase::kMidLocalDone:
      for (const auto& e : topo.gateways(my_group, dst_group)) {
        if (e.router == router_id) {
          best = std::min(best, table.global_q(dst_group, topo.global_port(e.global_port)));
        }
      }
      break;
    case RoutePhase::kMidGroup:
      for (const auto& e : topo.gateways(my_group, dst_group)) {
        const int p = e.router == router_id
                          ? topo.global_port(e.global_port)
                          : topo.local_port_to(router_id, topo.local_index(e.router));
        best = std::min(best, table.global_q(dst_group, p));
      }
      break;
    default:
      for (int p = topo.first_local_port(); p < topo.radix(); ++p) {
        best = std::min(best, table.global_q(dst_group, p));
      }
      break;
  }
  return best;
}

void QAdaptiveRouting::on_arrival(Router& router, Packet& pkt) {
  if (pkt.prev_router < 0) return;  // injected by the NIC: no upstream agent
  const SimTime now = router.engine().now();
  const double elapsed = static_cast<double>(now - pkt.enter_router_time);
  const int dst_router = topo_->router_of_node(pkt.dst_node);
  const double v = best_estimate(router.id(), dst_router, pkt);
  const double sample = elapsed + (v >= kUnreachable ? 0.0 : v);

  const int prev = pkt.prev_router;
  const int prev_port = pkt.prev_port;
  const int dst_group = topo_->group_of_router(dst_router);
  const bool local_row = topo_->group_of_router(prev) == dst_group;
  const int row = local_row ? topo_->local_index(dst_router) : dst_group;

  const SimTime reverse = LinkMap::port_latency(*topo_, *cfg_, prev_port);
  const std::uint64_t a = static_cast<std::uint64_t>(prev) |
                          (static_cast<std::uint64_t>(prev_port) << 16) |
                          (static_cast<std::uint64_t>(row) << 32) |
                          (static_cast<std::uint64_t>(local_row ? 1 : 0) << 48);
  engine_->schedule_at(now + reverse, *this, kFeedback, a,
                       static_cast<std::uint64_t>(sample));
}

void QAdaptiveRouting::handle(Engine&, const Event& event) {
  assert(event.kind == kFeedback);
  const int router = static_cast<int>(event.a & 0xffff);
  const int port = static_cast<int>((event.a >> 16) & 0xffff);
  const int row = static_cast<int>((event.a >> 32) & 0xffff);
  const bool local_row = ((event.a >> 48) & 1) != 0;
  const double sample = static_cast<double>(event.b);
  QTable& table = tables_[static_cast<std::size_t>(router)];
  if (local_row) {
    table.update_local(row, port, sample, params_.alpha);
  } else {
    table.update_global(row, port, sample, params_.alpha);
  }
  ++feedback_signals_;
}

}  // namespace dfly::routing

// Ablation: global-link arrangement (relative vs absolute wiring).
//
// Hastings et al. (CLUSTER'15) showed the mapping of a group's a*h global
// slots onto peer groups changes performance even though every pair keeps
// the same link count: the arrangement decides *which router* inside the
// group owns the link to a given peer, i.e. how adversarial traffic
// concentrates on local links feeding the gateway.
//
// Setup: ADV+1 under linear placement (every node in group G fires at
// group G+1 — all minimal traffic of a group wants one gateway router) and
// the paper's FFT3D/Halo3D pairwise case, both arrangements, UGALg vs
// Q-adp. Expected: the arrangement moves adaptive routing's numbers (it
// changes where the minimal-path hot spot lands and how the two sampled
// candidates see it) but matters much less under Q-adaptive routing, which
// learns whatever wiring it is given — the interference conclusions are
// wiring-robust.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double adv_comm_ms{0};
  double victim_ms{0};
};

Outcome run_case(StudyConfig config, GlobalArrangement arrangement) {
  config.topo.arrangement = arrangement;
  Outcome outcome;
  {
    StudyConfig adv = config;
    adv.placement = PlacementPolicy::kLinear;
    Study study(adv);
    workloads::GroupAdversarialParams params;
    params.ranks_per_group = adv.topo.p * adv.topo.a;
    params.msg_bytes = 4096;
    params.iterations = 400 / (adv.scale < 1 ? 1 : adv.scale) + 30;
    params.interval = 0;
    study.add_motif(std::make_unique<workloads::GroupAdversarialMotif>(params),
                    adv.topo.num_nodes(), "ADV+1");
    const Report report = study.run();
    outcome.adv_comm_ms = report.apps[0].comm_mean_ms;
  }
  {
    Study study(config);
    const int victim = study.add_app("FFT3D", config.topo.num_nodes() / 2);
    study.add_app("Halo3D", config.topo.num_nodes() / 2);
    const Report report = study.run();
    outcome.victim_ms = report.apps[static_cast<std::size_t>(victim)].comm_mean_ms;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  bench::print_header("ABLATION: global-link arrangement (relative vs absolute)");

  const std::vector<std::string> routings =
      options.routing.empty() ? std::vector<std::string>{"UGALg", "Q-adp"}
                              : std::vector<std::string>{options.routing};
  const GlobalArrangement arrangements[] = {GlobalArrangement::kRelative,
                                            GlobalArrangement::kAbsolute};

  std::vector<std::function<Outcome()>> tasks;
  for (const std::string& routing : routings) {
    for (const GlobalArrangement arrangement : arrangements) {
      tasks.push_back([config = options.config(routing), arrangement] {
        return run_case(config, arrangement);
      });
    }
  }
  const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

  viz::AsciiTable table(
      {"routing", "arrangement", "ADV+1 comm (ms)", "FFT3D victim comm (ms)"});
  std::size_t index = 0;
  for (const std::string& routing : routings) {
    for (const GlobalArrangement arrangement : arrangements) {
      const Outcome& o = outcomes[index++];
      table.row({routing, to_string(arrangement), bench::fmt(o.adv_comm_ms),
                 bench::fmt(o.victim_ms)});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts(
      "\nExpected: arrangement shifts adaptive routing's adversarial numbers\n"
      "(it moves the gateway hot spot inside each group); Q-adp's results\n"
      "stay close across wirings — the paper's conclusions do not hinge on\n"
      "the particular global-link arrangement.");
  return 0;
}

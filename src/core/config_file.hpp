#pragma once

#include <map>
#include <string>

#include "core/study.hpp"

/// Flat `key = value` configuration files for the experiment binaries.
///
/// Every bench accepts `--config=FILE` so the paper system (and any variant)
/// can be described declaratively instead of recompiled. Format:
///
///     # paper.cfg — the 1,056-node SC'22 system
///     topo.p = 4
///     topo.a = 8
///     topo.h = 4
///     topo.g = 33
///     routing = Q-adp
///     placement = random
///     seed = 42
///     net.buffer_packets = 30
///     qos.num_classes = 2
///     qos.weights = 4,1
///     cc.enabled = true
///
/// Lines starting with `#` or `;` are comments; whitespace is trimmed;
/// unknown keys are rejected by `apply_config` (typo safety).
namespace dfly {

class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parse from a file (throws std::runtime_error on IO failure or syntax
  /// errors) or from an in-memory string.
  static ConfigFile load(const std::string& path);
  static ConfigFile parse(const std::string& text);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Typed getters; the default is returned when the key is absent. Throws
  /// std::invalid_argument when a present value fails to convert.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  int get_int(const std::string& key, int fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  bool get_bool(const std::string& key, bool fallback = false) const;
  /// Comma-separated integer list.
  std::vector<int> get_int_list(const std::string& key) const;

  void set(const std::string& key, const std::string& value) { values_[key] = value; }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Overlay a config file onto a StudyConfig. Recognised keys:
///   topo.{p,a,h,g}            Dragonfly shape
///   routing                   MIN/VALg/VALn/UGALg/UGALn/PAR/Q-adp/...
///   placement                 random/contiguous/linear
///   seed, scale               run knobs
///   time_limit_ms             simulation guard
///   net.{flit_bytes,packet_bytes,buffer_packets,num_vcs,link_gbps}
///   net.{local_latency_ns,global_latency_ns,router_latency_ns}
///   protocol.eager_threshold  eager/rendezvous split (bytes)
///   qos.{num_classes,weights,quantum_packets}
///   cc.{enabled,ecn_threshold_packets,md_factor,ai_step,min_rate}
///   qadp.{alpha,epsilon}      Q-adaptive hyperparameters
///   ugal.{bias,nonmin_weight} UGAL family tunables
/// Unknown keys throw std::invalid_argument.
StudyConfig apply_config(StudyConfig base, const ConfigFile& file);

}  // namespace dfly

# CTest script: run the same multi-seed sweep with --jobs=1 and --jobs=4 and
# require byte-identical JSON reports. Invoked by the sweep_parallel_smoke
# test with -DDFLYSIM=<binary> -DWORK_DIR=<build dir>.
set(ARGS --app=UR:64 --scale=64 --seed=42 --sweep=4)

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=1 --json=${WORK_DIR}/sweep_seq.json
  RESULT_VARIABLE SEQ_RESULT OUTPUT_QUIET)
if(NOT SEQ_RESULT EQUAL 0)
  message(FATAL_ERROR "sequential sweep failed with exit code ${SEQ_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=4 --json=${WORK_DIR}/sweep_par.json
  RESULT_VARIABLE PAR_RESULT OUTPUT_QUIET)
if(NOT PAR_RESULT EQUAL 0)
  message(FATAL_ERROR "parallel sweep failed with exit code ${PAR_RESULT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/sweep_seq.json ${WORK_DIR}/sweep_par.json
  RESULT_VARIABLE DIFF_RESULT)
if(NOT DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 sweep JSON differs from --jobs=1 (determinism regression)")
endif()
message(STATUS "jobs=1 and jobs=4 sweep reports are byte-identical")

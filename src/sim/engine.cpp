#include "sim/engine.hpp"

#include <cassert>
#include <utility>

#include "sim/pdes.hpp"

namespace dfly {

/// Adapter that lets InlineFn callbacks ride the component event path.
/// One-shot but pooled: handle() disarms the owning slot (destroying the
/// capture) before invoking the callback, so the callback itself may arm new
/// closures (possibly reusing this very slot) or clear() the engine; the
/// adapter object survives for the next call_at to re-arm without a heap
/// allocation.
class Engine::Closure final : public Component {
 public:
  Closure() = default;

  void arm(InlineFn fn, std::uint32_t slot) {
    fn_ = std::move(fn);
    slot_ = slot;
    armed_ = true;
  }
  void disarm() {
    fn_ = nullptr;  // destroy the capture now, not at the next re-arm
    armed_ = false;
  }
  // armed_ is a separate flag because handle() moves fn_ out before the slot
  // is released — the function's own emptiness can't double as liveness.
  bool armed() const { return armed_; }

  void handle(Engine& engine, const Event&) override {
    InlineFn fn = std::move(fn_);
    engine.release_closure(slot_);  // disarms *this; only locals below
    fn();
  }

 private:
  InlineFn fn_;
  std::uint32_t slot_{0};
  bool armed_{false};
};

Engine::Engine() = default;
Engine::~Engine() = default;
Engine::Engine(Engine&& other) noexcept = default;
Engine& Engine::operator=(Engine&& other) noexcept = default;

void Engine::schedule_at(SimTime when, Component& target, std::uint32_t kind,
                         std::uint64_t a, std::uint64_t b) {
  assert(when >= now_ && "cannot schedule into the past");
  ++stats_.scheduled_by_kind[EngineStats::slot(kind)];
  if (pdes_ != nullptr) {
    pdes_->on_schedule(*this, when, target, kind, a, b);
    return;
  }
  push(make_key(when, next_seq_++), Payload{&target, kind, a, b});
}

void Engine::call_at(SimTime when, InlineFn fn) {
  std::uint32_t slot;
  if (free_closure_slots_.empty()) {
    slot = static_cast<std::uint32_t>(closures_.size());
    closures_.push_back(std::make_unique<Closure>());
  } else {
    slot = free_closure_slots_.back();
    free_closure_slots_.pop_back();
  }
  closures_[slot]->arm(std::move(fn), slot);
  // Closures belong to this engine, so in a parallel cell they execute in
  // this engine's domain; stamping keeps pdes routing self-directed.
  closures_[slot]->set_pdes_domain(pdes_domain_id_);
  ++live_closures_;
  schedule_at(when, *closures_[slot], 0);
}

void Engine::release_closure(std::uint32_t slot) {
  // clear() may have disarmed everything while the closure body ran; a slot
  // that is no longer armed must not be pushed onto the free list twice.
  if (slot >= closures_.size() || !closures_[slot] || !closures_[slot]->armed()) return;
  closures_[slot]->disarm();
  free_closure_slots_.push_back(slot);
  --live_closures_;
}

void Engine::push(HeapKey key, Payload load) {
  // Grow both arrays together (and skip the tiny-doubling phase) so the two
  // vectors reallocate in lockstep instead of twice as often as one.
  if (keys_.size() == keys_.capacity()) {
    const std::size_t cap = keys_.empty() ? 256 : keys_.size() * 2;
    keys_.reserve(cap);
    payloads_.reserve(cap);
  }
  keys_.push_back(key);
  payloads_.push_back(load);
  if (keys_.size() > peak_queued_) peak_queued_ = keys_.size();
  sift_up(keys_.size() - 1);
}

Engine::Entry Engine::pop_min() {
  const Entry top{keys_.front(), payloads_.front()};
  const std::size_t last = keys_.size() - 1;
  if (last > 0) {
    // Bottom-up pop (the std::pop_heap strategy, on 4 lanes): sink the root
    // hole to a leaf by promoting the smallest child of each level — no
    // comparisons against the displaced back element, which is leaf-sized
    // and would lose almost every one — then drop the back element into the
    // leaf hole and sift it up the few levels it actually belongs.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = 4 * hole + 1;
      if (first >= last) break;
      const std::size_t end = first + 4 < last ? first + 4 : last;
      // Keep the running minimum in a register: the four child loads are
      // independent and pipeline, instead of each compare re-loading
      // keys_[best] behind the previous selection.
      std::size_t best = first;
      HeapKey best_key = keys_[first];
      for (std::size_t child = first + 1; child < end; ++child) {
        const HeapKey child_key = keys_[child];
        if (child_key < best_key) {
          best = child;
          best_key = child_key;
        }
      }
      keys_[hole] = best_key;
      payloads_[hole] = payloads_[best];
      hole = best;
    }
    keys_[hole] = keys_[last];
    payloads_[hole] = payloads_[last];
    sift_up(hole);
  }
  keys_.pop_back();
  payloads_.pop_back();
  return top;
}

void Engine::sift_up(std::size_t i) {
  const HeapKey key = keys_[i];
  const Payload load = payloads_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (key >= keys_[parent]) break;
    keys_[i] = keys_[parent];
    payloads_[i] = payloads_[parent];
    i = parent;
  }
  keys_[i] = key;
  payloads_[i] = load;
}

void Engine::dispatch(const Entry& entry) {
  const SimTime when = key_when(entry.key);
  now_ = when;
  ++executed_;
  cur_seq_ = key_seq(entry.key);
  ++stats_.executed_by_kind[EngineStats::slot(entry.load.kind)];
  const Event event{when,         key_seq(entry.key), entry.load.target,
                    entry.load.kind, entry.load.a,    entry.load.b};
  entry.load.target->handle(*this, event);
}

bool Engine::step() {
  if (batch_pos_ < batch_.size()) {  // inside a run() batch (handler re-entry)
    dispatch(batch_[batch_pos_++]);
    return true;
  }
  if (keys_.empty()) return false;
  dispatch(pop_min());
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t count = 0;
  // Resume a batch interrupted by a throwing handler or a re-entrant run():
  // its events were already popped and precede everything in the heap, so
  // they dispatch first regardless of `until`.
  while (batch_pos_ < batch_.size()) {
    check_wall_deadline();
    dispatch(batch_[batch_pos_++]);
    ++count;
  }
  while (!keys_.empty() && key_when(keys_.front()) <= until) {
    check_wall_deadline();
    const Entry entry = pop_min();
    const SimTime when = key_when(entry.key);
    if (keys_.empty() || key_when(keys_.front()) != when) {
      // Unique timestamp (the common case for packet traffic): dispatch
      // directly, no batch bookkeeping.
      dispatch(entry);
      ++count;
      continue;
    }
    // Same-timestamp batch: drain every event at this timestamp before any
    // of them executes. pop_min yields them in seq order, and each pop
    // shrinks the heap before the next sift, so ties cost one short sift
    // each instead of sifts interleaved with the pushes their handlers
    // perform. Events that handlers schedule at this same timestamp carry
    // larger seqs and join the next batch, preserving FIFO order.
    batch_.clear();
    batch_pos_ = 0;
    batch_.push_back(entry);
    do {
      batch_.push_back(pop_min());
    } while (!keys_.empty() && key_when(keys_.front()) == when);
    while (batch_pos_ < batch_.size()) {
      dispatch(batch_[batch_pos_++]);
      ++count;
    }
  }
  // Time only advances with events: when the queue drains before `until`,
  // now() stays at the last executed event (see header).
  return count;
}

void Engine::clear() {
  keys_.clear();
  payloads_.clear();
  batch_.clear();
  batch_pos_ = 0;
  // Disarm every pending closure (destroying captures) but keep the pooled
  // adapters; rebuild the free list from scratch so no slot appears twice.
  // Descending order makes a cleared engine hand out slots 0, 1, 2, ... again
  // exactly like a fresh one.
  free_closure_slots_.clear();
  for (std::size_t slot = closures_.size(); slot-- > 0;) {
    closures_[slot]->disarm();
    free_closure_slots_.push_back(static_cast<std::uint32_t>(slot));
  }
  live_closures_ = 0;
}

void Engine::reset() {
  clear();
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
  peak_queued_ = 0;
  has_wall_deadline_ = false;
  deadline_stride_ = 0;
  stats_ = EngineStats{};
  cur_seq_ = 0;
  pdes_ = nullptr;
  pdes_domain_id_ = 0;
}

void Engine::reserve(std::size_t events, std::size_t closures) {
  if (keys_.capacity() < events) {
    keys_.reserve(events);
    payloads_.reserve(events);
  }
  const std::size_t old_size = closures_.size();
  while (closures_.size() < closures) closures_.push_back(std::make_unique<Closure>());
  // Append the new slots descending so they pop lowest-first — the same
  // fresh-engine hand-out order clear()/reset() maintain.
  for (std::size_t slot = closures_.size(); slot-- > old_size;) {
    free_closure_slots_.push_back(static_cast<std::uint32_t>(slot));
  }
}

}  // namespace dfly

#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace dfly {

/// Adapter that lets std::function callbacks ride the component event path.
/// One-shot: handle() releases the owning slot before invoking the callback,
/// so the callback itself may schedule new closures (possibly reusing this
/// very slot) or clear() the engine without touching freed storage.
class Engine::Closure final : public Component {
 public:
  Closure(std::function<void()> fn, std::uint32_t slot) : fn_(std::move(fn)), slot_(slot) {}

  void handle(Engine& engine, const Event&) override {
    std::function<void()> fn = std::move(fn_);
    engine.release_closure(slot_);  // destroys *this; only locals below
    fn();
  }

 private:
  std::function<void()> fn_;
  std::uint32_t slot_;
};

void Engine::schedule_at(SimTime when, Component& target, std::uint32_t kind,
                         std::uint64_t a, std::uint64_t b) {
  assert(when >= now_ && "cannot schedule into the past");
  push(make_key(when, next_seq_++), Payload{&target, kind, a, b});
}

void Engine::call_at(SimTime when, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_closure_slots_.empty()) {
    slot = static_cast<std::uint32_t>(closures_.size());
    closures_.emplace_back();
  } else {
    slot = free_closure_slots_.back();
    free_closure_slots_.pop_back();
  }
  closures_[slot] = std::make_unique<Closure>(std::move(fn), slot);
  schedule_at(when, *closures_[slot], 0);
}

void Engine::release_closure(std::uint32_t slot) {
  // clear() may have emptied closures_ while the closure body ran; a stale
  // slot must not be recycled into the rebuilt free list.
  if (slot >= closures_.size() || !closures_[slot]) return;
  closures_[slot].reset();
  free_closure_slots_.push_back(slot);
}

void Engine::push(HeapKey key, Payload load) {
  // Grow both arrays together (and skip the tiny-doubling phase) so the two
  // vectors reallocate in lockstep instead of twice as often as one.
  if (keys_.size() == keys_.capacity()) {
    const std::size_t cap = keys_.empty() ? 256 : keys_.size() * 2;
    keys_.reserve(cap);
    payloads_.reserve(cap);
  }
  keys_.push_back(key);
  payloads_.push_back(load);
  sift_up(keys_.size() - 1);
}

Engine::Entry Engine::pop_min() {
  const Entry top{keys_.front(), payloads_.front()};
  const std::size_t last = keys_.size() - 1;
  if (last > 0) {
    // Bottom-up pop (the std::pop_heap strategy, on 4 lanes): sink the root
    // hole to a leaf by promoting the smallest child of each level — no
    // comparisons against the displaced back element, which is leaf-sized
    // and would lose almost every one — then drop the back element into the
    // leaf hole and sift it up the few levels it actually belongs.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = 4 * hole + 1;
      if (first >= last) break;
      const std::size_t end = first + 4 < last ? first + 4 : last;
      // Keep the running minimum in a register: the four child loads are
      // independent and pipeline, instead of each compare re-loading
      // keys_[best] behind the previous selection.
      std::size_t best = first;
      HeapKey best_key = keys_[first];
      for (std::size_t child = first + 1; child < end; ++child) {
        const HeapKey child_key = keys_[child];
        if (child_key < best_key) {
          best = child;
          best_key = child_key;
        }
      }
      keys_[hole] = best_key;
      payloads_[hole] = payloads_[best];
      hole = best;
    }
    keys_[hole] = keys_[last];
    payloads_[hole] = payloads_[last];
    sift_up(hole);
  }
  keys_.pop_back();
  payloads_.pop_back();
  return top;
}

void Engine::sift_up(std::size_t i) {
  const HeapKey key = keys_[i];
  const Payload load = payloads_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (key >= keys_[parent]) break;
    keys_[i] = keys_[parent];
    payloads_[i] = payloads_[parent];
    i = parent;
  }
  keys_[i] = key;
  payloads_[i] = load;
}

void Engine::dispatch(const Entry& entry) {
  const SimTime when = key_when(entry.key);
  now_ = when;
  ++executed_;
  const Event event{when,         key_seq(entry.key), entry.load.target,
                    entry.load.kind, entry.load.a,    entry.load.b};
  entry.load.target->handle(*this, event);
}

bool Engine::step() {
  if (batch_pos_ < batch_.size()) {  // inside a run() batch (handler re-entry)
    dispatch(batch_[batch_pos_++]);
    return true;
  }
  if (keys_.empty()) return false;
  dispatch(pop_min());
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t count = 0;
  // Resume a batch interrupted by a throwing handler or a re-entrant run():
  // its events were already popped and precede everything in the heap, so
  // they dispatch first regardless of `until`.
  while (batch_pos_ < batch_.size()) {
    dispatch(batch_[batch_pos_++]);
    ++count;
  }
  while (!keys_.empty() && key_when(keys_.front()) <= until) {
    const Entry entry = pop_min();
    const SimTime when = key_when(entry.key);
    if (keys_.empty() || key_when(keys_.front()) != when) {
      // Unique timestamp (the common case for packet traffic): dispatch
      // directly, no batch bookkeeping.
      dispatch(entry);
      ++count;
      continue;
    }
    // Same-timestamp batch: drain every event at this timestamp before any
    // of them executes. pop_min yields them in seq order, and each pop
    // shrinks the heap before the next sift, so ties cost one short sift
    // each instead of sifts interleaved with the pushes their handlers
    // perform. Events that handlers schedule at this same timestamp carry
    // larger seqs and join the next batch, preserving FIFO order.
    batch_.clear();
    batch_pos_ = 0;
    batch_.push_back(entry);
    do {
      batch_.push_back(pop_min());
    } while (!keys_.empty() && key_when(keys_.front()) == when);
    while (batch_pos_ < batch_.size()) {
      dispatch(batch_[batch_pos_++]);
      ++count;
    }
  }
  // Time only advances with events: when the queue drains before `until`,
  // now() stays at the last executed event (see header).
  return count;
}

void Engine::clear() {
  keys_.clear();
  payloads_.clear();
  batch_.clear();
  batch_pos_ = 0;
  closures_.clear();
  free_closure_slots_.clear();
}

}  // namespace dfly

// Mixed-workload run (paper §VI / Table II): six applications share the
// 1,056-node system; print per-application communication time and the
// system-wide network health metrics.
//
//   $ ./mixed_workload [routing]    (default: Q-adp)

#include <cstdio>
#include <string>

#include "core/mixed.hpp"

int main(int argc, char** argv) {
  const std::string routing = argc > 1 ? argv[1] : "Q-adp";

  dfly::StudyConfig config;
  config.topo = dfly::DragonflyParams::paper();
  config.routing = routing;
  config.scale = 16;
  config.seed = 3;

  std::printf("Table II mix under %s:\n", routing.c_str());
  for (const auto& spec : dfly::table2_mix()) {
    std::printf("  %-10s %4d nodes\n", spec.app.c_str(), spec.nodes);
  }

  const dfly::Report report = dfly::run_mixed(config);

  std::printf("\n%-10s %6s %12s %12s %12s\n", "app", "nodes", "comm (ms)", "sigma (ms)",
              "p99 lat(us)");
  for (const auto& app : report.apps) {
    std::printf("%-10s %6d %12.3f %12.3f %12.2f\n", app.app.c_str(), app.nodes,
                app.comm_mean_ms, app.comm_std_ms, app.lat_p99_us);
  }
  std::printf("\nsystem: mean latency %.2f us | p99 %.2f us | throughput %.2f GB/ms\n",
              report.sys_lat_mean_us, report.sys_lat_p99_us, report.agg_throughput_gb_per_ms);
  std::printf("stall:  local %.3f ms/group | global %.4f ms/link\n", report.local_stall_ms,
              report.global_stall_ms);
  std::printf("congestion index: mean %.4f | max %.4f | imbalance %.3f\n",
              report.congestion_mean, report.congestion_max, report.congestion_imbalance);
  return report.completed ? 0 : 1;
}

#pragma once

#include <cstdint>
#include <vector>

/// Quality-of-service traffic classes.
///
/// The paper's related work (§II-C) discusses QoS as the main alternative to
/// routing for interference mitigation: "separating traffic flows of
/// different applications or communication types into isolated channels"
/// (Brown et al. ISC'21, Mubarak et al. ISC'19, Wilke & Kenny CLUSTER'20).
/// This module implements that mechanism so the benches can compare
/// QoS-based isolation against routing-based mitigation on the same
/// workload mixes:
///
///  - every application is assigned a traffic class;
///  - router output ports arbitrate between classes with deficit-weighted
///    round-robin (DWRR), so class i receives bandwidth proportional to
///    weight[i] whenever it has demand, independent of other classes' load;
///  - within a class, requests keep the base FIFO order.
///
/// Classes share virtual channels (VC index stays the deadlock-avoidance
/// hop ladder); isolation is in *bandwidth*, not buffer space — this models
/// weighted traffic shaping as deployed on Slingshot rather than fully
/// partitioned per-class buffers.
namespace dfly {

/// QoS knobs, carried inside NetConfig. num_classes == 1 disables QoS and
/// keeps the base FIFO arbitration byte-for-byte.
struct QosConfig {
  int num_classes{1};
  /// Relative bandwidth weight per class; missing entries default to 1.
  std::vector<int> weights{};
  /// DWRR quantum granted per replenish round, in packets per weight unit.
  int quantum_packets{1};

  bool enabled() const { return num_classes > 1; }

  int weight_of(int cls) const {
    if (cls < 0 || cls >= static_cast<int>(weights.size())) return 1;
    const int w = weights[static_cast<std::size_t>(cls)];
    return w < 1 ? 1 : w;
  }

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const QosConfig&) const = default;
};

/// Application -> traffic class assignment, shared by all NICs of one
/// network. Unassigned applications ride in class 0.
class TrafficClassMap {
 public:
  explicit TrafficClassMap(int num_apps)
      : class_of_app_(static_cast<std::size_t>(num_apps < 1 ? 1 : num_apps), 0) {}

  void assign(int app_id, int traffic_class) {
    if (app_id < 0) return;
    if (app_id >= static_cast<int>(class_of_app_.size())) {
      class_of_app_.resize(static_cast<std::size_t>(app_id) + 1, 0);
    }
    class_of_app_[static_cast<std::size_t>(app_id)] =
        static_cast<std::uint8_t>(traffic_class < 0 ? 0 : traffic_class);
  }

  std::uint8_t klass(int app_id) const {
    if (app_id < 0 || app_id >= static_cast<int>(class_of_app_.size())) return 0;
    return class_of_app_[static_cast<std::size_t>(app_id)];
  }

  int num_apps() const { return static_cast<int>(class_of_app_.size()); }

 private:
  std::vector<std::uint8_t> class_of_app_;
};

}  // namespace dfly

// Campaign daemon (src/serve) — protocol and server behaviour, in-process.
//
// These tests run a real Server (unix socket, spool dir, SubmissionQueue) on
// a background thread and talk to it over real sockets, covering the daemon
// acceptance bar: byte-identical streamed JSONL, one BlueprintCache shared
// across concurrent clients, malformed requests rejected without killing the
// server, mid-plan client disconnects cancelling exactly one campaign, and
// spool-dir resume of a campaign a previous daemon left unfinished. The
// kill -9 end of the resume story is covered by bench/serve_smoke.sh.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config_file.hpp"
#include "core/journal.hpp"
#include "core/plan.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace dfly {
namespace {

using serve::Request;

// Two pairwise cells on the tiny 144-node machine: FFT3D alone + FFT3D vs UR.
const char* const kTinyPlan =
    "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\n"
    "placement = random\nseed = 42\nscale = 64\n"
    "plan.name = tiny\nplan.mode = pairwise\nplan.routings = MIN\n"
    "plan.targets = FFT3D\nplan.backgrounds = None,UR\n";

// Twelve cells — long enough that a client closing right after the accepted
// line is guaranteed to vanish mid-plan.
const char* const kLongPlan =
    "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\n"
    "placement = random\nseed = 42\nscale = 64\n"
    "plan.name = longer\nplan.mode = pairwise\nplan.routings = MIN,VALg\n"
    "plan.targets = FFT3D\nplan.backgrounds = None,UR,LU,Halo3D,CosmoFlow,DL\n";

std::string make_temp_dir() {
  std::string dir = ::testing::TempDir() + "/dfsim_serve_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return dir;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The reference bytes: the same plan text run locally through run_plan into
/// a JsonlSink — what `dflysim --plan=FILE --jsonl=-` would print.
std::string local_jsonl(const std::string& plan_text) {
  const ExperimentPlan plan = plan_from_config(ConfigFile::parse(plan_text));
  std::ostringstream out;
  JsonlSink sink(out);
  run_plan(plan, sink, /*jobs=*/1);
  return out.str();
}

/// A real Server on a background thread; the destructor stops and joins it.
struct Daemon {
  explicit Daemon(const std::string& dir, int jobs = 2) {
    serve::ServeOptions options;
    options.socket_path = dir + "/sock";
    options.jobs = jobs;
    server = std::make_unique<serve::Server>(std::move(options));
    thread = std::thread([this] { exit_code = server->serve(); });
  }
  ~Daemon() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server->request_stop();
      thread.join();
    }
  }
  const std::string& socket() const { return server->socket_path(); }

  std::unique_ptr<serve::Server> server;
  std::thread thread;
  int exit_code{-1};
};

/// Send one raw request line, read every response line until the server
/// closes the connection.
std::vector<std::string> talk(const std::string& socket_path, const std::string& line) {
  const int fd = serve::connect_unix(socket_path);
  EXPECT_TRUE(serve::write_all(fd, line + "\n"));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> lines;
  std::string one;
  while (serve::pop_line(buffer, one)) lines.push_back(one);
  return lines;
}

std::vector<std::string> submit(const std::string& socket_path, const std::string& plan_text) {
  Request request;
  request.op = "submit";
  request.plan_text = plan_text;
  return talk(socket_path, serve::format_request(request));
}

/// Split a submit response into (cell JSONL bytes, control lines).
std::pair<std::string, std::vector<std::string>> split_stream(
    const std::vector<std::string>& lines) {
  std::string cells;
  std::vector<std::string> control;
  for (const std::string& line : lines) {
    if (serve::is_control_line(line)) {
      control.push_back(line);
    } else {
      cells += line + "\n";
    }
  }
  return {cells, control};
}

/// Poll the status op until the campaign reports a terminal state.
std::string wait_terminal_state(const std::string& socket_path, const std::string& campaign) {
  Request request;
  request.op = "status";
  request.campaign = campaign;
  for (int i = 0; i < 1200; ++i) {
    const std::vector<std::string> lines = talk(socket_path, serve::format_request(request));
    if (lines.size() == 1) {
      const std::string state = serve::control_field(lines[0], "state");
      if (state == "done" || state == "cancelled" || state == "failed") return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return "timeout";
}

TEST(ServeProtocol, FormatParseRoundTripsEveryField) {
  Request request;
  request.op = "submit";
  request.plan_text = "plan.name = x\nplan.jobs = UR\n# \"quotes\" \\ and \t tabs\n";
  request.sets = {{"plan.routings", "MIN"}, {"scale", "64"}};
  const Request parsed = serve::parse_request(serve::format_request(request));
  EXPECT_EQ(parsed.op, "submit");
  EXPECT_EQ(parsed.plan_text, request.plan_text);
  EXPECT_EQ(parsed.sets, request.sets);

  Request status;
  status.op = "status";
  status.campaign = "c000042";
  EXPECT_EQ(serve::parse_request(serve::format_request(status)).campaign, "c000042");

  Request shutdown;
  shutdown.op = "shutdown";
  shutdown.drain = false;
  EXPECT_FALSE(serve::parse_request(serve::format_request(shutdown)).drain);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(serve::parse_request("not json"), std::invalid_argument);
  EXPECT_THROW(serve::parse_request("{\"op\":\"fly\"}"), std::invalid_argument);
  EXPECT_THROW(serve::parse_request("{\"op\":\"submit\"}"), std::invalid_argument);  // no plan
  EXPECT_THROW(serve::parse_request("{\"op\":\"status\"}"), std::invalid_argument);  // no id
  EXPECT_THROW(serve::parse_request("{\"op\":\"submit\",\"plan\":3}"), std::invalid_argument);
  EXPECT_THROW(serve::parse_request(""), std::invalid_argument);
}

TEST(ServeProtocol, ControlLinePrefixSeparatesTheTwoStreams) {
  EXPECT_TRUE(serve::is_control_line("{\"serve\":\"accepted\",\"campaign\":\"c000001\"}"));
  EXPECT_FALSE(serve::is_control_line("{\"cell\":0,\"kind\":\"pairwise\"}"));
  EXPECT_EQ(serve::control_field("{\"serve\":\"accepted\",\"campaign\":\"c000001\"}",
                                 "campaign"),
            "c000001");
  EXPECT_EQ(serve::control_field("{\"serve\":\"done\",\"ok\":true}", "campaign"), "");
}

TEST(ServeServer, SubmitStreamsByteIdenticalJsonlAndSpoolsTheCampaign) {
  const std::string dir = make_temp_dir();
  Daemon daemon(dir);

  const auto [cells, control] = split_stream(submit(daemon.socket(), kTinyPlan));
  EXPECT_EQ(cells, local_jsonl(kTinyPlan));

  ASSERT_GE(control.size(), 2u);
  EXPECT_EQ(serve::control_field(control.front(), "serve"), "accepted");
  EXPECT_EQ(serve::control_field(control.front(), "campaign"), "c000001");
  EXPECT_EQ(serve::control_field(control.back(), "serve"), "done");
  EXPECT_EQ(serve::control_field(control.back(), "ok"), "true");

  // The spool holds the durable record: plan, journal, output, done marker —
  // and the spooled JSONL is the same bytes again.
  const std::string base = daemon.server->spool_dir() + "/c000001";
  EXPECT_TRUE(file_exists(base + ".plan"));
  EXPECT_TRUE(file_exists(base + ".journal"));
  EXPECT_TRUE(file_exists(base + ".done"));
  EXPECT_EQ(read_file(base + ".jsonl"), local_jsonl(kTinyPlan));

  daemon.stop();
  EXPECT_EQ(daemon.exit_code, 0);
}

TEST(ServeServer, TwoConcurrentClientsShareOneBlueprintCache) {
  const std::string dir = make_temp_dir();
  Daemon daemon(dir);

  std::vector<std::string> first;
  std::vector<std::string> second;
  std::thread a([&] { first = submit(daemon.socket(), kTinyPlan); });
  std::thread b([&] { second = submit(daemon.socket(), kTinyPlan); });
  a.join();
  b.join();

  // Both campaigns completed clean, and both streamed identical bytes.
  const auto [cells_a, control_a] = split_stream(first);
  const auto [cells_b, control_b] = split_stream(second);
  EXPECT_EQ(serve::control_field(control_a.back(), "ok"), "true");
  EXPECT_EQ(serve::control_field(control_b.back(), "ok"), "true");
  EXPECT_EQ(cells_a, cells_b);
  EXPECT_EQ(cells_a, local_jsonl(kTinyPlan));

  // The proof of sharing: 4 same-shape cells across the two campaigns hit
  // ONE pool-wide cache — the blueprint was built exactly once, every other
  // cell was a hit. Private per-campaign caches would show 2 misses.
  const BlueprintCache::Stats stats = daemon.server->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 3u);

  // The stats op reports the same counters over the wire.
  const std::vector<std::string> reply = talk(daemon.socket(), "{\"op\":\"stats\"}");
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(serve::control_field(reply[0], "serve"), "stats");
  EXPECT_EQ(serve::control_field(reply[0], "blueprint_misses"), "1");
}

TEST(ServeServer, MalformedRequestsGetOneErrorLineAndTheServerKeepsServing) {
  const std::string dir = make_temp_dir();
  Daemon daemon(dir);

  for (const char* bad : {"this is not json", "{\"op\":\"fly\"}", "{\"op\":\"submit\"}",
                          "{\"op\":\"submit\",\"plan\":\"plan.mode = nonsense\\n\"}"}) {
    const std::vector<std::string> reply = talk(daemon.socket(), bad);
    ASSERT_EQ(reply.size(), 1u) << bad;
    EXPECT_EQ(serve::control_field(reply[0], "serve"), "error") << bad;
  }
  // Unknown campaign ids answer with an error too, not a crash.
  const std::vector<std::string> unknown =
      talk(daemon.socket(), "{\"op\":\"status\",\"campaign\":\"c999999\"}");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(serve::control_field(unknown[0], "serve"), "error");

  // After all of that, a well-formed submit still runs to completion.
  const auto [cells, control] = split_stream(submit(daemon.socket(), kTinyPlan));
  EXPECT_EQ(cells, local_jsonl(kTinyPlan));
  EXPECT_EQ(serve::control_field(control.back(), "ok"), "true");
}

TEST(ServeServer, ClientDisconnectMidPlanCancelsOnlyThatCampaign) {
  // StreamSink sends with MSG_NOSIGNAL; make double sure a dead peer cannot
  // take the test process down while the daemon keeps running.
  std::signal(SIGPIPE, SIG_IGN);
  const std::string dir = make_temp_dir();
  Daemon daemon(dir);

  // Hand-roll the submit so we can hang up right after the accepted line.
  Request request;
  request.op = "submit";
  request.plan_text = kLongPlan;
  const int fd = serve::connect_unix(daemon.socket());
  ASSERT_TRUE(serve::write_all(fd, serve::format_request(request) + "\n"));
  std::string buffer;
  std::string accepted;
  char chunk[512];
  while (!serve::pop_line(buffer, accepted)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ASSERT_EQ(serve::control_field(accepted, "serve"), "accepted");
  const std::string cancelled_id = serve::control_field(accepted, "campaign");
  ::close(fd);  // vanish mid-plan

  // A second campaign on the same daemon is unaffected by the disconnect.
  const auto [cells, control] = split_stream(submit(daemon.socket(), kTinyPlan));
  EXPECT_EQ(cells, local_jsonl(kTinyPlan));
  EXPECT_EQ(serve::control_field(control.back(), "ok"), "true");

  // The abandoned campaign winds down as cancelled — not done, not failed.
  EXPECT_EQ(wait_terminal_state(daemon.socket(), cancelled_id), "cancelled");
}

TEST(ServeServer, ResumesUnfinishedSpoolEntriesByteIdenticallyOnStartup) {
  const std::string dir = make_temp_dir();
  const std::string spool = dir + "/sock.spool";
  ASSERT_EQ(::mkdir(spool.c_str(), 0755), 0);
  const std::string base = spool + "/c000001";
  const std::string reference = local_jsonl(kTinyPlan);

  // Fabricate what a SIGKILLed daemon leaves behind: the spooled plan, a
  // journal holding only the FIRST cell, the output truncated to that cell's
  // journaled offset, and no .done marker. (bench/serve_smoke.sh produces
  // the same state with a real kill -9.)
  {
    std::ofstream plan(base + ".plan", std::ios::binary);
    plan << kTinyPlan;
  }
  {
    const ExperimentPlan plan = plan_from_config(ConfigFile::parse(kTinyPlan));
    JsonlSink jsonl(base + ".jsonl", /*append=*/false);
    PlanJournal journal(base + ".journal");
    RunPlanOptions options;
    options.journal = &journal;
    options.output_offset = [&jsonl] { return jsonl.bytes_written(); };
    run_plan(plan, jsonl, options);
  }
  const std::vector<JournalRecord> records = PlanJournal::recover(base + ".journal");
  ASSERT_EQ(records.size(), 2u);
  {
    // Keep only the first journal line; cut the output back to its offset.
    std::ifstream in(base + ".journal", std::ios::binary);
    std::string first_line;
    ASSERT_TRUE(std::getline(in, first_line));
    in.close();
    std::ofstream out(base + ".journal", std::ios::binary | std::ios::trunc);
    out << first_line << "\n";
  }
  truncate_file(base + ".jsonl", records[0].offset);
  ASSERT_LT(read_file(base + ".jsonl").size(), reference.size());

  // A fresh daemon on this spool must finish the campaign unprompted.
  Daemon daemon(dir);
  for (int i = 0; i < 1200 && !file_exists(base + ".done"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(file_exists(base + ".done"));
  EXPECT_EQ(read_file(base + ".jsonl"), reference);
  const std::string marker = read_file(base + ".done");
  EXPECT_NE(marker.find("\"state\":\"done\""), std::string::npos) << marker;
  EXPECT_NE(marker.find("\"resumed\":1"), std::string::npos) << marker;

  // And a new submission gets a FRESH id — resumed entries are never reused.
  const auto [cells, control] = split_stream(submit(daemon.socket(), kTinyPlan));
  EXPECT_EQ(serve::control_field(control.front(), "campaign"), "c000002");
  EXPECT_EQ(cells, reference);
}

}  // namespace
}  // namespace dfly

// Batch scheduler tests: FCFS semantics, allocation-policy shapes, the
// external-fragmentation measurement behind the paper's §I placement
// argument, and stream-level invariants under every policy.

#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dfly {
namespace {

using sched::AllocPolicy;
using sched::BatchScheduler;
using sched::JobRequest;
using sched::ScheduleResult;

/// tiny(): p=2, a=4 -> 8 nodes per group, 9 groups, 72 nodes.
const DragonflyParams kTinyParams = DragonflyParams::tiny();

ScheduleResult run_stream(AllocPolicy policy, std::vector<JobRequest> jobs,
                          bool backfill = false, std::uint64_t seed = 1) {
  const Dragonfly topo(kTinyParams);
  BatchScheduler scheduler(topo, policy, backfill, seed);
  return scheduler.run(std::move(jobs));
}

// --- string round trip ---------------------------------------------------------

TEST(Scheduler, PolicyStrings) {
  EXPECT_STREQ(sched::to_string(AllocPolicy::kRandom), "random");
  EXPECT_EQ(sched::alloc_policy_from_string("contiguous"), AllocPolicy::kGroupContiguous);
  EXPECT_EQ(sched::alloc_policy_from_string("linear"), AllocPolicy::kLinear);
  EXPECT_THROW(sched::alloc_policy_from_string("zigzag"), std::invalid_argument);
}

// --- basic FCFS ------------------------------------------------------------------

TEST(Scheduler, EmptyStream) {
  const ScheduleResult result = run_stream(AllocPolicy::kLinear, {});
  EXPECT_EQ(result.jobs.size(), 0u);
  EXPECT_EQ(result.makespan_ms, 0.0);
  EXPECT_EQ(result.frag_blocked_ms, 0.0);
}

TEST(Scheduler, SingleJobRunsImmediately) {
  const ScheduleResult result =
      run_stream(AllocPolicy::kLinear, {{0, 10, 5.0, 20.0}});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].start_ms, 5.0);
  EXPECT_EQ(result.jobs[0].wait_ms, 0.0);
  EXPECT_EQ(result.jobs[0].finish_ms, 25.0);
  EXPECT_EQ(result.makespan_ms, 25.0);
  EXPECT_EQ(result.jobs[0].granted_nodes, 10);
}

TEST(Scheduler, RejectsOversizedJob) {
  const Dragonfly topo(kTinyParams);
  BatchScheduler scheduler(topo, AllocPolicy::kLinear, false, 1);
  EXPECT_THROW(scheduler.run({{0, topo.num_nodes() + 1, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(scheduler.run({{0, 0, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(scheduler.run({{0, 1, -1.0, 1.0}}), std::invalid_argument);
}

TEST(Scheduler, FcfsQueuesWhenMachineFull) {
  // Two jobs both need the whole machine; the second waits for the first.
  const ScheduleResult result = run_stream(
      AllocPolicy::kLinear, {{0, 72, 0.0, 10.0}, {1, 72, 1.0, 10.0}});
  EXPECT_EQ(result.jobs[0].start_ms, 0.0);
  EXPECT_EQ(result.jobs[1].start_ms, 10.0);
  EXPECT_EQ(result.jobs[1].wait_ms, 9.0);
  EXPECT_EQ(result.makespan_ms, 20.0);
  // Head blocked by genuine capacity shortage, not fragmentation.
  EXPECT_EQ(result.frag_blocked_ms, 0.0);
}

TEST(Scheduler, FcfsHeadBlocksFollowersWithoutBackfill) {
  // Job 1 (large) blocks; job 2 (tiny, fits) must still wait behind it.
  const ScheduleResult result = run_stream(
      AllocPolicy::kLinear,
      {{0, 70, 0.0, 10.0}, {1, 10, 1.0, 1.0}, {2, 1, 2.0, 1.0}});
  EXPECT_EQ(result.jobs[1].start_ms, 10.0);
  EXPECT_GE(result.jobs[2].start_ms, 10.0);
}

TEST(Scheduler, BackfillLetsSmallJobsJumpBlockedHead) {
  const ScheduleResult result = run_stream(
      AllocPolicy::kLinear,
      {{0, 70, 0.0, 10.0}, {1, 10, 1.0, 1.0}, {2, 1, 2.0, 1.0}},
      /*backfill=*/true);
  // Job 1 needs 10 nodes, only 2 free -> cannot backfill. Job 2 needs 1 -> can.
  EXPECT_EQ(result.jobs[1].start_ms, 10.0);
  EXPECT_EQ(result.jobs[2].start_ms, 2.0);
}

// --- allocation shapes ----------------------------------------------------------

TEST(Scheduler, GroupContiguousGrantsWholeGroups) {
  const ScheduleResult result =
      run_stream(AllocPolicy::kGroupContiguous, {{0, 5, 0.0, 1.0}});
  // 5 nodes round up to one whole 8-node group.
  EXPECT_EQ(result.jobs[0].granted_nodes, 8);
  EXPECT_NEAR(result.internal_waste, 3.0 / 8.0, 1e-9);
}

TEST(Scheduler, LinearAndRandomGrantExactly) {
  for (const AllocPolicy policy : {AllocPolicy::kLinear, AllocPolicy::kRandom}) {
    const ScheduleResult result = run_stream(policy, {{0, 5, 0.0, 1.0}});
    EXPECT_EQ(result.jobs[0].granted_nodes, 5);
    EXPECT_EQ(result.internal_waste, 0.0);
  }
}

/// The paper's §I fragmentation scenario, measured: under strict contiguous
/// placement a job can be blocked while the machine has plenty of free
/// nodes; under random placement the same stream never waits.
TEST(Scheduler, ContiguousFragmentationBlocksDespiteFreeNodes) {
  // 9 groups x 8 nodes. Nine 1-node jobs dirty every group, then a 16-node
  // job arrives: 63 nodes free, zero fully-free groups.
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 9; ++i) {
    jobs.push_back({i, 1, 0.0, 50.0});
  }
  jobs.push_back({9, 16, 1.0, 5.0});

  const ScheduleResult contiguous = run_stream(AllocPolicy::kGroupContiguous, jobs);
  const ScheduleResult random = run_stream(AllocPolicy::kRandom, jobs);

  // Contiguous: the nine 1-node jobs each hold a whole group; the 16-node
  // job waits for two of them to finish at t = 50 while >= 16 nodes were
  // free the entire time — pure external fragmentation.
  EXPECT_NEAR(contiguous.jobs[9].start_ms, 50.0, 1e-9);
  EXPECT_NEAR(contiguous.frag_blocked_ms, 49.0, 1e-9);
  // Random: starts immediately, zero fragmentation.
  EXPECT_NEAR(random.jobs[9].start_ms, 1.0, 1e-9);
  EXPECT_EQ(random.frag_blocked_ms, 0.0);
}

/// Contiguous placement's payoff: zero group sharing (full isolation);
/// random placement exposes jobs to co-resident sharers.
TEST(Scheduler, SharingExposureByPolicy) {
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({i, 12, 0.0, 100.0});  // 6 x 12 = 72 nodes, all co-resident
  }
  const ScheduleResult contiguous = run_stream(AllocPolicy::kGroupContiguous, jobs);
  const ScheduleResult random = run_stream(AllocPolicy::kRandom, jobs);
  // Contiguous fits only 4 jobs at once (12 -> 16 nodes = 2 groups, 9 groups
  // total) but those that run share nothing.
  for (const auto& stats : contiguous.jobs) {
    EXPECT_EQ(stats.co_resident_sharers, 0);
  }
  EXPECT_EQ(contiguous.mean_sharers, 0.0);
  // Random: later jobs see earlier ones in their groups.
  EXPECT_GT(random.mean_sharers, 1.0);
}

// --- stream-level invariants (parameterised over policy x backfill) --------------

class SchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<AllocPolicy, bool>> {};

TEST_P(SchedulerInvariants, SyntheticStreamSatisfiesInvariants) {
  const auto [policy, backfill] = GetParam();
  const Dragonfly topo(kTinyParams);
  const auto jobs = sched::synthetic_job_stream(120, 2.0, 12.0, 1, 48, 99);
  BatchScheduler scheduler(topo, policy, backfill, 3);
  const ScheduleResult result = scheduler.run(jobs);

  ASSERT_EQ(result.jobs.size(), jobs.size());
  double max_finish = 0;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const auto& stats = result.jobs[i];
    EXPECT_GE(stats.wait_ms, 0.0) << i;
    EXPECT_GE(stats.granted_nodes, stats.requested_nodes) << i;
    EXPECT_GT(stats.finish_ms, stats.start_ms) << i;
    max_finish = std::max(max_finish, stats.finish_ms);
  }
  EXPECT_EQ(result.makespan_ms, max_finish);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
  EXPECT_GE(result.internal_waste, 0.0);
  EXPECT_LT(result.internal_waste, 1.0);
  if (policy != AllocPolicy::kGroupContiguous) {
    EXPECT_EQ(result.internal_waste, 0.0);
    EXPECT_EQ(result.frag_blocked_ms, 0.0);
  }

  // Determinism: same seed, same schedule.
  BatchScheduler again(topo, policy, backfill, 3);
  const ScheduleResult repeat = again.run(jobs);
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    EXPECT_EQ(result.jobs[i].start_ms, repeat.jobs[i].start_ms) << i;
  }
}

/// No double allocation, ever: replay the schedule and check that node-time
/// intervals of concurrent jobs never overlap on a node.
TEST_P(SchedulerInvariants, NoDoubleAllocation) {
  const auto [policy, backfill] = GetParam();
  const Dragonfly topo(kTinyParams);
  const auto jobs = sched::synthetic_job_stream(60, 1.0, 10.0, 1, 40, 5);
  BatchScheduler scheduler(topo, policy, backfill, 7);
  const ScheduleResult result = scheduler.run(jobs);
  // Sweep: at every start instant, the sum of granted nodes of overlapping
  // jobs must not exceed the machine.
  for (const auto& stats : result.jobs) {
    int busy = 0;
    for (const auto& other : result.jobs) {
      if (other.start_ms <= stats.start_ms && stats.start_ms < other.finish_ms) {
        busy += other.granted_nodes;
      }
    }
    EXPECT_LE(busy, topo.num_nodes()) << "at t=" << stats.start_ms;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedulerInvariants,
    ::testing::Combine(::testing::Values(AllocPolicy::kRandom, AllocPolicy::kLinear,
                                         AllocPolicy::kGroupContiguous),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(sched::to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_backfill" : "_fcfs");
    });

// --- synthetic stream generator ---------------------------------------------------

TEST(SyntheticJobStream, ShapeAndDeterminism) {
  const auto a = sched::synthetic_job_stream(200, 3.0, 15.0, 2, 64, 42);
  const auto b = sched::synthetic_job_stream(200, 3.0, 15.0, 2, 64, 42);
  ASSERT_EQ(a.size(), 200u);
  double prev = -1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_ms, prev);
    prev = a[i].arrival_ms;
    EXPECT_GE(a[i].nodes, 2);
    EXPECT_LE(a[i].nodes, 64);
    EXPECT_GT(a[i].runtime_ms, 0.0);
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
  }
  EXPECT_THROW(sched::synthetic_job_stream(10, 1.0, 1.0, 5, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dfly

#include <cassert>
#include <stdexcept>

#include "core/study.hpp"
#include "stats/congestion.hpp"
#include "stats/io_module.hpp"
#include "workloads/intensity.hpp"

namespace dfly {

const AppReport& Report::app(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.app == name) return a;
  }
  throw std::out_of_range("Report: no app named " + name);
}

Report Study::report() const {
  Report out;
  out.routing = config_.routing;
  out.events_executed = engine_.executed();

  bool all_done = true;
  SimTime makespan = 0;
  for (const auto& job : jobs_) {
    all_done = all_done && job->done();
    if (job->finish_time() > makespan) makespan = job->finish_time();
  }
  out.completed = all_done;
  out.makespan = makespan;

  const PacketLog& log = network_->packet_log();
  for (const auto& job : jobs_) {
    AppReport app;
    app.app = job->name();
    app.app_id = job->app_id();
    app.nodes = job->size();
    const Accumulator comm = job->comm_time_stats();
    app.comm_mean_ms = comm.mean();
    app.comm_std_ms = comm.stddev();
    app.comm_max_ms = comm.max();
    const workloads::IntensityMetrics intensity = workloads::measure_intensity(*job);
    app.exec_ms = intensity.execution_ms;
    app.total_msg_mb = intensity.total_msg_mb;
    app.injection_rate_gbs = intensity.injection_rate_gbs;
    app.peak_ingress_bytes = intensity.peak_ingress_bytes;

    const Histogram& lat = log.latency(job->app_id());
    app.lat_mean_us = lat.mean() / static_cast<double>(kUs);
    app.lat_p50_us = static_cast<double>(lat.median()) / static_cast<double>(kUs);
    app.lat_p95_us = static_cast<double>(lat.p95()) / static_cast<double>(kUs);
    app.lat_p99_us = static_cast<double>(lat.p99()) / static_cast<double>(kUs);
    app.packets = log.delivered_packets(job->app_id());
    app.nonminimal_fraction =
        app.packets == 0 ? 0.0
                         : static_cast<double>(log.nonminimal_packets(job->app_id())) /
                               static_cast<double>(app.packets);
    app.mean_hops = log.mean_hops(job->app_id());
    out.apps.push_back(app);
  }

  const Histogram& sys = log.system_latency();
  out.sys_lat_mean_us = sys.mean() / static_cast<double>(kUs);
  out.sys_lat_p50_us = static_cast<double>(sys.median()) / static_cast<double>(kUs);
  out.sys_lat_p95_us = static_cast<double>(sys.p95()) / static_cast<double>(kUs);
  out.sys_lat_p99_us = static_cast<double>(sys.p99()) / static_cast<double>(kUs);
  if (makespan > 0) {
    out.agg_throughput_gb_per_ms =
        log.system_delivered().total() / 1.0e9 / to_ms(makespan);
  }

  const GroupStall stall = group_stall(blueprint_->topo(), network_->link_stats());
  out.local_stall_ms = stall.mean_local_ms;
  out.global_stall_ms = stall.mean_global_ms;

  const CongestionMatrix congestion =
      congestion_matrix(blueprint_->topo(), network_->link_stats(), makespan, config_.net.link_gbps);
  out.congestion_mean = congestion.mean();
  out.congestion_max = congestion.max();
  out.congestion_imbalance = congestion.imbalance_global();

  // Jain's fairness index over per-app achieved injection rates (GB/s).
  // J = (sum x)^2 / (n * sum x^2); x_i > 0 only for apps that moved bytes.
  if (out.apps.size() >= 2) {
    double sum = 0;
    double sum_sq = 0;
    int n = 0;
    for (const auto& app : out.apps) {
      const double x = app.injection_rate_gbs;
      if (x <= 0) continue;
      sum += x;
      sum_sq += x * x;
      ++n;
    }
    if (n >= 2 && sum_sq > 0) {
      out.jain_fairness = sum * sum / (static_cast<double>(n) * sum_sq);
    }
  }
  return out;
}

void Study::write_csv(const std::string& prefix) const {
  if (!ran_) throw std::logic_error("Study: write_csv before run()");
  const Report summary = report();

  {
    CsvWriter apps(prefix + "_apps.csv",
                   {"app", "nodes", "comm_mean_ms", "comm_std_ms", "exec_ms", "total_mb",
                    "injection_gbs", "peak_ingress_bytes", "lat_mean_us", "lat_p99_us",
                    "packets", "nonmin_frac"});
    for (const auto& app : summary.apps) {
      apps.row(std::vector<std::string>{
          app.app, std::to_string(app.nodes), CsvWriter::num(app.comm_mean_ms),
          CsvWriter::num(app.comm_std_ms), CsvWriter::num(app.exec_ms),
          CsvWriter::num(app.total_msg_mb), CsvWriter::num(app.injection_rate_gbs),
          CsvWriter::num(app.peak_ingress_bytes), CsvWriter::num(app.lat_mean_us),
          CsvWriter::num(app.lat_p99_us), std::to_string(app.packets),
          CsvWriter::num(app.nonminimal_fraction)});
    }
  }
  {
    const CongestionMatrix matrix = congestion_matrix(blueprint_->topo(), network_->link_stats(),
                                                      summary.makespan, config_.net.link_gbps);
    CsvWriter congestion(prefix + "_congestion.csv", {"src_group", "dst_group", "index"});
    for (int s = 0; s < matrix.num_groups(); ++s) {
      for (int d = 0; d < matrix.num_groups(); ++d) {
        congestion.row(std::vector<double>{static_cast<double>(s), static_cast<double>(d),
                                           matrix.cell(s, d)});
      }
    }
  }
  {
    const GroupStall stall = group_stall(blueprint_->topo(), network_->link_stats());
    CsvWriter stalls(prefix + "_stall.csv", {"group", "local_stall_ms", "global_out_stall_ms"});
    for (std::size_t g = 0; g < stall.local_ms.size(); ++g) {
      double global_out = 0;
      for (const double v : stall.global_ms[g]) global_out += v;
      stalls.row(std::vector<double>{static_cast<double>(g), stall.local_ms[g], global_out});
    }
  }
}

}  // namespace dfly

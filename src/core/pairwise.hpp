#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"

namespace dfly {

/// Pairwise workload experiment (paper §V): a *target* application co-runs
/// with one *background* application, each on half the system, random
/// placement. The target is always placed first with the same seed, so its
/// process-to-node mapping is identical across different backgrounds — a
/// change in its communication time is therefore pure interference.
struct PairwiseResult {
  std::string routing;
  std::string target;
  std::string background;  ///< "None" for the standalone baseline
  AppReport target_report;
  AppReport background_report;  ///< empty app name when standalone
  Report full;
};

/// Run one pairwise configuration. `background` may be "None".
PairwiseResult run_pairwise(const StudyConfig& config, const std::string& target,
                            const std::string& background);

/// One cell of a pairwise matrix sweep. An empty `routing` keeps the base
/// config's routing.
struct PairwiseCell {
  std::string target;
  std::string background;  ///< "None" (or empty) for the standalone baseline
  std::string routing;
};

/// Run a batch of pairwise cells, sharded across worker threads
/// (ParallelRunner semantics: jobs > 0 = exact count, 0 = DFSIM_JOBS or
/// sequential). Every cell is an independent Study built from `base`;
/// results are returned in cell order, independent of worker count.
///
/// Deprecated-but-working shim: now a thin builder over the unified
/// campaign core (core/plan.hpp — a pairwise ExperimentPlan whose
/// pairwise_list is `cells` verbatim). New code should build an
/// ExperimentPlan directly and use run_plan.
std::vector<PairwiseResult> run_pairwise_cells(const StudyConfig& base,
                                               const std::vector<PairwiseCell>& cells,
                                               int jobs = 0);

/// The paper's Fig 4 matrix: targets x backgrounds x routings.
const std::vector<std::string>& fig4_targets();
const std::vector<std::string>& fig4_backgrounds();  ///< includes "None"

}  // namespace dfly

// Figure 7: LQCD and Stencil5D packet latency along simulated time (alone
// vs co-run, PAR vs Q-adp). Stencil5D's much larger peak ingress volume
// lets it push its packets ahead of LQCD's, visibly inflating LQCD's
// latency under PAR. The four cases run concurrently.

#include <string>

#include "bench_common.hpp"
#include "core/study.hpp"

namespace {

using namespace dfly;

std::string run_case(StudyConfig config, bool interfered) {
  config.observability.keep_packet_records = true;
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  study.add_app("LQCD", half);
  if (interfered) study.add_app("Stencil5D", half);
  const Report report = study.run();

  std::string out;
  char line[160];
  const SimTime window = kMs / 2;  // 0.5 ms buckets
  for (int a = 0; a < study.num_jobs(); ++a) {
    const std::string label = report.apps[a].app + (interfered ? "_interfered" : "_alone") +
                              "_" + config.routing;
    std::snprintf(line, sizeof line, "series %s window_ms 0.5 mean_us :", label.c_str());
    out += line;
    for (SimTime t0 = 0; t0 < report.makespan; t0 += window) {
      const Histogram h = study.network().packet_log().latency_between(a, t0, t0 + window);
      std::snprintf(line, sizeof line, " %.2f",
                    h.empty() ? 0.0 : h.mean() / static_cast<double>(kUs));
      out += line;
    }
    out += '\n';
    const Histogram& all = study.network().packet_log().latency(a);
    std::snprintf(line, sizeof line, "summary %s mean_us %.2f p99_us %.2f\n", label.c_str(),
                  all.mean() / static_cast<double>(kUs),
                  static_cast<double>(all.p99()) / static_cast<double>(kUs));
    out += line;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  std::vector<std::function<std::string()>> tasks;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    for (const bool interfered : {false, true}) {
      const StudyConfig config = options.config(routing);
      tasks.push_back([config, interfered] { return run_case(config, interfered); });
    }
  }
  const auto blocks = bench::parallel_map(tasks);
  bench::print_header("Figure 7 — LQCD / Stencil5D packet latency over time");
  for (const auto& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("\nExpected shape (paper): Stencil5D's latency profile is unchanged by LQCD;\n"
              "LQCD's mean/p99 rise sharply under PAR when Stencil5D joins (+57%%/+80%%)\n"
              "but far less under Q-adp.\n");
  return 0;
}

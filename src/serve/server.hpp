#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/blueprint.hpp"
#include "core/mutex.hpp"
#include "core/parallel.hpp"
#include "serve/session.hpp"

/// The campaign daemon behind `dflysim --serve=SOCKET`.
///
/// One long-running process owns a unix-domain listening socket, a spool
/// directory, and a single warm SubmissionQueue (shared worker arenas + one
/// BlueprintCache). Clients connect, send one newline-delimited JSON request
/// (see serve/protocol.hpp), and either get a one-line answer (status /
/// cancel / stats / shutdown) or — for submit — a streamed campaign:
/// accepted header, raw JSONL cell lines byte-identical to a local
/// `--plan ... --jsonl=-` run, and a final done line. Every accepted
/// campaign is journaled under the spool directory, so a daemon killed with
/// SIGKILL resumes all unfinished campaigns on restart and completes their
/// spool outputs byte-identically (docs/DAEMON.md).
namespace dfly::serve {

struct ServeOptions {
  std::string socket_path;  ///< unix-domain socket to listen on
  /// Spool directory for <id>.{plan,journal,jsonl,done}; defaults to
  /// socket_path + ".spool". Created if missing.
  std::string spool_dir;
  /// Worker threads of the shared pool: > 0 exact, else DFSIM_JOBS, else
  /// ParallelRunner::hardware_jobs().
  int jobs{0};
};

class Server {
 public:
  /// Binds + listens (replacing any stale socket file) and creates the
  /// spool directory. Throws std::runtime_error on socket/spool errors.
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept-and-dispatch loop. First resumes every unfinished spool entry,
  /// then serves requests until a shutdown op arrives or request_stop() is
  /// called; drains (or, for shutdown mode "now", cancels) active campaigns
  /// before returning. Returns the process exit status (0).
  int serve();

  /// Ask the accept loop to stop (safe from another thread or — being a
  /// lock-free atomic store — from a signal handler). Equivalent to a
  /// shutdown op with mode "drain".
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  const std::string& socket_path() const { return options_.socket_path; }
  const std::string& spool_dir() const { return options_.spool_dir; }
  int jobs() const { return queue_.jobs(); }
  /// Stats of the pool-wide blueprint cache (cross-campaign sharing proof).
  BlueprintCache::Stats cache_stats() { return queue_.cache().stats(); }

 private:
  /// One client connection still waiting for its request line.
  struct PendingConn {
    int fd{-1};
    std::string buffer;
  };

  void scan_spool_for_resume() EXCLUDES(mutex_);
  void start_campaign(const std::shared_ptr<Campaign>& campaign) EXCLUDES(mutex_);
  /// Handle one complete request line; owns the decision to keep `fd` (a
  /// submit hands it to the campaign) or close it. Never throws.
  void dispatch(const std::string& line, int fd) EXCLUDES(mutex_);
  void reply_and_close(int fd, const std::string& line);
  std::string next_campaign_id() EXCLUDES(mutex_);
  void reap_finished_drivers(bool join_all) EXCLUDES(mutex_);

  ServeOptions options_;
  SubmissionQueue queue_;
  int listen_fd_{-1};
  std::atomic<bool> stop_{false};
  // Acceptor-loop-only state: the poll bookkeeping and shutdown latches are
  // touched by serve()'s thread alone, never by campaign drivers.
  bool shutdown_requested_{false};
  bool shutdown_drain_{true};
  std::vector<PendingConn> pending_;
  // Campaign bookkeeping. Today only the acceptor thread touches these, but
  // the lock (and the annotations proving it is taken) is the contract the
  // multi-node coordinator work builds on: campaign drivers stay confined to
  // their Campaign, and every id/map/driver-list access goes through mutex_.
  Mutex mutex_;
  std::size_t next_id_ GUARDED_BY(mutex_){1};
  std::map<std::string, std::shared_ptr<Campaign>> campaigns_ GUARDED_BY(mutex_);
  std::vector<std::pair<std::thread, std::shared_ptr<Campaign>>> drivers_ GUARDED_BY(mutex_);
};

}  // namespace dfly::serve

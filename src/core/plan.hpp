#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config_file.hpp"
#include "core/journal.hpp"
#include "core/pairwise.hpp"
#include "core/parallel.hpp"
#include "core/study.hpp"

/// Declarative experiment campaigns.
///
/// Every result in the paper — and in the companion Dragonfly+ interference
/// and application-aware-routing studies — is "a set of Studies over axes":
/// applications x routings x placements x seeds (x topology/QoS/fault
/// variants). ExperimentPlan is the one description of such a campaign: a
/// base StudyConfig, the axes to sweep, and a job-mix kind. It expands
/// deterministically into an ordered cell list and runs through ONE entry
/// point, run_plan(), on the ParallelRunner (per-worker SimArena reuse and
/// cross-cell SystemBlueprint sharing intact), streaming each finished cell
/// to a PlanSink in cell order — so output bytes are identical for any
/// worker count.
///
/// Fault tolerance (docs/ROBUSTNESS.md): run_plan isolates every cell — a
/// throwing cell is recorded as a CellFailure and the campaign continues;
/// transient failures (std::bad_alloc, TransientCellError) are retried with
/// backoff after shedding the worker's arena; plan.cell_timeout_s arms a
/// per-cell wall-clock watchdog; an optional fsync'd PlanJournal makes the
/// campaign resumable byte-identically after any crash; and a PlanShard
/// runs a deterministic slice for multi-host fan-out (reassembled with
/// merge_shard_jsonl).
///
/// The legacy driver surfaces — SeedSweep::run, run_pairwise_cells,
/// run_mixed_suites — are retained as thin shims over this core; new
/// scenarios should build an ExperimentPlan (programmatically, or from a
/// `plan.*` config file via plan_from_config / `dflysim --plan=FILE`).
namespace dfly {

/// How a plan populates each cell's job mix.
enum class PlanMode {
  kSingle,    ///< every cell runs the explicit `jobs` list (paper Figs 5-9)
  kPairwise,  ///< target x background half-machine matrix (paper Fig 4, §V)
  kMixed,     ///< Table II mix, plus per-app solo baselines (paper Fig 10)
  kCustom,    ///< programmatic: `custom` produces each cell's Report
};

const char* to_string(PlanMode mode);
/// Accepts "single", "pairwise", "mixed" (kCustom is programmatic-only).
PlanMode plan_mode_from_string(const std::string& name);

/// One application of an explicit job list. nodes == 0 fills the machine.
struct PlanJob {
  std::string app;
  int nodes{0};

  bool operator==(const PlanJob&) const = default;
};

/// A named overlay of config keys applied onto the base config — the
/// declarative form of "the same campaign, but with QoS classes on / a
/// degraded global link / a bigger machine". Any apply_config key works.
struct PlanVariant {
  std::string label;
  ConfigFile overrides;
};

/// What one expanded cell runs. kMixedSolo is the Fig 10 "alone" baseline:
/// the full Table II allocation sequence with every job except `target`
/// replaced by an idle placeholder.
enum class PlanCellKind { kSingle, kPairwise, kMixed, kMixedSolo, kCustom };

const char* to_string(PlanCellKind kind);

/// One fully-resolved simulation cell of a campaign.
struct PlanCell {
  std::size_t index{0};  ///< position in expansion (and emission) order
  PlanCellKind kind{PlanCellKind::kSingle};
  StudyConfig config{};  ///< base + variant overlay + axis values
  std::string variant;   ///< variant label, "" when no variant axis
  std::string target;      ///< pairwise target / mixed-solo app, else ""
  std::string background;  ///< pairwise background; "None" = standalone
  std::vector<PlanJob> jobs;  ///< kSingle job list, else empty
};

/// Stable identity hash of an expanded cell: everything that determines its
/// simulation output (config shape + seed/scale/limits + kind + job mix +
/// index). --resume recomputes this for every journaled cell and refuses to
/// skip a cell whose hash no longer matches — the plan file changed under
/// the journal. Stable across processes and platforms (FNV-1a over explicit
/// fields, never over raw struct bytes).
std::uint64_t plan_cell_hash(const PlanCell& cell);

/// Throw this from a kCustom runner (or any cell code) to mark a failure as
/// transient: run_plan retries the cell — like std::bad_alloc — instead of
/// recording it failed on first throw.
class TransientCellError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One isolated cell failure recorded by run_plan (the campaign continued).
struct CellFailure {
  std::size_t index{0};  ///< PlanCell.index of the failed cell
  std::string message;   ///< what() of the final attempt's exception
  int attempts{1};       ///< simulation attempts consumed (> 1 after retries)
  bool timeout{false};     ///< abandoned by the wall-clock watchdog
  bool sink_error{false};  ///< the simulation succeeded but a sink write failed
  /// The final attempt's exception, for callers that need legacy rethrow
  /// semantics (PlanOutcome::rethrow_any). Null for failures replayed from a
  /// resume journal.
  std::exception_ptr error;
};

struct ExperimentPlan;

/// Streaming consumer of finished cells. run_plan() calls begin() once with
/// the full expansion, then — in cell-index order over the cells this run
/// executes — exactly one of cell_done() (the cell produced a Report) or
/// cell_failed() (the cell was recorded as failed) per cell; cell i is
/// delivered as soon as it *and every cell before it* has finished, so a
/// file sink flushes incrementally while workers are still running later
/// cells — then end() once. end() is called even when cells failed (sinks
/// must finalise whatever was delivered); it is skipped only when begin()
/// itself threw. Calls are serialised by run_plan (sinks need no locking of
/// their own). A cell_done() override that throws converts that cell into a
/// recorded sink_error failure — the campaign continues.
class PlanSink {
 public:
  virtual ~PlanSink() = default;
  virtual void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells);
  virtual void cell_done(const PlanCell& cell, const Report& report) = 0;
  /// Default: ignore (file sinks simply have no line for the cell; the
  /// journal and PlanOutcome carry the failure).
  virtual void cell_failed(const PlanCell& cell, const CellFailure& failure);
  virtual void end();
};

/// Declarative description of a campaign. Expansion order is the fixed
/// nesting
///     variant > routing > placement > scale > seed > job-mix cell
/// (job-mix cells: pairwise = target-major over backgrounds, mixed = the mix
/// then each solo in table2_mix order, single/custom = one cell). An empty
/// axis means "the base config's value is the single point". When
/// `config_list` is set it replaces the whole axis product, cell order
/// following the list.
struct ExperimentPlan {
  std::string name{"campaign"};
  StudyConfig base{};
  PlanMode mode{PlanMode::kSingle};

  // --- axes ---------------------------------------------------------------
  std::vector<PlanVariant> variants;
  std::vector<std::string> routings;
  std::vector<PlacementPolicy> placements;
  std::vector<int> scales;
  std::vector<std::uint64_t> seeds;
  /// Explicit per-cell configs replacing the axis product (legacy
  /// run_mixed_suites shim; campaigns over hand-built config sets).
  std::vector<StudyConfig> config_list;

  // --- job mix ------------------------------------------------------------
  std::vector<PlanJob> jobs;             ///< kSingle
  std::vector<std::string> targets;      ///< kPairwise
  std::vector<std::string> backgrounds;  ///< kPairwise; "None" = standalone
  /// kPairwise: explicit (target, background, routing-override) list
  /// replacing the targets x backgrounds product (legacy shim surface).
  std::vector<PairwiseCell> pairwise_list;
  bool mixed_solos{true};  ///< kMixed: append per-app solo baselines
  /// kCustom: produces each cell's Report (runs on a worker thread; must
  /// only touch state owned by its cell).
  std::function<Report(const PlanCell&)> custom;

  // --- robustness ---------------------------------------------------------
  /// > 0 arms a per-cell wall-clock watchdog: a cell still running after
  /// this many real seconds is abandoned (Engine throws WallDeadlineExceeded
  /// at the next deadline check) and recorded as a timeout failure — no
  /// retry. Cells whose config already sets wall_limit_s keep their own.
  double cell_timeout_s{0};
  /// Extra attempts granted to a cell that fails transiently (std::bad_alloc
  /// or TransientCellError): the worker sheds its arena, backs off
  /// (10ms << attempt, capped at 1s) and re-runs. 0 disables retries.
  int cell_retries{2};

  /// Deterministic ordered expansion; calls validate() first. Cell order and
  /// content depend only on the plan — never on jobs or timing.
  std::vector<PlanCell> expand() const;

  /// Structural checks (unknown app/routing names, empty job mix, missing
  /// custom runner, non-positive scales); throws std::invalid_argument.
  void validate() const;
};

/// Collects reports in cell order (and keeps the expansion for callers that
/// index results by axis position). Failed cells keep a default Report and
/// land in failures().
class CollectSink final : public PlanSink {
 public:
  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;
  void cell_failed(const PlanCell& cell, const CellFailure& failure) override;

  const std::vector<PlanCell>& cells() const { return cells_; }
  const std::vector<Report>& reports() const { return reports_; }
  std::vector<Report>&& take_reports() { return std::move(reports_); }
  const std::vector<CellFailure>& failures() const { return failures_; }

 private:
  std::vector<PlanCell> cells_;
  std::vector<Report> reports_;
  std::vector<CellFailure> failures_;
};

/// One campaign-output JSON line for a finished cell (no trailing newline).
/// This is the single serialisation both output surfaces share: JsonlSink
/// writes exactly these bytes to its file/stream, and the daemon
/// (src/serve/) streams exactly these bytes to a submitting client — so a
/// socket-submitted campaign is byte-identical to `--plan=FILE --jsonl=-`
/// by construction, not by parallel maintenance of two formatters.
std::string plan_cell_jsonl(const PlanCell& cell, const Report& report);

/// JSON Lines: one self-contained object per cell —
///   {"cell":N,"kind":...,"variant":...,"routing":...,"placement":...,
///    "seed":N,"scale":N,"target":...,"background":...,"jobs":[...],
///    "report":{<report_to_json document>}}
/// — written and flushed as each cell completes, so a long campaign's
/// output is tail-able and survives interruption up to the last whole line.
/// Every append is error-checked: a short write (disk full, quota) throws
/// std::runtime_error, which run_plan records as a sink_error failure for
/// that cell instead of silently emitting a torn campaign file.
class JsonlSink final : public PlanSink {
 public:
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing (throws std::runtime_error on failure).
  /// `append` = true keeps existing content and continues after it — the
  /// --resume path, after the driver truncated the file to the last
  /// journaled offset.
  explicit JsonlSink(const std::string& path, bool append = false);

  void cell_done(const PlanCell& cell, const Report& report) override;

  /// Size in bytes of the stream after the last flushed cell (for a fresh
  /// file this equals bytes written; in append mode it starts at the
  /// pre-existing size). The journal records this as each cell's offset.
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  std::ofstream owned_;
  std::ostream* out_;
  std::string path_;  ///< "" for the ostream ctor (error messages only)
  std::uint64_t bytes_{0};
};

/// CSV: a header plus one row per (cell, application) — the flat table a
/// plotting notebook ingests directly. The path ctor writes to `path + ".tmp"`
/// and atomically renames onto `path` in end(), so readers only ever observe
/// a complete table — an interrupted campaign leaves the previous file
/// untouched (resume a partial campaign through the JSONL + journal pair,
/// not the CSV). Appends are error-checked like JsonlSink.
class CsvSink final : public PlanSink {
 public:
  explicit CsvSink(std::ostream& out);
  explicit CsvSink(const std::string& path);

  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;
  void end() override;

 private:
  void check_stream(const char* what) const;

  std::ofstream owned_;
  std::ostream* out_;
  std::string path_;  ///< final destination; "" for the ostream ctor
};

/// Fans one campaign stream out to several sinks (console + JSONL + CSV is
/// the common CLI combination). Does not own the sinks.
class TeeSink final : public PlanSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<PlanSink*> sinks) : sinks_(std::move(sinks)) {}

  void add(PlanSink* sink) { sinks_.push_back(sink); }

  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;
  void cell_failed(const PlanCell& cell, const CellFailure& failure) override;
  void end() override;

 private:
  std::vector<PlanSink*> sinks_;
};

/// A deterministic 1-of-N slice of a campaign: shard k runs exactly the
/// cells with `index % count == index_`, so N invocations with the same plan
/// and k = 0..N-1 partition the expansion with no coordination. Parsed from
/// the CLI's 1-based "K/N" spelling by parse_shard.
struct PlanShard {
  std::size_t index{0};  ///< 0-based shard id
  std::size_t count{1};  ///< total shards; 1 = no sharding

  bool active() const { return count > 1; }
  bool selects(std::size_t cell_index) const {
    return count <= 1 || cell_index % count == index;
  }
};

/// Parse "K/N" (1 <= K <= N, e.g. "2/4") into the 0-based PlanShard; throws
/// std::invalid_argument on anything else.
PlanShard parse_shard(const std::string& text);

/// Outcome of a campaign run (drives the CLI exit status).
struct PlanOutcome {
  std::size_t cells{0};      ///< cells this invocation was responsible for
                             ///  (after shard selection; includes resumed)
  std::size_t executed{0};   ///< cells actually simulated by this invocation
  std::size_t resumed{0};    ///< cells skipped because the journal had them
  std::size_t completed{0};  ///< cells whose Report.completed is true
                             ///  (journaled completions count on resume)
  /// Every isolated cell failure, in cell order (journaled failures are
  /// replayed here on resume, with a null exception pointer).
  std::vector<CellFailure> failures;
  /// Infrastructure failures that escaped cell isolation (journal/sink-end
  /// write errors, etc.), per worker.
  WorkerErrors worker_errors;

  /// Every cell produced a report, every report completed, and no
  /// infrastructure errors — the CLI's exit-0 condition.
  bool all_ok() const {
    return failures.empty() && !worker_errors.any() && completed == cells;
  }
  /// Legacy fail-fast surface for the pre-plan driver shims: rethrow the
  /// first failure's original exception (or a std::runtime_error carrying
  /// its message when only a journal replay is available). No-op when clean.
  void rethrow_any() const;
};

/// Execution options for run_plan (all default to the plain local run).
struct RunPlanOptions {
  /// ParallelRunner worker count: > 0 = exact, 0 = DFSIM_JOBS else
  /// sequential.
  int jobs{0};
  /// Intra-cell threads (--cell-threads): applied to every expanded cell
  /// whose config leaves cell_threads at 0 — a cell that sets its own value
  /// (plan file / variant overlay) keeps it. Byte-neutral: cell output and
  /// plan_cell_hash are identical for every value, so a journaled campaign
  /// can be resumed with a different cell-thread count.
  int cell_threads{0};
  /// Deterministic slice to execute (default: every cell).
  PlanShard shard{};
  /// When set, every finished cell (ok, failed or timed out) is durably
  /// journaled — fsync'd before the next cell emits. Not owned.
  PlanJournal* journal{nullptr};
  /// Recovered records of a previous run's journal: matching cells are
  /// skipped and their outcome replayed. Records are validated against the
  /// re-expanded plan via plan_cell_hash (mismatch throws std::runtime_error
  /// — the plan changed under the journal). Not owned; may be null.
  const std::vector<JournalRecord>* resume{nullptr};
  /// Size in bytes of the primary output stream after the cell that was just
  /// emitted (JsonlSink::bytes_written bound by the CLI). Recorded in each
  /// journal record as the resume truncation point; unset records offset 0.
  std::function<std::uint64_t()> output_offset;
  /// Cooperative cancellation (daemon mode: client disconnect / `cancel`
  /// op). Once it reads true, cells not yet started are recorded as
  /// "campaign cancelled" failures without simulating (attempts = 0);
  /// in-flight cells finish and emit normally. Not owned; may be null.
  const std::atomic<bool>* cancel{nullptr};
  /// When set, cells execute on this shared persistent pool (daemon mode:
  /// all campaigns multiplex onto one warm SubmissionQueue, sharing worker
  /// arenas and one BlueprintCache) instead of a per-call ParallelRunner;
  /// `jobs` is then ignored. Not owned.
  SubmissionQueue* queue{nullptr};
};

/// THE campaign entry point: expand the plan, shard the cells across
/// `options.jobs` ParallelRunner workers (per-worker arenas and the shared
/// BlueprintCache apply as for every other driver), and stream results to
/// `sink` in cell order. Every cell is fault-isolated: exceptions become
/// recorded CellFailures (transient ones retried per plan.cell_retries,
/// watchdog timeouts per plan.cell_timeout_s), the campaign always runs to
/// the end, and sink.end() is always called after begin() succeeded. Output
/// is bit-identical for any worker count — and, through the journal/resume
/// pair, across crash-resume boundaries and shard reassembly.
PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink,
                     const RunPlanOptions& options);
/// Convenience overload: local run with `jobs` workers, no shard/journal.
PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink, int jobs = 0);

/// Run one already-expanded cell on the calling thread (the per-cell work
/// run_plan schedules; exposed for tests and custom drivers).
Report run_plan_cell(const ExperimentPlan& plan, const PlanCell& cell);

/// Reassemble one campaign JSONL from per-shard outputs: every line of every
/// input is keyed by its leading `"cell":N`, sorted by cell index, and
/// written to `out_path` via a temp file + atomic rename. A duplicate cell
/// index across inputs throws std::runtime_error (overlapping shards); gaps
/// are tolerated (failed cells have no line) but reported on `warnings` when
/// provided. Returns the number of lines written.
std::size_t merge_shard_jsonl(const std::vector<std::string>& inputs,
                              const std::string& out_path,
                              std::ostream* warnings = nullptr);

/// Build a plan from a config file: every non-`plan.` key configures the
/// base StudyConfig via apply_config; `plan.*` keys describe the campaign —
///   plan.name        = fig4                     (default "campaign")
///   plan.mode        = single | pairwise | mixed  (default single)
///   plan.routings    = PAR,UGALg,Q-adp
///   plan.placements  = random,contiguous
///   plan.scales      = 1,8
///   plan.seeds       = 42..46,100              (ranges are inclusive)
///   plan.jobs        = FFT3D:528,Halo3D        (mode single; an explicit
///                      NODES must be >= 1, a bare APP fills the machine)
///   plan.targets     = FFT3D,LU                (mode pairwise)
///   plan.backgrounds = None,UR,Halo3D          (mode pairwise)
///   plan.solos       = true                    (mode mixed)
///   plan.cell_timeout_s = 900                  (wall-clock watchdog; 0 = off)
///   plan.cell_retries   = 2                    (transient-failure retries)
///   plan.variant.<label> = key=value; key=value  (repeatable; sorted by
///                          label; an empty value is the unmodified base)
/// Unknown plan keys throw std::invalid_argument naming the source line.
ExperimentPlan plan_from_config(const ConfigFile& file);

/// ConfigFile::load + plan_from_config.
ExperimentPlan load_plan(const std::string& path);

}  // namespace dfly

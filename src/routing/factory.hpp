#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/config.hpp"
#include "net/routing_iface.hpp"
#include "routing/q_adaptive.hpp"
#include "routing/ugal.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"

namespace dfly::routing {

/// Everything needed to instantiate any routing policy.
///
/// The split mirrors the SystemBlueprint design: `ugal`/`qadp`/`qinit` are
/// the immutable parameterisation a blueprint shares across cells; the engine
/// and seed feed the policy's own per-cell mutable state (Rng streams,
/// Q-tables, flow tables).
struct RoutingContext {
  Engine* engine;
  const Dragonfly* topo;
  const NetConfig* cfg;
  std::uint64_t seed{1};
  UgalParams ugal{};
  QAdaptiveParams qadp{};
  /// Blueprint-shared initial Q-tables for "Q-adp" (null = compute locally;
  /// the instantiated tables are identical either way).
  const std::vector<QTable>* qinit{nullptr};
};

/// Names: "MIN", "VALg", "VALn", "UGALg", "UGALn", "PAR", "Q-adp".
std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const RoutingContext& context);

/// Whether a policy is eligible for intra-cell parallel execution under
/// --cell-threads (src/sim/pdes.hpp). True for the stateless-per-packet
/// policies — MIN, VALg, VALn, UGALg, UGALn, PAR — whose decisions read only
/// the deciding router's own state, which lives in that router's domain.
/// False for the learning/flow-table policies (Q-adp, FlowUGAL, AppAware),
/// which mutate routing state shared across groups on every packet; Study
/// silently falls back to the sequential engine for those.
bool is_cell_parallel(const std::string& name);

/// The four policies evaluated in the paper, in figure order.
const std::vector<std::string>& paper_routings();

/// All policies this library implements.
const std::vector<std::string>& all_routings();

}  // namespace dfly::routing

// Ablation: the classic adversarial-traffic crossover (Kim et al. ISCA'08).
//
// ADV+1 sends every message from group G to a random node in group G+1:
// under linear placement all minimal paths share the single G -> G+1 global
// link, so minimal routing saturates at 1/(a*p) of injection bandwidth
// while Valiant-style spreading keeps scaling. Uniform-random traffic shows
// the mirror image (minimal wins, Valiant pays double). Adaptive routing
// must match the better of the two on both patterns — the canonical
// motivation for UGAL/PAR, with FlowUGAL and Q-adaptive joining the
// comparison here. Emits adversarial_crossover.svg alongside the table.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double comm_ms{0};
  double nonmin_fraction{0};
  double throughput{0};
};

Outcome run_pattern(StudyConfig config, bool adversarial) {
  config.placement = PlacementPolicy::kLinear;  // rank blocks == groups
  Study study(std::move(config));
  const int nodes = study.topo().num_nodes();
  const int per_group = study.topo().params().p * study.topo().params().a;
  const int iterations = 6000 / study.config().scale;

  int app = 0;
  if (adversarial) {
    workloads::GroupAdversarialParams p;
    p.group_stride = 1;
    p.ranks_per_group = per_group;
    p.iterations = iterations;
    p.msg_bytes = 4096;
    p.interval = 0;
    app = study.add_motif(std::make_unique<workloads::GroupAdversarialMotif>(p), nodes, "ADV");
  } else {
    workloads::UniformRandomParams p;
    p.iterations = iterations;
    p.msg_bytes = 4096;
    p.interval = 0;
    app = study.add_motif(std::make_unique<workloads::UniformRandomMotif>(p), nodes, "UR");
  }
  const Report report = study.run();
  Outcome outcome;
  const AppReport& a = report.apps[static_cast<std::size_t>(app)];
  outcome.comm_ms = a.comm_mean_ms;
  outcome.nonmin_fraction = a.nonminimal_fraction;
  outcome.throughput = report.agg_throughput_gb_per_ms;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 48);
  bench::print_header("ABLATION: adversarial (ADV+1) vs uniform traffic crossover");

  const std::vector<std::string> routings{"MIN",   "VALn",     "UGALg", "UGALn",
                                          "PAR",   "FlowUGAL", "Q-adp"};
  std::vector<std::function<Outcome()>> tasks;
  for (const std::string& routing : routings) {
    for (const bool adversarial : {false, true}) {
      StudyConfig config = options.config(routing);
      tasks.push_back(
          [config, adversarial] { return run_pattern(config, adversarial); });
    }
  }
  const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

  viz::AsciiTable table({"routing", "UR comm (ms)", "UR nonmin", "ADV comm (ms)",
                         "ADV nonmin", "ADV tput (GB/ms)"});
  std::vector<double> ur_series, adv_series;
  std::size_t i = 0;
  for (const std::string& routing : routings) {
    const Outcome ur = outcomes[i++];
    const Outcome adv = outcomes[i++];
    ur_series.push_back(ur.comm_ms);
    adv_series.push_back(adv.comm_ms);
    table.row({routing, bench::fmt(ur.comm_ms), bench::fmt(ur.nonmin_fraction),
               bench::fmt(adv.comm_ms), bench::fmt(adv.nonmin_fraction),
               bench::fmt(adv.throughput)});
  }
  std::printf("%s\n", table.str().c_str());

  viz::GroupedBarChart chart("Adversarial crossover: comm time by routing",
                             "comm time (ms)");
  chart.set_categories(routings);
  chart.add_group("UR", ur_series);
  chart.add_group("ADV+1", adv_series);
  chart.save("adversarial_crossover.svg");
  std::printf("Wrote adversarial_crossover.svg\n\n");
  std::printf("Expected: MIN wins UR but collapses on ADV+1 (nonmin = 0, one global\n"
              "link); VALn is uniform-agnostic but doubles UR load; UGAL/PAR track the\n"
              "better policy per pattern; Q-adp matches or beats them on both.\n");
  return 0;
}

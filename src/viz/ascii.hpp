#pragma once

#include <string>
#include <vector>

/// Terminal renderers: compact, dependency-free views of the same data the
/// SVG charts draw, for inline bench output (`bench_*` binaries print these
/// under their tables so a headless run still shows the figure shapes).
namespace dfly::viz {

/// One-line sparkline using the eight block characters: "▁▂▃▄▅▆▇█".
/// Values scale to [min, max] of the input; empty input gives "".
std::string sparkline(const std::vector<double>& values);

/// Multi-row block heat map: one character cell per matrix entry, using a
/// 10-step shade ramp. Rows render in index order, one line each.
std::string ascii_heatmap(const std::vector<std::vector<double>>& rows);

/// Horizontal bar chart: one row per (label, value), bars scaled to
/// `width` characters, annotated with the value.
std::string ascii_bars(const std::vector<std::pair<std::string, double>>& items,
                       int width = 48);

/// Fixed-width table with a header row and right-aligned numeric columns.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> columns);

  void row(std::vector<std::string> cells);
  /// Convenience for mixed string/double rows: doubles print with
  /// `precision` digits after the point.
  void row(const std::string& head, const std::vector<double>& values, int precision = 3);

  std::string str() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfly::viz

#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dfly {

/// Adapter that lets std::function callbacks ride the component event path.
class Engine::Closure final : public Component {
 public:
  explicit Closure(std::function<void()> fn) : fn_(std::move(fn)) {}
  void handle(Engine&, const Event&) override { fn_(); }

 private:
  std::function<void()> fn_;
};

void Engine::schedule_at(SimTime when, Component& target, std::uint32_t kind,
                         std::uint64_t a, std::uint64_t b) {
  assert(when >= now_ && "cannot schedule into the past");
  push(Entry{when, next_seq_++, &target, kind, a, b});
}

void Engine::call_at(SimTime when, std::function<void()> fn) {
  closures_.push_back(std::make_unique<Closure>(std::move(fn)));
  schedule_at(when, *closures_.back(), 0);
}

void Engine::push(Entry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

Engine::Entry Engine::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const Entry entry = pop();
  now_ = entry.when;
  ++executed_;
  Event event{entry.when, entry.seq, entry.target, entry.kind, entry.a, entry.b};
  entry.target->handle(*this, event);
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    step();
    ++count;
  }
  if (now_ < until && heap_.empty()) now_ = now_;  // time only advances with events
  return count;
}

void Engine::clear() {
  heap_.clear();
  closures_.clear();
}

}  // namespace dfly

# CTest script: run the committed Fig-4 campaign file through the unified
# plan runner (`dflysim --plan`) at --jobs=1 and --jobs=4 and require
# byte-identical JSON Lines output — the declarative expansion, the cell
# scheduling and the streaming sink must all be invisible to worker count.
# The campaign is trimmed to a representative 3-cell slice via --set
# overrides (the committed file is the full 168-cell paper campaign at
# scale 1, far too heavy for CI). Invoked by the plan_smoke test with
# -DDFLYSIM=<binary> -DCAMPAIGN=<examples/fig4_campaign.cfg>
# -DWORK_DIR=<build dir>.
set(ARGS --plan=${CAMPAIGN}
    --set=plan.routings=MIN
    --set=plan.targets=FFT3D
    --set=plan.backgrounds=None,UR,LU
    --set=scale=64)

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=1 --jsonl=${WORK_DIR}/plan_smoke_j1.jsonl
  RESULT_VARIABLE J1_RESULT OUTPUT_QUIET)
if(NOT J1_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=1 plan run failed with exit code ${J1_RESULT}")
endif()

execute_process(
  COMMAND ${DFLYSIM} ${ARGS} --jobs=4 --jsonl=${WORK_DIR}/plan_smoke_j4.jsonl
  RESULT_VARIABLE J4_RESULT OUTPUT_QUIET)
if(NOT J4_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 plan run failed with exit code ${J4_RESULT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/plan_smoke_j1.jsonl ${WORK_DIR}/plan_smoke_j4.jsonl
  RESULT_VARIABLE DIFF_RESULT)
if(NOT DIFF_RESULT EQUAL 0)
  message(FATAL_ERROR "--jobs=4 campaign JSONL differs from --jobs=1 "
                      "(plan streaming determinism regression)")
endif()

# Keep one canonical copy for the CI artifact upload.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E copy
          ${WORK_DIR}/plan_smoke_j1.jsonl ${WORK_DIR}/plan_smoke.jsonl)
message(STATUS "jobs=1 and jobs=4 campaign JSONL outputs are byte-identical")

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/config.hpp"
#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "net/router.hpp"
#include "net/routing_iface.hpp"
#include "sim/engine.hpp"
#include "stats/link_stats.hpp"
#include "stats/packet_log.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

class PdesCell;
class SimArena;
class SystemBlueprint;

/// Options for the observability plane.
struct NetworkObservability {
  bool keep_packet_records{false};   ///< store full per-packet records (Figs 6/7)
  SimTime throughput_bucket{kMs / 10};
};

/// The assembled Dragonfly network: routers, NICs, wires, statistics.
///
/// The Network is the *mutable* half of a cell's network state: it owns the
/// components and the packet pool, while every read-only input — topology,
/// NetConfig, link-id scheme and the resolved per-port wiring plan — comes
/// from an immutable SystemBlueprint that the caller keeps alive for the
/// Network's lifetime (Study holds it by shared_ptr) and that may be shared
/// with any number of concurrent cells of the same shape. The routing
/// algorithm is supplied by the caller (it may carry learning state and be
/// a Component of its own, so its lifetime is managed above this class).
///
/// When an `arena` is supplied, the packet pool, stats blocks and the
/// router/NIC objects are borrowed from it instead of built from scratch:
/// recycled components are reinit()-ed in place (keeping their buffer
/// storage) and everything moves back to the arena on destruction, so the
/// worker's next cell starts pre-grown to the high-water mark of everything
/// this worker has run. Reuse is observable-state-neutral — simulation
/// output is bit-identical with or without an arena.
class Network final : public NicDirectory {
 public:
  /// `pdes` (src/sim/pdes.hpp) makes this a parallel cell's network: routers
  /// and NICs are constructed on their domain's engine and stamped with their
  /// domain id, NICs record into per-domain packet-log shards, and the few
  /// structures touched across domains (packet pool, NIC inbound maps) turn
  /// their locking on. Null (the default) is the sequential path, unchanged.
  Network(Engine& engine, const SystemBlueprint& blueprint, RoutingAlgorithm& routing,
          int num_apps, std::uint64_t seed, NetworkObservability observability = {},
          SimArena* arena = nullptr, PdesCell* pdes = nullptr);
  ~Network() override;

  /// Queue a message; returns the assigned message id. Self-sends (src ==
  /// dst) bypass the network and complete after a memcpy-like local delay.
  std::uint64_t send_message(int src_node, int dst_node, std::int64_t bytes, int app_id);

  void set_sink(MessageEvents& sink);

  Router& router(int id) { return *routers_[static_cast<std::size_t>(id)]; }
  Nic& nic(int node) { return *nics_[static_cast<std::size_t>(node)]; }
  Nic& nic_at(int node) override { return nic(node); }
  const SystemBlueprint& blueprint() const { return *blueprint_; }
  const Dragonfly& topo() const { return *topo_; }
  const NetConfig& cfg() const { return *cfg_; }
  Engine& engine() { return *engine_; }

  /// Domain engine owning `node`'s components (the cell engine when
  /// sequential). The MPI layer schedules per-rank work on this.
  Engine& engine_for_node(int node);
  bool parallel() const { return pdes_ != nullptr; }
  PdesCell* pdes() { return pdes_; }

  /// After a parallel run: fold the per-domain packet-log shards back into
  /// packet_log(). No-op for sequential cells.
  void finalize_pdes();

  /// Apply a set of link faults (degraded serialisation / extra latency on
  /// router output wires). Call before traffic starts; faults on terminal
  /// ports slow the router-to-NIC direction only.
  void apply_faults(const FaultPlan& plan);

  /// Assign application `app_id` to QoS traffic class `cls` (effective for
  /// packets injected after the call; NetConfig::qos must enable classes
  /// for the assignment to change arbitration).
  void set_app_class(int app_id, int cls) { traffic_classes_.assign(app_id, cls); }
  const TrafficClassMap& traffic_classes() const { return traffic_classes_; }

  LinkStats& link_stats() { return link_stats_; }
  const LinkStats& link_stats() const { return link_stats_; }
  PacketLog& packet_log() { return packet_log_; }
  const PacketLog& packet_log() const { return packet_log_; }
  const LinkMap& link_map() const { return *links_; }
  PacketPool& pool() { return pool_; }

  /// Total packets currently buffered in routers plus queued in NICs.
  std::int64_t in_flight_packets() const { return static_cast<std::int64_t>(pool_.in_use()); }

 private:
  Engine* engine_;
  const SystemBlueprint* blueprint_;  ///< immutable shared plan (caller-owned)
  const Dragonfly* topo_;             ///< = &blueprint_->topo()
  const NetConfig* cfg_;              ///< = &blueprint_->net()
  const LinkMap* links_;              ///< = &blueprint_->links()
  SimArena* arena_;  ///< storage donor/recipient; null = self-owned only
  PdesCell* pdes_;   ///< parallel-cell domain map; null = sequential
  // pool_/link_stats_/packet_log_/routers_/nics_ hold arena-borrowed storage
  // when arena_ is set; the destructor moves it back.
  PacketPool pool_;
  LinkStats link_stats_;
  PacketLog packet_log_;
  TrafficClassMap traffic_classes_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Nic>> nics_;
  MessageEvents* sink_{nullptr};
  // Atomic because in a parallel cell every domain thread mints ids; the
  // values are opaque map keys, so the thread-dependent assignment order is
  // unobservable (relaxed fetch_add degenerates to the sequential counter
  // when single-threaded).
  std::atomic<std::uint64_t> next_msg_id_{1};
};

}  // namespace dfly

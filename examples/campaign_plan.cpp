// Example: one declarative ExperimentPlan instead of hand-rolled loops.
//
// Builds the same kind of campaign every paper figure uses — a routings x
// seeds sweep over a fixed job mix — as a single ExperimentPlan, runs it
// through the unified campaign core (which shards cells across worker
// threads and streams results in deterministic cell order), and shows the
// three ways to consume the stream: an in-memory collector for the summary
// table, a JSON Lines file (one self-contained object per cell, flushed as
// each cell completes), and a per-app CSV table.
//
// The identical campaign can be run without this program at all:
//
//     # campaign.cfg
//     topo.p = 2
//     topo.a = 4
//     topo.h = 2
//     topo.g = 9
//     scale = 32
//     plan.mode = single
//     plan.jobs = UR:36,CosmoFlow:36
//     plan.routings = MIN,UGALg,PAR
//     plan.seeds = 1..3
//
//     dflysim --plan=campaign.cfg --jsonl=campaign.jsonl --jobs=4

#include <cstdio>

#include "core/plan.hpp"

int main() {
  using namespace dfly;

  ExperimentPlan plan;
  plan.name = "example_campaign";
  plan.base.topo = DragonflyParams::tiny();
  plan.base.scale = 32;
  plan.mode = PlanMode::kSingle;
  plan.jobs = {{"UR", 36}, {"CosmoFlow", 36}};
  plan.routings = {"MIN", "UGALg", "PAR"};
  plan.seeds = {1, 2, 3};

  // Fan the stream out: collect for the table below, and write both
  // machine-readable forms while the campaign is still running.
  CollectSink collect;
  JsonlSink jsonl("campaign_plan.jsonl");
  CsvSink csv("campaign_plan.csv");
  TeeSink tee({&collect, &jsonl, &csv});

  const PlanOutcome outcome = run_plan(plan, tee, /*jobs=*/0);

  std::printf("%zu-cell campaign '%s' (%zu completed)\n", outcome.cells, plan.name.c_str(),
              outcome.completed);
  std::printf("%-8s %6s %14s %14s\n", "routing", "seed", "UR comm ms", "Cosmo comm ms");
  for (const PlanCell& cell : collect.cells()) {
    const Report& report = collect.reports()[cell.index];
    std::printf("%-8s %6llu %14.4f %14.4f\n", cell.config.routing.c_str(),
                static_cast<unsigned long long>(cell.config.seed),
                report.app("UR").comm_mean_ms, report.app("CosmoFlow").comm_mean_ms);
  }
  std::printf("wrote campaign_plan.jsonl and campaign_plan.csv\n");
  return outcome.completed == outcome.cells ? 0 : 1;
}

#include "sim/partition.hpp"

#include "core/blueprint.hpp"

namespace dfly {

CellPartition CellPartition::build(const SystemBlueprint& blueprint, int threads) {
  const Dragonfly& topo = blueprint.topo();
  const int groups = topo.num_groups();
  CellPartition part;
  part.num_domains = threads < groups ? threads : groups;
  if (part.num_domains < 1) part.num_domains = 1;

  const int routers = topo.num_routers();
  const int nodes = topo.num_nodes();
  part.router_domain.resize(static_cast<std::size_t>(routers));
  part.node_domain.resize(static_cast<std::size_t>(nodes));
  for (int r = 0; r < routers; ++r) {
    const std::int64_t group = topo.group_of_router(r);
    part.router_domain[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(group * part.num_domains / groups);
  }
  for (int n = 0; n < nodes; ++n) {
    part.node_domain[static_cast<std::size_t>(n)] =
        part.router_domain[static_cast<std::size_t>(topo.router_of_node(n))];
  }

  // Lookahead: minimum plan latency over wires whose endpoint routers live in
  // different domains. Groups are contiguous blocks, so local and terminal
  // wires never cross; only global links can. Router::transmit schedules the
  // peer's arrival at busy_until + latency + extra_latency (+ router_latency),
  // and busy_until >= now, so every cross-domain event lands at least
  // `lookahead` past the sender's clock.
  const int radix = topo.radix();
  SimTime lookahead = 0;
  for (int r = 0; r < routers; ++r) {
    for (int port = 0; port < radix; ++port) {
      const SystemBlueprint::PortPlan& plan = blueprint.port(r, port);
      if (plan.peer_router < 0) continue;  // terminal wire (NIC peer)
      if (part.router_domain[static_cast<std::size_t>(r)] ==
          part.router_domain[static_cast<std::size_t>(plan.peer_router)]) {
        continue;
      }
      if (lookahead == 0 || plan.latency < lookahead) lookahead = plan.latency;
    }
  }
  part.lookahead = part.num_domains > 1 ? lookahead : 0;
  return part;
}

}  // namespace dfly
